#!/usr/bin/env python
"""CI chaos smoke: the serving layer survives seeded fault injection.

Runs the full ``repro-chaos`` scenario — by default the whole Figure 9
corpus through a live server under 5 worker kills, 3 admission sheds,
rate-driven pipe delays and duplicates, a mid-run drain/resume and
rolling restart, and 3 digest-corrupted + 2 format-smashed disk-cache
entries — **twice with the same seed**, and requires:

1. zero lost jobs and zero wrong answers (every response bit-identical
   to the in-process ground truth) in both runs;
2. retries exactly equal to the injected kill + shed count, every
   backoff wait under the cap;
3. every corrupt cache entry quarantined and healed;
4. the two runs' deterministic report subsets identical — same fault
   schedule, same counters, no hidden nondeterminism.

Exit codes: 0 ok, 1 any invariant or determinism violation (the chaos
CLI prints the specific failures), 2 bad arguments.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.server.chaos import main as chaos_main  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--programs", default=None,
                        help="comma-separated subset (default: all 28; CI "
                             "may pass a subset of at least 8 for speed)")
    parser.add_argument("--kills", type=int, default=5)
    parser.add_argument("--rejects", type=int, default=3)
    parser.add_argument("--corrupt", type=int, default=3)
    parser.add_argument("--truncate", type=int, default=2)
    parser.add_argument("--single-run", action="store_true",
                        help="skip the same-seed determinism replay")
    args = parser.parse_args(argv)

    if args.programs is not None and len(args.programs.split(",")) < 8:
        print("chaos smoke needs at least 8 programs to be meaningful",
              file=sys.stderr)
        return 2

    forwarded = [
        "--seed", str(args.seed),
        "--workers", str(args.workers),
        "--kills", str(args.kills),
        "--rejects", str(args.rejects),
        "--corrupt", str(args.corrupt),
        "--truncate", str(args.truncate),
    ]
    if args.programs:
        forwarded += ["--programs", args.programs]
    if not args.single_run:
        forwarded += ["--check-determinism"]
    return chaos_main(forwarded)


if __name__ == "__main__":
    raise SystemExit(main())

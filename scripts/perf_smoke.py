#!/usr/bin/env python
"""CI perf smoke: the compile cache works and the interpreter didn't rot.

Two checks, both cheap enough for every PR:

1. **Cache effectiveness** — measure a few benchmarks across all five
   strategies twice against one bounded cache.  The second sweep must be
   all hits (zero new pipeline compiles); ``--no-cache`` semantics are
   exercised by pointing the second sweep at a fresh cache and expecting
   all misses again.

2. **Wall-clock regression** — compare each program's best closure-backend
   wall time under ``rg`` against the committed ``BENCH_figure9.json``
   baseline and fail when it regresses by more than ``--max-regress``
   (default 50%).  Wall time is machine-noisy, which is why the threshold
   is generous and why only a *large* regression fails: the point is to
   catch "the fast path stopped being fast" (e.g. the closure backend
   silently falling back to the tree walker), not 5% jitter.

3. **Bytecode backend** — re-measure the same programs on the bytecode
   VM and check (a) the deterministic step count matches the baseline's
   rg cell exactly (the bit-identity contract, cheaply), and (b) the
   hot (specialized) wall time still beats the closure backend's
   baseline wall — the trace-guided specializer stopped paying for
   itself if this fails.  The committed ``backends`` column of
   ``BENCH_figure9.json`` carries the full-suite ratios; this gate just
   keeps the headline claim honest per PR.

4. **Policy matrix** — run every registered collection policy
   (``repro.runtime.gc.POLICIES``) on a small program subset and check
   each against the baseline's rg cell: identical value and identical
   deterministic step count for every policy, and identical
   ``peak_words`` for the majors-only policies (which share the
   baseline's exact schedule; generational's minors reclaim less per
   trigger, so only its word high-water may move — never the value or
   the steps).  A policy whose steps drift is a collector bug, not
   noise.

Exit codes: 0 ok, 1 check failed, 2 usage/baseline problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import measure  # noqa: E402
from repro.bench.registry import BENCHMARKS, benchmark_source  # noqa: E402
from repro.cache import CompileCache  # noqa: E402
from repro.config import Strategy  # noqa: E402


def check_cache(names: list[str]) -> list[str]:
    """Sweep names x strategies twice against one cache: the second sweep
    must be pure hits."""
    problems: list[str] = []
    cache = CompileCache(maxsize=64)
    sources = {name: benchmark_source(name) for name in names}
    for name in names:
        for strategy in Strategy:
            measure(sources[name], strategy, cache=cache)
    first = cache.stats.to_dict()
    if first["hits"]:
        # measure() compiles each (source, strategy) exactly once.
        problems.append(f"cold sweep should be all misses, got {first}")
    for name in names:
        for strategy in Strategy:
            measure(sources[name], strategy, cache=cache)
    second = cache.stats.to_dict()
    new_compiles = second["misses"] - first["misses"]
    if new_compiles:
        problems.append(
            f"warm sweep recompiled {new_compiles} programs "
            f"(cache stats {second})"
        )
    print(
        f"perf-smoke: cache ok — cold misses={first['misses']}, "
        f"warm hits={second['hits'] - first['hits']}, recompiles=0"
    )
    return problems


def check_wall(names: list[str], baseline_path: str, max_regress: float) -> list[str]:
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot load baseline {baseline_path}: {exc}"]
    problems: list[str] = []
    for name in names:
        cell = (
            baseline.get("programs", {})
            .get(name, {})
            .get("strategies", {})
            .get("rg")
        )
        if not cell:
            problems.append(f"baseline has no rg cell for {name!r}")
            continue
        m = measure(benchmark_source(name), Strategy.RG, repeat=3)
        budget = cell["seconds"] * (1.0 + max_regress)
        verdict = "ok" if m.seconds <= budget else "REGRESSED"
        print(
            f"perf-smoke: {name} rg wall {m.seconds:.3f}s "
            f"(baseline {cell['seconds']:.3f}s, budget {budget:.3f}s) {verdict}"
        )
        if m.seconds > budget:
            problems.append(
                f"{name}: {m.seconds:.3f}s exceeds {budget:.3f}s "
                f"(baseline {cell['seconds']:.3f}s + {max_regress:.0%})"
            )
        if m.steps != cell["steps"]:
            problems.append(
                f"{name}: step count drifted {m.steps} != {cell['steps']} "
                "(deterministic — regenerate the baseline if intentional)"
            )
    return problems


def check_bytecode(names: list[str], baseline_path: str,
                   max_regress: float) -> list[str]:
    """The bytecode VM's smoke gate: exact step counts (bit-identity)
    and a hot wall time no worse than the closure baseline + slack."""
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot load baseline {baseline_path}: {exc}"]
    problems: list[str] = []
    for name in names:
        cell = (
            baseline.get("programs", {})
            .get(name, {})
            .get("strategies", {})
            .get("rg")
        )
        if not cell:
            problems.append(f"baseline has no rg cell for {name!r}")
            continue
        # repeat=3: the first run trains and specializes, the best-of is
        # a hot run — exactly what the committed backends column records.
        m = measure(benchmark_source(name), Strategy.RG, repeat=3,
                    backend="bytecode")
        if m.steps != cell["steps"]:
            problems.append(
                f"{name}: bytecode step count drifted {m.steps} != "
                f"{cell['steps']} (the backends are bit-identical by "
                "contract — this is a VM bug, not noise)"
            )
        budget = cell["seconds"] * (1.0 + max_regress)
        verdict = "ok" if m.seconds <= budget else "REGRESSED"
        print(
            f"perf-smoke: {name} rg bytecode wall {m.seconds:.3f}s "
            f"(closure baseline {cell['seconds']:.3f}s, "
            f"budget {budget:.3f}s) {verdict}"
        )
        if m.seconds > budget:
            problems.append(
                f"{name}: bytecode {m.seconds:.3f}s exceeds {budget:.3f}s "
                f"(closure baseline {cell['seconds']:.3f}s + "
                f"{max_regress:.0%}) — hot bytecode should beat closure, "
                "see docs/performance.md"
            )
    return problems


def check_policies(names: list[str], baseline_path: str) -> list[str]:
    """Every collection policy, one backend, against the baseline's rg
    cells: same value, same steps, and a sane peak_pages (>= 1 whenever
    any infinite region allocated)."""
    from repro.runtime.gc import POLICIES

    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot load baseline {baseline_path}: {exc}"]
    problems: list[str] = []
    for name in names:
        cell = (
            baseline.get("programs", {})
            .get(name, {})
            .get("strategies", {})
            .get("rg")
        )
        if not cell:
            problems.append(f"baseline has no rg cell for {name!r}")
            continue
        expected_value = cell["value"]
        pages = {}
        for policy in sorted(POLICIES):
            m = measure(benchmark_source(name), Strategy.RG, policy=policy)
            pages[policy] = m.peak_pages
            if m.value != expected_value:
                problems.append(
                    f"{name}: policy {policy!r} value {m.value!r} != "
                    f"{expected_value!r} (policies must be bit-identical "
                    "on values)"
                )
            if m.steps != cell["steps"]:
                problems.append(
                    f"{name}: policy {policy!r} step count drifted "
                    f"{m.steps} != {cell['steps']} (deterministic — "
                    "a collector bug, not noise)"
                )
            if not POLICIES[policy].generational and m.peak_words != cell["peak_words"]:
                # Majors-only policies share the baseline's exact GC
                # schedule, so their word high-water must match it.
                # Generational runs minors at the same trigger points and
                # reclaims less per trigger: its peak_words legitimately
                # differs (the schedule, not the accounting).
                problems.append(
                    f"{name}: policy {policy!r} peak_words "
                    f"{m.peak_words} != {cell['peak_words']} (majors-only "
                    "policies follow the baseline schedule exactly)"
                )
            if m.peak_pages < 1:
                problems.append(
                    f"{name}: policy {policy!r} reports peak_pages="
                    f"{m.peak_pages} — the global region always holds "
                    "at least one page"
                )
        print(
            f"perf-smoke: {name} policies ok — peak_pages "
            + " ".join(f"{p}={pages[p]}" for p in sorted(pages))
        )
    return problems


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--programs", default="fib,life",
                        help="comma-separated benchmark names (default fib,life)")
    parser.add_argument("--baseline", default="BENCH_figure9.json",
                        help="committed export to compare against")
    parser.add_argument("--max-regress", type=float, default=0.5,
                        help="allowed fractional wall regression (default 0.5)")
    parser.add_argument("--policy-programs", default="fib,life,msort,tak,mpuz",
                        help="benchmark subset for the policy-matrix check "
                             "(default fib,life,msort,tak,mpuz)")
    args = parser.parse_args(argv)

    names = [n for n in args.programs.split(",") if n]
    policy_names = [n for n in args.policy_programs.split(",") if n]
    unknown = [n for n in names + policy_names if n not in BENCHMARKS]
    if unknown:
        print(f"perf-smoke: unknown benchmarks {unknown}", file=sys.stderr)
        return 2

    problems = (
        check_cache(names)
        + check_wall(names, args.baseline, args.max_regress)
        + check_bytecode(names, args.baseline, args.max_regress)
        + check_policies(policy_names, args.baseline)
    )
    for problem in problems:
        print(f"perf-smoke: FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI serving smoke: the fleet loses nothing and answers bit-identically.

Boots a 2-node :class:`repro.server.fleet.LocalFleet` (real HTTP between
gateway and nodes, real worker processes, one shared artifact store),
then:

1. **Ground truth** — runs every Figure 9 program in-process (the same
   code path as ``repro-run``) to get reference value/stdout/RunStats.
2. **Chaos wave** — replays a seeded open-loop schedule covering the
   full 23-program corpus through the gateway, **killing one node
   mid-schedule**.  Asserts: no lost job, no rejected-after-retries
   job, and every answer bit-identical to ground truth (value, stdout,
   RunStats) — failover may change *where* a job runs, never *what* it
   answers.
3. **Cold join** — boots a third node against the same artifact store,
   joins it to the ring, and submits a hot program directly to it:
   the response must be a ``fleet_hit`` (served from the artifact
   store, no recompile).
4. **Warm wave** — replays the schedule again and asserts every
   response came from some cache layer.
5. **Bench document** — folds the chaos wave into a
   ``repro-serving-bench/v1`` document, schema-validates it, and (with
   ``--out``) writes it — the committed ``BENCH_serving.json`` comes
   from this script.

Exit codes: 0 ok, 1 any invariant violated, 2 boot failure.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.registry import BENCHMARKS, benchmark_source  # noqa: E402
from repro.pipeline import compile_program  # noqa: E402
from repro.runtime.values import show_value  # noqa: E402
from repro.server.client import ServerClient  # noqa: E402
from repro.server.fleet import LocalFleet  # noqa: E402
from repro.server.loadgen import (  # noqa: E402
    build_document,
    poisson_schedule,
    run_schedule,
    validate_document,
)


def sequential_reference(names: list[str]) -> dict[str, dict]:
    reference = {}
    for name in names:
        result = compile_program(benchmark_source(name)).run()
        reference[name] = {
            "value": show_value(result.value),
            "stdout": result.output,
            "stats": result.stats.to_dict(),
        }
    return reference


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--workers-per-node", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--rate", type=float, default=6.0,
                        help="mean arrivals/second of the replayed schedule")
    parser.add_argument("--kill-after", type=float, default=2.0,
                        help="seconds into the chaos wave to kill node 0")
    parser.add_argument("--out", metavar="FILE",
                        help="write the chaos wave's BENCH_serving.json here")
    args = parser.parse_args(argv)

    names = sorted(BENCHMARKS)
    sources = {name: benchmark_source(name) for name in names}
    failures: list[str] = []

    print(f"computing in-process ground truth for {len(names)} programs ...")
    reference = sequential_reference(names)

    # Every program at least once, arrival order and gaps seeded: the
    # full corpus in one deterministic open-loop wave.
    schedule = poisson_schedule(names, rate=args.rate, requests=len(names),
                                seed=args.seed)
    covered = {a.program for a in schedule}
    schedule = (schedule
                + [type(schedule[0])(at=schedule[-1].at + 0.05 * i,
                                     program=name)
                   for i, name in enumerate(sorted(set(names) - covered), 1)])

    # The long health interval is deliberate: the kill must be
    # discovered *passively*, by forwards failing and failing over —
    # that is the path under proof.  (An active poll would quietly
    # route around the corpse and the failover counters would stay 0.)
    fleet = LocalFleet(nodes=args.nodes,
                       workers_per_node=args.workers_per_node,
                       health_interval=30.0)
    try:
        try:
            gateway_url = fleet.start()
        except Exception as exc:  # noqa: BLE001 - boot is the one 2-exit
            print(f"fleet failed to boot: {exc}", file=sys.stderr)
            return 2
        client = ServerClient(gateway_url, timeout=600)
        client.wait_ready(timeout=60)
        stats_before = client.stats()

        print(f"chaos wave: {len(schedule)} arrivals over {len(names)} "
              f"programs, killing node 0 at t+{args.kill_after}s ...")
        killer = threading.Timer(args.kill_after, fleet.kill_node, args=(0,))
        killer.start()
        samples = run_schedule(gateway_url, schedule, sources, retries=4,
                               timeout=600)
        killer.cancel()
        stats_after = client.stats()

        for sample in samples:
            name = sample.arrival.program
            if sample.status != "ok":
                failures.append(
                    f"{name}: status={sample.status} error={sample.error} "
                    f"(jobs must survive a node kill)")
                continue
            if sample.value != reference[name]["value"]:
                failures.append(
                    f"{name}: value {sample.value!r} != ground truth "
                    f"{reference[name]['value']!r}")
        served_by = {s.node for s in samples if s.node}
        failovers = (stats_after["gateway"]["failovers"]
                     - stats_before["gateway"]["failovers"])
        print(f"  {sum(1 for s in samples if s.status == 'ok')}"
              f"/{len(samples)} ok across nodes {sorted(served_by)}; "
              f"gateway failovers={failovers}, "
              f"client retries={sum(s.retries for s in samples)}")
        if failovers < 1:
            failures.append(
                "the node kill produced zero gateway failovers — the "
                "chaos wave never exercised the failover path (did the "
                "kill fire after the schedule drained?)")
        dead = stats_after["nodes"].get(
            fleet.gateway._node_name(fleet.node_urls[0]), {})
        if dead.get("healthy", True):
            failures.append("killed node still marked healthy after the "
                            "wave — passive failure detection broke")

        # Full-response bit-identity for one representative program per
        # node actually exercised (stats included — failover must not
        # perturb RunStats).
        print("checking RunStats bit-identity through the gateway ...")
        for name in names[:5]:
            response = client.run(sources[name])
            if response["status"] != "ok":
                failures.append(f"{name}: post-chaos submit failed: "
                                f"{response.get('error')}")
                continue
            for field in ("value", "stdout", "stats"):
                if response[field] != reference[name][field]:
                    failures.append(
                        f"{name}: {field} differs from in-process run\n"
                        f"  fleet: {response[field]!r}\n"
                        f"  local: {reference[name][field]!r}")

        print("cold join: new node must serve hot programs from the "
              "artifact store ...")
        new_url = fleet.add_node()
        direct = ServerClient(new_url, timeout=600)
        direct.wait_ready(timeout=60)
        hot = direct.run(sources[names[0]])
        if hot.get("status") != "ok":
            failures.append(f"cold node failed: {hot.get('error')}")
        elif not (hot.get("cache") or {}).get("fleet_hit"):
            failures.append(
                f"cold node's first hot-program request was not a fleet "
                f"hit: cache={hot.get('cache')} (it recompiled instead of "
                f"pulling the shared artifact)")

        print("warm wave: every answer must come from a cache layer ...")
        warm = run_schedule(gateway_url, schedule, sources, retries=4,
                            timeout=600, time_scale=0.0)
        cold = [s.arrival.program for s in warm
                if s.status != "ok"
                or not (s.cache or {}).get("memory_hit")
                and not (s.cache or {}).get("disk_hit")
                and not (s.cache or {}).get("fleet_hit")]
        if cold:
            failures.append(f"warm wave missed every cache layer for: "
                            f"{sorted(set(cold))}")

        document = build_document(
            samples,
            {"kind": "poisson", "rate": args.rate, "seed": args.seed,
             "requests": len(schedule), "programs": names},
            {"nodes": args.nodes, "workers_per_node": args.workers_per_node,
             "gateway": "local"},
            stats_before=stats_before, stats_after=stats_after,
            expected={n: reference[n]["value"] for n in names},
        )
        problems = validate_document(document)
        for problem in problems:
            failures.append(f"bench document invalid: {problem}")
        if not document["slo_check"]["passed"]:
            failures.append(f"SLO gate failed: "
                            f"{document['slo_check']['violations']}")
        if args.out and not failures:
            import json

            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(document, indent=2) + "\n")
            print(f"wrote {args.out}")
    finally:
        fleet.close()

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"serving smoke OK: {len(schedule)} jobs survived a node kill "
          f"bit-identically, cold node fleet-hit, warm wave cache-served, "
          f"bench document valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

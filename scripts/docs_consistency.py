#!/usr/bin/env python
"""CI docs consistency: docs/bytecode.md never drifts from the tools.

The architecture reference embeds real tool output — the Figure 1
disassembly, the hot-loop before/after disassemblies, and a generated
kernel.  Prose can rot silently; embedded output cannot, provided
something regenerates it and diffs.  This script is that something:

1. **Figure 1 golden** — recompile ``tests/runtime/data/figure1.mml``
   under ``rg-`` (no prelude) and require the disassembly to equal the
   committed golden ``tests/runtime/data/disasm_figure1.txt`` (the same
   file ``repro-run --disasm`` is pinned to by
   ``tests/runtime/test_bytecode_backend.py``) *and* to appear verbatim
   inside ``docs/bytecode.md``.

2. **Specialization walkthrough** — recompile
   ``tests/runtime/data/hotloop.mml`` under ``rg`` (no prelude), take
   the cold disassembly, run it with ``specialize=2``, take the hot
   disassembly and the generated kernel source, and require all three
   verbatim inside ``docs/bytecode.md``.

3. **ISA coverage** — every mnemonic in ``repro.runtime.bytecode.isa``
   must be mentioned in ``docs/bytecode.md``: a new opcode cannot land
   without its documentation.

4. **Policy table** — ``docs/performance.md`` embeds the collection-
   policy matrix; it must equal ``repro.runtime.gc.policy_table()``
   verbatim, so registering a policy (or changing a schedule constant
   like ``MINORS_PER_MAJOR``) without updating the docs fails CI.

5. **Serving bench** — the committed ``BENCH_serving.json`` must be a
   schema-valid ``repro-serving-bench/v1`` document whose SLO gate
   passed, and its :func:`repro.server.loadgen.serving_table` rendering
   must appear verbatim in ``docs/serving.md`` — re-running the bench
   without re-embedding its table fails CI.

Exit codes: 0 consistent, 1 drift found.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.config import CompilerFlags, Strategy  # noqa: E402
from repro.pipeline import compile_program  # noqa: E402
from repro.runtime.bytecode import isa  # noqa: E402

DOC = ROOT / "docs" / "bytecode.md"
DATA = ROOT / "tests" / "runtime" / "data"


def _compile(name: str, strategy: Strategy):
    source = (DATA / name).read_text()
    flags = CompilerFlags(with_prelude=False).with_strategy(strategy)
    return compile_program(source, flags=flags, cache=False)


def figure1_disasm() -> str:
    return _compile("figure1.mml", Strategy.RG_MINUS).disasm()


def hotloop_artifacts() -> dict:
    prog = _compile("hotloop.mml", Strategy.RG)
    before = prog.disasm()
    prog.run(backend="bytecode", specialize=2)
    after = prog.disasm()
    kernel = next(
        b.kernel_source for b in prog._bytecode.program.bodies
        if b.kernel_source
    )
    return {"hot-loop cold disassembly": before,
            "hot-loop hot disassembly": after,
            "hot-loop generated kernel": kernel}


def main() -> int:
    problems: list[str] = []
    doc = DOC.read_text()

    fig1 = figure1_disasm()
    golden = (DATA / "disasm_figure1.txt").read_text()
    if fig1 != golden:
        problems.append(
            "figure1.mml disassembly drifted from the committed golden "
            "tests/runtime/data/disasm_figure1.txt — regenerate the "
            "golden AND the docs/bytecode.md embedding together"
        )
    if fig1.rstrip("\n") not in doc:
        problems.append(
            "docs/bytecode.md no longer embeds the Figure 1 disassembly "
            "verbatim (compare against `repro-run tests/runtime/data/"
            "figure1.mml --strategy rg- --no-prelude --no-cache --disasm`)"
        )

    for label, text in hotloop_artifacts().items():
        if text.rstrip("\n") not in doc:
            problems.append(
                f"docs/bytecode.md no longer embeds the {label} verbatim"
            )

    missing = [name for name in isa.NAMES.values() if name not in doc]
    if missing:
        problems.append(
            f"docs/bytecode.md does not mention opcode(s): {missing} — "
            "every ISA member must be documented"
        )

    from repro.runtime.gc import policy_table

    perf_doc = (ROOT / "docs" / "performance.md").read_text()
    if policy_table() not in perf_doc:
        problems.append(
            "docs/performance.md no longer embeds the collection-policy "
            "table verbatim — regenerate it with "
            "`python -c \"import sys; sys.path.insert(0, 'src'); "
            "from repro.runtime.gc import policy_table; "
            "print(policy_table())\"` and paste it under the "
            "policy-table marker"
        )

    import json

    from repro.server.loadgen import serving_table, validate_document

    bench_path = ROOT / "BENCH_serving.json"
    if not bench_path.exists():
        problems.append(
            "BENCH_serving.json is missing — regenerate it with "
            "`python scripts/serving_smoke.py --out BENCH_serving.json`"
        )
    else:
        bench = json.loads(bench_path.read_text())
        for problem in validate_document(bench):
            problems.append(f"BENCH_serving.json invalid: {problem}")
        if not bench.get("slo_check", {}).get("passed"):
            problems.append(
                "the committed BENCH_serving.json records a failed SLO "
                "gate — do not commit a red bench run"
            )
        serving_doc = (ROOT / "docs" / "serving.md").read_text()
        if serving_table(bench).rstrip("\n") not in serving_doc:
            problems.append(
                "docs/serving.md no longer embeds the committed "
                "BENCH_serving.json results table verbatim — regenerate "
                "it with `repro-loadgen --table BENCH_serving.json` and "
                "paste it under the serving-bench marker"
            )

    for problem in problems:
        print(f"docs-consistency: FAIL: {problem}", file=sys.stderr)
    if not problems:
        print(
            "docs-consistency: ok — figure1 golden, hot-loop walkthrough, "
            f"and all {len(isa.NAMES)} opcodes match docs/bytecode.md; "
            "policy table matches docs/performance.md; serving bench "
            "table matches docs/serving.md"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI server smoke: the serving layer returns exactly what repro-run does.

Boots a ``repro-serve`` subprocess with a worker fleet and a disk compile
cache, then:

1. **Golden equivalence** — submits all 28 registry programs concurrently
   through :class:`repro.server.client.ServerClient` and asserts each
   response's value, stdout, and ``RunStats`` are bit-identical to a
   sequential in-process run (the same code path as ``repro-run``).
2. **Cache warmth** — submits a second wave of the same programs and
   asserts every response was served from a cache layer and that the
   ``/v1/stats`` fleet counters show a non-zero hit rate.

Exit codes: 0 ok, 1 any mismatch or cache-cold second wave, 2 the server
failed to boot.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.registry import BENCHMARKS, benchmark_source  # noqa: E402
from repro.pipeline import compile_program  # noqa: E402
from repro.runtime.values import show_value  # noqa: E402
from repro.server.client import ServerClient, ServerUnavailable  # noqa: E402


def sequential_reference(names: list[str], backend: str) -> dict[str, dict]:
    reference = {}
    for name in names:
        result = compile_program(benchmark_source(name)).run(backend=backend)
        reference[name] = {
            "value": show_value(result.value),
            "stdout": result.output,
            "stats": result.stats.to_dict(),
        }
    return reference


def submit_wave(client: ServerClient, names: list[str], backend: str,
                jobs: int) -> dict[str, dict]:
    with concurrent.futures.ThreadPoolExecutor(jobs) as pool:
        futures = {
            name: pool.submit(client.run, benchmark_source(name), backend=backend)
            for name in names
        }
        return {name: future.result() for name, future in futures.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8753)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--backend", default="closure",
                        choices=("closure", "tree"))
    parser.add_argument("--programs", default=None,
                        help="comma-separated subset (default: all 28)")
    args = parser.parse_args(argv)

    names = sorted(BENCHMARKS)
    if args.programs:
        names = [n.strip() for n in args.programs.split(",")]
        unknown = [n for n in names if n not in BENCHMARKS]
        if unknown:
            print(f"unknown programs: {unknown}", file=sys.stderr)
            return 2

    cache_dir = tempfile.mkdtemp(prefix="repro-server-smoke-")
    serve = shutil.which("repro-serve")
    command = ([serve] if serve
               else [sys.executable, "-m", "repro.server.app"])
    command += ["--port", str(args.port), "--workers", str(args.workers),
                "--cache-dir", cache_dir]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    server = subprocess.Popen(command, env=env)
    client = ServerClient(f"http://127.0.0.1:{args.port}", timeout=600)
    failures: list[str] = []
    try:
        try:
            client.wait_ready(timeout=60)
        except ServerUnavailable as exc:
            print(f"server failed to boot: {exc}", file=sys.stderr)
            return 2

        print(f"computing sequential reference for {len(names)} programs ...")
        reference = sequential_reference(names, args.backend)

        print(f"wave 1: {len(names)} concurrent submissions ...")
        for name, resp in submit_wave(client, names, args.backend, 8).items():
            if resp["status"] != "ok":
                failures.append(f"{name}: status={resp['status']} "
                                f"error={resp.get('error')}")
                continue
            for field in ("value", "stdout", "stats"):
                if resp[field] != reference[name][field]:
                    failures.append(
                        f"{name}: {field} mismatch\n"
                        f"  server: {resp[field]!r}\n"
                        f"  local:  {reference[name][field]!r}")

        print("wave 2: same programs again (must be cache-served) ...")
        cold = [
            name for name, resp in
            submit_wave(client, names, args.backend, 8).items()
            if resp["status"] != "ok"
            or not (resp["cache"]["memory_hit"] or resp["cache"]["disk_hit"])
        ]
        if cold:
            failures.append(f"second wave missed every cache layer for: {cold}")

        fleet = client.stats()
        hit_rate = fleet["metrics"]["cache"]["hit_rate"]
        print(f"fleet: {fleet['metrics']['jobs']} cache_hit_rate={hit_rate:.2f}")
        if not hit_rate > 0:
            failures.append(f"fleet cache hit rate is {hit_rate}, expected > 0")
    finally:
        server.terminate()
        server.wait(timeout=30)

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"server smoke OK: {len(names)} programs bit-identical, cache warm")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI verify-matrix smoke: the independent verifier and the sanitizer
hold across the whole Figure 9 suite.

Two checks:

1. **Verifier matrix** — every benchmark, compiled under ``rg`` in both
   spurious modes, must pass ``repro-verify`` (the independent
   re-derivation of the paper's judgments); the same source compiled
   under ``rg-`` must *agree with the Figure 4 checker* — rejected by
   both or accepted by both — so the two static judges can never drift
   apart silently.

2. **Sanitizer transparency** — every benchmark runs with
   ``sanitize=True`` on both backends and the observation (value,
   stdout, RunStats, event trace) must be bit-identical to the
   un-sanitized run.

Exit codes: 0 ok, 1 check failed, 2 usage problems.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import verify_term  # noqa: E402
from repro.bench.registry import BENCHMARKS, benchmark_source  # noqa: E402
from repro.config import CompilerFlags, SpuriousMode, Strategy  # noqa: E402
from repro.core.errors import ReproError  # noqa: E402
from repro.pipeline import compile_program  # noqa: E402
from repro.runtime.trace import EventBus, RecordingSink  # noqa: E402
from repro.runtime.values import show_value  # noqa: E402


def check_verifier(names: list[str]) -> list[str]:
    problems: list[str] = []
    for name in names:
        source = benchmark_source(name)
        for mode in SpuriousMode:
            flags = CompilerFlags(strategy=Strategy.RG, spurious_mode=mode)
            report = verify_term(compile_program(source, flags=flags).term)
            if not report.ok:
                problems.append(
                    f"{name}/rg/{mode.value}: {report.summary()}"
                )
        minus = compile_program(source, strategy=Strategy.RG_MINUS)
        verdict = verify_term(minus.term)
        if verdict.ok != (minus.verification_error is None):
            problems.append(
                f"{name}/rg-: verifier ({'ok' if verdict.ok else verdict.rules}) "
                f"disagrees with checker ({minus.verification_error})"
            )
    return problems


def _observe(prog, backend: str, sanitize: bool):
    sink = RecordingSink()
    try:
        result = prog.run(
            backend=backend, sanitize=sanitize, tracer=EventBus(sink)
        )
    except ReproError as exc:
        return ("exc", type(exc).__name__, str(exc)), sink.events
    return (
        "ok",
        show_value(result.value),
        result.output,
        sorted(result.stats.to_dict().items()),
    ), sink.events


def check_sanitizer(names: list[str]) -> list[str]:
    problems: list[str] = []
    for name in names:
        prog = compile_program(benchmark_source(name), strategy=Strategy.RG)
        for backend in ("tree", "closure"):
            plain, plain_ev = _observe(prog, backend, sanitize=False)
            san, san_ev = _observe(prog, backend, sanitize=True)
            if san != plain or san_ev != plain_ev:
                problems.append(
                    f"{name}/{backend}: sanitize changed the observation"
                )
            elif plain[0] != "ok":
                problems.append(f"{name}/{backend}: golden run faulted {plain}")
            elif plain[1] != BENCHMARKS[name].expected:
                problems.append(
                    f"{name}/{backend}: got {plain[1]!r}, "
                    f"expected {BENCHMARKS[name].expected!r}"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--programs",
        default="all",
        help="comma-separated benchmark names (default: all 28)",
    )
    args = parser.parse_args(argv)
    if args.programs == "all":
        names = sorted(BENCHMARKS)
    else:
        names = [n.strip() for n in args.programs.split(",") if n.strip()]
        unknown = [n for n in names if n not in BENCHMARKS]
        if unknown:
            print(f"unknown benchmarks: {unknown}", file=sys.stderr)
            return 2

    problems = check_verifier(names)
    print(f"verifier matrix: {len(names)} programs x 2 modes (+ rg- agreement)"
          f" — {'OK' if not problems else 'FAIL'}")
    san_problems = check_sanitizer(names)
    print(f"sanitizer transparency: {len(names)} programs x 2 backends"
          f" — {'OK' if not san_problems else 'FAIL'}")
    for p in problems + san_problems:
        print(f"  {p}", file=sys.stderr)
    return 1 if problems or san_problems else 0


if __name__ == "__main__":
    raise SystemExit(main())

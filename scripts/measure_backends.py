#!/usr/bin/env python
"""Print the closure-vs-tree backend comparison table for
docs/performance.md: Figure 9 suite under ``rg``, best-of-N wall seconds
per backend, speedup ratio, and the geometric mean."""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.registry import BENCHMARKS, benchmark_source  # noqa: E402
from repro.config import Strategy  # noqa: E402
from repro.pipeline import compile_program  # noqa: E402


def best_of(prog, backend: str, repeat: int) -> float:
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        prog.run(backend=backend)
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--programs", default=None,
                        help="comma-separated subset (default: all 23)")
    args = parser.parse_args(argv)
    names = args.programs.split(",") if args.programs else sorted(BENCHMARKS)

    print("| program | tree (s) | closure (s) | speedup |")
    print("|---|---|---|---|")
    ratios = []
    for name in names:
        prog = compile_program(benchmark_source(name), strategy=Strategy.RG)
        prog.run()  # warm both: closure-compile + any OS caches
        tree = best_of(prog, "tree", args.repeat)
        closure = best_of(prog, "closure", args.repeat)
        ratio = tree / closure
        ratios.append(ratio)
        print(f"| {name} | {tree:.3f} | {closure:.3f} | {ratio:.2f}x |")
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    print(f"| **geomean** | | | **{geomean:.2f}x** |")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

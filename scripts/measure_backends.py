#!/usr/bin/env python
"""Print the backend comparison table for docs/performance.md: Figure 9
suite under ``rg``, best-of-N wall seconds per backend (tree walker,
closure compiler, bytecode VM), the speedup ratios, and their geometric
means.  Each program is run once per backend before timing so the
closure compile and the bytecode specializer are warm — the table
measures steady-state interpretation, not tiering."""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.registry import BENCHMARKS, benchmark_source  # noqa: E402
from repro.config import Strategy  # noqa: E402
from repro.pipeline import compile_program  # noqa: E402

BACKENDS = ("tree", "closure", "bytecode")


def best_of(prog, repeat: int) -> dict:
    """Best-of-``repeat`` wall seconds per backend, timed runs
    interleaved round-robin across backends so a transient host load
    spike degrades every backend's sample pool equally instead of
    skewing one side of a ratio."""
    best = {b: math.inf for b in BACKENDS}
    for _ in range(repeat):
        for backend in BACKENDS:
            start = time.perf_counter()
            prog.run(backend=backend)
            best[backend] = min(best[backend], time.perf_counter() - start)
    return best


def geomean(ratios: list) -> float:
    return math.exp(sum(map(math.log, ratios)) / len(ratios))


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--programs", default=None,
                        help="comma-separated subset (default: all 28)")
    args = parser.parse_args(argv)
    names = args.programs.split(",") if args.programs else sorted(BENCHMARKS)

    print("| program | tree (s) | closure (s) | bytecode (s) "
          "| closure vs tree | bytecode vs closure |")
    print("|---|---|---|---|---|---|")
    closure_ratios, bytecode_ratios = [], []
    for name in names:
        prog = compile_program(benchmark_source(name), strategy=Strategy.RG)
        for backend in BACKENDS:
            prog.run(backend=backend)  # warm: compile, specialize, OS caches
        seconds = best_of(prog, args.repeat)
        cvt = seconds["tree"] / seconds["closure"]
        bvc = seconds["closure"] / seconds["bytecode"]
        closure_ratios.append(cvt)
        bytecode_ratios.append(bvc)
        print(f"| {name} | {seconds['tree']:.3f} | {seconds['closure']:.3f} "
              f"| {seconds['bytecode']:.3f} | {cvt:.2f}x | {bvc:.2f}x |")
    print(f"| **geomean** | | | | **{geomean(closure_ratios):.2f}x** "
          f"| **{geomean(bytecode_ratios):.2f}x** |")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Section 4.4: type variables in exception types.

A local ``exception E of 'a`` lets a constructed value escape the scope
of the function that created it (by being raised).  The paper treats such
type variables as spurious and pins them to a *top-level* effect variable,
forcing every region in the instantiated payload type to be global — so a
collection running while the exception value is in flight (or parked in a
handler) never meets a dangling pointer.

Run:  python examples/exception_escape.py
"""

from repro import Strategy, compile_program
from repro.runtime.values import show_value

FIND = """
(* first-match search that returns early by raising the hit *)
fun find (p : 'a -> bool) (xs : 'a list) =
  let exception Found of 'a
      fun go ys = if null ys then nil
                  else if p (hd ys) then raise Found (hd ys)
                  else go (tl ys)
  in go xs handle Found v => v :: nil end

fun work n = if n = 0 then nil else n :: work (n - 1)

val words = ["a", "bb", "ccc", "dddd"]
val hit = find (fn s => size s > 2) words
val _ = work 100            (* collections while `hit` holds the payload *)
val it = hd hit
"""


def main() -> None:
    print(__doc__)
    prog = compile_program(FIND, strategy=Strategy.RG)
    print(f"verified: {prog.verification_error is None}")
    result = prog.run(gc_every_alloc=True)
    print(f"result: {show_value(result.value)}")
    print(f"collections survived: {result.stats.gc_count}")
    print()
    print("The payload type's regions were pinned to the global region by")
    print("region inference, so the raised string is never region-deallocated")
    print("while reachable — Section 4.4's guarantee.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's Figure 1 soundness bug, live.

The program composes two functions with ``o``, capturing a *dead* string
in the resulting closure.  Region inference without spurious-type-variable
tracking (the ``rg-`` strategy — the state of the art before this paper)
deallocates the string's region while the closure is still live; the next
reference-tracing collection stumbles over the dangling pointer.  The
paper's system (``rg``) forces the region into the closure's visible
arrow effect via the coverage requirement, so the region survives.

Run:  python examples/gc_safety_bug.py
"""

from repro import DanglingPointerError, Strategy, compile_program

FIGURE_1 = """
fun work n = if n = 0 then nil else n :: work (n - 1)

fun run () =
  let val h : unit -> unit =
        (op o) (let val x = "oh" ^ "no"
                in (fn x => (), fn () => x)
                end)
      val _ = work 200     (* trigger gc *)
  in h ()
  end

val it = run ()
"""


def show_annotation(strategy: Strategy) -> None:
    prog = compile_program(FIGURE_1, strategy=strategy)
    print(f"--- region annotation under {strategy.value} (tail) ---")
    print("\n".join(prog.pretty(schemes=False).splitlines()[-28:]))
    if prog.verification_error is not None:
        print(f"\n[static] the Figure 4 type checker REJECTS this program:")
        print(f"         {prog.verification_error}")
    else:
        print("\n[static] the Figure 4 type checker accepts this program.")
    print()


def run_with_gc(strategy: Strategy) -> None:
    prog = compile_program(FIGURE_1, strategy=strategy)
    try:
        result = prog.run(gc_every_alloc=True)
        print(
            f"[{strategy.value:3s}] ran to completion "
            f"({result.stats.gc_count} collections, "
            f"peak {result.stats.peak_words} words)"
        )
    except DanglingPointerError as exc:
        print(f"[{strategy.value:3s}] COLLECTOR CRASHED: {exc}")


def main() -> None:
    print(__doc__)
    show_annotation(Strategy.RG)
    show_annotation(Strategy.RG_MINUS)

    print("=== running with a collection at every allocation ===")
    for strategy in (Strategy.RG, Strategy.RG_MINUS, Strategy.R):
        run_with_gc(strategy)
    print()
    print(
        "rg  : sound — the string's region is kept alive through the\n"
        "      spurious type variable's arrow effect (Figure 2(b)).\n"
        "rg- : unsound — the region is deallocated early (Figure 2(a));\n"
        "      the collector meets a dangling pointer and dies.\n"
        "r   : regions only, no collector — the dangling pointer is never\n"
        "      traced, so nothing goes wrong (Section 2)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Spurious type variables and their transitive tracking (Sections 2 and
4.3 of the paper).

Shows:
 1. the region type scheme inferred for the composition function ``o`` —
    compare with the paper's type scheme (2): the spurious ``'c`` carries
    a secondary arrow effect that appears in the result arrow's latent
    effect;
 2. Figure 8's function ``g``, whose own ``'a`` becomes spurious only
    *transitively*, by being instantiated for ``o``'s spurious variable;
 3. the Section 4.2 List.app story: algorithm W over-generalizes ``app``
    making it spurious, and the recommended type constraint fixes it.

Run:  python examples/spurious_tracking.py
"""

from repro import CompilerFlags, SpuriousMode, Strategy, compile_program
from repro.core import terms as T
from repro.core.rtypes import show_pi


def scheme_of(prog, name):
    found = []

    def walk(t):
        if isinstance(t, T.FunDef):
            if t.fname == name:
                found.append(t.pi)
            walk(t.body)
            return
        for child in T.iter_children(t):
            walk(child)

    walk(prog.term)
    return found[0] if found else None


FIG8 = """
fun g (f : unit -> 'a) : unit -> unit =
  op o (let val x = f ()
        in (fn x => (), fn () => x)
        end)
val h = g (fn () => "oh" ^ "no")
val it = h ()
"""

APP_VARIANTS = """
fun appU f =
  let fun loop xs = if null xs then () else (f (hd xs); loop (tl xs))
  in loop end
fun appC (f : 'a -> unit) =
  let fun loop xs = if null xs then () else (f (hd xs); loop (tl xs))
  in loop end
val _ = appU (fn x => ()) [1, 2, 3]
val _ = appC (fn x => ()) [4, 5]
val it = 0
"""


def main() -> None:
    print(__doc__)

    print("=== 1. the region type scheme for `o` ===")
    for mode in SpuriousMode:
        flags = CompilerFlags(spurious_mode=mode)
        prog = compile_program("val it = 0", flags=flags)
        pi = scheme_of(prog, "o")
        print(f"[{mode.value:9s}] o : {show_pi(pi)}")
    print()
    print("(secondary = the paper's scheme (2): a fresh effect variable per")
    print(" spurious type variable; identify = scheme (3): shared with the")
    print(" result arrow effect.)")
    print()

    print("=== 2. transitive spuriousness (Figure 8) ===")
    prog = compile_program(FIG8, strategy=Strategy.RG)
    print(f"spurious functions: {sorted(prog.spurious.spurious_function_names)}")
    pi = scheme_of(prog, "g")
    print(f"g : {show_pi(pi)}")
    print("('a is spurious for g although it never occurs in a captured")
    print(" variable's type inside g — it is instantiated for o's spurious")
    print(" variable, so the dependency is tracked through g's scheme.)")
    print()

    print("=== 3. List.app (Section 4.2) ===")
    prog = compile_program(APP_VARIANTS, strategy=Strategy.RG)
    names = prog.spurious.spurious_function_names
    print(f"appU (plain algorithm W) spurious: {'appU' in names}")
    print(f"appC (f : 'a -> unit)    spurious: {'appC' in names}")
    print()
    print(
        f"totals: {prog.spurious.spurious_functions} spurious of "
        f"{prog.spurious.total_functions} functions; "
        f"{prog.spurious.spurious_boxed_instantiations} boxed instantiations "
        f"of spurious type variables out of "
        f"{prog.spurious.total_tyvar_instantiations} tracked instantiations"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Observability: tracing the region heap and profiling letregion sites.

Two tools layered on the same event bus (`repro.runtime.trace`):

* the **JSONL trace** — every allocation, region push/pop, and
  collection as one JSON object per line, for offline analysis
  (`repro-run prog.mml --trace trace.jsonl` from the command line);
* the **region profiler** — per-letregion-site high-water words,
  lifetimes, and finite/infinite classification cross-referenced with
  the multiplicity analysis (`repro-run prog.mml --profile`), the
  analogue of an MLKit region profile.

This example runs a region-friendly loop with both attached, prints the
first few trace events, and then the profile report.  See
docs/observability.md for the event schema and for tracing the paper's
Figure 1 soundness bug.

Run:  python examples/trace_and_profile.py
"""

import json

from repro import Strategy, compile_program
from repro.runtime.profiler import RegionProfiler
from repro.runtime.trace import EventBus, RecordingSink

PROGRAM = """
fun iter n =
  if n = 0 then 0
  else let val tmp = tabulate (30, fn i => i * n)   (* dies each round *)
       in (foldl (fn (a, b) => a + b) 0 tmp + iter (n - 1)) mod 1000
       end
val it = iter 40
"""


def main() -> None:
    print(__doc__)
    prog = compile_program(PROGRAM, strategy=Strategy.RG)

    recorder = RecordingSink()
    profiler = RegionProfiler()
    bus = EventBus(recorder, profiler)
    result = prog.run(tracer=bus, initial_threshold=512)
    bus.close()

    print(f"=== result: {result.value}; {len(recorder.events)} events ===\n")
    print("--- first 10 trace events (JSONL) ---")
    for event in recorder.events[:10]:
        print(json.dumps(event))
    print("...\n")

    gcs = [e for e in recorder.events if e["ev"] == "gc_end"]
    if gcs:
        e = gcs[0]
        print(
            f"--- first collection: {e['kind']} at step {e['step']}, "
            f"{e['from_words']} -> {e['to_words']} words, "
            f"{e['copied']} objects copied ---\n"
        )

    print(profiler.report(top=10))
    print(
        "\nReading the profile: the short-lived per-iteration sites show many\n"
        "instances with small high-water marks and short lifetimes (the\n"
        "region stack reclaims them without the collector's help), while\n"
        "long-lived sites accumulate words the collector must evacuate —\n"
        "the per-site view behind Figure 9's rss and gc# columns."
    )


if __name__ == "__main__":
    main()

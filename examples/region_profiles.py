#!/usr/bin/env python3
"""Region/GC memory profiles: how the strategies differ on workloads with
different memory behaviours (the qualitative story behind Figure 9's rss
and gc# columns).

Three workloads:

* *region-friendly*: a loop whose per-iteration garbage sits in regions
  that are deallocated on every iteration — regions alone reclaim
  everything; the collector has little to do;
* *gc-essential*: a long-lived structure is repeatedly rebuilt so the
  garbage's lifetime is dynamic — region inference must keep one region
  alive and only the collector can reclaim within it (the paper's
  barnes-hut/logic/zebra pattern);
* *stack-only*: pure arithmetic recursion (the fib/tak pattern) — almost
  no heap at all.

Run:  python examples/region_profiles.py
"""

from repro import Strategy, compile_program

REGION_FRIENDLY = """
fun iter n =
  if n = 0 then 0
  else let val tmp = tabulate (50, fn i => i * n)   (* dies each round *)
       in (foldl (fn (a, b) => a + b) 0 tmp + iter (n - 1)) mod 1000
       end
val it = iter 60
"""

GC_ESSENTIAL = """
fun rebuild (xs, n) =
  if n = 0 then xs
  else rebuild (map (fn x => x + 1) xs, n - 1)   (* old list becomes garbage
                                                    inside a live region *)
val it = hd (rebuild (tabulate (60, fn i => i), 60))
"""

STACK_ONLY = """
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
val it = fib 17
"""

WORKLOADS = [
    ("region-friendly", REGION_FRIENDLY),
    ("gc-essential", GC_ESSENTIAL),
    ("stack-only", STACK_ONLY),
]


def main() -> None:
    print(__doc__)
    for name, src in WORKLOADS:
        print(f"=== {name} ===")
        header = (
            f"{'strategy':9s} {'peak words':>10s} {'alloc words':>11s} "
            f"{'gc #':>5s} {'reclaimed':>10s} {'letregions':>10s}"
        )
        print(header)
        for strategy in (Strategy.R, Strategy.RG, Strategy.ML):
            prog = compile_program(src, strategy=strategy)
            res = prog.run(initial_threshold=512)
            s = res.stats
            print(
                f"{strategy.value:9s} {s.peak_words:>10d} {s.allocated_words:>11d} "
                f"{s.gc_count:>5d} {s.gc_reclaimed_words:>10d} {s.letregions:>10d}"
            )
        print()
    print(
        "Reading the table: on the region-friendly workload `r` matches `rg`\n"
        "without any collections (the paper's msort/fib pattern); on the\n"
        "gc-essential workload `r` retains far more than `rg` (the paper's\n"
        "barnes-hut/logic/zebra rows, where reference tracing is essential);\n"
        "the `ml` column shows a conventional collector doing all the work."
    )


if __name__ == "__main__":
    main()

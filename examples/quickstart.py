#!/usr/bin/env python3
"""Quickstart: compile a MiniML program with GC-safe region inference,
inspect the region-annotated output, and run it on the region abstract
machine under each of the paper's compilation strategies.

Run:  python examples/quickstart.py
"""

from repro import CompilerFlags, Strategy, compile_program
from repro.runtime.values import show_value

SOURCE = """
(* Build a list of squares, sum it, and format the result. *)
fun sq x = x * x
fun sum xs = foldl (fn (a, b) => a + b) 0 xs
val squares = map sq (tabulate (10, fn i => i + 1))
val total = sum squares
val it = "sum of squares = " ^ itos total
"""


def main() -> None:
    print("=== source ===")
    print(SOURCE)

    # Compile under the paper's sound strategy: region inference with
    # spurious-type-variable tracking, combined with a tracing collector.
    prog = compile_program(SOURCE, strategy=Strategy.RG)

    print("=== region-annotated program (excerpt) ===")
    # The prelude is large; show the part for the user program by taking
    # the tail of the pretty-printed output.
    pretty = prog.pretty(schemes=True)
    print("\n".join(pretty.splitlines()[-40:]))
    print()

    print("=== static reports ===")
    print(f"verified against the Figure 4 rules: {prog.verification_error is None}")
    print(
        f"spurious functions: {prog.spurious.spurious_functions}"
        f"/{prog.spurious.total_functions} "
        f"({', '.join(prog.spurious.spurious_function_names)})"
    )
    print(f"multiplicity: {prog.multiplicity.summary()}")
    print(f"drop-regions: {prog.drop_regions.summary()}")
    print()

    print("=== execution under each strategy ===")
    header = f"{'strategy':9s} {'value':28s} {'peak words':>10s} {'gc #':>5s} {'letregions':>10s}"
    print(header)
    print("-" * len(header))
    for strategy in Strategy:
        compiled = compile_program(SOURCE, strategy=strategy)
        result = compiled.run()
        print(
            f"{strategy.value:9s} {show_value(result.value):28s} "
            f"{result.stats.peak_words:>10d} {result.stats.gc_count:>5d} "
            f"{result.stats.letregions:>10d}"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A larger MiniML program: an arithmetic-expression interpreter written
with algebraic datatypes, compiled with GC-safe region inference and run
under the paper's strategies.

Datatypes use the MLKit-style *uniform representation*: each expression
tree lives in a single region, so dead trees are reclaimed either by the
region stack (when their region dies) or by the collector (when garbage
accumulates inside a live region) — both visible in the statistics below.

Run:  python examples/calculator.py
"""

from repro import Strategy, compile_program
from repro.runtime.values import show_value

CALCULATOR = """
datatype expr =
    Num of int
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr

fun eval e =
  case e of
    Num n => n
  | Add p => eval (#1 p) + eval (#2 p)
  | Sub p => eval (#1 p) - eval (#2 p)
  | Mul p => eval (#1 p) * eval (#2 p)
  | Neg e2 => 0 - eval e2

(* constant folding: rebuild the tree, folding constant subtrees *)
fun fold e =
  case e of
    Num n => Num n
  | Neg e2 =>
      (case fold e2 of
         Num n => Num (0 - n)
       | other => Neg other)
  | Add p =>
      (case (fold (#1 p), fold (#2 p)) of
         q => (case #1 q of
                 Num a => (case #2 q of
                             Num b => Num (a + b)
                           | r => Add (Num a, r))
               | l => Add (l, #2 q)))
  | Sub p => Sub (fold (#1 p), fold (#2 p))
  | Mul p => Mul (fold (#1 p), fold (#2 p))

(* build a big expression: sum of i * (i+1) for i in 1..n, as a tree *)
fun build n =
  if n = 0 then Num 0
  else Add (Mul (Num n, Num (n + 1)), build (n - 1))

fun size e =
  case e of
    Num n => 1
  | Add p => 1 + size (#1 p) + size (#2 p)
  | Sub p => 1 + size (#1 p) + size (#2 p)
  | Mul p => 1 + size (#1 p) + size (#2 p)
  | Neg e2 => 1 + size e2

(* evaluate many trees; each round's trees die with their region *)
fun rounds k =
  if k = 0 then 0
  else
    let val e = build 40
        val folded = fold e
    in (eval folded - eval e) + rounds (k - 1) end

val sanity = rounds 10          (* must be 0: folding preserves meaning *)
val tree = build 60
val it = (eval tree, size (fold tree))
"""


def main() -> None:
    print(__doc__)
    for strategy in (Strategy.RG, Strategy.R, Strategy.ML):
        prog = compile_program(CALCULATOR, strategy=strategy)
        result = prog.run(initial_threshold=2048)
        s = result.stats
        print(
            f"[{strategy.value:3s}] it = {show_value(result.value):16s} "
            f"peak={s.peak_words:>6d}w alloc={s.allocated_words:>7d}w "
            f"gc={s.gc_count:>3d} letregions={s.letregions}"
        )
    print()
    prog = compile_program(CALCULATOR, strategy=Strategy.RG)
    print(f"region verification: {'ok' if prog.verification_error is None else 'FAILED'}")
    print(f"multiplicity: {prog.multiplicity.summary()}")
    print(f"drop-regions: {prog.drop_regions.summary()}")


if __name__ == "__main__":
    main()

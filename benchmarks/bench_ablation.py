"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. spurious-mode: secondary effect variables (paper scheme (2)) vs
   identifying the effect variable with the function's arrow effect
   (scheme (3)) — Section 5 discusses both as implementation choices;
2. type minimization on/off (Section 4.2) — its effect on the number of
   spurious functions;
3. multiplicity analysis on/off — finite (stack) regions vs everything
   infinite;
4. plain vs generational collection (the Elsman-Hallenberg [16,17]
   integration);
5. heap-to-live ratio sweep — collections vs peak memory.
"""

import pytest

from repro import CompilerFlags, SpuriousMode, Strategy, compile_program
from repro.bench.registry import BENCHMARKS, benchmark_source
from repro.runtime.values import show_value

SUBJECT = "msort"          # region-friendly, allocation-heavy
GC_SUBJECT = "logic"       # gc-essential


@pytest.mark.parametrize("mode", list(SpuriousMode), ids=lambda m: m.value)
def test_ablation_spurious_mode(benchmark, mode):
    flags = CompilerFlags(spurious_mode=mode, strategy=Strategy.RG)
    prog = compile_program(benchmark_source(SUBJECT), flags=flags)
    assert prog.verification_error is None
    result = benchmark.pedantic(prog.run, rounds=2, iterations=1, warmup_rounds=0)
    assert show_value(result.value) == BENCHMARKS[SUBJECT].expected
    benchmark.extra_info["peak_words"] = result.stats.peak_words


@pytest.mark.parametrize("minimize", [True, False], ids=["minimize", "no-minimize"])
def test_ablation_type_minimization(benchmark, minimize):
    flags = CompilerFlags(minimize_types=minimize, strategy=Strategy.RG)
    src = benchmark_source("simple")

    def compile_and_run():
        prog = compile_program(src, flags=flags)
        return prog, prog.run()

    prog, result = benchmark.pedantic(
        compile_and_run, rounds=2, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["spurious_fcns"] = prog.spurious.spurious_functions
    assert show_value(result.value) == BENCHMARKS["simple"].expected


@pytest.mark.parametrize("multiplicity", [True, False], ids=["finite-regions", "all-infinite"])
def test_ablation_multiplicity(benchmark, multiplicity):
    flags = CompilerFlags(multiplicity=multiplicity, strategy=Strategy.RG)
    prog = compile_program(benchmark_source(SUBJECT), flags=flags)
    result = benchmark.pedantic(prog.run, rounds=2, iterations=1, warmup_rounds=0)
    assert show_value(result.value) == BENCHMARKS[SUBJECT].expected
    benchmark.extra_info["finite_allocations"] = result.stats.finite_allocations
    benchmark.extra_info["peak_words"] = result.stats.peak_words


@pytest.mark.parametrize("generational", [False, True], ids=["plain", "generational"])
def test_ablation_generational(benchmark, compiled, generational):
    prog = compiled(GC_SUBJECT, Strategy.RG)

    def run():
        return prog.run(generational=generational, initial_threshold=1024)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert show_value(result.value) == BENCHMARKS[GC_SUBJECT].expected
    benchmark.extra_info["major"] = result.stats.gc_count
    benchmark.extra_info["minor"] = result.stats.gc_minor_count


@pytest.mark.parametrize("ratio", [1.5, 3.0, 6.0], ids=["h2l=1.5", "h2l=3", "h2l=6"])
def test_ablation_heap_to_live(benchmark, compiled, ratio):
    prog = compiled(GC_SUBJECT, Strategy.RG)

    def run():
        return prog.run(heap_to_live=ratio, initial_threshold=512)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["gc_count"] = result.stats.gc_count
    benchmark.extra_info["peak_words"] = result.stats.peak_words


def test_ablation_drop_regions(benchmark, compiled):
    """Region-parameter dropping is a pure runtime optimization: count the
    skipped passes on a call-heavy program."""
    prog = compiled("msort", Strategy.RG)
    result = benchmark.pedantic(prog.run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["dropped_passes"] = result.stats.dropped_region_passes
    assert result.stats.dropped_region_passes > 0

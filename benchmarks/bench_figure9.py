"""Figure 9 regenerated as a pytest-benchmark suite.

``pytest benchmarks/bench_figure9.py --benchmark-only`` times every
benchmark program under the paper's ``rg`` strategy (the headline
column), with each benchmark's ``extra_info`` carrying the remaining
Figure 9 columns: peak heap words (the rss analogue), gc count,
letregions, allocation counts, and the static spurious-function counts.

The strategy-comparison columns (rg vs rg- vs r vs ml) are timed on a
representative subset — running all four strategies on all 23 programs
belongs to the standalone driver: ``python -m repro.bench.figure9``.
Every timed run's output is asserted against the registry oracle.
"""

import pytest

from repro import Strategy
from repro.bench.registry import BENCHMARKS
from repro.runtime.values import show_value

ALL_PROGRAMS = sorted(BENCHMARKS)

#: Programs covering the paper's behaviour classes: stack-only (fib),
#: region-friendly sorting (msort), GC-essential (zebra, logic), and the
#: spurious-heavy float program (simple).
REPRESENTATIVE = ["fib", "msort", "zebra", "logic", "simple"]

STRATEGIES = [Strategy.RG, Strategy.RG_MINUS, Strategy.R, Strategy.ML]


@pytest.mark.parametrize("name", ALL_PROGRAMS)
def test_figure9_rg(benchmark, compiled, name):
    """The rg column: region inference + tracing GC (the paper's system)."""
    prog = compiled(name, Strategy.RG)
    result = benchmark.pedantic(prog.run, rounds=2, iterations=1, warmup_rounds=0)
    assert show_value(result.value) == BENCHMARKS[name].expected
    s = result.stats
    benchmark.extra_info.update(
        {
            "peak_words": s.peak_words,
            "gc_count": s.gc_count,
            "letregions": s.letregions,
            "allocations": s.allocations,
            "steps": s.steps,
            "spurious_fcns": prog.spurious.spurious_functions,
            "total_fcns": prog.spurious.total_functions,
            "verified": prog.verification_error is None,
        }
    )
    assert prog.verification_error is None  # rg must always verify


@pytest.mark.parametrize("name", REPRESENTATIVE)
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
def test_figure9_strategies(benchmark, compiled, name, strategy):
    """The per-strategy time columns on the representative subset."""
    prog = compiled(name, strategy)
    result = benchmark.pedantic(prog.run, rounds=2, iterations=1, warmup_rounds=0)
    assert show_value(result.value) == BENCHMARKS[name].expected
    benchmark.extra_info.update(
        {
            "peak_words": result.stats.peak_words,
            "gc_count": result.stats.gc_count,
        }
    )

"""Shared fixtures for the benchmark suite: compile each program once per
session and strategy."""

import pytest

from repro import CompilerFlags, Strategy, compile_program
from repro.bench.registry import BENCHMARKS, benchmark_source

_cache: dict = {}


@pytest.fixture(scope="session")
def compiled():
    """compiled(name, strategy) -> CompiledProgram, memoized."""

    def get(name: str, strategy: Strategy):
        key = (name, strategy)
        if key not in _cache:
            _cache[key] = compile_program(
                benchmark_source(name), strategy=strategy
            )
        return _cache[key]

    return get

"""Benchmarks for the paper's in-text figures: the Figure 1/2 soundness
program and the Figure 8 transitive-spuriousness program.

These time the *sound* execution under ``rg`` with a collection at every
allocation (the harshest schedule) and assert the headline behaviours:
``rg`` survives, ``rg-`` crashes with a dangling pointer, ``r``
tolerates the dangling pointer because nothing traces it.
"""

import pytest

from repro import DanglingPointerError, Strategy, compile_program

FIGURE_1 = """
fun work n = if n = 0 then nil else n :: work (n - 1)
fun run () =
  let val h : unit -> unit =
        (op o) (let val x = "oh" ^ "no"
                in (fn x => (), fn () => x)
                end)
      val _ = work 200     (* trigger gc *)
  in h ()
  end
val it = run ()
"""

FIGURE_8 = """
fun g (f : unit -> 'a) : unit -> unit =
  op o (let val x = f ()
        in (fn x => (), fn () => x)
        end)
fun work n = if n = 0 then nil else n :: work (n - 1)
val h = g (fn () => "oh" ^ "no")
val _ = work 200
val it = h ()
"""


@pytest.mark.parametrize("figure,src", [("fig1", FIGURE_1), ("fig8", FIGURE_8)])
def test_figures_rg_survives_gc_every_alloc(benchmark, figure, src):
    prog = compile_program(src, strategy=Strategy.RG)
    assert prog.verification_error is None

    def run():
        return prog.run(gc_every_alloc=True)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["gc_count"] = result.stats.gc_count
    assert result.stats.gc_count > 0


@pytest.mark.parametrize("figure,src", [("fig1", FIGURE_1), ("fig8", FIGURE_8)])
def test_figures_rg_minus_dangles(benchmark, figure, src):
    """Time-to-crash of the unsound strategy (and assert that it crashes)."""
    prog = compile_program(src, strategy=Strategy.RG_MINUS)
    assert prog.verification_error is not None

    def run():
        try:
            prog.run(gc_every_alloc=True)
        except DanglingPointerError:
            return "dangled"
        return "survived"

    outcome = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert outcome == "dangled"


@pytest.mark.parametrize("figure,src", [("fig1", FIGURE_1), ("fig8", FIGURE_8)])
def test_figures_r_tolerates_dangling(benchmark, figure, src):
    prog = compile_program(src, strategy=Strategy.R)

    def run():
        return prog.run()

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert result.stats.gc_count == 0

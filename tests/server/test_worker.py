"""The job executor, driven in-process (no pool): every failure mode
maps to a structured response with ``repro-run`` exit semantics, the
cache layering reports which level hit, and — the regression this PR
pins — per-request limits are applied to cache-hit runs rather than
baked into cached compilations.
"""

import pytest

from repro.cache import default_cache
from repro.server import worker
from repro.server.protocol import make_request
from repro.testing.faultplan import FaultPlan

FIB = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval it = fib 15"

#: The paper's Figure 1 program: sound under rg, dangles under rg- once
#: a collection runs while the composed closure is live.
FIGURE_1 = """
fun work n = if n = 0 then nil else n :: work (n - 1)

fun run () =
  let val h : unit -> unit =
        (op o) (let val x = "oh" ^ "no"
                in (fn x => (), fn () => x)
                end)
      val _ = work 200
  in h ()
  end

val it = run ()
"""

#: Allocates without bound: the heap limit must cut it off.
HOG = "fun build n = (n, n) :: build (n + 1)\nval it = length (build 0)"


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path):
    """Fresh memory LRU + a throwaway disk cache per test."""
    default_cache().clear()
    worker.init_worker(str(tmp_path / "disk"))
    yield
    worker.init_worker(None)
    default_cache().clear()


class TestHappyPath:
    def test_ok_response_shape(self):
        resp = worker.execute_job(make_request(FIB))
        assert resp["status"] == "ok"
        assert resp["exit_status"] == 0
        assert resp["value"] == "610"
        assert resp["stdout"] == ""
        assert resp["stats"]["steps"] > 0
        assert resp["timing"]["compile_seconds"] > 0
        assert resp["cache"] == {"memory_hit": False, "disk_hit": False,
                                 "fleet_hit": False}

    def test_stdout_travels(self):
        resp = worker.execute_job(make_request('val _ = print "hello"\nval it = 1'))
        assert resp["status"] == "ok"
        assert resp["stdout"] == "hello"

    def test_trace_events_on_request(self):
        resp = worker.execute_job(make_request(FIB, trace=True))
        kinds = {e["ev"] for e in resp["trace"]}
        assert "run_begin" in kinds and "run_end" in kinds

    def test_no_trace_by_default(self):
        resp = worker.execute_job(make_request(FIB))
        assert "trace" not in resp


class TestCacheLayers:
    def test_memory_then_disk_layering(self):
        assert worker.execute_job(make_request(FIB))["cache"] == {
            "memory_hit": False, "disk_hit": False, "fleet_hit": False,
        }
        # Same process: the LRU hits first.
        assert worker.execute_job(make_request(FIB))["cache"]["memory_hit"] is True
        # A "new worker process": fresh LRU, same disk dir.
        default_cache().clear()
        resp = worker.execute_job(make_request(FIB))
        assert resp["cache"] == {"memory_hit": False, "disk_hit": True,
                                 "fleet_hit": False}
        assert resp["value"] == "610"

    def test_cache_false_bypasses_both_layers(self):
        worker.execute_job(make_request(FIB))
        resp = worker.execute_job(make_request(FIB, cache=False))
        # No lookup happened, so the response carries no cache field at
        # all — otherwise the metrics registry would count a lookup and
        # deflate the fleet hit rate for every --no-cache submission.
        assert resp["status"] == "ok"
        assert "cache" not in resp

    def test_results_identical_across_cache_layers(self):
        cold = worker.execute_job(make_request(FIB))
        warm = worker.execute_job(make_request(FIB))
        default_cache().clear()
        disk = worker.execute_job(make_request(FIB))
        for resp in (warm, disk):
            assert resp["value"] == cold["value"]
            assert resp["stdout"] == cold["stdout"]
            assert resp["stats"] == cold["stats"]


class TestStructuredFailures:
    def test_parse_error_exit_1(self):
        resp = worker.execute_job(make_request("val it = "))
        assert resp["status"] == "error" and resp["exit_status"] == 1
        assert resp["error"]["type"] == "ParseError"

    def test_fault_plan_driven_dangle_is_structured(self):
        # The satellite regression: an rg- program whose injected GC
        # schedule crashes the collector must come back as a response,
        # not wedge anything.
        from repro.config import CompilerFlags, Strategy

        resp = worker.execute_job(make_request(
            FIGURE_1,
            flags=CompilerFlags(strategy=Strategy.RG_MINUS),
            fault_plan=FaultPlan.every_nth(1),
        ))
        assert resp["status"] == "error"
        assert resp["exit_status"] == 1
        assert resp["error"]["type"] == "DanglingPointerError"

    def test_heap_limit_exit_2_with_partial_stats(self):
        resp = worker.execute_job(make_request(HOG, max_heap_words=2000))
        assert resp["status"] == "limit" and resp["exit_status"] == 2
        assert resp["error"]["type"] == "HeapLimitError"
        assert resp["stats"]["allocations"] > 0  # partial stats travel

    def test_recursion_overflow_maps_to_limit(self):
        deep = "fun down n = if n = 0 then 0 else 1 + down (n - 1)\nval it = down 1000000"
        resp = worker.execute_job(make_request(deep))
        assert resp["status"] == "limit" and resp["exit_status"] == 2
        assert resp["error"]["type"] == "InterpreterLimit"

    def test_invalid_request_is_structured(self):
        resp = worker.execute_job({"schema": "bogus"})
        assert resp["status"] == "invalid" and resp["exit_status"] == 64


class TestLimitsNeverBakedIntoCache:
    """The satellite: ``max_heap_words``/``deadline_seconds`` are runtime
    flags; a cached compilation (memory or disk) must honour the
    *current* request's limits under the closure backend."""

    def test_heap_limit_applies_on_memory_hit(self):
        assert worker.execute_job(make_request(HOG, max_heap_words=100_000_000,
                                               deadline_seconds=60.0))["status"] == "limit"
        # ^ compiles and caches (the program itself never terminates, so
        #   even a huge bound eventually fires — fine, it is cached now).
        resp = worker.execute_job(make_request(HOG, max_heap_words=2000))
        assert resp["cache"]["memory_hit"] is True
        assert resp["status"] == "limit"
        assert resp["error"]["type"] == "HeapLimitError"
        assert resp["stats"]["peak_words"] <= 4000  # the *small* bound won

    def test_limits_apply_on_disk_hit_and_relax_again(self):
        worker.execute_job(make_request(FIB))  # populate both layers
        default_cache().clear()  # simulate a fresh worker: disk only
        limited = worker.execute_job(make_request(FIB, max_heap_words=1))
        assert limited["cache"]["disk_hit"] is True
        assert limited["status"] == "limit"
        # The cached compilation was not poisoned by the limit: the next
        # (memory-hit) run without limits succeeds.
        relaxed = worker.execute_job(make_request(FIB))
        assert relaxed["cache"]["memory_hit"] is True
        assert relaxed["status"] == "ok" and relaxed["value"] == "610"

    def test_deadline_applies_on_cache_hit(self):
        worker.execute_job(make_request(FIB))
        resp = worker.execute_job(make_request(HOG, deadline_seconds=0.05))
        assert resp["status"] == "limit"
        assert resp["error"]["type"] in ("DeadlineExceeded", "HeapLimitError",
                                         "InterpreterLimit")
        # And an explicitly cached-hit deadline run:
        hit = worker.execute_job(make_request(FIB, deadline_seconds=30.0))
        assert hit["cache"]["memory_hit"] is True and hit["status"] == "ok"

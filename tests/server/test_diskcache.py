"""On-disk compile cache: cross-instance sharing (the warm-restart
property), corruption tolerance, format versioning, and the directory
trust model (entries are pickles — never read ones another local user
could have planted)."""

import os
import pickle

import pytest

from repro.cache import cache_key
from repro.config import CompilerFlags
from repro.pipeline import compile_program
from repro.server.diskcache import (
    FORMAT_VERSION,
    CacheDirectoryError,
    DiskCompileCache,
    _filename,
)

SOURCE = "fun sq x = x * x\nval it = sq 12"


def _compiled():
    return compile_program(SOURCE, cache=False)


class TestRoundTrip:
    def test_put_get_same_instance(self, tmp_path):
        cache = DiskCompileCache(tmp_path)
        key = cache_key(SOURCE, CompilerFlags())
        cache.put(key, _compiled())
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.run().value == 144
        assert cache.snapshot()["hits"] == 1
        assert cache.snapshot()["stores"] == 1

    def test_warm_restart_reads_previous_instance(self, tmp_path):
        key = cache_key(SOURCE, CompilerFlags())
        DiskCompileCache(tmp_path).put(key, _compiled())
        # A fresh instance over the same directory = a server restart.
        reborn = DiskCompileCache(tmp_path)
        loaded = reborn.get(key)
        assert loaded is not None and loaded.run().value == 144

    def test_backend_slot_never_travels(self, tmp_path):
        cache = DiskCompileCache(tmp_path)
        key = cache_key(SOURCE, CompilerFlags())
        program = _compiled()
        program.run(backend="closure")  # builds the process-local closures
        cache.put(key, program)
        loaded = cache.get(key)
        assert loaded._backend.code is None  # re-derived lazily
        assert loaded.run(backend="closure").value == 144

    def test_run_stats_bit_identical_after_disk_round_trip(self, tmp_path):
        # Regression: DropRegionsReport is keyed by id() of term nodes;
        # a pickled program must re-derive it or GC counters drift
        # (dropped_region_passes silently became 0 on disk hits).
        source = (
            "fun build n = if n = 0 then nil else n :: build (n - 1)\n"
            "fun count xs = if xs = nil then 0 else 1 + count (tl xs)\n"
            "val it = count (build 40)"
        )
        program = compile_program(source, cache=False)
        fresh = program.run(backend="tree").stats.to_dict()
        assert fresh["dropped_region_passes"] > 0  # the program must exercise dropping
        cache = DiskCompileCache(tmp_path)
        key = cache_key(source, CompilerFlags())
        cache.put(key, program)
        loaded = DiskCompileCache(tmp_path).get(key)
        assert loaded.run(backend="tree").stats.to_dict() == fresh
        assert loaded.run(backend="closure").stats.to_dict() == fresh

    def test_miss_on_absent_key(self, tmp_path):
        cache = DiskCompileCache(tmp_path)
        assert cache.get(("nope",)) is None
        assert cache.snapshot()["misses"] == 1


class TestDegradation:
    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = DiskCompileCache(tmp_path)
        key = cache_key(SOURCE, CompilerFlags())
        cache.put(key, _compiled())
        (tmp_path / _filename(key)).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        snap = cache.snapshot()
        assert snap["errors"] == 1 and snap["misses"] == 1

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        cache = DiskCompileCache(tmp_path)
        key = cache_key(SOURCE, CompilerFlags())
        blob = pickle.dumps((FORMAT_VERSION + 1, _compiled()))
        (tmp_path / _filename(key)).write_bytes(blob)
        assert cache.get(key) is None

    def test_no_temp_droppings_after_put(self, tmp_path):
        cache = DiskCompileCache(tmp_path)
        cache.put(cache_key(SOURCE, CompilerFlags()), _compiled())
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(cache) == 1

    def test_distinct_flags_distinct_entries(self, tmp_path):
        from repro.config import Strategy

        cache = DiskCompileCache(tmp_path)
        cache.put(cache_key(SOURCE, CompilerFlags()), _compiled())
        other = CompilerFlags(strategy=Strategy.TRIVIAL)
        assert cache.get(cache_key(SOURCE, other)) is None


class TestSelfHealing:
    """Entry integrity: every entry is framed with a sha256 digest; a
    digest mismatch is quarantined (kept for forensics, never read
    again), a foreign/old format is discarded, and a fresh put heals
    the slot — planted garbage costs one recompile, nothing else."""

    def _planted(self, tmp_path):
        cache = DiskCompileCache(tmp_path)
        key = cache_key(SOURCE, CompilerFlags())
        cache.put(key, _compiled())
        return cache, key, tmp_path / _filename(key)

    def test_digest_corruption_is_quarantined(self, tmp_path):
        from repro.server.diskcache import CORRUPT, QUARANTINE_DIR

        cache, key, path = self._planted(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # one flipped payload byte
        path.write_bytes(bytes(blob))
        loaded, status = cache.get_ex(key)
        assert loaded is None and status == CORRUPT
        assert not path.exists()  # moved, not left in place
        assert (tmp_path / QUARANTINE_DIR / path.name).exists()
        assert cache.quarantined_entries() == 1
        snap = cache.snapshot()
        assert snap["corrupt_quarantined"] == 1
        assert snap["errors"] == 1 and snap["misses"] == 1
        assert snap["quarantine_dir_entries"] == 1

    def test_truncated_header_is_quarantined(self, tmp_path):
        from repro.server.diskcache import CORRUPT, _MAGIC

        cache, key, path = self._planted(tmp_path)
        path.write_bytes(_MAGIC + b"2 deadbeef")  # magic, no newline
        loaded, status = cache.get_ex(key)
        assert loaded is None and status == CORRUPT
        assert cache.quarantined_entries() == 1

    def test_unpicklable_payload_is_quarantined(self, tmp_path):
        # A valid frame around garbage: the digest verifies, unpickling
        # fails — still the quarantine path, not an exception.
        from repro.server.diskcache import CORRUPT, _frame

        cache, key, path = self._planted(tmp_path)
        path.write_bytes(_frame(b"not a pickle at all"))
        loaded, status = cache.get_ex(key)
        assert loaded is None and status == CORRUPT
        assert cache.quarantined_entries() == 1

    def test_foreign_bytes_are_unlinked_not_quarantined(self, tmp_path):
        from repro.server.diskcache import FORMAT_MISMATCH

        cache, key, path = self._planted(tmp_path)
        path.write_bytes(b"not a pickle")  # no magic: v1 era or foreign
        loaded, status = cache.get_ex(key)
        assert loaded is None and status == FORMAT_MISMATCH
        assert not path.exists()
        assert cache.quarantined_entries() == 0
        assert cache.snapshot()["format_mismatch"] == 1

    def test_fresh_put_heals_a_quarantined_slot(self, tmp_path):
        from repro.server.diskcache import HIT

        cache, key, path = self._planted(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x55
        path.write_bytes(bytes(blob))
        assert cache.get(key) is None  # detected + quarantined
        cache.put(key, _compiled())
        loaded, status = cache.get_ex(key)
        assert status == HIT and loaded.run().value == 144
        # The forensic copy survives the heal.
        assert cache.quarantined_entries() == 1

    def test_quarantine_is_capped_at_max_quarantine(self, tmp_path):
        # Regression: quarantine/ grew without bound under sustained
        # corruption (every chaos loop iteration added a file).  Only
        # the newest max_quarantine forensic copies may survive.
        import os as _os

        from repro.server.diskcache import CORRUPT, _frame

        cache = DiskCompileCache(tmp_path, max_quarantine=3)
        for i in range(7):
            key = cache_key(f"val it = {i}", CompilerFlags())
            path = tmp_path / _filename(key)
            path.write_bytes(_frame(b"garbage")[:-1] + b"!")  # digest broken
            # Distinct mtimes so "newest" is well defined on coarse
            # filesystems.
            _os.utime(path, (1_000_000 + i, 1_000_000 + i))
            loaded, status = cache.get_ex(key)
            assert loaded is None and status == CORRUPT
        assert cache.quarantined_entries() == 3
        assert cache.quarantine_evictions == 4
        assert cache.snapshot()["quarantine_evictions"] == 4
        assert cache.snapshot()["corrupt_quarantined"] == 7

    def test_quarantine_cap_keeps_the_newest_entries(self, tmp_path):
        import os as _os

        from repro.server.diskcache import QUARANTINE_DIR, _frame

        cache = DiskCompileCache(tmp_path, max_quarantine=2)
        names = []
        for i in range(4):
            key = cache_key(f"val it = {i} + 0", CompilerFlags())
            path = tmp_path / _filename(key)
            names.append(path.name)
            path.write_bytes(_frame(b"garbage")[:-1] + b"!")
            _os.utime(path, (2_000_000 + i, 2_000_000 + i))
            cache.get(key)
            # Quarantined copies keep their mtimes distinct too.
            qpath = tmp_path / QUARANTINE_DIR / path.name
            if qpath.exists():
                _os.utime(qpath, (2_000_000 + i, 2_000_000 + i))
        survivors = {p.name for p in (tmp_path / QUARANTINE_DIR).glob("*.pkl")}
        assert survivors == set(names[-2:])

    def test_statuses_shared_with_worker_reporting(self, tmp_path):
        # compile_with_caches flags CORRUPT (and only CORRUPT) to the
        # metrics registry; the constants must stay importable.
        from repro.server.diskcache import CORRUPT, FORMAT_MISMATCH, HIT, MISS

        assert len({HIT, MISS, CORRUPT, FORMAT_MISMATCH}) == 4


class TestDirectoryTrust:
    """A pre-planted directory another user can write is a pickle-based
    code-execution vector; the cache must refuse it outright."""

    def test_fresh_directory_is_created_private(self, tmp_path):
        root = tmp_path / "cache"
        DiskCompileCache(root)
        assert (os.stat(root).st_mode & 0o777) == 0o700

    def test_world_writable_directory_is_refused(self, tmp_path):
        root = tmp_path / "planted"
        root.mkdir()
        os.chmod(root, 0o777)
        with pytest.raises(CacheDirectoryError):
            DiskCompileCache(root)

    def test_group_writable_directory_is_refused(self, tmp_path):
        root = tmp_path / "shared"
        root.mkdir()
        os.chmod(root, 0o770)
        with pytest.raises(CacheDirectoryError):
            DiskCompileCache(root)

    def test_worker_init_degrades_to_memory_only(self, tmp_path, capsys):
        from repro.server import worker

        root = tmp_path / "hostile"
        root.mkdir()
        os.chmod(root, 0o777)
        try:
            worker.init_worker(str(root))
            assert worker._DISK_CACHE is None
            assert "disk cache disabled" in capsys.readouterr().err
        finally:
            worker.init_worker(None)

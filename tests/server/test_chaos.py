"""The chaos harness: fault schedules are pure functions of the seed,
the closed-form fault-count oracle matches a recount, and a live chaos
run over real worker processes loses no job, corrupts no answer, and
stays within its retry budget.
"""

import pytest

from repro.server.chaos import ChaosError, ChaosPlan, deterministic_subset, run_chaos

FAST_PROGRAMS = ["fft", "msort", "msort_rf", "ratio"]


class TestChaosPlan:
    def test_same_seed_same_schedule(self):
        a = ChaosPlan.for_corpus(42, 23)
        b = ChaosPlan.for_corpus(42, 23)
        assert a == b
        assert [a.decide_dispatch(i) for i in range(200)] == [
            b.decide_dispatch(i) for i in range(200)
        ]

    def test_different_seeds_differ(self):
        a = ChaosPlan.for_corpus(1, 23)
        b = ChaosPlan.for_corpus(2, 23)
        assert (a.kill_at, a.reject_at) != (b.kill_at, b.reject_at)

    def test_fault_indices_live_in_the_corpus_window(self):
        plan = ChaosPlan.for_corpus(7, 23, kills=5, rejects=3)
        assert len(plan.kill_at) == 5 and len(plan.reject_at) == 3
        assert all(0 <= i < 23 for i in plan.kill_at + plan.reject_at)

    def test_kill_counts_clamp_to_corpus_size(self):
        plan = ChaosPlan.for_corpus(0, 2, kills=10, rejects=10)
        assert len(plan.kill_at) == 2 and len(plan.reject_at) == 2

    def test_kill_takes_precedence_over_rates(self):
        plan = ChaosPlan(seed=0, kill_at=tuple(range(50)), delay_rate=1.0,
                         duplicate_rate=1.0)
        assert all(plan.decide_dispatch(i) == {"op": "kill"} for i in range(50))

    def test_expected_counts_match_a_recount(self):
        plan = ChaosPlan.for_corpus(9, 23, delay_rate=0.4, duplicate_rate=0.3)
        total = 2 * 23 + len(plan.kill_at)
        counts = plan.expected_counts(total)
        actions = [plan.decide_dispatch(i) for i in range(total)]
        assert counts["kills"] == sum(a == {"op": "kill"} for a in actions)
        assert counts["delays"] == sum(
            a is not None and a["op"] == "delay" for a in actions)
        assert counts["duplicates"] == sum(a == {"op": "duplicate"} for a in actions)
        assert counts["kills"] == len(plan.kill_at)

    def test_round_trips_through_dict(self):
        plan = ChaosPlan.for_corpus(3, 23)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan
        # JSON-shaped input (lists, unknown future keys) loads too.
        data = dict(plan.to_dict(), kill_at=list(plan.kill_at),
                    reject_at=list(plan.reject_at), future_knob=1)
        assert ChaosPlan.from_dict(data) == plan


class TestChaosRunValidation:
    def test_out_of_window_fault_index_is_refused(self):
        plan = ChaosPlan(seed=0, kill_at=(99,))
        with pytest.raises(ValueError, match="outside range"):
            run_chaos(plan, programs=FAST_PROGRAMS)

    def test_unknown_program_is_refused(self):
        with pytest.raises(ValueError, match="unknown programs"):
            run_chaos(ChaosPlan(), programs=["nope"])


class TestLiveChaos:
    def test_chaos_run_holds_all_invariants(self, tmp_path):
        plan = ChaosPlan.for_corpus(
            7, len(FAST_PROGRAMS), kills=2, rejects=1,
            delay_rate=0.3, delay_seconds=0.01, duplicate_rate=0.3,
            corrupt_entries=1, truncate_entries=1)
        report = run_chaos(plan, programs=FAST_PROGRAMS, workers=2,
                           queue_capacity=16, cache_dir=str(tmp_path))
        assert report["lost_jobs"] == 0
        assert report["wrong_answers"] == 0
        # Exactly one retransmission per injected kill and shed.
        assert report["retries_total"] == 3
        assert report["injected"] == report["expected"]
        assert report["forced_rejections"] == 1
        assert report["recycles"] == 2
        assert report["quarantined"] == 1
        assert report["cache_entries_valid"] >= len(FAST_PROGRAMS)
        assert report["failures"] == []
        # The deterministic subset is a pure function of (seed, corpus,
        # workers): rebuilding it from the same plan must agree without
        # re-running the scenario.
        subset = deterministic_subset(report)
        assert subset["expected"] == plan.expected_counts(
            2 * len(FAST_PROGRAMS) + len(plan.kill_at))
        assert subset["plan"] == plan.to_dict()

class TestVandalism:
    def test_victims_are_seed_deterministic_and_detectable(self, tmp_path):
        from repro.server.chaos import _valid_cache_entries, _vandalize_cache
        from repro.server.diskcache import CORRUPT, FORMAT_MISMATCH, HIT, _frame, _unframe

        for i in range(6):
            (tmp_path / f"entry-{i}.pkl").write_bytes(_frame(b"payload-%d" % i))
        plan = ChaosPlan(seed=5, corrupt_entries=2, truncate_entries=1)
        first = _vandalize_cache(str(tmp_path), plan)
        assert len(first["corrupted"]) == 2 and len(first["truncated"]) == 1
        for name in first["corrupted"]:
            assert _unframe((tmp_path / name).read_bytes())[1] == CORRUPT
        for name in first["truncated"]:
            assert _unframe((tmp_path / name).read_bytes())[1] == FORMAT_MISMATCH
        untouched = [p for p in tmp_path.glob("*.pkl")
                     if p.name not in first["corrupted"] + first["truncated"]]
        assert len(untouched) == 3
        assert all(_unframe(p.read_bytes())[1] == HIT for p in untouched)
        assert _valid_cache_entries(str(tmp_path)) == 3
        # Same seed over the same directory picks the same victims.
        for i in range(6):
            (tmp_path / f"entry-{i}.pkl").write_bytes(_frame(b"payload-%d" % i))
        assert _vandalize_cache(str(tmp_path), plan) == first

    def test_chaos_error_is_an_assertion(self):
        assert issubclass(ChaosError, AssertionError)

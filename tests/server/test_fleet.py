"""Fleet topology: consistent-hash ring distribution and minimal
movement, failover preference order, node health state, routing keys.

The uniformity and movement properties are what make the gateway's
placement story true: keys spread evenly (no node melts), and scaling
the fleet only re-homes ~1/N of the key space (no fleet-wide cold
start).  Both tests are fully deterministic — sha256 ring points, fixed
key sets — so a failure is a code change, never flake.
"""

from repro.config import CompilerFlags
from repro.server.fleet import DEFAULT_VNODES, HashRing, NodeState, route_key
from repro.server.protocol import make_request

KEYS = [f"key-{i}" for i in range(2000)]


def _assignments(ring: HashRing) -> dict:
    return {key: ring.node_for(key) for key in KEYS}


class TestRingDistribution:
    def test_chi_square_uniformity(self):
        # 2000 keys over 4 nodes: expected 500 each.  The chi-square
        # statistic sum((observed-expected)^2/expected) for 3 degrees of
        # freedom has p=0.001 critical value ~16.3; with 128 vnodes the
        # sha256 ring sits far below it.  Deterministic inputs: this is
        # a regression bound on the construction, not a statistical test.
        ring = HashRing(["node0", "node1", "node2", "node3"])
        counts: dict = {}
        for node in _assignments(ring).values():
            counts[node] = counts.get(node, 0) + 1
        assert sum(counts.values()) == len(KEYS)
        expected = len(KEYS) / len(counts)
        chi_square = sum((count - expected) ** 2 / expected
                         for count in counts.values())
        assert chi_square < 16.3, f"skewed ring: {counts}"
        # And no node is grossly over/under its fair share.
        for node, count in counts.items():
            assert 0.5 * expected < count < 1.6 * expected, counts

    def test_leave_moves_only_the_leavers_keys(self):
        ring = HashRing(["node0", "node1", "node2", "node3"])
        before = _assignments(ring)
        ring.remove("node2")
        after = _assignments(ring)
        for key in KEYS:
            if before[key] != "node2":
                # Minimal movement: a surviving node's keys never move.
                assert after[key] == before[key]
            else:
                assert after[key] != "node2"

    def test_join_moves_keys_only_to_the_joiner(self):
        ring = HashRing(["node0", "node1", "node2"])
        before = _assignments(ring)
        ring.add("node3")
        after = _assignments(ring)
        moved = [key for key in KEYS if after[key] != before[key]]
        assert all(after[key] == "node3" for key in moved)
        # ~1/N of the key space re-homes (the consistent-hashing
        # contract); allow 2x slack over the ideal 1/4.
        assert 0 < len(moved) < len(KEYS) / 2

    def test_rejoin_restores_the_original_assignment(self):
        ring = HashRing(["node0", "node1", "node2"])
        before = _assignments(ring)
        ring.remove("node1")
        ring.add("node1")
        assert _assignments(ring) == before

    def test_insertion_order_is_irrelevant(self):
        a = HashRing(["x", "y", "z"])
        b = HashRing(["z", "x", "y"])
        assert _assignments(a) == _assignments(b)


class TestPreferenceOrder:
    def test_preference_lists_every_node_once_owner_first(self):
        ring = HashRing(["node0", "node1", "node2"])
        for key in KEYS[:50]:
            pref = ring.preference(key)
            assert sorted(pref) == ["node0", "node1", "node2"]
            assert pref[0] == ring.node_for(key)

    def test_preference_tail_is_the_failover_owner(self):
        # When the owner is excluded, the next preference entry is
        # exactly who node_for picks — the gateway's failover slate is
        # the ring's own answer.
        ring = HashRing(["node0", "node1", "node2", "node3"])
        for key in KEYS[:50]:
            pref = ring.preference(key)
            assert ring.node_for(key, exclude=[pref[0]]) == pref[1]

    def test_empty_and_fully_excluded_ring(self):
        ring = HashRing()
        assert ring.node_for("k") is None
        ring.add("only")
        assert ring.node_for("k", exclude=["only"]) is None
        assert len(ring) == 1 and "only" in ring

    def test_vnode_count_is_configurable(self):
        ring = HashRing(["a"], vnodes=4)
        assert ring.vnodes == 4
        assert ring.node_for("anything") == "a"


class TestNodeState:
    def test_routable_excludes_dead_and_draining(self):
        state = NodeState(name="n", url="http://h:1")
        assert state.routable
        state.mark_failed("boom")
        assert not state.routable and state.consecutive_failures == 1
        state.mark_ok()
        assert state.routable and state.last_error is None
        state.mark_ok(draining=True)
        assert state.healthy and not state.routable

    def test_snapshot_shape(self):
        snap = NodeState(name="n", url="http://h:1").snapshot()
        assert snap["name"] == "n" and snap["healthy"] is True
        assert {"draining", "routed", "failed", "failovers_absorbed",
                "consecutive_failures", "last_error"} <= set(snap)


class TestRouteKey:
    def test_same_source_same_flags_same_key(self):
        a = route_key(make_request("val it = 1"))
        b = route_key(make_request("val it = 1"))
        assert a == b

    def test_flags_change_the_key(self):
        plain = route_key(make_request("val it = 1"))
        other = route_key(make_request(
            "val it = 1", flags=CompilerFlags(verify=False)))
        assert plain != other

    def test_malformed_requests_still_route_deterministically(self):
        bad = {"schema": "nope", "source": "val it = 1", "flags": "junk"}
        assert route_key(bad) == route_key(dict(bad))
        assert route_key("not a dict") == "invalid-request"
        assert route_key({"source": 42}) == "invalid-request"

    def test_key_is_the_compile_cache_key(self):
        # Routing and caching must share the content address, or hot
        # programs would pin to a node whose caches are keyed elsewhere.
        from repro.cache import cache_key

        request = make_request("val it = 2 + 2")
        assert route_key(request) == repr(
            cache_key("val it = 2 + 2", CompilerFlags()))

"""The resilience machinery the chaos harness leans on, piece by piece:
graceful drain closes and reopens admission, a rolling restart under
live traffic replaces every worker without losing a job or changing an
answer, the client's bounded retries ride out rejections, per-tenant
token buckets shed only the noisy tenant, and the scheduler's EWMA
survives adversarial wall times under thread fire.
"""

import concurrent.futures
import math
import threading
import time

import pytest

from repro.bench.registry import benchmark_source
from repro.pipeline import compile_program
from repro.runtime.values import show_value
from repro.server import ReproServer, ServerClient, ServerConfig
from repro.server.scheduler import Rejection, Scheduler

FAST_PROGRAMS = ("ratio", "msort", "fft", "msort_rf")

FIB = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval it = fib 15"


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("resilience-cache")
    with ReproServer(ServerConfig(port=0, workers=2, queue_capacity=16,
                                  cache_dir=str(cache_dir),
                                  job_timeout_seconds=60.0)) as srv:
        host, port = srv.start()
        client = ServerClient(f"http://{host}:{port}", retries=0)
        client.wait_ready()
        yield srv, client


class TestHealth:
    def test_ready_server_reports_ready(self, server):
        _, client = server
        health = client.health()
        assert health["ok"] and health["live"] and health["ready"]
        assert not health["draining"]
        assert health["workers"]["size"] == 2

    def test_healthz_still_answers(self, server):
        _, client = server
        assert client.healthz()["ok"]


class TestDrainResume:
    def test_drain_closes_admission_and_resume_reopens(self, server):
        srv, client = server
        try:
            assert srv.drain(timeout=30) is True
            health = client.health()
            assert health["live"] and not health["ready"] and health["draining"]
            response = client.submit(
                {"schema": "repro-server/v1", "source": "val it = 1"})
            assert response["status"] == "rejected"
            assert response["error"]["type"] == "Draining"
            assert response["retry_after"] >= 1.0
        finally:
            srv.resume()
        client.wait_ready(timeout=10)
        assert client.run(FIB)["status"] == "ok"

    def test_wait_ready_blocks_until_resume(self, server):
        srv, client = server
        srv.drain(timeout=30)
        try:
            with pytest.raises(Exception, match="not ready"):
                client.wait_ready(timeout=0.3)
        finally:
            srv.resume()
        client.wait_ready(timeout=10)


class TestRollingRestart:
    def test_restart_mid_burst_loses_nothing(self, server):
        """Every worker is replaced while a concurrent burst is in
        flight; all jobs must land, bit-identical to local runs."""
        srv, client = server
        expected = {}
        for name in FAST_PROGRAMS:
            result = compile_program(benchmark_source(name)).run()
            expected[name] = (show_value(result.value), result.output,
                              result.stats.to_dict())
        pids_before = {w.process.pid for w in srv.pool._workers}

        jobs = [(f"{name}#{i}", name) for i in range(3) for name in FAST_PROGRAMS]
        with concurrent.futures.ThreadPoolExecutor(len(jobs) + 1) as pool:
            futures = {
                label: pool.submit(client.run, benchmark_source(name))
                for label, name in jobs
            }
            restart = pool.submit(srv.rolling_restart, 60.0)
            responses = {label: f.result() for label, f in futures.items()}
            assert restart.result() == 2

        for label, resp in responses.items():
            name = label.split("#")[0]
            value, stdout, stats = expected[name]
            assert resp["status"] == "ok", (label, resp.get("error"))
            assert resp["value"] == value, label
            assert resp["stdout"] == stdout, label
            assert resp["stats"] == stats, label
        pids_after = {w.process.pid for w in srv.pool._workers}
        assert pids_before.isdisjoint(pids_after)
        assert srv.pool.stats()["recycles"] >= 2


class TestClientRetries:
    def test_retry_rides_out_a_drain_window(self, server):
        """A submission arriving mid-drain is rejected, backs off, and
        succeeds after resume — the end-to-end retry loop."""
        srv, client = server
        url = client.base_url
        retrying = ServerClient(url, retries=8, retry_base_wait=0.05,
                                retry_max_wait=0.5, retry_jitter_seed=1)
        srv.drain(timeout=30)
        resumer = threading.Timer(0.4, srv.resume)
        resumer.start()
        try:
            response, trace = retrying.submit_ex(
                {"schema": "repro-server/v1", "source": "val it = 2 + 2",
                 "flags": {}, "backend": "closure", "cache": True,
                 "runtime": {}, "trace": False, "verify": False})
        finally:
            resumer.cancel()
            srv.resume()
        assert response["status"] == "ok" and response["value"] == "4"
        assert trace.retries >= 1
        assert all(reason == "rejected" for reason in trace.reasons)
        assert all(wait <= 0.5 for wait in trace.waits)
        assert retrying.retries_attempted == trace.retries
        # The fleet saw the X-Repro-Attempt header and counted retries.
        assert srv.metrics.snapshot()["resilience"]["retries"] >= 1

    def test_zero_budget_returns_the_rejection(self, server):
        srv, client = server
        srv.drain(timeout=30)
        try:
            response = client.run(FIB)  # fixture client has retries=0
            assert response["status"] == "rejected"
        finally:
            srv.resume()
        client.wait_ready(timeout=10)

    def test_backoff_waits_never_exceed_the_cap(self):
        client = ServerClient("http://127.0.0.1:1", retries=10,
                              retry_base_wait=0.1, retry_max_wait=2.0,
                              retry_jitter_seed=0)
        for attempt in range(1, 12):
            for hint in (None, 0.0, 1.5, 1e9, -3, True, "soon"):
                wait = client._backoff_wait(attempt, hint)
                assert 0.0 <= wait <= 2.0, (attempt, hint, wait)

    def test_backoff_honors_retry_after_hint(self):
        client = ServerClient("http://127.0.0.1:1", retry_max_wait=60.0,
                              retry_jitter_seed=0)
        # Jitter is in [0.5, 1.0)x, so a 10s hint waits at least 5s.
        assert client._backoff_wait(1, 10.0) >= 5.0

    def test_verdicts_are_never_retried(self, server):
        _, client = server
        url = client.base_url
        retrying = ServerClient(url, retries=5, retry_jitter_seed=0)
        response, trace = retrying.submit_ex(
            {"schema": "repro-server/v1", "source": "val it = 1 +",
             "flags": {}, "backend": "closure", "cache": True,
             "runtime": {}, "trace": False, "verify": False})
        assert response["status"] in ("error", "invalid")
        assert trace.retries == 0


class _IdlePool:
    """A pool stand-in for scheduler-only tests (never dispatches)."""

    size = 2

    def submit(self, payload, timeout=None, on_start=None):
        raise AssertionError("scheduler-only test should not dispatch")


class TestQuotas:
    def test_noisy_tenant_is_shed_others_admitted(self):
        sched = Scheduler(_IdlePool(), capacity=64)
        sched.configure_quota(rate=1000.0, burst=2.0)
        hits = []
        for _ in range(3):
            try:
                hits.append(sched.submit({"job": 1}, tenant="noisy"))
            except AssertionError:
                hits.append("admitted")
        # Burst of 2 admitted (reaching the pool), third shed by quota.
        assert hits[:2] == ["admitted", "admitted"]
        assert isinstance(hits[2], Rejection)
        assert hits[2].reason == "quota" and hits[2].retry_after > 0
        # A different tenant draws from its own bucket.
        with pytest.raises(AssertionError, match="should not dispatch"):
            sched.submit({"job": 2}, tenant="quiet")
        snap = sched.snapshot()
        assert snap["quota_rejected"] == 1
        assert snap["tenants"] == 2

    def test_bucket_refills_over_time(self):
        sched = Scheduler(_IdlePool(), capacity=64)
        sched.configure_quota(rate=50.0, burst=1.0)
        with pytest.raises(AssertionError):
            sched.submit({}, tenant="t")
        rejection = sched.submit({}, tenant="t")
        assert isinstance(rejection, Rejection) and rejection.reason == "quota"
        time.sleep(rejection.retry_after + 0.05)
        with pytest.raises(AssertionError):  # token refilled: admitted again
            sched.submit({}, tenant="t")

    def test_quota_off_by_default(self):
        sched = Scheduler(_IdlePool(), capacity=64)
        for _ in range(10):
            with pytest.raises(AssertionError):
                sched.submit({}, tenant="anyone")


class TestEwmaUnderFire:
    def test_concurrent_finishes_with_adversarial_walls(self):
        """Threads hammer finish() with NaN/inf/negative/huge wall
        times while others read retry_after; the hint must stay a
        positive finite number throughout (the invariant clients
        schedule retries on)."""
        sched = Scheduler(_IdlePool(), capacity=1,
                          initial_service_seconds=1.0)
        # Fill to capacity so every submit yields a Rejection whose
        # retry_after exercises _retry_after_locked.
        with sched._lock:
            sched._in_flight = 1
        walls = [float("nan"), float("inf"), float("-inf"), -5.0, 0.0,
                 1e12, 0.001, 3.5]
        bad_hints = []
        stop = threading.Event()

        def pound(seed):
            for i in range(400):
                sched.finish(None, walls[(seed + i) % len(walls)])

        def watch():
            while not stop.is_set():
                with sched._lock:
                    hint = sched._retry_after_locked()
                if not (hint > 0 and math.isfinite(hint)):
                    bad_hints.append(hint)

        threads = [threading.Thread(target=pound, args=(s,)) for s in range(8)]
        watchers = [threading.Thread(target=watch) for _ in range(2)]
        for t in threads + watchers:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        for t in watchers:
            t.join()
        assert bad_hints == []
        ewma = sched.snapshot()["ewma_service_seconds"]
        assert ewma > 0 and math.isfinite(ewma)
        # in_flight was decremented past its floor many times; clamped.
        assert sched.in_flight == 0


class TestForcedRejections:
    def test_seeded_admission_sheds_fire_exactly_once(self):
        sched = Scheduler(_IdlePool(), capacity=64)
        sched.set_chaos_rejections({0, 2})
        first = sched.submit({})
        assert isinstance(first, Rejection) and first.reason == "chaos"
        with pytest.raises(AssertionError):
            sched.submit({})  # seq 1: admitted
        third = sched.submit({})
        assert isinstance(third, Rejection) and third.reason == "chaos"
        with pytest.raises(AssertionError):
            sched.submit({})  # seq 3: past the set, admitted
        assert sched.snapshot()["forced_rejections"] == 2

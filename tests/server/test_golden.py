"""The acceptance-criteria golden test: all 23 Figure 9 programs,
submitted concurrently to a 4-worker server, come back with values,
stdout, and RunStats bit-identical to sequential in-process runs —
under both the tree-walking and closure-compiled backends.
"""

import concurrent.futures

import pytest

from repro.bench.registry import BENCHMARKS, benchmark_source
from repro.pipeline import compile_program
from repro.runtime.values import show_value
from repro.server import ReproServer, ServerClient, ServerConfig

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def client(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("golden-cache")
    with ReproServer(ServerConfig(port=0, workers=4, queue_capacity=64,
                                  cache_dir=str(cache_dir),
                                  job_timeout_seconds=300.0)) as srv:
        host, port = srv.start()
        c = ServerClient(f"http://{host}:{port}", timeout=600)
        c.wait_ready()
        yield c


def _sequential_reference(backend):
    reference = {}
    for name in sorted(BENCHMARKS):
        result = compile_program(benchmark_source(name)).run(backend=backend)
        reference[name] = {
            "value": show_value(result.value),
            "stdout": result.output,
            "stats": result.stats.to_dict(),
        }
    return reference


@pytest.mark.parametrize("backend", ["closure", "tree"])
def test_figure9_concurrent_matches_sequential(client, backend):
    reference = _sequential_reference(backend)
    with concurrent.futures.ThreadPoolExecutor(8) as pool:
        futures = {
            name: pool.submit(client.run, benchmark_source(name), backend=backend)
            for name in sorted(BENCHMARKS)
        }
        responses = {name: f.result() for name, f in futures.items()}
    mismatches = []
    for name, resp in responses.items():
        if resp["status"] != "ok":
            mismatches.append((name, "status", resp.get("error")))
            continue
        for field in ("value", "stdout", "stats"):
            if resp[field] != reference[name][field]:
                mismatches.append((name, field, resp[field], reference[name][field]))
    assert not mismatches, mismatches


def test_second_wave_hits_the_cache(client):
    # Both parametrized waves above already compiled every program; one
    # more submission must be served from a warm cache layer.
    resp = client.run(benchmark_source("ratio"))
    assert resp["status"] == "ok"
    assert resp["cache"]["memory_hit"] or resp["cache"]["disk_hit"]
    cache = client.stats()["metrics"]["cache"]
    assert cache["hit_rate"] > 0

"""Load-replay harness: schedule determinism, trace round-trips, the
document builder, SLO gating against server-side percentiles, and the
repro-serving-bench/v1 schema validator."""

import pytest

from repro.server.loadgen import (
    Arrival,
    DEFAULT_SLOS,
    _Sample,
    build_document,
    check_slos,
    poisson_schedule,
    serving_table,
    trace_schedule,
    validate_document,
    write_trace,
)
from repro.server.metrics import Histogram


class TestSchedules:
    def test_same_seed_same_schedule(self):
        a = poisson_schedule(["fib", "tak"], rate=10, requests=50, seed=42)
        b = poisson_schedule(["fib", "tak"], rate=10, requests=50, seed=42)
        assert a == b

    def test_different_seed_different_schedule(self):
        a = poisson_schedule(["fib", "tak"], rate=10, requests=50, seed=1)
        b = poisson_schedule(["fib", "tak"], rate=10, requests=50, seed=2)
        assert a != b

    def test_arrival_times_are_monotone_open_loop(self):
        schedule = poisson_schedule(["fib"], rate=100, requests=200, seed=0)
        times = [a.at for a in schedule]
        assert times == sorted(times)
        assert len(schedule) == 200
        # Mean inter-arrival gap ~ 1/rate; loose sanity bound only.
        assert 0.2 < times[-1] / (200 / 100) < 5.0

    def test_tenants_spread(self):
        schedule = poisson_schedule(["fib"], rate=10, requests=100, seed=0,
                                    tenants=["a", "b"])
        tenants = {a.tenant for a in schedule}
        assert tenants == {"a", "b"}

    def test_weights_bias_the_mix(self):
        schedule = poisson_schedule(["hot", "cold"], rate=10, requests=300,
                                    seed=0, weights=[9, 1])
        hot = sum(1 for a in schedule if a.program == "hot")
        assert hot > 200

    def test_bad_parameters_raise(self):
        with pytest.raises(ValueError):
            poisson_schedule(["fib"], rate=0, requests=1)
        with pytest.raises(ValueError):
            poisson_schedule([], rate=1, requests=1)
        with pytest.raises(ValueError):
            poisson_schedule(["fib"], rate=1, requests=0)

    def test_trace_round_trip(self, tmp_path):
        schedule = poisson_schedule(["fib", "msort"], rate=20, requests=30,
                                    seed=3, tenants=["t1"])
        path = tmp_path / "trace.jsonl"
        write_trace(schedule, str(path))
        replayed = trace_schedule(str(path))
        assert [a.program for a in replayed] == [a.program for a in schedule]
        assert [a.tenant for a in replayed] == [a.tenant for a in schedule]
        assert all(abs(x.at - y.at) < 1e-6
                   for x, y in zip(replayed, schedule))

    def test_trace_rows_are_sorted_and_comments_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('# header\n{"at": 2.0, "program": "b"}\n'
                        '{"at": 1.0, "program": "a"}\n\n')
        replayed = trace_schedule(str(path))
        assert [a.program for a in replayed] == ["a", "b"]

    def test_bad_trace_row_is_an_error_with_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"at": 1.0, "program": "a"}\n{"nope": true}\n')
        with pytest.raises(ValueError, match=":2:"):
            trace_schedule(str(path))


def _stats(histogram: Histogram, cache=None, failovers=0) -> dict:
    return {
        "gateway": {"failovers": failovers},
        "fleet": {
            "latency_seconds": histogram.to_dict(),
            "cache": cache or {"lookups": 0, "memory_hits": 0,
                               "disk_hits": 0, "fleet_hits": 0},
        },
    }


def _samples(latencies, program="fib", value="2584"):
    return [
        _Sample(arrival=Arrival(at=i * 0.1, program=program), status="ok",
                latency=lat, value=value)
        for i, lat in enumerate(latencies)
    ]


class TestDocument:
    def _document(self, samples, **kwargs):
        return build_document(
            samples,
            {"kind": "poisson", "rate": 10.0, "seed": 0,
             "requests": len(samples), "programs": ["fib"]},
            {"nodes": 2, "workers_per_node": 2, "gateway": "local"},
            **kwargs,
        )

    def test_document_validates_and_passes_default_slos(self):
        doc = self._document(_samples([0.1, 0.2, 0.3]))
        assert validate_document(doc) == []
        assert doc["slo_check"]["passed"] is True
        assert doc["results"]["ok"] == 3
        assert doc["results"]["lost"] == 0

    def test_lost_request_counts_and_fails_the_gate(self):
        samples = _samples([0.1, 0.2])
        samples.append(_Sample(arrival=Arrival(at=0.5, program="fib")))
        doc = self._document(samples)
        assert doc["results"]["lost"] == 1
        assert doc["slo_check"]["passed"] is False
        assert any("lost_rate" in v for v in doc["slo_check"]["violations"])

    def test_wrong_answer_fails_the_gate(self):
        doc = self._document(_samples([0.1], value="wrong"),
                             expected={"fib": "2584"})
        assert doc["results"]["wrong_answers"] == 1
        assert doc["slo_check"]["passed"] is False

    def test_server_side_percentiles_gate_the_latency_slos(self):
        # Client-side latencies are fine, server-side blow the SLO: the
        # gate must read the server's histograms (satellite: no
        # client-side re-derivation when /v1/stats data exists).
        before = Histogram((1.0, 5.0))
        after = Histogram((1.0, 5.0))
        for _ in range(10):
            after.observe(4.0)  # all requests ~4s server-side
        doc = self._document(
            _samples([0.1] * 10),
            stats_before=_stats(before), stats_after=_stats(after),
            slos=dict(DEFAULT_SLOS, p95_seconds=2.0),
        )
        assert doc["slo_check"]["latency_source"] == "server"
        assert doc["slo_check"]["passed"] is False
        assert any("server-side" in v for v in doc["slo_check"]["violations"])

    def test_client_fallback_when_no_stats_captured(self):
        doc = self._document(_samples([0.1, 3.0]),
                             slos=dict(DEFAULT_SLOS, p95_seconds=1.0))
        assert doc["slo_check"]["latency_source"] == "client"
        assert doc["slo_check"]["passed"] is False

    def test_cache_and_failover_deltas(self):
        cache_before = {"lookups": 10, "memory_hits": 5, "disk_hits": 1,
                        "fleet_hits": 0}
        cache_after = {"lookups": 30, "memory_hits": 15, "disk_hits": 3,
                       "fleet_hits": 2}
        doc = self._document(
            _samples([0.1] * 20),
            stats_before=_stats(Histogram((1.0,)), cache=cache_before),
            stats_after=_stats(Histogram((1.0,)), cache=cache_after,
                               failovers=3),
        )
        assert doc["results"]["cache"] == {
            "lookups": 20, "memory_hits": 10, "disk_hits": 2,
            "fleet_hits": 2, "hit_rate": 0.7}
        assert doc["results"]["failovers"] == 3

    def test_serving_table_renders(self):
        doc = self._document(_samples([0.1, 0.2]))
        table = serving_table(doc)
        assert "| Metric | Value |" in table
        assert "2 nodes" in table
        assert "PASS" in table


class TestValidator:
    def test_rejects_non_document(self):
        assert validate_document("nope") != []
        assert validate_document({"schema": "wrong"}) != []

    def test_catches_missing_fields(self):
        doc = build_document(
            _samples([0.1]),
            {"kind": "poisson", "rate": 1.0, "seed": 0, "requests": 1,
             "programs": ["fib"]},
            {"nodes": 1, "workers_per_node": 1, "gateway": "local"},
        )
        del doc["results"]["lost"]
        problems = validate_document(doc)
        assert any("lost" in p for p in problems)

    def test_poisson_without_seed_is_invalid(self):
        doc = build_document(
            _samples([0.1]),
            {"kind": "poisson", "rate": 1.0, "requests": 1,
             "programs": ["fib"]},
            {"nodes": 1, "workers_per_node": 1, "gateway": "local"},
        )
        assert any("seed" in p for p in validate_document(doc))

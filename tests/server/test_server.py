"""End-to-end service tests over real HTTP: concurrent submissions are
bit-identical to sequential runs, backpressure rejects with retry-after,
the watchdog reaps hung jobs, and a warm restart serves from the
on-disk compile cache (visible in the stats endpoint).
"""

import concurrent.futures

import pytest

from repro.bench.registry import benchmark_source
from repro.pipeline import compile_program
from repro.runtime.values import show_value
from repro.server import ReproServer, ServerClient, ServerConfig

#: Small, fast Figure 9 programs for the in-suite equivalence check (the
#: full 23-program golden matrix lives in test_golden.py / CI).
FAST_PROGRAMS = ("ratio", "msort", "fft", "msort_rf")

FIB = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval it = fib 15"


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("compile-cache")
    with ReproServer(ServerConfig(port=0, workers=2, queue_capacity=16,
                                  cache_dir=str(cache_dir),
                                  job_timeout_seconds=60.0)) as srv:
        host, port = srv.start()
        client = ServerClient(f"http://{host}:{port}")
        client.wait_ready()
        yield srv, client, str(cache_dir)


class TestEquivalence:
    def test_concurrent_submissions_match_sequential_runs(self, server):
        _, client, _ = server
        sources = {name: benchmark_source(name) for name in FAST_PROGRAMS}
        expected = {}
        for name, source in sources.items():
            result = compile_program(source).run()
            expected[name] = (
                show_value(result.value), result.output, result.stats.to_dict()
            )
        with concurrent.futures.ThreadPoolExecutor(len(sources)) as pool:
            futures = {
                name: pool.submit(client.run, source)
                for name, source in sources.items()
            }
            responses = {name: f.result() for name, f in futures.items()}
        for name, resp in responses.items():
            value, stdout, stats = expected[name]
            assert resp["status"] == "ok", (name, resp.get("error"))
            assert resp["value"] == value, name
            assert resp["stdout"] == stdout, name
            assert resp["stats"] == stats, name

    def test_tree_backend_equivalent_over_the_wire(self, server):
        _, client, _ = server
        closure = client.run(FIB, backend="closure")
        tree = client.run(FIB, backend="tree")
        assert closure["status"] == tree["status"] == "ok"
        assert closure["value"] == tree["value"]
        assert closure["stats"] == tree["stats"]


class TestTransport:
    def test_healthz(self, server):
        _, client, _ = server
        assert client.health()["ok"] is True

    def test_malformed_request_is_http_400(self, server):
        _, client, _ = server
        resp = client.submit({"schema": "wrong"})
        assert resp["status"] == "invalid"
        assert resp["exit_status"] == 64

    def test_unknown_endpoint_404(self, server):
        _, client, _ = server
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(client.base_url + "/v1/nope", timeout=10)

    def test_job_error_is_http_200_with_structured_status(self, server):
        _, client, _ = server
        resp = client.run("val it = ")
        assert resp["status"] == "error"
        assert resp["error"]["type"] == "ParseError"
        assert resp["exit_status"] == 1

    def test_stats_endpoint_aggregates(self, server):
        _, client, _ = server
        client.run(FIB)
        snap = client.stats()
        assert snap["metrics"]["jobs"].get("ok", 0) >= 1
        assert snap["metrics"]["run_stats"]["steps"] > 0
        assert snap["pool"]["workers"] == 2
        assert snap["scheduler"]["capacity"] == 16
        assert snap["uptime_seconds"] > 0


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self):
        # A dedicated tiny server: 1 worker, capacity 1, and a blocker
        # that deterministically holds the only slot for its deadline.
        import time

        slow = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval it = fib 30"
        with ReproServer(ServerConfig(port=0, workers=1, queue_capacity=1,
                                      cache_dir=None)) as srv:
            host, port = srv.start()
            client = ServerClient(f"http://{host}:{port}")
            client.wait_ready()
            with concurrent.futures.ThreadPoolExecutor(2) as pool:
                blocker = pool.submit(client.run, slow)
                deadline = time.time() + 5
                while time.time() < deadline:
                    if client.stats()["scheduler"]["in_flight"] >= 1:
                        break
                    time.sleep(0.02)
                else:
                    raise AssertionError("blocker never occupied the slot")
                rejected = client.run("val it = 1")
                assert rejected["status"] == "rejected"
                assert rejected["exit_status"] == 75
                assert rejected["retry_after"] > 0
                assert rejected["error"]["type"] == "QueueFull"
                assert blocker.result()["status"] == "ok"
            # The rejection is backpressure, not poison: afterwards the
            # server accepts again.
            assert client.run("val it = 1")["status"] == "ok"
            assert client.stats()["metrics"]["jobs"]["rejected"] >= 1


class TestWatchdog:
    def test_hung_job_is_reaped_not_wedged(self):
        # No request deadline, tiny server watchdog: the pool must kill
        # the worker and keep serving.
        slow = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval it = fib 32"
        with ReproServer(ServerConfig(port=0, workers=1, queue_capacity=4,
                                      cache_dir=None,
                                      job_timeout_seconds=1.0)) as srv:
            host, port = srv.start()
            client = ServerClient(f"http://{host}:{port}")
            client.wait_ready()
            resp = client.run(slow)
            assert resp["status"] == "timeout"
            assert resp["exit_status"] == 2
            follow_up = client.run("val it = 1 + 1")
            assert follow_up["status"] == "ok" and follow_up["value"] == "2"
            assert client.stats()["pool"]["timeouts"] == 1
            assert client.stats()["pool"]["respawns"] >= 1


class TestWarmRestart:
    def test_disk_cache_survives_restart_and_shows_in_stats(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        config = ServerConfig(port=0, workers=1, cache_dir=cache_dir)
        with ReproServer(config) as first:
            host, port = first.start()
            client = ServerClient(f"http://{host}:{port}")
            client.wait_ready()
            cold = client.run(FIB)
            assert cold["status"] == "ok"
            assert cold["cache"] == {"memory_hit": False, "disk_hit": False,
                                     "fleet_hit": False}
        with ReproServer(config) as reborn:
            host, port = reborn.start()
            client = ServerClient(f"http://{host}:{port}")
            client.wait_ready()
            warm = client.run(FIB)
            assert warm["status"] == "ok"
            assert warm["cache"]["disk_hit"] is True
            assert warm["value"] == cold["value"]
            assert warm["stats"] == cold["stats"]
            cache = client.stats()["metrics"]["cache"]
            assert cache["disk_hits"] >= 1
            assert cache["hit_rate"] > 0

"""Worker-pool tests: unordered map semantics, error capture, and — the
whole point of the design — a worker that hard-crashes or hangs is
reaped and respawned without losing any other job.

The job functions are module-level because the pool's default ``spawn``
context pickles them by reference into fresh interpreter processes.
"""

import os
import time

import pytest

from repro.server.pool import WorkerError, WorkerPool, run_jobs


def double(n):
    return n * 2


def crash_or_double(n):
    """A hard crash — not an exception: the process dies mid-job."""
    if n == "die":
        os._exit(3)
    return n * 2


def sleep_or_double(n):
    if n == "hang":
        time.sleep(60)
    return n * 2


def raise_on_odd(n):
    if n % 2:
        raise ValueError(f"odd {n}")
    return n * 2


def return_unpicklable(n):
    """A result the worker cannot ship back over the pipe."""
    if n == "bad":
        return lambda: None
    return n * 2


class TestMap:
    def test_map_unordered_covers_all_payloads(self):
        with WorkerPool(double, size=2) as pool:
            results = sorted(pool.map_unordered(range(8)))
        assert results == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_run_jobs_convenience(self):
        assert sorted(run_jobs(double, [1, 2, 3], jobs=2)) == [2, 4, 6]

    def test_strict_map_raises_worker_error(self):
        with WorkerPool(raise_on_odd, size=2) as pool:
            with pytest.raises(WorkerError) as excinfo:
                list(pool.map_unordered([2, 3]))
        assert excinfo.value.result.error["type"] == "ValueError"

    def test_lenient_map_yields_failures_as_results(self):
        with WorkerPool(raise_on_odd, size=1) as pool:
            outcomes = list(pool.map_unordered([1, 2], strict=False))
        statuses = sorted(
            o.status if hasattr(o, "status") else "value" for o in outcomes
        )
        assert statuses == ["error", "value"]


class TestFailureContainment:
    def test_job_exception_is_data_not_pool_death(self):
        with WorkerPool(raise_on_odd, size=1) as pool:
            bad = pool.submit(3).result(30)
            good = pool.submit(4).result(30)
        assert bad.status == "error" and bad.error["type"] == "ValueError"
        assert good.status == "ok" and good.value == 8

    def test_hard_crash_is_reaped_and_respawned(self):
        with WorkerPool(crash_or_double, size=2) as pool:
            handles = [pool.submit(p) for p in [1, "die", 2, 3]]
            results = [h.result(60) for h in handles]
            crashed = [r for r in results if r.status == "crashed"]
            ok = sorted(r.value for r in results if r.ok)
            assert len(crashed) == 1
            assert crashed[0].error["type"] == "WorkerCrash"
            assert ok == [2, 4, 6]
            # The pool keeps serving after the respawn.
            assert pool.submit(10).result(60).value == 20
            assert pool.stats()["crashes"] == 1
            assert pool.stats()["respawns"] >= 1

    def test_hung_worker_is_killed_on_timeout(self):
        with WorkerPool(sleep_or_double, size=1, job_timeout=1.0) as pool:
            hung = pool.submit("hang").result(60)
            assert hung.status == "timeout"
            assert hung.error["type"] == "JobTimeout"
            # The respawned worker serves the next job.
            assert pool.submit(5).result(60).value == 10
            assert pool.stats()["timeouts"] == 1

    def test_per_job_timeout_overrides_pool_default(self):
        with WorkerPool(sleep_or_double, size=1, job_timeout=None) as pool:
            hung = pool.submit("hang", timeout=0.5).result(60)
            assert hung.status == "timeout"

    def test_unpicklable_payload_resolves_instead_of_hanging(self):
        # An unpicklable payload makes conn.send raise before any bytes
        # hit the pipe; the manager must resolve the handle with a
        # structured error (not die and strand the caller) and the slot
        # must keep serving without a respawn of the healthy worker.
        with WorkerPool(double, size=1) as pool:
            bad = pool.submit(lambda: None).result(30)
            assert bad.status == "error"
            assert "could not be sent" in bad.error["message"]
            assert pool.submit(21).result(30).value == 42
            stats = pool.stats()
            assert stats["respawns"] == 0 and stats["crashes"] == 0

    def test_unpicklable_result_is_job_error_not_worker_death(self):
        with WorkerPool(return_unpicklable, size=1) as pool:
            bad = pool.submit("bad").result(30)
            assert bad.status == "error"
            assert "not picklable" in bad.error["message"]
            # Same worker process, still alive and serving.
            assert pool.submit(5).result(30).value == 10
            assert pool.stats()["crashes"] == 0


class TestLifecycle:
    def test_submit_after_close_is_refused(self):
        pool = WorkerPool(double, size=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(1)

    def test_close_is_idempotent(self):
        pool = WorkerPool(double, size=1)
        pool.close()
        pool.close()

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(double, size=0)

    def test_on_start_callback_fires(self):
        fired = []
        with WorkerPool(double, size=1) as pool:
            handle = pool.submit(21, on_start=lambda: fired.append(True))
            assert handle.result(30).value == 42
        assert fired == [True]

"""Wire-protocol unit tests: request validation, flag/runtime decoding,
response construction, exit-status semantics."""

import json

import pytest

from repro.config import CompilerFlags, SpuriousMode, Strategy
from repro.server import protocol
from repro.testing.faultplan import FaultPlan


def _roundtrip(obj):
    """Force the dict through actual JSON, as the transport does."""
    return json.loads(json.dumps(obj))


class TestRequests:
    def test_make_request_defaults(self):
        req = protocol.make_request("val it = 1")
        assert req["schema"] == protocol.PROTOCOL
        assert req["backend"] == "closure"
        assert req["cache"] is True
        assert req["runtime"]["fault_plan"] is None
        assert protocol.validate_request(_roundtrip(req)) is None

    def test_tenant_travels_only_when_set(self):
        bare = protocol.make_request("val it = 1")
        assert "tenant" not in bare
        named = protocol.make_request("val it = 1", tenant="team-a")
        assert named["tenant"] == "team-a"
        assert protocol.validate_request(_roundtrip(named)) is None

    def test_rejects_bad_tenants(self):
        for tenant in ("", 7, ["a"], "x" * 129):
            req = protocol.make_request("val it = 1")
            req["tenant"] = tenant
            problem = protocol.validate_request(req)
            assert problem is not None and "tenant" in problem, tenant

    def test_rejection_reasons_have_distinct_types(self):
        types = {
            reason: protocol.rejection_response(1.0, 2, 4, reason=reason)["error"]["type"]
            for reason in ("capacity", "quota", "draining")
        }
        assert types == {"capacity": "QueueFull", "quota": "QuotaExceeded",
                         "draining": "Draining"}
        for reason in ("capacity", "quota", "draining", "chaos"):
            resp = protocol.rejection_response(1.5, 2, 4, reason=reason)
            assert resp["status"] == "rejected" and resp["retry_after"] == 1.5

    def test_flags_travel(self):
        flags = CompilerFlags(
            strategy=Strategy.RG_MINUS,
            spurious_mode=SpuriousMode.IDENTIFY,
            verify=False,
            with_prelude=False,
        )
        req = _roundtrip(protocol.make_request("val it = 1", flags=flags))
        decoded = protocol.request_flags(req)
        assert decoded.strategy is Strategy.RG_MINUS
        assert decoded.spurious_mode is SpuriousMode.IDENTIFY
        assert decoded.verify is False
        assert decoded.with_prelude is False

    def test_fault_plan_and_limits_travel(self):
        plan = FaultPlan(every=2, dealloc_every=3, kind="random", seed=7)
        req = _roundtrip(
            protocol.make_request(
                "val it = 1",
                fault_plan=plan,
                max_heap_words=4096,
                deadline_seconds=1.5,
                gc_every_alloc=True,
                generational=True,
            )
        )
        assert protocol.validate_request(req) is None
        overrides = protocol.request_runtime_overrides(req)
        assert overrides["fault_plan"] == plan
        assert overrides["max_heap_words"] == 4096
        assert overrides["deadline_seconds"] == 1.5
        assert overrides["gc_every_alloc"] is True
        assert overrides["generational"] is True

    def test_no_overrides_for_default_runtime(self):
        req = protocol.make_request("val it = 1")
        assert protocol.request_runtime_overrides(req) == {}

    def test_bytecode_backend_and_specialize_travel(self):
        req = _roundtrip(
            protocol.make_request("val it = 1", backend="bytecode", specialize=8)
        )
        assert protocol.validate_request(req) is None
        assert req["backend"] == "bytecode"
        assert protocol.request_runtime_overrides(req) == {"specialize": 8}
        # specialize=0 (disable) is a real override, not "unset".
        req = _roundtrip(protocol.make_request("val it = 1", specialize=0))
        assert protocol.validate_request(req) is None
        assert protocol.request_runtime_overrides(req) == {"specialize": 0}


class TestValidation:
    def test_rejects_non_object(self):
        assert "expected object" in protocol.validate_request([1, 2])

    def test_rejects_wrong_schema(self):
        req = protocol.make_request("val it = 1")
        req["schema"] = "repro-server/v99"
        assert "schema" in protocol.validate_request(req)

    def test_rejects_missing_source(self):
        req = protocol.make_request("val it = 1")
        del req["source"]
        assert "source" in protocol.validate_request(req)

    def test_rejects_unknown_top_level_field(self):
        req = protocol.make_request("val it = 1")
        req["max_heap_words"] = 10  # limits live under runtime; a typo'd
        # location must not silently bypass the limit
        assert "unknown request fields" in protocol.validate_request(req)

    def test_rejects_unknown_runtime_field(self):
        req = protocol.make_request("val it = 1")
        req["runtime"]["max_heap_wordz"] = 10
        assert "unknown runtime fields" in protocol.validate_request(req)

    def test_rejects_bad_limits(self):
        req = protocol.make_request("val it = 1")
        req["runtime"]["max_heap_words"] = -5
        assert "max_heap_words" in protocol.validate_request(req)
        req = protocol.make_request("val it = 1")
        req["runtime"]["deadline_seconds"] = 0
        assert "deadline_seconds" in protocol.validate_request(req)

    def test_rejects_bad_specialize(self):
        for bad in (-1, 1.5, True, "hot"):
            req = protocol.make_request("val it = 1")
            req["runtime"]["specialize"] = bad
            problem = protocol.validate_request(req)
            assert problem is not None and "specialize" in problem, bad

    def test_rejects_boolean_limits(self):
        # bool subclasses int: true must not sneak through as a 1-word
        # heap limit or a 1-second deadline.
        req = protocol.make_request("val it = 1")
        req["runtime"]["max_heap_words"] = True
        assert "max_heap_words" in protocol.validate_request(req)
        req = protocol.make_request("val it = 1")
        req["runtime"]["deadline_seconds"] = True
        assert "deadline_seconds" in protocol.validate_request(req)

    def test_rejects_bad_backend_and_strategy(self):
        req = protocol.make_request("val it = 1")
        req["backend"] = "jit"
        assert "backend" in protocol.validate_request(req)
        for backend in ("closure", "bytecode", "tree"):
            req = protocol.make_request("val it = 1", backend=backend)
            assert protocol.validate_request(req) is None, backend
        req = protocol.make_request("val it = 1")
        req["flags"]["strategy"] = "warp"
        assert protocol.validate_request(req) is not None

    def test_unknown_flags_keys_are_forward_compatible(self):
        req = protocol.make_request("val it = 1")
        req["flags"]["future_knob"] = True
        assert protocol.validate_request(req) is None


class TestResponses:
    def test_exit_status_mirrors_repro_run(self):
        assert protocol.EXIT_FOR_STATUS["ok"] == 0
        assert protocol.EXIT_FOR_STATUS["error"] == 1
        assert protocol.EXIT_FOR_STATUS["crashed"] == 1
        assert protocol.EXIT_FOR_STATUS["limit"] == 2
        assert protocol.EXIT_FOR_STATUS["timeout"] == 2

    def test_make_response_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            protocol.make_response("mystery")

    def test_rejection_shape(self):
        resp = protocol.rejection_response(2.5, depth=32, capacity=32)
        assert resp["status"] == "rejected"
        assert resp["exit_status"] == 75
        assert resp["retry_after"] == 2.5
        assert resp["error"]["type"] == "QueueFull"

    def test_invalid_shape(self):
        resp = protocol.invalid_response("nope")
        assert resp["status"] == "invalid"
        assert resp["exit_status"] == 64
        assert resp["error"]["message"] == "nope"

"""The asyncio gateway: key-affine routing, node attribution, failover
on node death and drain, membership, the fleet stats roll-up, and the
unreachable-fleet rejection.

Two harnesses: a real :class:`LocalFleet` (worker processes and all)
for the end-to-end paths, and canned stub nodes for the failure
choreography that would be slow or racy to stage with real ones."""

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.server.fleet import LocalFleet
from repro.server.gateway import Gateway, GatewayConfig
from repro.server.protocol import make_request


def _post(url, payload, timeout=60):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        url + "/v1/run", data=data, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), json.loads(exc.read())


def _get(url, path, timeout=30):
    try:
        with urllib.request.urlopen(url + path, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def fleet():
    with LocalFleet(nodes=2, workers_per_node=1, health_interval=0.25) as f:
        yield f


class TestRouting:
    def test_same_program_pins_to_one_node(self, fleet):
        request = make_request("val it = 10 * 10")
        status, headers, first = _post(fleet.gateway_url, request)
        assert status == 200 and first["status"] == "ok"
        assert first["value"] == "100"
        assert headers.get("X-Repro-Node") == first["node"]
        for _ in range(3):
            _, _, again = _post(fleet.gateway_url, request)
            assert again["node"] == first["node"]

    def test_invalid_body_is_a_400(self, fleet):
        data = b"{not json"
        request = urllib.request.Request(
            fleet.gateway_url + "/v1/run", data=data,
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=30)
        assert exc_info.value.code == 400
        body = json.loads(exc_info.value.read())
        assert body["status"] == "invalid"

    def test_malformed_but_parseable_requests_reach_a_node(self, fleet):
        # The node, not the gateway, owns request validation: a JSON
        # body with a bad schema routes (consistently) and comes back
        # as the node's own invalid response.
        status, _, body = _post(fleet.gateway_url,
                                {"schema": "nope", "source": "val it = 1"})
        assert status in (200, 400)
        assert body["status"] == "invalid"

    def test_health_lists_nodes(self, fleet):
        status, body = _get(fleet.gateway_url, "/v1/health")
        assert status == 200 and body["ok"] is True
        assert len(body["nodes"]) == 2

    def test_stats_roll_up_merges_nodes(self, fleet):
        _post(fleet.gateway_url, make_request("val it = 5 + 5"))
        status, stats = _get(fleet.gateway_url, "/v1/stats")
        assert status == 200
        assert stats["gateway"]["requests"] >= 1
        assert stats["fleet"]["nodes_reporting"] == 2
        assert stats["fleet"]["jobs"].get("ok", 0) >= 1
        latency = stats["fleet"]["latency_seconds"]
        assert latency["count"] >= 1
        assert set(latency["percentiles"]) == {"p50", "p95", "p99"}
        assert "fleet_hits" in stats["fleet"]["cache"]


class TestFailover:
    def test_node_death_fails_over_and_loses_nothing(self):
        # health_interval is huge on purpose: the kill must be
        # discovered *passively* by the failed forward itself, which is
        # the path that increments the failover counters (an active
        # poll racing in first would route around the corpse silently).
        with LocalFleet(nodes=2, workers_per_node=1,
                        health_interval=30.0) as fleet:
            request = make_request("val it = 6 * 7")
            _, _, first = _post(fleet.gateway_url, request)
            assert first["status"] == "ok"
            owner = first["node"]
            index = fleet.node_urls.index(f"http://{owner}")
            fleet.kill_node(index)
            _, _, second = _post(fleet.gateway_url, request)
            assert second["status"] == "ok" and second["value"] == "42"
            assert second["node"] != owner
            _, stats = _get(fleet.gateway_url, "/v1/stats")
            assert stats["gateway"]["failovers"] >= 1
            assert stats["nodes"][second["node"]]["failovers_absorbed"] >= 1


class _StubHandler(BaseHTTPRequestHandler):
    """A canned backend: behavior dialled per-server via attributes."""

    def _send(self, status, payload):
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self):
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        if self.server.mode == "draining":
            self._send(503, {"schema": "repro-server/v1", "status": "rejected",
                             "exit_status": 75, "retry_after": 0.01,
                             "error": {"type": "Draining", "message": "drain"}})
        elif self.server.mode == "capacity":
            self._send(503, {"schema": "repro-server/v1", "status": "rejected",
                             "exit_status": 75, "retry_after": 0.5,
                             "error": {"type": "QueueFull", "message": "full"}})
        else:
            self._send(200, {"schema": "repro-server/v1", "status": "ok",
                             "exit_status": 0, "value": "1", "stdout": "",
                             "id": "stub"})
        self.server.hits += 1

    def do_GET(self):
        if self.server.mode == "draining":
            self._send(503, {"ok": False, "draining": True})
        else:
            self._send(200, {"ok": True, "ready": True})

    def log_message(self, *args):  # silence
        pass


def _stub(mode="ok"):
    server = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
    server.mode = mode
    server.hits = 0
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


class TestFailureChoreography:
    def test_draining_node_is_skipped_without_client_impact(self):
        draining, draining_url = _stub("draining")
        healthy, healthy_url = _stub("ok")
        gateway = Gateway(GatewayConfig(
            port=0, nodes=(draining_url, healthy_url),
            health_interval=30.0))  # no poll: passive discovery only
        try:
            host, port = gateway.start()
            url = f"http://{host}:{port}"
            for _ in range(4):  # some keys will own to the draining stub
                status, _, body = _post(url, make_request("val it = 1"))
                assert status == 200 and body["status"] == "ok"
            assert healthy.hits >= 4
        finally:
            gateway.close()
            draining.shutdown()
            healthy.shutdown()

    def test_capacity_rejection_passes_through(self):
        # Backpressure is an answer, not a node failure: the gateway
        # must relay it (with Retry-After), not hammer other nodes.
        full, full_url = _stub("capacity")
        other, other_url = _stub("capacity")
        gateway = Gateway(GatewayConfig(
            port=0, nodes=(full_url, other_url), health_interval=30.0))
        try:
            host, port = gateway.start()
            status, headers, body = _post(
                f"http://{host}:{port}", make_request("val it = 1"))
            assert status == 503
            assert body["status"] == "rejected"
            assert body["error"]["type"] == "QueueFull"
            assert "Retry-After" in headers
            assert full.hits + other.hits == 1  # exactly one node asked
        finally:
            gateway.close()
            full.shutdown()
            other.shutdown()

    def test_all_nodes_dead_is_unreachable_rejection(self):
        stub, url = _stub("ok")
        stub.shutdown()
        stub.server_close()  # port released: connection refused, fast
        gateway = Gateway(GatewayConfig(
            port=0, nodes=(url,), health_interval=30.0, failover_retries=1))
        try:
            host, port = gateway.start()
            status, headers, body = _post(
                f"http://{host}:{port}", make_request("val it = 1"))
            assert status == 503
            assert body["status"] == "rejected"
            assert body["error"]["type"] == "NoHealthyNode"
            assert "Retry-After" in headers
        finally:
            gateway.close()

    def test_membership_join_and_leave(self):
        stub, url = _stub("ok")
        gateway = Gateway(GatewayConfig(port=0, nodes=(url,),
                                        health_interval=30.0))
        try:
            host, port = gateway.start()
            base = f"http://{host}:{port}"
            late, late_url = _stub("ok")
            data = json.dumps({"node": late_url}).encode()
            with urllib.request.urlopen(urllib.request.Request(
                    base + "/v1/admin/join", data=data), timeout=30) as resp:
                joined = json.loads(resp.read())
            assert joined["ok"] is True
            _, stats = _get(base, "/v1/stats")
            assert len(stats["gateway"]["ring"]["nodes"]) == 2
            with urllib.request.urlopen(urllib.request.Request(
                    base + "/v1/admin/leave", data=data), timeout=30) as resp:
                left = json.loads(resp.read())
            assert left["ok"] is True
            _, stats = _get(base, "/v1/stats")
            assert len(stats["gateway"]["ring"]["nodes"]) == 1
            late.shutdown()
        finally:
            gateway.close()
            stub.shutdown()

"""Fleet metrics registry: outcome counters, cache hit rate, RunStats
aggregation semantics (sums vs high-water maxima), histograms, and the
histogram-snapshot percentile/merge/delta algebra the gateway and
loadgen build on."""

from repro.runtime.stats import RunStats
from repro.server.metrics import (
    Histogram,
    MetricsRegistry,
    histogram_delta,
    merge_histogram_snapshots,
    percentiles_from_snapshot,
)
from repro.server.protocol import make_response


def _ok_response(steps=10, peak=100, gc=1, memory_hit=False, disk_hit=False):
    stats = RunStats(steps=steps, peak_words=peak, gc_count=gc).to_dict()
    return make_response(
        "ok", value="1", stdout="", stats=stats,
        cache={"memory_hit": memory_hit, "disk_hit": disk_hit},
    )


class TestHistogram:
    def test_buckets_are_cumulative_lower_or_equal(self):
        h = Histogram((1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        assert h.to_dict()["buckets"] == {"1.0": 2, "10.0": 1, "+inf": 1}
        assert h.to_dict()["count"] == 4
        assert h.to_dict()["max"] == 100.0


class TestRegistry:
    def test_jobs_by_outcome(self):
        reg = MetricsRegistry()
        reg.record_response(_ok_response(), wall_seconds=0.1)
        reg.record_response(make_response("error", error={"type": "X", "message": ""}))
        reg.record_response(make_response("limit", error={"type": "Y", "message": ""}))
        reg.record_rejection()
        snap = reg.snapshot()
        assert snap["jobs"] == {"error": 1, "limit": 1, "ok": 1, "rejected": 1}

    def test_run_stats_sum_counters_max_peaks(self):
        reg = MetricsRegistry()
        reg.record_response(_ok_response(steps=10, peak=500, gc=2))
        reg.record_response(_ok_response(steps=32, peak=200, gc=1))
        snap = reg.snapshot()
        assert snap["run_stats"]["steps"] == 42
        assert snap["run_stats"]["peak_words"] == 500  # max, not sum
        assert snap["run_stats"]["gc_count"] == 3
        assert snap["gc_count"] == 3
        assert snap["heap_high_water_words"] == 500
        assert snap["runs_aggregated"] == 2

    def test_cache_hit_rate(self):
        reg = MetricsRegistry()
        reg.record_response(_ok_response())  # cold
        reg.record_response(_ok_response(memory_hit=True))
        reg.record_response(_ok_response(disk_hit=True))
        reg.record_response(_ok_response(memory_hit=True))
        cache = reg.snapshot()["cache"]
        assert cache["lookups"] == 4
        assert cache["memory_hits"] == 2
        assert cache["disk_hits"] == 1
        assert cache["hit_rate"] == 0.75

    def test_cache_bypass_is_not_a_lookup(self):
        # A cache:false job's response omits the cache field entirely;
        # it must not dilute the fleet hit rate.
        reg = MetricsRegistry()
        reg.record_response(_ok_response(memory_hit=True))
        bypass = make_response("ok", value="1", stdout="",
                               stats=RunStats(steps=1).to_dict())
        reg.record_response(bypass)
        cache = reg.snapshot()["cache"]
        assert cache["lookups"] == 1
        assert cache["hit_rate"] == 1.0

    def test_partial_stats_on_limit_still_aggregate(self):
        reg = MetricsRegistry()
        partial = RunStats(steps=7, peak_words=9).to_dict()
        reg.record_response(make_response(
            "limit", error={"type": "HeapLimitError", "message": ""}, stats=partial,
        ))
        assert reg.snapshot()["run_stats"]["steps"] == 7

    def test_latency_histogram_counts_only_measured_jobs(self):
        reg = MetricsRegistry()
        reg.record_response(_ok_response(), wall_seconds=0.2)
        reg.record_response(_ok_response())  # no wall: not observed
        assert reg.snapshot()["latency_seconds"]["count"] == 1


class TestPercentiles:
    def test_uniform_observations_hit_known_quantiles(self):
        h = Histogram(tuple(x / 10 for x in range(1, 11)))
        for i in range(1, 101):           # 0.01 .. 1.00 uniformly
            h.observe(i / 100)
        p = h.to_dict()["percentiles"]
        # Linear interpolation within 0.1-wide buckets keeps every
        # estimate within one bucket width of the true quantile.
        assert abs(p["p50"] - 0.50) <= 0.1
        assert abs(p["p95"] - 0.95) <= 0.1
        assert abs(p["p99"] - 0.99) <= 0.1
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_empty_histogram_reports_none(self):
        assert percentiles_from_snapshot(Histogram((1.0,)).to_dict()) == {
            "p50": None, "p95": None, "p99": None}

    def test_single_bucket_histogram_clamps_to_observed_max(self):
        h = Histogram((1.0,))
        h.observe(0.5)
        p = h.to_dict()["percentiles"]
        # One observation in one bucket: every quantile must be the
        # observation itself, never the bucket's upper bound.
        assert p == {"p50": 0.5, "p95": 0.5, "p99": 0.5}

    def test_inf_tail_is_closed_by_observed_max(self):
        h = Histogram((1.0,))
        for v in (0.1, 0.2, 0.3, 7.0):    # one +inf straggler
            h.observe(v)
        p = h.to_dict()["percentiles"]
        assert p["p99"] <= 7.0
        assert p["p50"] <= 1.0

    def test_merge_is_count_weighted(self):
        a, b = Histogram((1.0, 2.0)), Histogram((1.0, 2.0))
        for _ in range(99):
            a.observe(0.5)
        b.observe(1.5)
        merged = merge_histogram_snapshots([a.to_dict(), b.to_dict()])
        assert merged["count"] == 100
        assert merged["buckets"] == {"1.0": 99, "2.0": 1, "+inf": 0}
        assert merged["percentiles"]["p50"] <= 1.0
        assert merged["max"] == 1.5

    def test_delta_isolates_one_window(self):
        h = Histogram((1.0, 2.0))
        h.observe(0.5)
        before = h.to_dict()
        h.observe(1.5)
        h.observe(1.6)
        delta = histogram_delta(h.to_dict(), before)
        assert delta["count"] == 2
        assert delta["buckets"]["2.0"] == 2
        assert delta["buckets"]["1.0"] == 0
        assert 1.0 <= delta["percentiles"]["p50"] <= 2.0


class TestFleetCacheCounters:
    def test_fleet_hits_count_into_hit_rate(self):
        reg = MetricsRegistry()
        reg.record_response(make_response(
            "ok", value="1", stdout="",
            cache={"memory_hit": False, "disk_hit": False, "fleet_hit": True},
        ))
        reg.record_response(_ok_response())  # cold
        cache = reg.snapshot()["cache"]
        assert cache["fleet_hits"] == 1
        assert cache["lookups"] == 2
        assert cache["hit_rate"] == 0.5

    def test_quarantine_evictions_ride_the_cache_dict(self):
        reg = MetricsRegistry()
        reg.record_response(make_response(
            "ok", value="1", stdout="",
            cache={"memory_hit": False, "disk_hit": False,
                   "quarantine_evicted": 3},
        ))
        assert reg.snapshot()["resilience"]["quarantine_evictions"] == 3


class TestResilienceCounters:
    def test_retries_drains_restarts_count(self):
        reg = MetricsRegistry()
        reg.record_retry()
        reg.record_retry()
        reg.record_drain()
        reg.record_rolling_restart()
        snap = reg.snapshot()["resilience"]
        assert snap == {"retries": 2, "drains": 1, "rolling_restarts": 1,
                        "quarantined_entries": 0, "quarantine_evictions": 0}

    def test_quarantine_flag_on_responses_is_counted(self):
        reg = MetricsRegistry()
        healed = make_response(
            "ok", value="1", stdout="",
            cache={"memory_hit": False, "disk_hit": False, "quarantined": True},
        )
        clean = make_response(
            "ok", value="1", stdout="",
            cache={"memory_hit": True, "disk_hit": False},
        )
        reg.record_response(healed)
        reg.record_response(clean)
        assert reg.snapshot()["resilience"]["quarantined_entries"] == 1

"""Fleet artifact store: content addressing, the three-layer lookup
ladder (worker LRU -> node disk -> fleet store) with promotion and
write-through, the scrub, and degradation on untrustworthy mounts."""

import os

from repro.cache import cache_key, default_cache
from repro.config import CompilerFlags
from repro.pipeline import compile_program
from repro.server import worker
from repro.server.artifacts import ArtifactStore, open_store
from repro.server.diskcache import _filename

SOURCE = "fun double x = x + x\nval it = double 21"


def _compiled(source=SOURCE):
    return compile_program(source, cache=False)


class TestContentAddressing:
    def test_address_is_the_filename_stem(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = cache_key(SOURCE, CompilerFlags())
        assert _filename(key) == ArtifactStore.address_of(key) + ".pkl"
        assert not store.contains(key)
        store.put(key, _compiled())
        assert store.contains(key)

    def test_digest_of_matches_reencoded_payload(self, tmp_path):
        import hashlib

        store = ArtifactStore(tmp_path)
        key = cache_key(SOURCE, CompilerFlags())
        store.put(key, _compiled())
        digest = store.digest_of(key)
        blob = (tmp_path / _filename(key)).read_bytes()
        payload = blob[blob.find(b"\n") + 1:]
        assert digest == hashlib.sha256(payload).hexdigest()
        assert store.digest_of(cache_key("val it = 0", CompilerFlags())) is None

    def test_cross_instance_hit(self, tmp_path):
        # Two "nodes" (instances) over one directory: node A's store is
        # node B's fleet hit.
        key = cache_key(SOURCE, CompilerFlags())
        ArtifactStore(tmp_path).put(key, _compiled())
        loaded = ArtifactStore(tmp_path).get(key)
        assert loaded is not None and loaded.run().value == 42

    def test_snapshot_is_labelled(self, tmp_path):
        snap = ArtifactStore(tmp_path).snapshot()
        assert snap["kind"] == "artifact-store"
        assert snap["root"] == str(tmp_path)


class TestScrub:
    def test_verify_all_quarantines_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        good = cache_key(SOURCE, CompilerFlags())
        bad = cache_key("val it = 3", CompilerFlags())
        store.put(good, _compiled())
        store.put(bad, _compiled("val it = 3"))
        path = tmp_path / _filename(bad)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        report = store.verify_all()
        assert report == {"verified": 1, "quarantined": 1}
        assert store.get(good) is not None
        assert not path.exists()
        # Scrub twice: idempotent, nothing left to quarantine.
        assert store.verify_all() == {"verified": 1, "quarantined": 0}


class TestOpenStore:
    def test_none_path_is_none(self):
        assert open_store(None) is None
        assert open_store("") is None

    def test_untrusted_mount_degrades_with_warning(self, tmp_path, capsys):
        hostile = tmp_path / "shared"
        hostile.mkdir()
        os.chmod(hostile, 0o777)
        assert open_store(str(hostile)) is None
        assert "artifact store disabled" in capsys.readouterr().err

    def test_good_path_opens(self, tmp_path):
        store = open_store(str(tmp_path / "artifacts"))
        assert isinstance(store, ArtifactStore)


class TestWorkerLadder:
    """compile_with_caches with all three layers attached."""

    def _init(self, tmp_path):
        worker.init_worker(str(tmp_path / "disk"), str(tmp_path / "fleet"))
        default_cache().clear()

    def teardown_method(self):
        worker.init_worker(None, None)
        default_cache().clear()

    def test_fresh_compile_writes_through_all_layers(self, tmp_path):
        self._init(tmp_path)
        program, info = worker.compile_with_caches(SOURCE, CompilerFlags())
        assert program.run().value == 42
        assert info == {"memory_hit": False, "disk_hit": False,
                        "fleet_hit": False}
        key = cache_key(SOURCE, CompilerFlags())
        assert worker._DISK_CACHE.get(key) is not None
        assert worker._ARTIFACTS.contains(key)

    def test_fleet_hit_promotes_into_node_layers(self, tmp_path):
        # Another node compiled it: only the fleet store has it.
        key = cache_key(SOURCE, CompilerFlags())
        ArtifactStore(tmp_path / "fleet").put(key, _compiled())
        self._init(tmp_path)
        program, info = worker.compile_with_caches(SOURCE, CompilerFlags())
        assert info["fleet_hit"] is True
        assert info["disk_hit"] is False and info["memory_hit"] is False
        assert program.run().value == 42
        # Promotion: the node disk cache now holds its own copy...
        assert worker._DISK_CACHE.get(key) is not None
        # ...so a sibling worker (fresh memory) hits disk, not fleet.
        default_cache().clear()
        _, info2 = worker.compile_with_caches(SOURCE, CompilerFlags())
        assert info2["disk_hit"] is True and info2["fleet_hit"] is False

    def test_disk_hit_wins_over_fleet(self, tmp_path):
        self._init(tmp_path)
        worker.compile_with_caches(SOURCE, CompilerFlags())  # seed all layers
        default_cache().clear()
        _, info = worker.compile_with_caches(SOURCE, CompilerFlags())
        assert info["disk_hit"] is True and info["fleet_hit"] is False

    def test_corrupt_fleet_entry_heals_and_flags(self, tmp_path):
        key = cache_key(SOURCE, CompilerFlags())
        fleet_dir = tmp_path / "fleet"
        ArtifactStore(fleet_dir).put(key, _compiled())
        path = fleet_dir / _filename(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xAA
        path.write_bytes(bytes(blob))
        self._init(tmp_path)
        program, info = worker.compile_with_caches(SOURCE, CompilerFlags())
        assert program.run().value == 42
        assert info.get("quarantined") is True
        assert info["fleet_hit"] is False
        # Self-healed: the recompile was written back to the store.
        assert worker._ARTIFACTS.get(key) is not None

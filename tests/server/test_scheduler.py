"""Admission control: the bounded FIFO rejects at capacity with a
retry-after hint, and the bookkeeping (queue depth, in-flight, EWMA)
tracks the pool."""

import time

from repro.server.pool import WorkerPool
from repro.server.scheduler import Rejection, Scheduler


def napper(seconds):
    time.sleep(seconds)
    return seconds


class TestAdmission:
    def test_rejects_past_capacity_with_retry_after(self):
        with WorkerPool(napper, size=1) as pool:
            sched = Scheduler(pool, capacity=2)
            first = sched.submit(0.5)
            second = sched.submit(0.5)
            assert not isinstance(first, Rejection)
            assert not isinstance(second, Rejection)
            third = sched.submit(0.0)
            assert isinstance(third, Rejection)
            assert third.retry_after > 0
            assert third.depth == 2 and third.capacity == 2
            assert sched.snapshot()["rejected"] == 1
            # Draining the backlog reopens admission.
            r1, r2 = first.result(30), second.result(30)
            sched.finish(r1, 0.5)
            sched.finish(r2, 0.5)
            fourth = sched.submit(0.0)
            assert not isinstance(fourth, Rejection)
            sched.finish(fourth.result(30), 0.01)

    def test_queue_depth_counts_admitted_not_started(self):
        with WorkerPool(napper, size=1) as pool:
            sched = Scheduler(pool, capacity=4)
            handles = [sched.submit(0.3) for _ in range(3)]
            assert all(not isinstance(h, Rejection) for h in handles)
            assert sched.in_flight == 3
            # One is running (picked up), two still queued; allow a
            # moment for the manager to pick the first one up.
            time.sleep(0.15)
            assert sched.queue_depth <= 2
            for h in handles:
                sched.finish(h.result(30), 0.3)
            assert sched.in_flight == 0
            assert sched.queue_depth == 0

    def test_ewma_tracks_service_time(self):
        with WorkerPool(napper, size=1) as pool:
            sched = Scheduler(pool, capacity=4, initial_service_seconds=1.0)
            handle = sched.submit(0.0)
            sched.finish(handle.result(30), 0.1)
            assert sched.snapshot()["ewma_service_seconds"] < 1.0

    def test_capacity_must_be_positive(self):
        import pytest

        with WorkerPool(napper, size=1) as pool:
            with pytest.raises(ValueError):
                Scheduler(pool, capacity=0)

"""Generational write barrier under injected minor collections.

The scenario Elsman-Hallenberg generational collection must survive: a
ref cell is promoted to the old generation, then ``:=`` stores a young
object into it.  A minor collection traces only the young generation —
without the remembered set fed by the write barrier, the young object
would be swept while still reachable through the old cell."""

from repro import CompilerFlags, compile_program
from repro.runtime.values import RStr
from repro.testing.faultplan import FaultPlan

FLAGS = CompilerFlags(with_prelude=False)

#: The ref cell is created early, survives several forced minors (and is
#: promoted), then receives a freshly allocated young string; more
#: allocations (hence more injected minors) follow before the read.
OLD_TO_YOUNG = (
    'val c = ref ("a" ^ "b") '
    'val filler = ("pad" ^ "ding", "pad" ^ "ding") '
    'val _ = c := ("cc" ^ "dd") '
    'val after = ("more" ^ "filler", "more" ^ "filler") '
    "val it = !c"
)


def run_with_minor_injection(every=1):
    prog = compile_program(OLD_TO_YOUNG, flags=FLAGS)
    return prog.run(
        generational=True,
        fault_plan=FaultPlan.every_nth(every, kind="minor"),
    )


class TestRememberedSet:
    def test_young_value_survives_injected_minors(self):
        result = run_with_minor_injection()
        assert isinstance(result.value, RStr)
        assert result.value.value == "ccdd"

    def test_write_barrier_recorded_the_old_to_young_write(self):
        stats = run_with_minor_injection().stats
        assert stats.remembered_writes >= 1
        assert stats.gc_minor_count > 0
        assert stats.gc_injected == stats.gc_count + stats.gc_minor_count

    def test_sparser_minor_schedule_still_correct(self):
        result = run_with_minor_injection(every=3)
        assert result.value.value == "ccdd"

    def test_random_minor_major_mix_is_correct(self):
        prog = compile_program(OLD_TO_YOUNG, flags=FLAGS)
        for seed in range(5):
            result = prog.run(
                generational=True,
                fault_plan=FaultPlan.random_plan(
                    seed, rate=0.5, dealloc_rate=0.5, kind="random"
                ),
            )
            assert result.value.value == "ccdd"

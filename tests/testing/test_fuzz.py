"""End-to-end fuzzing-harness tests: seeded determinism, corpus
reproducers, and the generator/shrinker that feed the oracle."""

import json

from repro import Strategy, compile_program
from repro.core.errors import DanglingPointerError
from repro.testing.fuzz import fuzz
from repro.testing.generate import generate_program, shrink


class TestGenerator:
    def test_same_seed_same_program(self):
        assert generate_program(123).render() == generate_program(123).render()

    def test_seeds_explore_distinct_programs(self):
        sources = {generate_program(seed).render() for seed in range(30)}
        assert len(sources) > 20

    def test_generated_programs_compile_under_rg(self):
        for seed in range(10):
            compile_program(generate_program(seed).render(), strategy=Strategy.RG)


class TestShrinker:
    def test_shrinks_while_preserving_predicate(self):
        program = generate_program(5)
        big = program.size()
        shrunk = shrink(program, lambda p: True, max_checks=100)
        assert shrunk.size() <= big
        # The fully-shrunk fixed point still renders and compiles.
        compile_program(shrunk.render(), strategy=Strategy.RG)

    def test_predicate_false_returns_program_unchanged(self):
        program = generate_program(5)
        assert shrink(program, lambda p: False).render() == program.render()


class TestFuzzLoop:
    ITERATIONS = 12

    def test_two_runs_same_seed_are_identical(self, tmp_path):
        a = fuzz(seed=1, iterations=self.ITERATIONS,
                 corpus=str(tmp_path / "a"), deadline_seconds=30.0)
        b = fuzz(seed=1, iterations=self.ITERATIONS,
                 corpus=str(tmp_path / "b"), deadline_seconds=30.0)
        assert a.runs == b.runs
        assert a.expected_dangling_programs == b.expected_dangling_programs
        assert a.dangling_beyond_every_alloc == b.dangling_beyond_every_alloc
        assert a.genuine == b.genuine
        names_a = sorted(p.split("/")[-1] for p in a.corpus_files)
        names_b = sorted(p.split("/")[-1] for p in b.corpus_files)
        assert names_a == names_b
        for name in names_a:
            assert (tmp_path / "a" / name).read_text() == (
                tmp_path / "b" / name
            ).read_text()

    def test_no_genuine_divergences(self, tmp_path):
        summary = fuzz(seed=1, iterations=self.ITERATIONS,
                       corpus=str(tmp_path / "c"), deadline_seconds=30.0)
        assert summary.ok
        assert summary.genuine == []

    def test_finds_expected_rg_minus_danglings(self, tmp_path):
        # Seed 1 surfaces the paper's bug class within a modest budget,
        # including at least one schedule gc_every_alloc misses.
        summary = fuzz(seed=1, iterations=self.ITERATIONS,
                       corpus=str(tmp_path / "d"), deadline_seconds=30.0)
        assert summary.expected_dangling_programs >= 1
        assert summary.dangling_beyond_every_alloc >= 1

    def test_corpus_reproducer_replays(self, tmp_path):
        corpus = tmp_path / "e"
        summary = fuzz(seed=1, iterations=self.ITERATIONS,
                       corpus=str(corpus), deadline_seconds=30.0)
        assert summary.corpus_files, "expected at least one reproducer"
        mml = corpus / summary.corpus_files[0].split("/")[-1]
        meta = json.loads(mml.with_suffix(".json").read_text())
        source = mml.read_text()
        assert source.startswith("(* repro-fuzz reproducer:")

        from repro.testing.faultplan import FaultPlan

        plan = FaultPlan.from_dict(meta["plan"]) if meta["plan"] else None
        prog = compile_program(source, strategy=Strategy(meta["strategy"]))
        try:
            prog.run(fault_plan=plan, generational=True, max_steps=200_000)
            dangled = False
        except DanglingPointerError:
            dangled = True
        assert dangled == (meta["classification"] == "expected-rg-minus-dangling")

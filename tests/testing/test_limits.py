"""Resource limits: a runaway program must fail fast with a typed error
carrying partial statistics — never hang the harness."""

import pytest

from repro import (
    CompilerFlags,
    DeadlineExceeded,
    HeapLimitError,
    InterpreterLimit,
    compile_program,
)

#: Builds an ever-growing live list: the collector can reclaim nothing,
#: so the heap footprint must cross any bound long before the call-depth
#: limit (each iteration allocates a cons + a pair but is one frame).
UNBOUNDED_LIST = "fun grow n xs = grow (n + 1) ((n, n) :: xs) val it = grow 0 nil"

#: Allocation-free spin: only the wall clock can stop it early.
SPIN = "fun spin n = spin (n + 1) val it = spin 0"

FLAGS = CompilerFlags(with_prelude=False)


class TestHeapLimit:
    def test_unbounded_list_hits_heap_limit(self):
        prog = compile_program(UNBOUNDED_LIST, flags=FLAGS)
        with pytest.raises(HeapLimitError) as exc_info:
            prog.run(max_heap_words=5_000)
        assert "5000" in str(exc_info.value)

    def test_heap_limit_error_carries_partial_stats(self):
        prog = compile_program(UNBOUNDED_LIST, flags=FLAGS)
        with pytest.raises(HeapLimitError) as exc_info:
            prog.run(max_heap_words=5_000)
        stats = exc_info.value.stats
        assert stats is not None
        assert stats.allocations > 0
        assert stats.allocated_words >= 5_000
        assert stats.steps > 0

    def test_heap_limit_is_a_limit_not_a_bug(self):
        prog = compile_program(UNBOUNDED_LIST, flags=FLAGS)
        with pytest.raises(InterpreterLimit):
            prog.run(max_heap_words=5_000)

    def test_live_data_below_limit_is_fine(self):
        src = "fun up n = if n = 0 then nil else n :: up (n - 1) val it = up 50"
        prog = compile_program(src, flags=FLAGS)
        result = prog.run(max_heap_words=1_000_000)
        assert result.stats.peak_words < 1_000_000


class TestDeadline:
    def test_spin_hits_deadline(self):
        prog = compile_program(SPIN, flags=FLAGS)
        with pytest.raises(DeadlineExceeded) as exc_info:
            prog.run(deadline_seconds=0.1, max_steps=10**9, max_depth=10**9)
        assert exc_info.value.stats is not None
        assert exc_info.value.stats.steps > 0

    def test_fast_program_beats_deadline(self):
        prog = compile_program("val it = 1 + 2", flags=FLAGS)
        assert prog.run(deadline_seconds=10.0).value == 3


class TestStepAndDepthCarryStats:
    def test_max_steps_limit_carries_stats(self):
        prog = compile_program(SPIN, flags=FLAGS)
        with pytest.raises(InterpreterLimit) as exc_info:
            prog.run(max_steps=500)
        assert exc_info.value.stats is not None
        assert exc_info.value.stats.steps >= 500

"""The differential oracle: benign programs agree everywhere; the
escaping-composition program dangles under rg- — and only through an
injected deallocation-point schedule, the class gc_every_alloc misses."""

from repro.testing.differential import (
    CLASS_EXPECTED_DANGLING,
    default_plan_matrix,
    run_differential,
)
from repro.testing.faultplan import GC_EVERY_ALLOC

#: Figure-1-style escaping composition: the closure `h` captures a string
#: whose region dies at the inner `end`; the dangle window before `h ()`
#: contains no allocation, so only a deallocation-point GC can observe it.
ESCAPING = (
    'val it = let val h = let val x = "oh" ^ "no" in '
    "(op o) (fn u => 0, fn () => x) end in h () end"
)

BENIGN = (
    "fun up n = if n = 0 then nil else n :: up (n - 1) "
    "fun total xs = if null xs then 0 else hd xs + total (tl xs) "
    "val it = total (up 10)"
)


class TestBenignPrograms:
    def test_no_divergence_across_the_full_matrix(self):
        report = run_differential(BENIGN, seed=0)
        assert report.reference is not None
        assert report.reference.status == "value"
        assert report.divergences == []
        assert not report.inconclusive
        # 4 GC strategies x 2 modes x 6 plans + r x 2 modes x 1 + reference
        assert report.runs == 4 * 2 * 6 + 2 + 1

    def test_arithmetic_only_program_agrees(self):
        report = run_differential("val it = (1 + 2) * 3", seed=0)
        assert report.divergences == []

    def test_backend_column_triples_the_runs(self):
        """The backend column: every cell runs under all three
        evaluators, and a benign program still diverges nowhere."""
        backends = ("closure", "bytecode", "tree")
        report = run_differential(BENIGN, seed=0, backends=backends)
        assert report.divergences == []
        # (4 GC strategies x 2 modes x 6 plans + r x 2 modes) x 3 + ref
        assert report.runs == (4 * 2 * 6 + 2) * 3 + 1


class TestEscapingComposition:
    def test_rg_minus_dangles_beyond_every_alloc(self):
        report = run_differential(ESCAPING, seed=0)
        # The only divergences are the paper's expected rg- danglings.
        assert report.genuine == []
        assert report.expected_danglings
        for d in report.expected_danglings:
            assert d.strategy == "rg-"
            assert d.classification == CLASS_EXPECTED_DANGLING
        # ... and none of them is reachable through gc_every_alloc: the
        # dangle window is allocation-free.
        assert report.dangling_beyond_every_alloc()
        assert all(
            d.plan != GC_EVERY_ALLOC for d in report.expected_danglings
        )

    def test_dangling_schedules_are_dealloc_plans(self):
        report = run_differential(ESCAPING, seed=0)
        for d in report.expected_danglings:
            assert d.plan is not None
            assert d.plan.dealloc_every or d.plan.dealloc_rate > 0.0

    def test_bytecode_backend_observes_the_same_dangles(self):
        """The expected rg- dangle is backend-independent: with the
        backend column enabled every dangling (strategy, mode, plan)
        cell dangles under all three evaluators."""
        backends = ("closure", "bytecode", "tree")
        report = run_differential(ESCAPING, seed=0, backends=backends)
        assert report.genuine == []
        dangles = report.expected_danglings
        assert dangles
        cells = {(d.strategy, d.mode, d.plan) for d in dangles}
        for cell in cells:
            seen = {d.backend for d in dangles
                    if (d.strategy, d.mode, d.plan) == cell}
            assert seen == set(backends), cell


class TestMatrix:
    def test_default_matrix_is_deterministic_per_seed(self):
        assert default_plan_matrix(7) == default_plan_matrix(7)
        assert default_plan_matrix(7) != default_plan_matrix(8)

    def test_default_matrix_covers_both_gc_point_families(self):
        plans = [p for p in default_plan_matrix(0) if p is not None]
        assert any(p.every or p.at or p.rate for p in plans)
        assert any(p.dealloc_every or p.dealloc_rate for p in plans)
        assert GC_EVERY_ALLOC in plans

    def test_compile_error_is_inconclusive(self):
        report = run_differential("val it = undefined_name", seed=0)
        assert report.inconclusive
        # An uncompilable program is not a divergence — there is nothing
        # to compare.
        assert report.divergences == []
        assert report.reference.status == "fault"

"""Unit tests for seeded GC fault plans: determinism, the constructor
shorthands, the gc_every_alloc alias, and JSON round-tripping."""

import pytest

from repro import Strategy, compile_program
from repro.testing.faultplan import GC_EVERY_ALLOC, FaultPlan


class TestDecisions:
    def test_every_nth_fires_on_exact_cadence(self):
        plan = FaultPlan.every_nth(3)
        fired = [i for i in range(12) if plan.decide_alloc(i)]
        assert fired == [2, 5, 8, 11]

    def test_every_one_fires_everywhere(self):
        plan = FaultPlan.every_nth(1)
        assert all(plan.decide_alloc(i) for i in range(20))

    def test_at_indices_fires_only_there(self):
        plan = FaultPlan.at_indices([7, 2])
        fired = [i for i in range(10) if plan.decide_alloc(i)]
        assert fired == [2, 7]

    def test_dealloc_points_are_a_separate_family(self):
        plan = FaultPlan.every_dealloc(2)
        assert [i for i in range(6) if plan.decide_dealloc(i)] == [1, 3, 5]
        assert not any(plan.decide_alloc(i) for i in range(20))

    def test_kind_is_propagated(self):
        assert FaultPlan.every_nth(1, kind="minor").decide_alloc(0) == "minor"
        assert FaultPlan.every_dealloc(1, kind="major").decide_dealloc(0) == "major"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(kind="sideways")


class TestDeterminism:
    def test_random_plan_is_a_pure_function_of_seed_and_index(self):
        a = FaultPlan.random_plan(seed=42, rate=0.3, kind="random")
        b = FaultPlan.random_plan(seed=42, rate=0.3, kind="random")
        assert [a.decide_alloc(i) for i in range(200)] == [
            b.decide_alloc(i) for i in range(200)
        ]

    def test_different_seeds_give_different_schedules(self):
        a = FaultPlan.random_plan(seed=1, rate=0.3)
        b = FaultPlan.random_plan(seed=2, rate=0.3)
        assert [bool(a.decide_alloc(i)) for i in range(200)] != [
            bool(b.decide_alloc(i)) for i in range(200)
        ]

    def test_random_rate_fires_roughly_at_rate(self):
        plan = FaultPlan.random_plan(seed=0, rate=0.25)
        hits = sum(1 for i in range(2000) if plan.decide_alloc(i))
        assert 350 < hits < 650

    def test_random_kind_mixes_minor_and_major(self):
        plan = FaultPlan.every_nth(1, kind="random")
        kinds = {plan.decide_alloc(i) for i in range(50)}
        assert kinds == {"minor", "major"}


class TestAliasEquivalence:
    """gc_every_alloc is one point in the plan space: the legacy flag and
    FaultPlan.every_nth(1) must produce identical executions."""

    SRC = (
        'fun mk s = fn () => s ^ "!" '
        'val f = mk ("he" ^ "llo") '
        "val it = size (f ()) + size (f ())"
    )

    def _run(self, **overrides):
        from repro.config import CompilerFlags

        prog = compile_program(
            self.SRC, flags=CompilerFlags(with_prelude=False)
        )
        return prog.run(**overrides)

    def test_gc_every_alloc_equals_every_nth_1(self):
        legacy = self._run(gc_every_alloc=True)
        plan = self._run(fault_plan=GC_EVERY_ALLOC)
        assert legacy.value == plan.value
        assert legacy.stats.gc_count == plan.stats.gc_count
        assert legacy.stats.allocations == plan.stats.allocations
        # The plan path additionally accounts its injections.
        assert plan.stats.gc_injected == plan.stats.gc_count

    def test_plan_overrides_policy_and_legacy_flag(self):
        # An explicit (empty) plan disables both the heap-to-live policy
        # and gc_every_alloc: the seed alone determines the schedule.
        never = self._run(fault_plan=FaultPlan(), gc_every_alloc=True)
        assert never.stats.gc_count == 0


class TestPersistence:
    def test_round_trip_through_dict(self):
        plan = FaultPlan(
            every=3, at=(1, 5), rate=0.1, dealloc_every=2,
            dealloc_rate=0.5, seed=9, kind="random",
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_describe_mentions_every_component(self):
        desc = FaultPlan(every=2, dealloc_rate=0.5, seed=3, kind="major").describe()
        assert "alloc%2" in desc and "dealloc~0.5" in desc and "seed=3" in desc
        assert FaultPlan().describe() == "policy"

    def test_plans_are_hashable_for_flag_embedding(self):
        assert len({GC_EVERY_ALLOC, FaultPlan.every_nth(1), FaultPlan()}) == 2

    def test_json_round_trip(self):
        import json

        plan = FaultPlan(every=4, at=(2, 8), dealloc_at=(1,), seed=11, kind="minor")
        wire = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(wire) == plan

    def test_from_dict_ignores_unknown_keys(self):
        data = FaultPlan(every=2).to_dict()
        data["from_a_newer_schema"] = True
        assert FaultPlan.from_dict(data) == FaultPlan(every=2)

    def test_from_dict_restores_tuple_indices_from_json_lists(self):
        # JSON has no tuples: `at` arrives as a list and must come back
        # hashable (plans embed into CompilerFlags).
        plan = FaultPlan.from_dict({"at": [3, 1], "dealloc_at": [7]})
        assert plan.at == (3, 1) and plan.dealloc_at == (7,)
        hash(plan)

"""Replay the committed fuzz-corpus reproducers.

``tests/corpus/`` holds shrunk-or-whole reproducers harvested from the
differential fuzzer, one per new grammar construct (monomorphic and
polymorphic parameterized exceptions, int and string arrays).  Each is
an *expected* ``rg-`` dangling — the paper's bug class — so the replay
oracle is two-sided: ``rg-`` must still dangle under the recorded GC
schedule, and ``rg`` must stay clean with the same rendered value on
every backend."""

import json
from pathlib import Path

import pytest

from repro import Strategy, compile_program
from repro.core.errors import DanglingPointerError
from repro.runtime.values import show_value
from repro.testing.faultplan import FaultPlan

CORPUS = Path(__file__).resolve().parents[1] / "corpus"
REPRODUCERS = sorted(CORPUS.glob("*.mml"))

CONSTRUCT_MARKERS = {
    "exn-mono": "exception Bang",
    "exn-poly": "exception Alt",
    "array-int": "val arr = array",
    "array-str": "val sa = array",
}

LIMITS = dict(generational=True, max_steps=200_000, max_heap_words=2_000_000)


def _meta(mml: Path) -> dict:
    return json.loads(mml.with_suffix(".json").read_text())


def test_corpus_is_committed_and_covers_every_new_construct():
    assert len(REPRODUCERS) >= 3
    by_tag = {
        tag: [p for p in REPRODUCERS if marker in p.read_text()]
        for tag, marker in CONSTRUCT_MARKERS.items()
    }
    missing = [tag for tag, hits in by_tag.items() if not hits]
    assert not missing, f"corpus lacks reproducers for {missing}"


@pytest.mark.parametrize("mml", REPRODUCERS, ids=lambda p: p.stem)
def test_reproducer_format(mml):
    source = mml.read_text()
    assert source.startswith("(* repro-fuzz reproducer:")
    meta = _meta(mml)
    assert meta["classification"] == "expected-rg-minus-dangling"
    assert meta["strategy"] == "rg-"


@pytest.mark.parametrize("mml", REPRODUCERS, ids=lambda p: p.stem)
def test_rg_minus_still_dangles_under_recorded_schedule(mml):
    meta = _meta(mml)
    plan = FaultPlan.from_dict(meta["plan"]) if meta["plan"] else None
    prog = compile_program(mml.read_text(), strategy=Strategy(meta["strategy"]))
    with pytest.raises(DanglingPointerError):
        prog.run(fault_plan=plan, **LIMITS)


@pytest.mark.parametrize("mml", REPRODUCERS, ids=lambda p: p.stem)
def test_rg_stays_clean_and_bit_identical_across_backends(mml):
    meta = _meta(mml)
    plan = FaultPlan.from_dict(meta["plan"]) if meta["plan"] else None
    prog = compile_program(mml.read_text(), strategy=Strategy.RG)
    rendered = {
        backend: show_value(prog.run(backend=backend, fault_plan=plan, **LIMITS).value)
        for backend in ("tree", "closure", "bytecode")
    }
    assert len(set(rendered.values())) == 1, rendered

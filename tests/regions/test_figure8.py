"""Figure 8: tracking spurious type-variable *dependencies* — a type
variable instantiated for another spurious type variable becomes spurious
itself (Section 4.3)."""

import pytest

from repro import DanglingPointerError, Strategy, compile_program
from repro.core.rtypes import PiScheme, show_scheme

FIG8 = """
fun g (f : unit -> 'a) : unit -> unit =
  op o (let val x = f ()
        in (fn x => (), fn () => x)
        end)
fun work n = if n = 0 then nil else n :: work (n - 1)
val h = g (fn () => "oh" ^ "no")
val _ = work 200
val it = h ()
"""


def _scheme_of(prog, name):
    from repro.core import terms as T

    out = []

    def walk(t):
        if isinstance(t, T.FunDef):
            if t.fname == name:
                out.append(t.pi)
            walk(t.body)
            return
        for c in T.iter_children(t):
            walk(c)

    walk(prog.term)
    return out[0]


class TestFigure8:
    def test_g_is_spurious_by_transitivity(self):
        """'a never occurs in the type of a variable captured by one of
        g's lambdas — it becomes spurious because it is instantiated for
        o's spurious type variable."""
        prog = compile_program(FIG8, strategy=Strategy.RG)
        assert "g" in prog.spurious.spurious_function_names

    def test_g_scheme_has_delta_entry(self):
        prog = compile_program(FIG8, strategy=Strategy.RG)
        pi = _scheme_of(prog, "g")
        assert isinstance(pi, PiScheme)
        assert len(pi.scheme.delta) == 1, show_scheme(pi.scheme)

    def test_rg_verifies_and_runs(self):
        prog = compile_program(FIG8, strategy=Strategy.RG)
        assert prog.verification_error is None
        prog.run(gc_every_alloc=True)

    def test_rg_minus_fails_statically(self):
        prog = compile_program(FIG8, strategy=Strategy.RG_MINUS)
        assert prog.verification_error is not None

    def test_rg_minus_dangles_at_runtime(self):
        prog = compile_program(FIG8, strategy=Strategy.RG_MINUS)
        with pytest.raises(DanglingPointerError):
            prog.run(gc_every_alloc=True)

    def test_string_forced_into_longlived_region_under_rg(self):
        """The paper: "the string 'ohno' is rightfully forced into a global
        region".  Structurally: under rg the string's region must outlive
        the call to work, so peak memory while h is live retains it; the
        program completes and h() returns unit."""
        prog = compile_program(FIG8, strategy=Strategy.RG)
        res = prog.run()
        from repro.runtime.values import Unit

        assert isinstance(res.value, Unit)


class TestExceptionTyvars:
    """Section 4.4: a type variable in a local exception's payload type
    must be treated as spurious and pinned to top-level regions."""

    FIND = """
    fun find (p : 'a -> bool) (xs : 'a list) =
      let exception Found of 'a
          fun go ys = if null ys then nil
                      else if p (hd ys) then raise Found (hd ys)
                      else go (tl ys)
      in go xs handle Found v => v :: nil end
    val it = hd (find (fn s => size s > 1) ["a", "bb", "c"])
    """

    def test_exception_program_runs_under_rg(self):
        prog = compile_program(self.FIND, strategy=Strategy.RG)
        assert prog.verification_error is None
        res = prog.run(gc_every_alloc=True)
        from repro.runtime.values import RStr

        assert isinstance(res.value, RStr) and res.value.value == "bb"

    def test_escaping_exception_value_is_safe_under_rg(self):
        """A raised value escapes the dynamic extent of the function that
        allocated its payload; rg pins the payload regions to top level
        so collection while the handler holds it is safe."""
        src = """
        fun work n = if n = 0 then nil else n :: work (n - 1)
        exception Out of string
        fun mk () = raise Out ("es" ^ "cape")
        val s = (let val _ = mk () in "no" end) handle Out v => v
        val _ = work 200
        val it = size s
        """
        prog = compile_program(src, strategy=Strategy.RG)
        res = prog.run(gc_every_alloc=True)
        assert res.value == 6

    def test_handlers_rethrow_other_exceptions(self):
        src = """
        exception A
        exception B
        val it = (raise A) handle B => 1
        """
        from repro.core.errors import MLExceptionError

        prog = compile_program(src, strategy=Strategy.RG)
        with pytest.raises(MLExceptionError, match="A"):
            prog.run()

    def test_generative_exceptions(self):
        """Two evaluations of the same local exception declaration yield
        distinct constructors (SML generativity)."""
        src = """
        fun mk (u : unit) =
          let exception E
          in (fn () => raise E, fn (f : unit -> int) => (f () handle E => 1))
          end
        val (r1, h1) = mk ()
        val (r2, h2) = mk ()
        val it = h1 (fn () => r2 ()) handle E => 99
        """
        # r2's E is not h1's E: the handler must NOT catch it; the
        # top-level handle has no matching E either... we declare one:
        src = "exception E\n" + src
        from repro.core.errors import MLExceptionError

        prog = compile_program(src, strategy=Strategy.RG)
        with pytest.raises(MLExceptionError):
            prog.run()

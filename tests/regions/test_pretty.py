"""The pretty printer must render every construct in the paper's notation
and never crash on real inference output."""

import glob

import pytest

from repro import CompilerFlags, Strategy, compile_program
from repro.regions.pretty import pretty_program


class TestNotation:
    def _pretty(self, src, **kw):
        return compile_program(src, flags=CompilerFlags(with_prelude=False, **kw)).pretty()

    def test_letregion_and_at(self):
        text = self._pretty("fun f n = let val p = (n, n) in #1 p end val it = f 1")
        assert "letregion r" in text
        assert ") at r" in text

    def test_region_application_brackets(self):
        text = self._pretty("fun mk n = (n, n) val it = #1 (mk 2)")
        assert "mk [" in text and "] at " in text

    def test_scheme_comments_toggle(self):
        prog = compile_program(
            "fun id x = x val it = id 1", flags=CompilerFlags(with_prelude=False)
        )
        with_schemes = prog.pretty(schemes=True)
        without = prog.pretty(schemes=False)
        assert "(* id : (all " in with_schemes
        assert "(* id" not in without

    def test_datatype_declaration_rendered(self):
        text = self._pretty(
            "datatype t = A | B of int\n"
            "val it = case B 3 of A => 0 | B n => n"
        )
        assert "datatype t = A | B of int" in text
        assert "case " in text
        assert "B n =>" in text

    def test_exception_forms(self):
        text = self._pretty(
            "exception E of int\n"
            "val it = (raise E 3) handle E n => n"
        )
        assert "exception E of int" in text
        assert "raise" in text and "handle E n" in text

    def test_string_literal_with_region(self):
        text = self._pretty('val it = "hi"')
        assert '"hi" at ' in text

    @pytest.mark.parametrize(
        "path", sorted(glob.glob("benchmarks/programs/*.mml"))[:6],
        ids=lambda p: p.split("/")[-1],
    )
    def test_never_crashes_on_benchmarks(self, path):
        prog = compile_program(open(path).read(), strategy=Strategy.RG)
        text = prog.pretty()
        assert len(text) > 100


class TestEffectBasisValidation:
    """The frozen program's arrow effects form a functional, transitive
    effect basis (Section 3.5's consistency conditions)."""

    @pytest.mark.parametrize("src", [
        "fun f x = x + 1 val it = f 1",
        "fun o2 (f, g) = fn x => f (g x) val it = o2 (fn a => a, fn b => b) 9",
        "fun map2 f xs = if null xs then nil else f (hd xs) :: map2 f (tl xs) "
        "val it = length (map2 (fn x => x) [1,2])",
    ])
    def test_basis_consistent(self, src):
        from repro.core import terms as T
        from repro.core.effects import EffectBasis
        from repro.core.rtypes import MuBoxed, TauArrow

        prog = compile_program(src)
        basis = EffectBasis()

        def record_mu(mu):
            if isinstance(mu, MuBoxed):
                tau = mu.tau
                if isinstance(tau, TauArrow):
                    basis.record(tau.arrow)  # raises if not functional
                    record_mu(tau.dom)
                    record_mu(tau.cod)
                elif hasattr(tau, "fst"):
                    record_mu(tau.fst)
                    record_mu(tau.snd)
                elif hasattr(tau, "elem"):
                    record_mu(tau.elem)

        def walk(t):
            if isinstance(t, T.Lam):
                record_mu(t.mu)
            if isinstance(t, T.FunDef):
                record_mu(MuBoxed(t.pi.scheme.body, t.pi.rho))
            for c in T.iter_children(t):
                walk(c)

        walk(prog.term)
        assert basis.check_transitive() == []

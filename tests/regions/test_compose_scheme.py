"""The region type scheme region inference assigns to the composition
function `o` must have the structure of the paper's type scheme (2):

    all e e0 e1 e2 e' r0 r1 r2 r3 a b (c : e'.{}) .
      ((c -e2.{}-> b, r2) * (a -e1.{}-> c, r1), r0)
        -e0.{r0,r3}->
      (a -e.{e1,e2,e',r1,r2}-> b, r3)
"""

import pytest

from repro import CompilerFlags, SpuriousMode, compile_program
from repro.core import terms as T
from repro.core.rtypes import (
    MuBoxed,
    MuVar,
    PiScheme,
    TauArrow,
    TauPair,
)


def compose_pi() -> PiScheme:
    prog = compile_program("val it = 0")

    def find(t):
        if isinstance(t, T.FunDef):
            if t.fname == "o":
                return t.pi
            return find(t.body)
        for child in T.iter_children(t):
            out = find(child)
            if out is not None:
                return out
        return None

    pi = find(prog.term)
    assert pi is not None
    return pi


class TestComposeScheme:
    def test_shape(self):
        pi = compose_pi()
        sigma = pi.scheme
        arrow = sigma.body
        assert isinstance(arrow, TauArrow)
        dom = arrow.dom
        cod = arrow.cod
        assert isinstance(dom, MuBoxed) and isinstance(dom.tau, TauPair)
        assert isinstance(cod, MuBoxed) and isinstance(cod.tau, TauArrow)

    def test_quantifies_four_regions(self):
        sigma = compose_pi().scheme
        # r_f, r_g (argument closures), r_pair, r_result
        assert len(sigma.rvars) == 4

    def test_gamma_is_the_only_spurious_tyvar(self):
        sigma = compose_pi().scheme
        assert len(sigma.delta) == 1
        assert len(sigma.tvars) == 2  # alpha and beta are plain

    def test_gamma_has_empty_latent_secondary_effect(self):
        """Scheme (2): gamma's arrow effect is a *secondary* effect
        variable with an empty latent set."""
        sigma = compose_pi().scheme
        ((_gamma, ae),) = sigma.delta.items()
        assert ae.latent == frozenset()
        assert ae.handle in sigma.evars

    def test_secondary_handle_in_result_arrow_latent(self):
        """The mechanism of Section 2: e' occurs in the latent effect of
        the result function type, so coverage constraints on gamma's
        instances become visible in the composed closure's type."""
        sigma = compose_pi().scheme
        ((_gamma, ae),) = sigma.delta.items()
        cod = sigma.body.cod
        assert ae.handle in cod.tau.arrow.latent

    def test_argument_arrow_handles_in_result_latent(self):
        """e1 and e2 (applying the two argument functions) are in the
        result arrow's latent effect."""
        sigma = compose_pi().scheme
        dom = sigma.body.dom
        f_mu, g_mu = dom.tau.fst, dom.tau.snd
        latent = sigma.body.cod.tau.arrow.latent
        assert f_mu.tau.arrow.handle in latent
        assert g_mu.tau.arrow.handle in latent
        # ... and so are the regions the two closures live in.
        assert f_mu.rho in latent
        assert g_mu.rho in latent

    def test_pair_region_not_in_result_latent(self):
        """The argument pair is deconstructed before the closure is built:
        r0 appears in the outer arrow's effect but not in the result
        function's latent effect (the pair may die early)."""
        sigma = compose_pi().scheme
        dom = sigma.body.dom
        latent = sigma.body.cod.tau.arrow.latent
        assert dom.rho not in latent
        assert dom.rho in sigma.body.arrow.latent

    def test_result_region_in_outer_effect(self):
        sigma = compose_pi().scheme
        cod = sigma.body.cod
        assert cod.rho in sigma.body.arrow.latent

    def test_domain_and_codomain_tyvars_are_plain(self):
        sigma = compose_pi().scheme
        cod_arrow = sigma.body.cod.tau
        assert isinstance(cod_arrow.dom, MuVar)
        assert isinstance(cod_arrow.cod, MuVar)
        plain = set(sigma.tvars)
        assert cod_arrow.dom.alpha in plain
        assert cod_arrow.cod.alpha in plain

    def test_identify_mode_scheme3(self):
        """SpuriousMode.IDENTIFY produces the paper's scheme (3): gamma's
        effect handle may be identified with (or at least appear without a
        dedicated secondary variable in) the result arrow effect — we
        check it still verifies and is spurious."""
        prog = compile_program(
            "val it = 0", flags=CompilerFlags(spurious_mode=SpuriousMode.IDENTIFY)
        )
        assert prog.verification_error is None
        assert "o" in prog.spurious.spurious_function_names

"""Unit tests for the region-representation analyses (Section 4.2):
multiplicity (finite vs infinite regions), drop-regions, and letregion
placement."""

import pytest

from repro import CompilerFlags, Strategy, compile_program
from repro.core import terms as T

FLAGS = CompilerFlags(with_prelude=False)


def compiled(src: str, **kw):
    from dataclasses import replace

    return compile_program(src, flags=replace(FLAGS, **kw))


def find_fundef(term, name):
    if isinstance(term, T.FunDef):
        if term.fname == name:
            return term
        return find_fundef(term.body, name)
    for child in T.iter_children(term):
        out = find_fundef(child, name)
        if out is not None:
            return out
    return None


def letregions_of(term, out=None):
    if out is None:
        out = []
    if isinstance(term, T.Letregion):
        out.append(term)
    for child in T.iter_children(term):
        letregions_of(child, out)
    return out


class TestMultiplicity:
    def test_single_pair_region_is_finite(self):
        prog = compiled("fun f x = let val p = (x, x) in #1 p end val it = f 1")
        assert len(prog.multiplicity.finite) >= 1

    def test_list_spine_region_is_infinite(self):
        prog = compiled(
            "fun build n = if n = 0 then nil else n :: build (n - 1) "
            "fun len xs = if null xs then 0 else 1 + len (tl xs) "
            "val it = len (build 5)"
        )
        # the spine receives many cons cells: must be infinite
        assert len(prog.multiplicity.infinite) >= 1

    def test_allocation_under_lambda_is_infinite(self):
        """A region bound outside a lambda but allocated into inside it can
        receive one value per call: infinite."""
        src = (
            "fun f x = x "
            "val g = fn n => (n, n) "
            "val it = #1 (g 1) + #1 (g 2)"
        )
        prog = compiled(src)
        # the pair region of g's body lives outside g (result region is a
        # region parameter or outer): every classification must be sound —
        # run under gc-every-alloc to be sure.
        prog.run(gc_every_alloc=True)

    def test_finite_sizes_are_positive(self):
        prog = compiled("val p = (1, (2, 3)) val it = #1 p")
        for words in prog.multiplicity.finite.values():
            assert words >= 1

    def test_multiplicity_off_runs_identically(self):
        src = "fun f n = if n = 0 then nil else (n, n) :: f (n - 1) val it = length (f 5)"
        src = (
            "fun length2 xs = if null xs then 0 else 1 + length2 (tl xs) "
            + src.replace("length", "length2")
        )
        a = compiled(src).run()
        b = compiled(src, multiplicity=False).run()
        assert a.value == b.value
        assert b.stats.finite_allocations == 0


class TestDropRegions:
    def test_read_only_parameter_is_dropped(self):
        """A function that only reads its list argument needs no region
        arguments for it."""
        src = (
            "fun sum xs = if null xs then 0 else hd xs + sum (tl xs) "
            "val it = sum [1, 2, 3]"
        )
        prog = compiled(src)
        res = prog.run()
        assert res.stats.dropped_region_passes > 0

    def test_put_parameter_is_kept(self):
        """A function that allocates its result into a parameter region
        must receive it."""
        src = "fun dup x = (x, x) val it = #1 (dup 3) + #2 (dup 4)"
        prog = compiled(src)
        fd = find_fundef(prog.term, "dup")
        dropped = prog.drop_regions.dropped_indices_for(id(fd))
        kept = set(range(len(fd.rparams))) - set(dropped)
        assert kept, "the result-pair region parameter must be kept"

    def test_interprocedural_propagation(self):
        """f passes its parameter region to g which allocates into it:
        f's parameter must be kept too."""
        src = (
            "fun g x = (x, x) "
            "fun f y = g y "
            "val it = #1 (f 7)"
        )
        prog = compiled(src)
        fd = find_fundef(prog.term, "f")
        dropped = prog.drop_regions.dropped_indices_for(id(fd))
        # f's result region flows to g's allocating parameter
        assert len(dropped) < len(fd.rparams) or not fd.rparams

    def test_dropping_preserves_results(self):
        src = (
            "fun sum xs = if null xs then 0 else hd xs + sum (tl xs) "
            "val it = sum [5, 6, 7]"
        )
        with_drop = compiled(src).run()
        without = compiled(src, drop_regions=False).run()
        assert with_drop.value == without.value == 18
        assert without.stats.dropped_region_passes == 0


class TestLetregionPlacement:
    def test_local_temporary_gets_a_letregion(self):
        src = "fun f n = let val p = (n, n) in #1 p + #2 p end val it = f 3"
        prog = compiled(src)
        fd = find_fundef(prog.term, "f")
        assert letregions_of(fd.body), "the pair region should be body-local"

    def test_escaping_value_has_no_local_letregion(self):
        """A pair returned from the function must NOT be letregion-bound
        inside it."""
        src = "fun mk n = (n, n) val it = #1 (mk 2)"
        prog = compiled(src)
        fd = find_fundef(prog.term, "mk")
        for lr in letregions_of(fd.body):
            assert fd.pi.scheme.body.cod.rho not in lr.rhos

    def test_letregions_nest_lifo_at_runtime(self):
        src = (
            "fun f n = let val a = (n, 1) in "
            "  let val b = (n, 2) in #1 a + #1 b end end "
            "val it = f 10"
        )
        prog = compiled(src)
        res = prog.run()
        assert res.stats.letregions >= 1
        assert res.stats.max_region_stack >= 2

    def test_recursive_call_regions_follow_the_stack_discipline(self):
        """Non-tail recursion keeps each level's letregion on the region
        stack until the level returns (the lexical stack discipline), and
        everything is reclaimed without a single collection."""
        src = (
            "fun loop n = if n = 0 then 0 "
            "else let val t = (n, n) in #1 t + loop (n - 1) end "
            "val it = loop 200"
        )
        res = compiled(src).run()
        assert res.stats.gc_count == 0
        # one live pair per active level, all reclaimed on return
        assert res.stats.max_region_stack > 150
        assert res.stats.peak_words <= 2 * 201
        assert res.stats.current_words == 0

    def test_tail_like_temporary_is_reclaimed_per_iteration(self):
        """When the temporary dies before the recursive call is made
        within the same letregion, peak memory still tracks the stack
        depth of the region, not the data: each level holds one pair."""
        src = (
            "fun loop (n, acc) = if n = 0 then acc "
            "else loop (n - 1, acc + n) "
            "val it = loop (300, 0)"
        )
        res = compiled(src).run()
        # the argument pair of each call is the only allocation
        assert res.stats.peak_words < 2500
        assert res.stats.gc_count == 0

"""The spurious-type-variable statistics behind Figure 9's fcns/inst
columns, and the Section 4.2 Basis claims (see also
tests/integration/test_figure1.py::TestBasisSpuriousClaim)."""

import pytest

from repro import CompilerFlags, SpuriousMode, Strategy, compile_program
from repro.bench.harness import static_counts


class TestStatistics:
    def test_boxed_instantiation_counted(self):
        """Instantiating o's spurious variable with a string counts in the
        inst numerator; with unit it does not."""
        boxed = compile_program(
            'val h = (op o) (fn s => (), fn () => "x" ^ "y") val it = h ()'
        )
        unboxed = compile_program(
            "val h = (op o) (fn u => (), fn () => ()) val it = h ()"
        )
        assert (
            boxed.spurious.spurious_boxed_instantiations
            > unboxed.spurious.spurious_boxed_instantiations
        )

    def test_total_instantiations_count_all_qvars(self):
        prog = compile_program("fun id x = x val a = id 1 val b = id \"s\" val it = a")
        baseline = compile_program("val it = 0")
        # two uses of the 1-qvar id
        assert (
            prog.spurious.total_tyvar_instantiations
            - baseline.spurious.total_tyvar_instantiations
            >= 2
        )

    def test_static_counts_exclude_prelude(self):
        spur, total, boxed, inst, _diff = static_counts("val it = 0")
        assert spur == 0 and total == 0 and boxed == 0 and inst == 0

    def test_rg_minus_reports_zero_spurious(self):
        prog = compile_program("val it = 0", strategy=Strategy.RG_MINUS)
        assert prog.spurious.spurious_functions == 0
        assert prog.spurious.spurious_tyvars == 0


class TestSpuriousModes:
    FIG1 = """
fun work n = if n = 0 then nil else n :: work (n - 1)
fun run () =
  let val h : unit -> unit =
        (op o) (let val x = "oh" ^ "no"
                in (fn x => (), fn () => x)
                end)
      val _ = work 100
  in h () end
val it = run ()
"""

    @pytest.mark.parametrize("mode", list(SpuriousMode), ids=lambda m: m.value)
    def test_both_modes_sound_on_figure1(self, mode):
        flags = CompilerFlags(spurious_mode=mode)
        prog = compile_program(self.FIG1, flags=flags)
        assert prog.verification_error is None
        prog.run(gc_every_alloc=True)

    @pytest.mark.parametrize("mode", list(SpuriousMode), ids=lambda m: m.value)
    def test_both_modes_spurious_counts_match(self, mode):
        flags = CompilerFlags(spurious_mode=mode)
        prog = compile_program("val it = 0", flags=flags)
        assert sorted(prog.spurious.spurious_function_names) == [
            "composeOpt", "mapPartialOpt", "o",
        ]


class TestTrivialInference:
    """Section 4.1's trivial algorithm: everything in the global region,
    the global arrow effect everywhere — sound by construction."""

    def test_trivial_always_verifies(self):
        for src in (
            "val it = 1",
            TestSpuriousModes.FIG1,
            "fun f x = (x, x) val it = #1 (f 3)",
        ):
            prog = compile_program(src, strategy=Strategy.TRIVIAL)
            assert prog.verification_error is None

    def test_trivial_never_deallocates(self):
        prog = compile_program(TestSpuriousModes.FIG1, strategy=Strategy.TRIVIAL)
        res = prog.run(gc_every_alloc=True)
        assert res.stats.letregions == 0
        assert res.stats.finite_regions_created == 0

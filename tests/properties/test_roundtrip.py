"""Round-trip properties for fuzz-shrinker reproducers.

A reproducer written by the fuzzer is a ``(* ... *)`` header comment
followed by the rendered program.  Three things must hold for the corpus
to stay replayable: the header must be invisible to ``loc_of``, the body
must survive the write/read cycle byte-for-byte and re-parse to a
program with the same behaviour, and the region pretty-printer must
render ``exception`` declarations in balanced ``let ... in ... end``
form (the unbalanced form is what used to break round-tripping)."""

import re
from pathlib import Path

import pytest

from repro import CompilerFlags, Strategy, compile_program
from repro.bench.harness import loc_of
from repro.runtime.values import show_value
from repro.testing.fuzz import _write_reproducer
from repro.testing.generate import generate_program

# Seeds whose generated programs contain the new constructs (exception
# declarations and arrays) — the interesting cases for round-tripping.
_EXN_SEEDS = [
    s for s in range(60) if "exception" in generate_program(s).render()
][:4]
_ARRAY_SEEDS = [
    s for s in range(60) if "array (" in generate_program(s).render()
][:4]

_META = {
    "classification": "expected-rg-minus-dangling",
    "master_seed": 0,
    "iteration": 0,
    "sub_seed": 0,
    "strategy": "rg-",
    "mode": "secondary",
    "plan": None,
    "plan_desc": "none",
    "detail": "round-trip property test",
}


def _run_value(source: str) -> str:
    prog = compile_program(source, strategy=Strategy.RG, cache=False)
    return show_value(prog.run(max_steps=200_000).value)


@pytest.mark.parametrize("seed", _EXN_SEEDS + _ARRAY_SEEDS)
def test_reproducer_round_trips_through_parser_unchanged(seed, tmp_path):
    program = generate_program(seed)
    source = program.render()
    path = Path(
        _write_reproducer(tmp_path, f"rt-{seed}", program, dict(_META))
    )
    text = path.read_text()
    # The body after the header is byte-for-byte the rendered program.
    assert text.startswith("(* repro-fuzz reproducer:")
    header_end = text.index("*)") + len("*)\n")
    assert text[header_end:] == source + "\n"
    # Re-parsing the whole file (header included) preserves behaviour.
    assert _run_value(text) == _run_value(source)


@pytest.mark.parametrize("seed", _EXN_SEEDS)
def test_header_is_invisible_to_loc_of(seed, tmp_path):
    program = generate_program(seed)
    source = program.render()
    path = Path(
        _write_reproducer(tmp_path, f"loc-{seed}", program, dict(_META))
    )
    assert loc_of(path.read_text()) == loc_of(source)


def test_exception_declaration_line_counts_as_code():
    assert loc_of("(* hdr *)\nexception Bang of int\n") == 1
    assert loc_of("(* multi\n   line\n   header *)\n") == 0


class TestPrettyBalance:
    """Without the prelude (whose datatype declarations legitimately
    print ``in`` with no ``end``), every ``in`` the pretty-printer emits
    — including the one for ``exception`` declarations — must be
    matched by an ``end``."""

    def _pretty(self, src):
        return compile_program(
            src, flags=CompilerFlags(with_prelude=False)
        ).pretty(schemes=False)

    @pytest.mark.parametrize(
        "src",
        [
            "exception E of int\nval it = (raise E 3) handle E n => n",
            "fun f (x : 'a) : 'a = let exception A of 'a list in "
            "(raise A (x :: nil)) handle A v => x end\nval it = f 2",
        ],
        ids=["mono", "poly"],
    )
    def test_exception_let_is_balanced(self, src):
        text = self._pretty(src)
        assert "let exception" in text
        ins = len(re.findall(r"\bin\b", text))
        ends = len(re.findall(r"\bend\b", text))
        assert ins == ends, text

"""Property-based tests of the substitution and containment algebra
(paper Propositions 1-5), driven by hypothesis."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.containment import (
    contained_mu,
    required_effect_mu,
)
from repro.core.effects import ArrowEffect, EffectVar, RegionVar
from repro.core.rtypes import (
    EMPTY_CTX,
    MU_BOOL,
    MU_INT,
    MU_UNIT,
    MuBoxed,
    MuVar,
    TAU_REAL,
    TAU_STRING,
    TauArrow,
    TauList,
    TauPair,
    TyCtx,
    TyVar,
    frev,
)
from repro.core.substitution import Subst

# -- atoms -------------------------------------------------------------------

rhos = st.integers(min_value=1, max_value=8).map(lambda i: RegionVar(i, f"r{i}"))
epss = st.integers(min_value=11, max_value=18).map(lambda i: EffectVar(i, f"e{i}"))
atoms = st.one_of(rhos, epss)
effects = st.frozensets(atoms, max_size=5)
arrow_effects = st.builds(ArrowEffect, epss, effects)
tyvars = st.integers(min_value=21, max_value=24).map(lambda i: TyVar(i, f"'a{i}"))


def mus(depth: int = 2):
    base = st.one_of(
        st.just(MU_INT),
        st.just(MU_BOOL),
        st.just(MU_UNIT),
        st.builds(MuVar, tyvars),
        st.builds(MuBoxed, st.just(TAU_STRING), rhos),
        st.builds(MuBoxed, st.just(TAU_REAL), rhos),
    )
    if depth == 0:
        return base
    inner = mus(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda a, b, r: MuBoxed(TauPair(a, b), r), inner, inner, rhos),
        st.builds(
            lambda a, ae, b, r: MuBoxed(TauArrow(a, ae, b), r),
            inner, arrow_effects, inner, rhos,
        ),
        st.builds(lambda a, r: MuBoxed(TauList(a), r), inner, rhos),
    )


substs = st.builds(
    lambda rmap, emap: Subst(rgn=rmap, eff=emap),
    st.dictionaries(rhos, rhos, max_size=4),
    st.dictionaries(epss, arrow_effects, max_size=4),
)

omegas = st.dictionaries(tyvars, arrow_effects, max_size=3).map(TyCtx)


class TestEffectSubstitution:
    @given(substs, effects, effects)
    def test_monotonicity_prop3(self, s, phi1, phi2):
        """phi <= phi' implies S(phi) <= S(phi')."""
        small, big = phi1 & phi2, phi1 | phi2
        assert s.effect(small) <= s.effect(big)

    @given(substs, arrow_effects)
    def test_interchange(self, s, ae):
        """frev(S(eps.phi)) = S({eps} | phi)."""
        assert s.arrow(ae).frev() == s.effect(ae.frev())

    @given(substs, effects)
    def test_result_is_an_effect(self, s, phi):
        out = s.effect(phi)
        assert isinstance(out, frozenset)
        assert all(isinstance(a, (RegionVar, EffectVar)) for a in out)

    @given(substs, substs, effects)
    def test_composition_on_effects(self, s1, s2, phi):
        """then() agrees with sequential application on effects."""
        assert s1.then(s2).effect(phi) == s2.effect(s1.effect(phi))

    @given(substs, substs, mus())
    def test_composition_on_types(self, s1, s2, mu):
        assert s1.then(s2).mu(mu) == s2.mu(s1.mu(mu))


class TestContainment:
    @given(omegas, mus())
    def test_min_effect_is_contained(self, omega, mu):
        """required_effect is itself a containing effect (Prop. 1-ish)."""
        try:
            need = required_effect_mu(omega, mu)
        except Exception:
            return  # untracked tyvar: no containing effect exists
        assert contained_mu(omega, mu, need)

    @given(omegas, mus(), effects)
    def test_rule_checker_agrees_with_min_effect(self, omega, mu, phi):
        """The rule-based checker and the closed-form minimal effect are
        the same relation."""
        try:
            need = required_effect_mu(omega, mu)
        except Exception:
            assert not contained_mu(omega, mu, phi | frev(omega))
            return
        assert contained_mu(omega, mu, phi) == (need <= phi)

    @given(omegas, mus())
    def test_containment_implies_frev_subset_prop2(self, omega, mu):
        try:
            need = required_effect_mu(omega, mu)
        except Exception:
            return
        assert frev(mu) <= need

    @given(omegas, mus(), effects, effects)
    def test_extensibility(self, omega, mu, phi, extra):
        """Omega |- mu : phi implies Omega |- mu : phi | extra."""
        if contained_mu(omega, mu, phi):
            assert contained_mu(omega, mu, phi | extra)

    @settings(max_examples=60)
    @given(omegas, mus(), substs)
    def test_region_effect_substitution_closedness_prop4(self, omega, mu, s):
        """If Omega |- mu : phi then S(Omega) |- S(mu) : S(phi), for
        region-effect substitutions."""
        try:
            phi = required_effect_mu(omega, mu)
        except Exception:
            return
        if set(s.ty):
            return
        s_omega = TyCtx({a: s.arrow(ae) for a, ae in omega.items()})
        assert contained_mu(s_omega, s.mu(mu), s.effect(phi))

"""Properties of the independent verifier and the pointer sanitizer.

Soundness (completeness against the annotator): every region-annotated
program the pipeline's sound strategies produce — generated programs,
all 23 Figure 9 benchmarks, and every seeded fuzz-corpus reproducer —
must pass :func:`repro.analysis.verify_term` in both spurious modes.
The verifier shares no code with the inference passes or the Figure 4
checker, so a failure here is a real disagreement between the two
derivations, not a tautology.

Transparency (the sanitizer is observation-free): running with
``sanitize=True`` must be *bit-identical* — same value, same stdout,
same ``RunStats``, same trace events — to running without, on both the
tree walker and the closure backend.  The only permitted difference is
that stale pointers fault as :class:`StalePointerError` instead of
going unnoticed, which the Figure 8 program pins down.
"""

import pytest

from repro.analysis import verify_term
from repro.bench.registry import BENCHMARKS, benchmark_source
from repro.config import CompilerFlags, SpuriousMode, Strategy
from repro.core.errors import ReproError, StalePointerError
from repro.pipeline import compile_program
from repro.runtime.trace import EventBus, RecordingSink
from repro.runtime.values import show_value
from repro.testing.fuzz import fuzz
from repro.testing.generate import generate_program

MODES = [SpuriousMode.SECONDARY, SpuriousMode.IDENTIFY]


def _verify_source(source: str, mode: SpuriousMode, strategy=Strategy.RG):
    """Compile under a sound strategy and re-judge with the verifier."""
    flags = CompilerFlags(strategy=strategy, spurious_mode=mode)
    prog = compile_program(source, flags=flags)
    return verify_term(prog.term)


class TestVerifierAcceptsSoundPrograms:
    """The verifier must accept everything the sound pipeline emits."""

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_generated_programs_verify(self, mode):
        checked = 0
        for seed in range(25):
            source = generate_program(seed).render()
            try:
                report = _verify_source(source, mode)
            except ReproError:
                continue  # frontend-ill-typed generator output
            assert report.ok, f"seed {seed}/{mode.value}:\n{report.summary()}"
            checked += 1
        assert checked >= 15  # the generator mostly produces typeable code

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_figure9_benchmarks_verify(self, name):
        source = benchmark_source(name)
        for mode in MODES:
            report = _verify_source(source, mode)
            assert report.ok, f"{name}/{mode.value}:\n{report.summary()}"

    def test_trivial_strategy_also_verifies(self):
        # The everything-in-one-global-region annotation is trivially
        # safe; the verifier must agree (it gates `trivial` in the
        # pipeline too).
        for seed in range(10):
            source = generate_program(seed).render()
            try:
                report = _verify_source(
                    source, SpuriousMode.SECONDARY, strategy=Strategy.TRIVIAL
                )
            except ReproError:
                continue
            assert report.ok, report.summary()


class TestFuzzCorpusReproducers:
    """Every reproducer the fuzzer shrinks and writes stays a faithful
    witness: verifier-clean under rg (both modes), and — for the rg-
    dangle class — still *rejected* by the verifier under rg-, agreeing
    with the Figure 4 checker."""

    @pytest.fixture(scope="class")
    def corpus(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("corpus")
        summary = fuzz(
            seed=1, iterations=12, corpus=str(path), deadline_seconds=30.0
        )
        assert summary.ok, [d.detail for d in summary.genuine]
        return path

    def test_corpus_nonempty(self, corpus):
        assert list(corpus.glob("*.mml"))

    def test_reproducers_verify_under_rg_in_both_modes(self, corpus):
        for mml in sorted(corpus.glob("*.mml")):
            source = mml.read_text()
            for mode in MODES:
                report = _verify_source(source, mode)
                assert report.ok, f"{mml.name}/{mode.value}:\n{report.summary()}"

    def test_dangle_reproducers_rejected_under_rg_minus(self, corpus):
        for mml in sorted(corpus.glob("dangle-*.mml")):
            prog = compile_program(mml.read_text(), strategy=Strategy.RG_MINUS)
            report = verify_term(prog.term)
            # The two static judges agree on the unsound annotation.
            assert report.ok == (prog.verification_error is None), mml.name
            assert not report.ok, f"{mml.name}: verifier accepted an rg- dangle"
            assert report.rules, mml.name


def _observe(prog, backend, **overrides):
    """Everything an observer can see from one run: success (value,
    stdout, full stats) or fault (type, message) — plus the complete
    event trace either way."""
    sink = RecordingSink()
    try:
        result = prog.run(backend=backend, tracer=EventBus(sink), **overrides)
    except ReproError as exc:
        return ("exc", type(exc).__name__, str(exc)), sink.events
    record = (
        "ok",
        show_value(result.value),
        result.output,
        sorted(result.stats.to_dict().items()),
    )
    return record, sink.events


class TestSanitizerTransparency:
    """sanitize=True is observation-free on safe runs."""

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_golden_matrix_bit_identical(self, name):
        prog = compile_program(benchmark_source(name), strategy=Strategy.RG)
        for backend in ("tree", "closure"):
            plain, plain_ev = _observe(prog, backend)
            san, san_ev = _observe(prog, backend, sanitize=True)
            assert san == plain, f"{name}/{backend} sanitize changed the run"
            assert san_ev == plain_ev, f"{name}/{backend} sanitize changed the trace"
            assert plain[0] == "ok", f"{name}/{backend} golden run faulted"
            assert plain[1] == BENCHMARKS[name].expected

    def test_transparent_under_injected_gc_schedule(self):
        from repro.testing.faultplan import FaultPlan

        plan = FaultPlan.every_nth(3, kind="major")
        for name in ("fib", "msort", "zebra"):
            prog = compile_program(benchmark_source(name), strategy=Strategy.RG)
            for backend in ("tree", "closure"):
                plain, plain_ev = _observe(
                    prog, backend, fault_plan=plan, generational=True
                )
                san, san_ev = _observe(
                    prog, backend, fault_plan=plan, generational=True, sanitize=True
                )
                assert san == plain, f"{name}/{backend}"
                assert san_ev == plain_ev, f"{name}/{backend}"


FIG8 = """
fun g (f : unit -> 'a) : unit -> unit =
  op o (let val x = f ()
        in (fn x => (), fn () => x)
        end)
fun work n = if n = 0 then nil else n :: work (n - 1)
val h = g (fn () => "oh" ^ "no")
val _ = work 200
val it = h ()
"""


class TestSanitizerFaultDetection:
    """On the Figure 8 program under rg-, the sanitizer catches the
    stale pointer the moment the resurrected closure is touched — with
    the *production* GC policy, where the un-sanitized run sails through
    to a wrong-but-silent completion."""

    @pytest.mark.parametrize("backend", ["tree", "closure"])
    def test_fig8_rg_minus_raises_stale_pointer(self, backend):
        prog = compile_program(FIG8, strategy=Strategy.RG_MINUS)
        # Without the sanitizer the default policy never collects inside
        # the dangle window, so the run silently completes...
        prog.run(backend=backend)
        # ...with it, the deallocated region's generation stamp gives
        # the stale access away.
        with pytest.raises(StalePointerError, match="stale pointer"):
            prog.run(backend=backend, sanitize=True)

    @pytest.mark.parametrize("backend", ["tree", "closure"])
    def test_fault_is_attributed_in_the_trace(self, backend):
        prog = compile_program(FIG8, strategy=Strategy.RG_MINUS)
        sink = RecordingSink()
        with pytest.raises(StalePointerError):
            prog.run(backend=backend, sanitize=True, tracer=EventBus(sink))
        dangles = [e for e in sink.events if e["ev"] == "dangle"]
        assert dangles and dangles[-1].get("sanitizer") is True

    @pytest.mark.parametrize("backend", ["tree", "closure"])
    def test_rg_is_clean_under_sanitizer(self, backend):
        prog = compile_program(FIG8, strategy=Strategy.RG)
        plain, plain_ev = _observe(prog, backend, gc_every_alloc=True)
        san, san_ev = _observe(prog, backend, gc_every_alloc=True, sanitize=True)
        assert plain[0] == "ok"
        assert san == plain and san_ev == plain_ev

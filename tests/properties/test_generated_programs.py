"""Differential and safety testing over *generated* well-typed MiniML
programs.

A typed program generator produces random sources; for each one we check
the reproduction's global invariants:

* the ``rg`` output always passes the Figure 4 region type checker
  (soundness of region inference + spurious tracking);
* all five strategies compute the same value (region annotation is
  semantically transparent);
* ``rg`` with a collection forced at *every* allocation never meets a
  dangling pointer (the paper's headline theorem, dynamically);
* ``trivial`` (Section 4.1's trivial inference) also verifies and agrees.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import CompilerFlags, Strategy, compile_program
from repro.core.errors import DanglingPointerError
from repro.runtime.values import show_value

# ---------------------------------------------------------------------------
# A typed expression generator producing MiniML source text.
# Each strategy generates strings of a known type.
# ---------------------------------------------------------------------------

INT_VARS = ["a", "b"]


def int_expr(depth: int):
    base = st.one_of(
        st.integers(min_value=-9, max_value=9).map(
            lambda n: str(n) if n >= 0 else f"~{-n}"
        ),
        st.sampled_from(INT_VARS),
    )
    if depth == 0:
        return base
    sub = int_expr(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda x, y: f"({x} + {y})", sub, sub),
        st.builds(lambda x, y: f"({x} - {y})", sub, sub),
        st.builds(lambda x, y: f"({x} * {y})", sub, sub),
        st.builds(lambda c, x, y: f"(if {c} then {x} else {y})",
                  bool_expr(depth - 1), sub, sub),
        st.builds(lambda x, y: f"(let val t = {x} in t + {y} end)", sub, sub),
        st.builds(lambda f, x: f"({f}) ({x})", int_fun(depth - 1), sub),
        st.builds(lambda xs: f"length ({xs})", int_list(depth - 1)),
        st.builds(lambda xs: f"(foldl (fn (u, v) => u + v) 0 ({xs}))",
                  int_list(depth - 1)),
        st.builds(lambda s: f"size ({s})", str_expr(depth - 1)),
        st.builds(lambda p: f"(#1 {p})", pair_expr(depth - 1)),
        # the paper's pattern: compose with a dead captured value
        st.builds(
            lambda s, x: f"(let val h = (op o) (fn u => {x}, fn () => {s}) "
                         f"in h () end)",
            str_expr(depth - 1), sub,
        ),
    )


def bool_expr(depth: int):
    base = st.sampled_from(["true", "false"])
    if depth == 0:
        return base
    sub = int_expr(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda x, y: f"({x} < {y})", sub, sub),
        st.builds(lambda x, y: f"({x} = {y})", sub, sub),
        st.builds(lambda b: f"(not {b})", bool_expr(depth - 1)),
    )


def str_expr(depth: int):
    base = st.sampled_from(['"x"', '"hi"', '""'])
    if depth == 0:
        return base
    return st.one_of(
        base,
        st.builds(lambda a, b: f"({a} ^ {b})", str_expr(depth - 1), str_expr(depth - 1)),
        st.builds(lambda n: f"itos ({n})", int_expr(depth - 1)),
    )


def int_list(depth: int):
    base = st.lists(st.integers(0, 9), max_size=4).map(
        lambda xs: "[" + ", ".join(map(str, xs)) + "]"
    )
    if depth == 0:
        return base
    sub = int_list(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda x, xs: f"({x} :: {xs})", int_expr(depth - 1), sub),
        st.builds(lambda f, xs: f"(map ({f}) ({xs}))", int_fun(depth - 1), sub),
        st.builds(lambda xs: f"(rev ({xs}))", sub),
        st.builds(lambda xs, ys: f"({xs} @ {ys})", sub, sub),
        st.builds(lambda xs: f"(filter (fn u => u > 2) ({xs}))", sub),
    )


def int_fun(depth: int):
    """Source of type int -> int."""
    base = st.sampled_from(["fn u => u", "fn u => u + 1", "fn u => 0"])
    if depth == 0:
        return base
    return st.one_of(
        base,
        st.builds(lambda body: f"fn u => ({body.replace('a', 'u')})",
                  int_expr(0)),
        # composition: exercises the spurious type variable of `o`
        st.builds(lambda f, g: f"(op o) ({f}, {g})",
                  int_fun(depth - 1), int_fun(depth - 1)),
    )


def pair_expr(depth: int):
    return st.builds(
        lambda x, s: f"({x}, {s})", int_expr(max(0, depth - 1)),
        str_expr(max(0, depth - 1)),
    )


programs = st.builds(
    lambda a, b, mid, body: (
        f"val a = {a}\nval b = {b}\nval _ = {mid}\nval it = {body}"
    ),
    st.integers(-5, 9).map(lambda n: str(n) if n >= 0 else f"~{-n}"),
    st.integers(-5, 9).map(lambda n: str(n) if n >= 0 else f"~{-n}"),
    int_expr(2),
    int_expr(3),
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestGeneratedPrograms:
    @_SETTINGS
    @given(programs)
    def test_rg_verifies_and_strategies_agree(self, src):
        results = {}
        for strategy in (Strategy.RG, Strategy.R, Strategy.ML, Strategy.TRIVIAL):
            prog = compile_program(src, strategy=strategy)
            assert prog.verification_error is None or strategy is Strategy.R, (
                f"{strategy} failed verification: {prog.verification_error}\n{src}"
            )
            results[strategy] = show_value(prog.run().value)
        assert len(set(results.values())) == 1, f"{results}\n{src}"

    @_SETTINGS
    @given(programs)
    def test_rg_never_dangles_under_gc_every_alloc(self, src):
        prog = compile_program(src, strategy=Strategy.RG)
        try:
            prog.run(gc_every_alloc=True)
        except DanglingPointerError as exc:  # pragma: no cover - the bug
            raise AssertionError(f"rg dangled on:\n{src}") from exc

    @_SETTINGS
    @given(programs)
    def test_rg_minus_agrees_when_it_survives(self, src):
        """rg- is unsound for GC but still a correct region annotation:
        when it does not crash, the value agrees."""
        rg = compile_program(src, strategy=Strategy.RG)
        rgm = compile_program(src, strategy=Strategy.RG_MINUS)
        expected = show_value(rg.run().value)
        try:
            got = show_value(rgm.run(gc_every_alloc=True).value)
        except DanglingPointerError:
            return  # the unsoundness the paper fixes — allowed here
        assert got == expected, src

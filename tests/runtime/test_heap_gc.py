"""Unit tests for the region heap and the copying collector."""

import pytest

from repro.config import RuntimeFlags
from repro.core.errors import DanglingPointerError, UseAfterFreeError
from repro.runtime.gc import Collector
from repro.runtime.heap import FINITE, Heap, INFINITE, Region
from repro.runtime.stats import RunStats
from repro.runtime.values import (
    NIL,
    RClos,
    RCons,
    RPair,
    RRef,
    RStr,
    UNIT,
    show_value,
    words_of,
)


def make_heap(**kw) -> Heap:
    return Heap(RuntimeFlags(**kw), RunStats())


class TestHeapAccounting:
    def test_alloc_counts_words(self):
        heap = make_heap()
        r = heap.new_region("r1")
        heap.alloc(r, 10)
        assert r.words == 10
        assert heap.stats.current_words == 10
        assert heap.stats.peak_words == 10

    def test_peak_tracks_maximum(self):
        heap = make_heap()
        r1 = heap.new_region("r1")
        heap.alloc(r1, 100)
        heap.dealloc_region(r1)
        r2 = heap.new_region("r2")
        heap.alloc(r2, 10)
        assert heap.stats.peak_words == 100
        assert heap.stats.current_words == 10

    def test_dealloc_reclaims_words(self):
        heap = make_heap()
        r = heap.new_region("r")
        heap.alloc(r, 42)
        heap.dealloc_region(r)
        assert heap.stats.current_words == 0
        assert not r.alive

    def test_alloc_into_dead_region_faults(self):
        heap = make_heap()
        r = heap.new_region("r")
        heap.dealloc_region(r)
        with pytest.raises(UseAfterFreeError):
            heap.alloc(r, 1)

    def test_region_stack_is_lifo(self):
        heap = make_heap()
        r1 = heap.new_region("r1")
        r2 = heap.new_region("r2")
        heap.dealloc_region(r2)
        heap.dealloc_region(r1)
        assert heap.region_stack == [heap.global_region]

    def test_finite_region_overflow_degrades_to_infinite(self):
        heap = make_heap()
        r = heap.new_region("r", FINITE, capacity=2)
        heap.alloc(r, 2)
        heap.alloc(r, 5)  # static estimate was wrong
        assert r.kind == INFINITE

    def test_pages(self):
        heap = make_heap(page_words=256)
        r = heap.new_region("r")
        heap.alloc(r, 300)
        assert r.pages(256) == 2

    def test_gc_policy_threshold(self):
        heap = make_heap(initial_threshold=100)
        r = heap.new_region("r")
        heap.alloc(r, 50)
        assert not heap.should_collect()
        heap.alloc(r, 60)
        assert heap.should_collect()

    def test_gc_policy_heap_to_live(self):
        heap = make_heap(initial_threshold=10, heap_to_live=3.0)
        heap.note_collection(live_words=100)
        r = heap.new_region("r")
        heap.alloc(r, 150)
        assert not heap.should_collect()  # threshold = 100 * (3-1) = 200
        heap.alloc(r, 60)
        assert heap.should_collect()


class TestCollector:
    def _setup(self):
        heap = make_heap()
        collector = Collector(heap)
        return heap, collector

    def test_unreachable_data_is_reclaimed(self):
        heap, collector = self._setup()
        r = heap.new_region("r")
        live = RStr("live", r)
        heap.alloc(r, live.words())
        dead = RStr("a much longer dead string", r)
        heap.alloc(r, dead.words())
        before = heap.stats.current_words
        retained = collector.collect([live])
        assert retained == live.words()
        assert heap.stats.current_words < before
        assert heap.stats.gc_reclaimed_words == dead.words()

    def test_reachability_through_structures(self):
        heap, collector = self._setup()
        r = heap.new_region("r")
        s = RStr("deep", r)
        pair = RPair(1, s, r)
        cell = RRef(pair, r)
        cons = RCons(cell, NIL, r)
        for v in (s, pair, cell, cons):
            heap.alloc(r, v.words())
        retained = collector.collect([cons])
        assert retained == sum(v.words() for v in (s, pair, cell, cons))

    def test_reachability_through_closures(self):
        heap, collector = self._setup()
        r = heap.new_region("r")
        s = RStr("captured", r)
        clos = RClos("x", None, {"s": s}, {}, r)
        heap.alloc(r, s.words())
        heap.alloc(r, clos.words())
        retained = collector.collect([clos])
        assert retained == s.words() + clos.words()

    def test_dangling_pointer_detection(self):
        """Figure 1's failure mode, at the heap level: a live closure in
        the global region holds a pointer into a deallocated region."""
        heap, collector = self._setup()
        dead_region = heap.new_region("dead")
        s = RStr("oh no", dead_region)
        heap.alloc(dead_region, s.words())
        clos = RClos("x", None, {"s": s}, {}, heap.global_region)
        heap.alloc(heap.global_region, clos.words())
        heap.dealloc_region(dead_region)
        with pytest.raises(DanglingPointerError):
            collector.collect([clos])

    def test_untraced_dangling_pointer_is_harmless(self):
        heap, collector = self._setup()
        dead = heap.new_region("dead")
        s = RStr("dangling", dead)
        heap.alloc(dead, s.words())
        heap.dealloc_region(dead)
        collector.collect([])  # nothing traces s

    def test_finite_regions_are_not_compacted(self):
        heap, collector = self._setup()
        r = heap.new_region("fin", FINITE, capacity=4)
        heap.alloc(r, 3)
        collector.collect([])
        assert r.words == 3  # scanned but never reclaimed

    def test_cycles_via_refs_terminate(self):
        heap, collector = self._setup()
        r = heap.new_region("r")
        cell = RRef(None, r)
        pair = RPair(cell, 0, r)
        cell.contents = pair  # cycle
        heap.alloc(r, cell.words())
        heap.alloc(r, pair.words())
        retained = collector.collect([cell])
        assert retained == cell.words() + pair.words()


class TestGenerational:
    def test_minor_promotes_survivors(self):
        heap = make_heap()
        collector = Collector(heap, generational=True)
        r = heap.new_region("r")
        young = RStr("young", r)
        heap.alloc(r, young.words())
        collector.collect_minor([young])
        assert young.gen == 1

    def test_write_barrier_remembers_old_to_young(self):
        heap = make_heap()
        collector = Collector(heap, generational=True)
        r = heap.new_region("r")
        old_ref = RRef(UNIT, r)
        old_ref.gen = 1
        heap.alloc(r, old_ref.words())
        collector.collect_minor([old_ref])
        young = RStr("newborn", r)
        heap.alloc(r, young.words())
        old_ref.contents = young
        collector.note_write(old_ref)
        # A minor collection with an EMPTY root set must still keep the
        # young object alive through the remembered set.
        retained = collector.collect_minor([])
        assert young.gen == 1

    def test_auto_policy_mixes_minor_and_major(self):
        heap = make_heap()
        collector = Collector(heap, generational=True)
        r = heap.new_region("r")
        for _ in range(8):
            collector.collect_auto([])
        assert heap.stats.gc_count >= 1
        assert heap.stats.gc_minor_count >= 1


class TestValues:
    def test_words_of_unboxed_is_zero(self):
        assert words_of(5) == 0
        assert words_of(True) == 0
        assert words_of(UNIT) == 0
        assert words_of(NIL) == 0

    def test_string_words_scale_with_length(self):
        heap = make_heap()
        r = heap.new_region("r")
        assert RStr("", r).words() == 1
        assert RStr("x" * 8, r).words() == 2
        assert RStr("x" * 9, r).words() == 3

    def test_show_value_renders_ml_style(self):
        heap = make_heap()
        r = heap.new_region("r")
        assert show_value(-3) == "~3"
        assert show_value(True) == "true"
        lst = RCons(1, RCons(2, NIL, r), r)
        assert show_value(lst) == "[1, 2]"
        assert show_value(RPair(1, RStr("s", r), r)) == '(1, "s")'

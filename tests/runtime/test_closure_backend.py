"""Golden equivalence of the closure-compiled backend against the tree
walker: same values, same stdout, same ``RunStats``, same trace events,
same faults — under every strategy, including injected-GC schedules.

The closure backend (:mod:`repro.runtime.compile`) is purely a speed
knob; these tests pin the "bit-identical" contract it is allowed to
exist under.  Any fused fast path that reorders a step count, elides a
collection point, or changes a fault is caught here.
"""

import pytest

from repro.bench.registry import BENCHMARKS, benchmark_source
from repro.config import Strategy
from repro.core.errors import ReproError
from repro.pipeline import compile_program
from repro.runtime.trace import EventBus, RecordingSink
from repro.runtime.values import show_value
from repro.testing.faultplan import FaultPlan


def _outcome(prog, backend, **overrides):
    """A comparable record of a run: success (value, stdout, full stats)
    or fault (type and message).  ``rg-`` legitimately dangles on some
    programs — the two backends must fault *identically*."""
    try:
        result = prog.run(backend=backend, **overrides)
    except ReproError as exc:
        return ("exc", type(exc).__name__, str(exc))
    return (
        "ok",
        show_value(result.value),
        result.output,
        tuple(sorted(result.stats.to_dict().items())),
    )


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_golden_matrix(name):
    """All 23 benchmarks x 5 strategies: the closure backend reproduces
    the tree walker's outcome exactly, and correct runs match the
    registry's expected value."""
    bench = BENCHMARKS[name]
    source = benchmark_source(name)
    for strategy in Strategy:
        prog = compile_program(source, strategy=strategy)
        tree = _outcome(prog, "tree")
        closure = _outcome(prog, "closure")
        assert closure == tree, f"{name}/{strategy.value} diverged"
        if tree[0] == "ok":
            assert tree[1] == bench.expected, f"{name}/{strategy.value}"


def _events(prog, backend, **overrides):
    sink = RecordingSink()
    try:
        prog.run(backend=backend, tracer=EventBus(sink), **overrides)
    except ReproError:
        pass  # the trace up to the fault is still compared
    return sink.events


@pytest.mark.parametrize("name", ["fib", "life", "msort"])
@pytest.mark.parametrize("strategy", [Strategy.RG, Strategy.RG_MINUS])
def test_trace_equivalence(name, strategy):
    """The event traces (sequence numbers, kinds, step counters, heap
    fields) are identical between backends — GC points and region
    lifecycle happen at exactly the same steps."""
    prog = compile_program(benchmark_source(name), strategy=strategy)
    assert _events(prog, "closure") == _events(prog, "tree")


PLANS = [
    FaultPlan.every_nth(3, kind="major"),
    FaultPlan.every_dealloc(1, kind="major"),
    FaultPlan.random_plan(7, rate=0.1, dealloc_rate=0.25, kind="random"),
]


@pytest.mark.parametrize("name", ["life", "zebra"])
@pytest.mark.parametrize("plan", PLANS, ids=["every3", "dealloc", "random"])
def test_fault_plan_equivalence(name, plan):
    """Injected-GC schedules decide collections off allocation/dealloc
    ordinals and observe intermediate step counts, so any batching
    discrepancy in the closure backend shows up here."""
    for strategy in (Strategy.RG, Strategy.RG_MINUS):
        prog = compile_program(benchmark_source(name), strategy=strategy)
        kwargs = dict(fault_plan=plan, max_steps=2_000_000)
        assert _outcome(prog, "closure", **kwargs) == _outcome(
            prog, "tree", **kwargs
        ), f"{name}/{strategy.value}"


def test_gc_every_alloc_dangling_equivalence():
    """The Figure 1 fault: under rg- with a collection at every
    allocation both backends observe the same dangling pointer."""
    source = benchmark_source("simple")
    prog = compile_program(source, strategy=Strategy.RG_MINUS)
    kwargs = dict(max_steps=300_000, gc_every_alloc=True)
    tree = _outcome(prog, "tree", **kwargs)
    closure = _outcome(prog, "closure", **kwargs)
    assert closure == tree
    assert tree[0] == "exc" and tree[1] == "DanglingPointerError"

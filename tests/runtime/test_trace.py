"""The observability event bus: schema, pairing invariants, golden
JSONL, and the disabled-is-free guarantee.

Regenerate the golden file after an intentional schema change with::

    PYTHONPATH=src python tests/runtime/test_trace.py regen
"""

import io
import json
from pathlib import Path

import pytest

from repro import DanglingPointerError, Strategy, compile_program
from repro.config import CompilerFlags
from repro.runtime.trace import (
    EVENT_SCHEMA,
    NULL_TRACER,
    EventBus,
    JsonlSink,
    RecordingSink,
    validate_event,
)
from repro.testing.faultplan import FaultPlan

GOLDEN_PATH = Path(__file__).parent / "data" / "trace_golden.jsonl"

#: Small, prelude-free, deterministic: 19 region events + 2 injected
#: major collections.
GOLDEN_SOURCE = """
fun sum xs = if null xs then 0 else hd xs + sum (tl xs)
fun build n = if n = 0 then nil else n :: build (n - 1)
val it = sum (build 4)
"""
GOLDEN_PLAN = dict(every=3, kind="major")

LOOP_SOURCE = """
fun iter n =
  if n = 0 then 0
  else let val tmp = tabulate (20, fn i => i * n)
       in (foldl (fn (a, b) => a + b) 0 tmp + iter (n - 1)) mod 1000
       end
val it = iter 15
"""

FIGURE_1 = """
fun work n = if n = 0 then nil else n :: work (n - 1)
fun run () =
  let val h : unit -> unit =
        (op o) (let val x = "oh" ^ "no"
                in (fn x => (), fn () => x)
                end)
      val _ = work 200
  in h ()
  end
val it = run ()
"""


def _golden_trace() -> list[dict]:
    prog = compile_program(GOLDEN_SOURCE, flags=CompilerFlags(with_prelude=False))
    sink = RecordingSink()
    prog.run(tracer=EventBus(sink), fault_plan=FaultPlan(**GOLDEN_PLAN))
    return sink.events


class TestEventStream:
    @pytest.fixture(scope="class")
    def events(self):
        prog = compile_program(LOOP_SOURCE, strategy=Strategy.RG)
        sink = RecordingSink()
        prog.run(tracer=EventBus(sink), initial_threshold=512)
        return sink.events

    def test_all_events_validate(self, events):
        errors = [err for err in map(validate_event, events) if err]
        assert errors == []

    def test_sequence_and_steps_monotone(self, events):
        assert [e["i"] for e in events] == list(range(len(events)))
        steps = [e["step"] for e in events]
        assert all(a <= b for a, b in zip(steps, steps[1:]))

    def test_run_bracketing(self, events):
        assert events[0]["ev"] == "run_begin"
        assert events[0]["strategy"] == "rg"
        assert events[-1]["ev"] == "run_end"

    def test_expected_kinds_present(self, events):
        kinds = {e["ev"] for e in events}
        assert {"region_push", "region_pop", "alloc", "gc_begin", "gc_end"} <= kinds

    def test_push_pop_paired(self, events):
        pushed = {e["region"] for e in events if e["ev"] == "region_push"}
        popped = {e["region"] for e in events if e["ev"] == "region_pop"}
        assert popped <= pushed
        # This loop's letregions all close before the run ends.
        assert pushed == popped

    def test_allocs_reference_live_regions(self, events):
        live = {0}  # the global region exists from the start
        for e in events:
            if e["ev"] == "region_push":
                live.add(e["region"])
            elif e["ev"] == "region_pop":
                live.remove(e["region"])
            elif e["ev"] == "alloc":
                assert e["region"] in live
                assert e["words"] >= 1
                assert e["region_words"] >= e["words"]

    def test_gc_pairs_and_accounting(self, events):
        begins = [e for e in events if e["ev"] == "gc_begin"]
        ends = [e for e in events if e["ev"] == "gc_end"]
        assert len(begins) == len(ends) > 0
        for b, e in zip(begins, ends):
            assert b["gc"] == e["gc"]
            assert b["from_words"] == e["from_words"]
            assert e["to_words"] <= e["from_words"]
            assert e["copied"] >= 0

    def test_run_end_matches_stats(self, events):
        prog = compile_program(LOOP_SOURCE, strategy=Strategy.RG)
        stats = prog.run(initial_threshold=512).stats
        end = events[-1]
        assert end["steps"] == stats.steps
        assert end["allocations"] == stats.allocations
        assert end["peak_words"] == stats.peak_words
        assert end["gc_count"] == stats.gc_count


class TestDisabledOverhead:
    def test_null_tracer_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_bus_without_sinks_disabled(self):
        assert EventBus().enabled is False
        bus = EventBus()
        bus.attach(RecordingSink())
        assert bus.enabled is True

    def test_no_sink_means_no_emit(self, monkeypatch):
        """With no sink attached the guard `if tr.enabled` must prevent
        every per-event allocation: emit() is never even called."""

        def exploding_emit(self, kind, /, **fields):  # pragma: no cover
            raise AssertionError(f"emit({kind!r}) called on a disabled bus")

        monkeypatch.setattr(EventBus, "emit", exploding_emit)
        prog = compile_program(LOOP_SOURCE, strategy=Strategy.RG)
        result = prog.run(tracer=EventBus(), initial_threshold=512)
        assert result.value == 800

    def test_tracing_does_not_change_execution(self):
        prog = compile_program(LOOP_SOURCE, strategy=Strategy.RG)
        plain = prog.run(initial_threshold=512)
        traced = prog.run(tracer=EventBus(RecordingSink()), initial_threshold=512)
        assert plain.stats.to_dict() == traced.stats.to_dict()
        assert plain.value == traced.value


class TestDangleEvent:
    def test_rg_minus_trace_ends_in_dangle_then_unwind(self):
        prog = compile_program(FIGURE_1, strategy=Strategy.RG_MINUS)
        sink = RecordingSink()
        with pytest.raises(DanglingPointerError):
            prog.run(tracer=EventBus(sink), gc_every_alloc=True)
        dangles = [e for e in sink.events if e["ev"] == "dangle"]
        assert len(dangles) == 1
        assert dangles[0]["obj"] == "RStr"
        # No run_end: the run faulted.
        assert all(e["ev"] != "run_end" for e in sink.events)
        # The same schedule under rg is clean.
        prog_rg = compile_program(FIGURE_1, strategy=Strategy.RG)
        sink_rg = RecordingSink()
        prog_rg.run(tracer=EventBus(sink_rg), gc_every_alloc=True)
        assert all(e["ev"] != "dangle" for e in sink_rg.events)
        assert sink_rg.events[-1]["ev"] == "run_end"


class TestGenerationalSchedule:
    """Satellite of the policy split: ``collect_kind("auto")`` follows
    the documented :data:`~repro.runtime.gc.MINORS_PER_MAJOR` schedule,
    and the countdown is surfaced on every generational ``gc_begin``.
    The expected literal sequence below is the golden form of the
    docstring — if someone changes the constant or the dispatch without
    updating the other, this fails."""

    def test_auto_schedule_pinned(self):
        from repro.runtime.gc import MINORS_PER_MAJOR

        assert MINORS_PER_MAJOR == 4  # the documented constant
        prog = compile_program(GOLDEN_SOURCE, flags=CompilerFlags(with_prelude=False))
        sink = RecordingSink()
        prog.run(
            tracer=EventBus(sink),
            gc_policy="generational",
            fault_plan=FaultPlan(every=1, kind="auto"),
        )
        begins = [
            (e["kind"], e["minors_until_major"])
            for e in sink.events
            if e["ev"] == "gc_begin"
        ]
        assert len(begins) >= 5  # at least one full cycle plus wraparound
        expected_cycle = [("minor", 3), ("minor", 2), ("minor", 1), ("major", 4)]
        for i, got in enumerate(begins):
            assert got == expected_cycle[i % 4], f"auto collection {i}"

    def test_policy_on_every_gc_begin(self):
        prog = compile_program(GOLDEN_SOURCE, flags=CompilerFlags(with_prelude=False))
        for policy in ("copying", "mark-compact"):
            sink = RecordingSink()
            prog.run(
                tracer=EventBus(sink),
                gc_policy=policy,
                fault_plan=FaultPlan(**GOLDEN_PLAN),
            )
            begins = [e for e in sink.events if e["ev"] == "gc_begin"]
            assert begins
            assert all(e["policy"] == policy for e in begins)
            # Non-generational policies never schedule minors and never
            # carry the countdown field.
            assert all(e["kind"] == "major" for e in begins)
            assert all("minors_until_major" not in e for e in begins)
            assert sink.events[0]["policy"] == policy

    def test_pinned_kinds_bypass_countdown(self):
        """A plan-pinned "major" must not consume the auto countdown."""
        prog = compile_program(GOLDEN_SOURCE, flags=CompilerFlags(with_prelude=False))
        sink = RecordingSink()
        prog.run(
            tracer=EventBus(sink),
            gc_policy="generational",
            fault_plan=FaultPlan(every=1, kind="major"),
        )
        begins = [e for e in sink.events if e["ev"] == "gc_begin"]
        assert begins
        assert all(e["kind"] == "major" for e in begins)
        # until_major never ticked: every event reports the full window.
        from repro.runtime.gc import MINORS_PER_MAJOR

        assert all(e["minors_until_major"] == MINORS_PER_MAJOR for e in begins)


class TestJsonlGolden:
    def test_jsonl_round_trip(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        prog = compile_program(GOLDEN_SOURCE, flags=CompilerFlags(with_prelude=False))
        prog.run(tracer=EventBus(sink), fault_plan=FaultPlan(**GOLDEN_PLAN))
        lines = buffer.getvalue().splitlines()
        assert len(lines) == sink.events_written
        decoded = [json.loads(line) for line in lines]
        assert [validate_event(e) for e in decoded] == [None] * len(decoded)

    def test_matches_golden_file(self):
        got = _golden_trace()
        golden = [json.loads(line) for line in GOLDEN_PATH.read_text().splitlines()]
        assert got == golden

    def test_golden_covers_core_vocabulary(self):
        kinds = {json.loads(l)["ev"] for l in GOLDEN_PATH.read_text().splitlines()}
        assert {
            "run_begin",
            "region_push",
            "alloc",
            "gc_begin",
            "gc_end",
            "region_pop",
            "run_end",
        } <= kinds
        assert kinds <= set(EVENT_SCHEMA)


if __name__ == "__main__":
    import sys

    if len(sys.argv) > 1 and sys.argv[1] == "regen":
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        with GOLDEN_PATH.open("w", encoding="utf-8") as handle:
            for event in _golden_trace():
                handle.write(json.dumps(event, separators=(",", ":")) + "\n")
        print(f"wrote {GOLDEN_PATH}")

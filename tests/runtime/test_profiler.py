"""The region profiler: per-letregion-site aggregation and the text
report."""

import pytest

from repro import DanglingPointerError, Strategy, compile_program
from repro.runtime.profiler import RegionProfiler
from repro.runtime.trace import EventBus

LOOP_SOURCE = """
fun iter n =
  if n = 0 then 0
  else let val tmp = tabulate (20, fn i => i * n)
       in (foldl (fn (a, b) => a + b) 0 tmp + iter (n - 1)) mod 1000
       end
val it = iter 15
"""

FIGURE_1 = """
fun work n = if n = 0 then nil else n :: work (n - 1)
fun run () =
  let val h : unit -> unit =
        (op o) (let val x = "oh" ^ "no"
                in (fn x => (), fn () => x)
                end)
      val _ = work 200
  in h ()
  end
val it = run ()
"""


@pytest.fixture(scope="module")
def profiled():
    prog = compile_program(LOOP_SOURCE, strategy=Strategy.RG)
    profiler = RegionProfiler()
    bus = EventBus(profiler)
    result = prog.run(tracer=bus, initial_threshold=512)
    bus.close()
    return profiler, result


class TestAggregation:
    def test_sites_and_instances(self, profiled):
        profiler, result = profiled
        sites = profiler.sites()
        assert sites  # at least the loop's letregion sites plus rtop
        total_instances = sum(s.instances for s in sites)
        # Every created region plus the global region is an instance of
        # some site (letregion expressions may bind several regions each).
        created = (
            result.stats.finite_regions_created
            + result.stats.infinite_regions_created
        )
        assert total_instances == created + 1

    def test_alloc_words_conserved(self, profiled):
        profiler, result = profiled
        assert (
            sum(s.alloc_words for s in profiler.sites())
            == result.stats.allocated_words
        )
        assert sum(s.allocs for s in profiler.sites()) == result.stats.allocations

    def test_high_water_bounded_by_peak(self, profiled):
        profiler, result = profiled
        for site in profiler.sites():
            assert 0 <= site.high_water <= result.stats.peak_words

    def test_lifetimes_positive_for_loop_sites(self, profiled):
        profiler, _ = profiled
        popped = [s for s in profiler.sites() if s.popped]
        assert popped
        for site in popped:
            assert site.max_lifetime >= site.avg_lifetime >= 0

    def test_global_region_reported_live(self, profiled):
        profiler, _ = profiled
        rtop = next(s for s in profiler.sites() if s.name == "rtop")
        assert rtop.live_instances == 1
        assert rtop.kind == "infinite"

    def test_gc_summary(self, profiled):
        profiler, result = profiled
        assert profiler.gc_majors == result.stats.gc_count
        assert profiler.gc_minors == result.stats.gc_minor_count
        assert profiler.completed is True
        assert profiler.strategy == "rg"

    def test_finite_classification_cross_referenced(self, profiled):
        """The multiplicity analysis's finite sites surface in the
        profile with their statically inferred capacity."""
        profiler, _ = profiled
        finite = [s for s in profiler.sites() if s.kind == "finite"]
        assert finite
        for site in finite:
            assert site.capacity is not None and site.capacity >= 1
            assert site.classification in ("finite", "finite->inf")

    def test_to_dict_round(self, profiled):
        profiler, _ = profiled
        d = profiler.sites()[0].to_dict()
        assert {"name", "classification", "instances", "high_water"} <= set(d)


class TestReport:
    def test_report_renders(self, profiled):
        profiler, _ = profiled
        report = profiler.report(top=5)
        assert "region profile (strategy rg)" in report
        assert "hiwater" in report
        assert "#" in report  # the bar chart
        assert "more sites" in report or report.count("\n") <= 10

    def test_report_deterministic(self, profiled):
        profiler, _ = profiled
        assert profiler.report() == profiler.report()


class TestDangleAttribution:
    def test_dangle_attributed_to_site(self):
        prog = compile_program(FIGURE_1, strategy=Strategy.RG_MINUS)
        profiler = RegionProfiler()
        bus = EventBus(profiler)
        with pytest.raises(DanglingPointerError):
            prog.run(tracer=bus, gc_every_alloc=True)
        bus.close()
        assert len(profiler.dangles) == 1
        assert profiler.completed is False
        report = profiler.report()
        assert "dangling-pointer probe" in report
        assert "DANGLED" in report
        dangled = [s for s in profiler.sites() if s.dangles]
        assert len(dangled) == 1
        # The dangled region is the popped string region of Figure 1.
        assert dangled[0].name == profiler.dangles[0]["name"]

"""The small-step machine (Figure 6) and the paper's metatheory:
preservation (Prop. 18), progress (Prop. 19), soundness (Thm. 1), and
containment (Thm. 2), tested on real region-inference output."""

import pytest

from repro import CompilerFlags, Strategy, compile_program
from repro.core import terms as T
from repro.core.effects import RHO_TOP
from repro.core.gcsafety import context_contained
from repro.core.typecheck import typecheck
from repro.runtime.smallstep import evaluate, step, trace

FLAGS = CompilerFlags(with_prelude=False)


def term_of(src: str):
    return compile_program(src, flags=FLAGS).term


PROGRAMS = {
    "arith": ("val it = (3 + 4) * 2", T.VInt(14)),
    "let": ("val x = 5 val it = x + x", T.VInt(10)),
    "lambda": ("val it = (fn x => x + 1) 41", T.VInt(42)),
    "fun": ("fun double x = x + x val it = double 21", T.VInt(42)),
    "recursion": (
        "fun fact n = if n = 0 then 1 else n * fact (n - 1) val it = fact 5",
        T.VInt(120),
    ),
    "pairs": ("val p = (1, 2) val it = #1 p + #2 p", T.VInt(3)),
    "polymorphic": (
        "fun id x = x  val it = id 7",
        T.VInt(7),
    ),
    "higher_order": (
        "fun twice f = fn x => f (f x) val it = twice (fn y => y * 3) 2",
        T.VInt(18),
    ),
    "strings": ('val it = size ("ab" ^ "cde")', T.VInt(5)),
    "bools": ("val it = if 3 < 4 then 1 else 0", T.VInt(1)),
    "lists": (
        "fun sum xs = if null xs then 0 else hd xs + sum (tl xs) "
        "val it = sum [1,2,3,4]",
        T.VInt(10),
    ),
    "compose": (
        "fun o p = fn x => (#1 p) ((#2 p) x) "
        "val it = (op o) (fn a => a + 1, fn b => b * 2) 5",
        T.VInt(11),
    ),
}


class TestEvaluation:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_reduces_to_expected_value(self, name):
        src, expected = PROGRAMS[name]
        result = evaluate(term_of(src))
        assert result == expected

    def test_step_on_value_returns_none(self):
        assert step(T.VInt(1), frozenset()) is None

    def test_trace_starts_with_input(self):
        term = term_of("val it = 1 + 1")
        steps = list(trace(term))
        assert steps[0] is term
        assert steps[-1] == T.VInt(2)


class TestMetatheory:
    """Run each program, re-checking the paper's theorems at every step."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_preservation_prop18(self, name):
        """Every step preserves the type (Proposition 18)."""
        src, _ = PROGRAMS[name]
        term = term_of(src)
        pi0 = typecheck(term).pi
        for t in trace(term, max_steps=3000):
            assert typecheck(t).pi == pi0

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_progress_prop19(self, name):
        """A well-typed term either is a value or steps (Proposition 19).
        ``trace`` would raise StuckError otherwise; assert termination on
        a value."""
        src, _ = PROGRAMS[name]
        final = evaluate(term_of(src), max_steps=3000)
        assert T.is_value(final)

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_containment_thm2(self, name):
        """phi |=c e is preserved by evaluation (Theorem 2): at every
        step, live values are in allocated regions — the property that
        lets a tracing collector interleave with evaluation."""
        src, _ = PROGRAMS[name]
        for t in trace(term_of(src), max_steps=3000):
            assert context_contained(frozenset({RHO_TOP}), t)


class TestBigSmallAgreement:
    """The efficient big-step machine and the paper-faithful small-step
    machine agree on final values."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_agree(self, name):
        src, _ = PROGRAMS[name]
        prog = compile_program(src, flags=FLAGS)
        small = evaluate(prog.term, max_steps=5000)
        big = prog.run()
        assert _against(small, big.value)


def _against(small: T.Term, big) -> bool:
    from repro.runtime import values as V

    if isinstance(small, T.VInt):
        return isinstance(big, int) and not isinstance(big, bool) and small.value == big
    if isinstance(small, T.VBool):
        return isinstance(big, bool) and small.value == big
    if isinstance(small, T.VUnit):
        return isinstance(big, V.Unit)
    if isinstance(small, T.VStr):
        return isinstance(big, V.RStr) and small.value == big.value
    if isinstance(small, T.VReal):
        return isinstance(big, V.RReal) and small.value == big.value
    if isinstance(small, T.VPair):
        return isinstance(big, V.RPair) and _against(small.fst, big.fst) and _against(small.snd, big.snd)
    if isinstance(small, T.VNil):
        return isinstance(big, V.Nil)
    if isinstance(small, T.VCons):
        return isinstance(big, V.RCons) and _against(small.head, big.head) and _against(small.tail, big.tail)
    if isinstance(small, (T.VClos, T.VFunClos)):
        return isinstance(big, (V.RClos, V.RFunClos))
    return False

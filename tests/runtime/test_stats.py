"""RunStats serialization: to_dict/from_dict round-tripping and the
summary line."""

import dataclasses

from repro import Strategy, compile_program
from repro.runtime.stats import RunStats


def _populated_stats() -> RunStats:
    prog = compile_program(
        """
        fun build n = if n = 0 then nil else (n, n) :: build (n - 1)
        val it = length (build 50)
        """,
        strategy=Strategy.RG,
    )
    return prog.run(gc_every_alloc=True).stats


class TestRoundTrip:
    def test_to_dict_covers_every_field(self):
        stats = RunStats()
        assert set(stats.to_dict()) == {
            f.name for f in dataclasses.fields(RunStats)
        }

    def test_round_trip_default(self):
        stats = RunStats()
        assert RunStats.from_dict(stats.to_dict()) == stats

    def test_round_trip_populated(self):
        stats = _populated_stats()
        clone = RunStats.from_dict(stats.to_dict())
        assert clone == stats
        assert clone is not stats
        # And the dict form is stable through a second trip.
        assert clone.to_dict() == stats.to_dict()

    def test_from_dict_ignores_unknown_keys(self):
        data = RunStats(steps=7).to_dict()
        data["from_a_newer_schema"] = 123
        assert RunStats.from_dict(data).steps == 7

    def test_from_dict_defaults_missing_keys(self):
        assert RunStats.from_dict({"steps": 9}) == RunStats(steps=9)


class TestSummary:
    def test_summary_reflects_values(self):
        stats = _populated_stats()
        summary = stats.summary()
        assert f"steps={stats.steps}" in summary
        assert f"allocs={stats.allocations}" in summary
        assert f"peak_words={stats.peak_words}" in summary
        assert f"gc={stats.gc_count}" in summary
        assert f"letregions={stats.letregions}" in summary


class TestMerge:
    def test_counters_sum_peaks_max(self):
        left = RunStats(steps=10, allocations=4, peak_words=100,
                        max_region_stack=7, gc_count=1)
        right = RunStats(steps=5, allocations=6, peak_words=40,
                         max_region_stack=9, gc_count=2)
        merged = left.merge(right)
        assert merged.steps == 15
        assert merged.allocations == 10
        assert merged.gc_count == 3
        assert merged.peak_words == 100      # high-water: max, not sum
        assert merged.max_region_stack == 9  # high-water: max, not sum

    def test_merge_mutates_neither_operand(self):
        left, right = RunStats(steps=1), RunStats(steps=2)
        assert left.merge(right).steps == 3
        assert left == RunStats(steps=1)
        assert right == RunStats(steps=2)

    def test_merge_covers_every_field(self):
        # Any future counter must make a merged pair differ from a
        # default — catches fields forgotten by merge().
        ones = RunStats(**{f.name: 1 for f in dataclasses.fields(RunStats)})
        merged = RunStats().merge(ones)
        assert merged == ones

    def test_aggregate_folds_many_runs(self):
        runs = [RunStats(steps=i, peak_words=i * 10) for i in (1, 2, 3)]
        total = RunStats.aggregate(runs)
        assert total.steps == 6
        assert total.peak_words == 30

    def test_aggregate_empty_is_default(self):
        assert RunStats.aggregate([]) == RunStats()

    def test_aggregate_of_real_runs_matches_manual_fold(self):
        stats = _populated_stats()
        twice = RunStats.aggregate([stats, stats])
        assert twice.steps == 2 * stats.steps
        assert twice.peak_words == stats.peak_words

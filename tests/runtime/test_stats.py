"""RunStats serialization: to_dict/from_dict round-tripping and the
summary line."""

import dataclasses

from repro import Strategy, compile_program
from repro.runtime.stats import RunStats


def _populated_stats() -> RunStats:
    prog = compile_program(
        """
        fun build n = if n = 0 then nil else (n, n) :: build (n - 1)
        val it = length (build 50)
        """,
        strategy=Strategy.RG,
    )
    return prog.run(gc_every_alloc=True).stats


class TestRoundTrip:
    def test_to_dict_covers_every_field(self):
        stats = RunStats()
        assert set(stats.to_dict()) == {
            f.name for f in dataclasses.fields(RunStats)
        }

    def test_round_trip_default(self):
        stats = RunStats()
        assert RunStats.from_dict(stats.to_dict()) == stats

    def test_round_trip_populated(self):
        stats = _populated_stats()
        clone = RunStats.from_dict(stats.to_dict())
        assert clone == stats
        assert clone is not stats
        # And the dict form is stable through a second trip.
        assert clone.to_dict() == stats.to_dict()

    def test_from_dict_ignores_unknown_keys(self):
        data = RunStats(steps=7).to_dict()
        data["from_a_newer_schema"] = 123
        assert RunStats.from_dict(data).steps == 7

    def test_from_dict_defaults_missing_keys(self):
        assert RunStats.from_dict({"steps": 9}) == RunStats(steps=9)


class TestSummary:
    def test_summary_reflects_values(self):
        stats = _populated_stats()
        summary = stats.summary()
        assert f"steps={stats.steps}" in summary
        assert f"allocs={stats.allocations}" in summary
        assert f"peak_words={stats.peak_words}" in summary
        assert f"gc={stats.gc_count}" in summary
        assert f"letregions={stats.letregions}" in summary

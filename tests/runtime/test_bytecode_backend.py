"""Golden equivalence of the bytecode VM backend against the tree
walker, plus the specialization contracts unique to it.

The bytecode backend (:mod:`repro.runtime.bytecode`) is the third
evaluator and — like the closure backend — purely a speed knob: same
values, same stdout, same ``RunStats``, same trace events, same faults,
under every strategy and injected-GC schedule.  These tests extend the
23x5 golden matrix with the third backend column.

On top of the equivalence matrix, the specializer has contracts of its
own, pinned here:

* **determinism** — two independent compile+run cycles of the same
  program with the same threshold produce byte-identical disassembly
  and identical specialization tables (no ``id()``/hash-order leaks);
* **tier transparency** — a fully-specialized (hot) run is
  bit-identical to a never-specialized (cold) one;
* **persistence** — a pickled program (the disk compile cache, a
  worker-pool result) round-trips its instruction array and
  specialization table, and revived kernels behave identically;
* **stable disassembly** — the ``--disasm`` format is pinned by a
  golden file (``tests/runtime/data/disasm_figure1.txt``), which CI
  also diffs against the examples embedded in ``docs/bytecode.md``.
"""

import pickle
from pathlib import Path

import pytest

from repro.bench.registry import BENCHMARKS, benchmark_source
from repro.config import CompilerFlags, RuntimeFlags, Strategy
from repro.core.errors import ReproError
from repro.pipeline import compile_program
from repro.runtime.trace import EventBus, RecordingSink
from repro.runtime.values import show_value
from repro.testing.faultplan import FaultPlan


def _outcome(prog, backend, **overrides):
    """A comparable record of a run: success (value, stdout, full stats)
    or fault (type and message)."""
    try:
        result = prog.run(backend=backend, **overrides)
    except ReproError as exc:
        return ("exc", type(exc).__name__, str(exc))
    return (
        "ok",
        show_value(result.value),
        result.output,
        tuple(sorted(result.stats.to_dict().items())),
    )


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_golden_matrix(name):
    """All 23 benchmarks x 5 strategies: the bytecode VM reproduces the
    tree walker's outcome exactly — with the default specialization
    threshold active, so hot benchmarks cross into fused segments and
    generated kernels *during* the comparison run."""
    bench = BENCHMARKS[name]
    source = benchmark_source(name)
    for strategy in Strategy:
        prog = compile_program(source, strategy=strategy)
        tree = _outcome(prog, "tree")
        bytecode = _outcome(prog, "bytecode")
        assert bytecode == tree, f"{name}/{strategy.value} diverged"
        if tree[0] == "ok":
            assert tree[1] == bench.expected, f"{name}/{strategy.value}"


@pytest.mark.parametrize("name", ["fib", "msort", "zebra"])
def test_eager_specialization_matrix(name):
    """``specialize=1`` drives every body through fusing + kernel
    generation on its first entry — the maximally-specialized run must
    still be bit-identical to the walker."""
    for strategy in (Strategy.RG, Strategy.RG_MINUS, Strategy.ML):
        prog = compile_program(benchmark_source(name), strategy=strategy)
        assert _outcome(prog, "bytecode", specialize=1) == _outcome(
            prog, "tree"
        ), f"{name}/{strategy.value}"


def _events(prog, backend, **overrides):
    sink = RecordingSink()
    try:
        prog.run(backend=backend, tracer=EventBus(sink), **overrides)
    except ReproError:
        pass  # the trace up to the fault is still compared
    return sink.events


@pytest.mark.parametrize("name", ["fib", "life", "msort"])
@pytest.mark.parametrize("strategy", [Strategy.RG, Strategy.RG_MINUS])
def test_trace_equivalence(name, strategy):
    """Event traces are identical between the VM and the walker.  Traced
    runs stay on the canonical (Tier-0) instruction stream by contract,
    so this also pins that tracing disables specialization."""
    prog = compile_program(benchmark_source(name), strategy=strategy)
    assert _events(prog, "bytecode") == _events(prog, "tree")


PLANS = [
    FaultPlan.every_nth(3, kind="major"),
    FaultPlan.every_dealloc(1, kind="major"),
    FaultPlan.random_plan(7, rate=0.1, dealloc_rate=0.25, kind="random"),
]


@pytest.mark.parametrize("name", ["life", "zebra"])
@pytest.mark.parametrize("plan", PLANS, ids=["every3", "dealloc", "random"])
def test_fault_plan_equivalence(name, plan):
    """Injected-GC schedules key off allocation/dealloc ordinals, so a
    single reordered allocation in the VM (or in a generated kernel —
    fault plans *do* run specialized code) diverges here."""
    for strategy in (Strategy.RG, Strategy.RG_MINUS):
        prog = compile_program(benchmark_source(name), strategy=strategy)
        kwargs = dict(fault_plan=plan, max_steps=2_000_000)
        assert _outcome(prog, "bytecode", **kwargs) == _outcome(
            prog, "tree", **kwargs
        ), f"{name}/{strategy.value}"


def test_gc_every_alloc_dangling_equivalence():
    """The Figure 1 fault: under rg- with a collection at every
    allocation the VM observes the same dangling pointer as the walker
    (same fault type, same message)."""
    prog = compile_program(benchmark_source("simple"), strategy=Strategy.RG_MINUS)
    kwargs = dict(max_steps=300_000, gc_every_alloc=True)
    tree = _outcome(prog, "tree", **kwargs)
    bytecode = _outcome(prog, "bytecode", **kwargs)
    assert bytecode == tree
    assert tree[0] == "exc" and tree[1] == "DanglingPointerError"


def test_deep_recursion_every_tier():
    """Deep MiniML recursion must trip the interpreter's ``max_depth``
    counter on every tier — canonical (``specialize=0``), limit-checked
    (a deadline forces the canonical stream), and specializing — exactly
    like the walker.  Regression: VM-internal calls used to invoke
    ``BodyCode`` *instances* (CPython ``slot_tp_call``, which consumes C
    stack per hop), so with the recursion limit raised by ``run_term``
    the canonical tier overflowed the C stack and crashed the process
    before the depth counter fired; calls now devirtualize through the
    plain function ``vm._call_body``."""
    source = "fun loop n = loop (n + 1)\nval it = loop 0\n"
    expected = _outcome(compile_program(source, cache=False), "tree")
    assert expected[0] == "exc" and expected[1] == "InterpreterLimit"
    assert "call depth exceeded" in expected[2]
    for overrides in (
        {"specialize": 0},
        {"deadline_seconds": 600.0},
        {"specialize": 8},
    ):
        prog = compile_program(source, cache=False)
        assert _outcome(prog, "bytecode", **overrides) == expected, overrides


def test_sanitizer_equivalence():
    """Sanitized runs are limit-checked, so the VM must stay on the
    canonical stream and match the walker exactly."""
    for name in ("fib", "simple"):
        for strategy in (Strategy.RG, Strategy.RG_MINUS):
            prog = compile_program(benchmark_source(name), strategy=strategy)
            kwargs = dict(sanitize=True, max_steps=2_000_000)
            assert _outcome(prog, "bytecode", **kwargs) == _outcome(
                prog, "tree", **kwargs
            ), f"{name}/{strategy.value}"


# ---------------------------------------------------------------------------
# Specialization contracts
# ---------------------------------------------------------------------------


def test_hot_equals_cold():
    """Tier transparency: a run that specializes everything
    (``specialize=1``) is bit-identical — value, output, full stats —
    to one that never leaves the canonical stream (``specialize=0``)."""
    for name in ("fib", "msort"):
        cold = compile_program(benchmark_source(name), cache=False)
        hot = compile_program(benchmark_source(name), cache=False)
        assert _outcome(hot, "bytecode", specialize=1) == _outcome(
            cold, "bytecode", specialize=0
        ), name


def _hot_program(name="fib", strategy=Strategy.RG):
    """Compile uncached and run once with an eager threshold, so the
    program carries fused segments, kernels, and observed call sites."""
    prog = compile_program(benchmark_source(name), strategy=strategy, cache=False)
    prog.run(backend="bytecode", specialize=1)
    return prog


def test_specialization_determinism():
    """Two independent compile+run cycles of the same source with the
    same threshold produce byte-identical disassembly and identical
    specialization tables — specialization depends only on the program
    and the profile, never on ``id()`` ordering or hash seeds."""
    a, b = _hot_program(), _hot_program()
    pa, pb = a._bytecode.program, b._bytecode.program
    assert a.disasm() == b.disasm()
    assert pa.spec_table() == pb.spec_table()
    # ...and both specialized programs still run to the right answer.
    assert _outcome(a, "bytecode") == _outcome(b, "bytecode")


def test_pickle_roundtrip_preserves_specialization():
    """The persistence contract of ``_BytecodeSlot``: a pickled program
    (disk cache entry, worker-pool result) arrives with its instruction
    array and specialization table intact, revives kernels from source,
    and runs bit-identically."""
    hot = _hot_program("msort")
    table = hot._bytecode.program.spec_table()
    text = hot.disasm()
    assert any(row["specialized"] for row in table["bodies"])

    clone = pickle.loads(pickle.dumps(hot))
    cloned_program = clone._bytecode.program
    assert cloned_program is not None, "instruction array must travel"
    assert cloned_program.spec_table() == table
    assert clone.disasm() == text
    assert _outcome(clone, "bytecode") == _outcome(hot, "bytecode")


def test_cold_pickle_roundtrip():
    """A program pickled *before* any bytecode run lowers lazily on the
    other side and still matches the walker."""
    prog = compile_program(benchmark_source("fib"), cache=False)
    clone = pickle.loads(pickle.dumps(prog))
    assert _outcome(clone, "bytecode") == _outcome(prog, "tree")


def test_unpickle_predating_backend_slots():
    """A pickle written before the backend slots existed (a stale disk
    cache, a user-persisted program) must still run on every backend:
    ``__setstate__`` re-creates missing slots.  (The serving disk cache
    additionally version-gates such entries out — ``FORMAT_VERSION``
    bumped with the payload schema — but other pickle channels have no
    header to check.)"""
    from repro.pipeline import CompiledProgram

    prog = compile_program(benchmark_source("ratio"), cache=False)
    state = prog.__getstate__()
    del state["_backend"]
    del state["_bytecode"]
    clone = CompiledProgram.__new__(CompiledProgram)
    clone.__setstate__(pickle.loads(pickle.dumps(state)))
    expected = _outcome(prog, "tree")
    for backend in ("tree", "closure", "bytecode"):
        assert _outcome(clone, backend) == expected, backend


def test_disk_cache_roundtrip(tmp_path):
    """End-to-end through the serving layer's disk cache: store a hot
    program, evict the in-memory copy, and check the disk hit carries
    the specialization table."""
    from repro.cache import cache_key
    from repro.server.diskcache import DiskCompileCache

    hot = _hot_program("fib")
    key = cache_key(hot.source, hot.flags)
    cache = DiskCompileCache(tmp_path / "cache")
    cache.put(key, hot)

    loaded = cache.get(key)
    assert loaded is not None
    assert loaded._bytecode.program.spec_table() == hot._bytecode.program.spec_table()
    assert _outcome(loaded, "bytecode") == _outcome(hot, "bytecode")


def test_specialize_zero_never_specializes():
    """``specialize=0`` disables the counter entirely."""
    prog = compile_program(benchmark_source("fib"), cache=False)
    prog.run(backend="bytecode", specialize=0)
    table = prog._bytecode.program.spec_table()
    assert not any(row["specialized"] for row in table["bodies"])
    assert table["code_len"] == table["canonical_len"]


def test_checked_runs_stay_canonical():
    """Limit-checked runs never advance the specialization counter and
    never execute specialized segments, even on a hot program."""
    hot = _hot_program("fib")
    # A traced run on a hot program must still match the walker's trace.
    assert _events(hot, "bytecode") == _events(hot, "tree")


# ---------------------------------------------------------------------------
# The stable disassembly format (docs/bytecode.md)
# ---------------------------------------------------------------------------

DATA = Path(__file__).parent / "data"


def _figure1_program(strategy):
    source = (DATA / "figure1.mml").read_text(encoding="utf-8")
    flags = CompilerFlags(strategy=strategy, with_prelude=False)
    return compile_program(source, flags=flags, cache=False)


def test_disasm_golden():
    """The disassembly of the worked Figure 1 example is a documented
    interface: docs/bytecode.md embeds it and CI regenerates it
    (scripts/docs_consistency.py).  Any intentional format change must
    update the golden file *and* the docs."""
    prog = _figure1_program(Strategy.RG_MINUS)
    expected = (DATA / "disasm_figure1.txt").read_text(encoding="utf-8")
    assert prog.disasm() == expected


def test_figure1_example_dangles_under_rg_minus():
    """The docs' worked example really exhibits the paper's bug: under
    ``rg-`` a collection at the region deallocation point traces the
    composed closure's environment into the just-freed string region —
    identically on both backends.  Under ``rg`` the same schedule is
    clean."""
    plan = FaultPlan.every_dealloc(1, kind="major")
    minus = _figure1_program(Strategy.RG_MINUS)
    tree = _outcome(minus, "tree", fault_plan=plan)
    bytecode = _outcome(minus, "bytecode", fault_plan=plan)
    assert bytecode == tree
    assert tree[0] == "exc" and tree[1] == "DanglingPointerError"

    sound = _figure1_program(Strategy.RG)
    assert _outcome(sound, "bytecode", fault_plan=plan)[0] == "ok"


def test_cli_disasm_matches_api(capsys):
    """``repro-run --disasm`` prints exactly ``CompiledProgram.disasm()``."""
    from repro.cli import main

    path = str(DATA / "figure1.mml")
    assert main([path, "--strategy", "rg-", "--no-prelude", "--disasm",
                 "--no-cache"]) == 0
    printed = capsys.readouterr().out
    expected = (DATA / "disasm_figure1.txt").read_text(encoding="utf-8")
    assert printed == expected


def test_flags_reject_bad_backend():
    prog = compile_program("val it = 1 + 2", cache=False)
    with pytest.raises(ValueError, match="unknown backend"):
        prog.run(backend="jit")


def test_runtime_flags_specialize_field():
    """The flag exists, defaults on, and threads through CompilerFlags."""
    assert RuntimeFlags().specialize == 64
    flags = CompilerFlags(runtime=RuntimeFlags(specialize=0))
    prog = compile_program(benchmark_source("fib"), flags=flags, cache=False)
    prog.run(backend="bytecode")
    assert not any(
        row["specialized"]
        for row in prog._bytecode.program.spec_table()["bodies"]
    )

"""The paged region heap: free-list recycling, O(pages) release, waste
accounting, ``peak_pages``, and the pluggable-policy split.

Three bugfix regressions ride along:

* ``Region.young_words`` is reset on region deallocation (a dead
  descriptor must never feed a later minor-collection decision);
* peak accounting happens in exactly one place
  (:meth:`RunStats.note_current`), so a peak that crests *mid-GC* — the
  copying policy's to-space page reserve — is identical across the
  tree, closure, and bytecode backends;
* ``resolve_policy`` rejects unknown names before a run starts.
"""

import pytest

from repro import Strategy, compile_program
from repro.config import RuntimeFlags
from repro.runtime.gc import (
    MINORS_PER_MAJOR,
    POLICIES,
    Collector,
    CopyingPolicy,
    GenerationalPolicy,
    MarkCompactPolicy,
    policy_table,
    resolve_policy,
)
from repro.runtime.heap import FINITE, INFINITE, NO_PAGE, Heap, Page, Region
from repro.runtime.stats import RunStats
from repro.testing.faultplan import FaultPlan

BACKENDS = ("tree", "closure", "bytecode")

#: Builds ~800 live words (400 cons cells), then keeps them live across
#: the injected collections: the peak footprint of this program occurs
#: *during* a major GC when the copying policy reserves to-space pages.
LIVE_LIST_SOURCE = """
fun build n = if n = 0 then nil else n :: build (n - 1)
fun total xs = if null xs then 0 else hd xs + total (tl xs)
val xs = build 400
val it = total xs + total xs
"""

#: One letregion per iteration, deallocated hot: the schedule that
#: collects immediately after every region pop exercises the
#: ``young_words`` reset (satellite bugfix 1).
CHURN_SOURCE = """
fun step n =
  if n = 0 then 0
  else let val tmp = (n, n :: nil)
       in (#1 tmp) + step (n - 1)
       end
val it = step 40
"""


def _heap(**kw) -> Heap:
    return Heap(RuntimeFlags(**kw), RunStats())


def _run(source, *, backend="tree", **overrides):
    prog = compile_program(source, strategy=Strategy.RG)
    return prog.run(backend=backend, **overrides)


# -- page mechanics (unit level) --------------------------------------------------


class TestPageMechanics:
    def test_fresh_region_is_pageless(self):
        heap = _heap()
        region = heap.new_region("r")
        assert region.page_list == []
        assert region.cur_page is NO_PAGE
        assert region.cur_free == 0
        assert region.pages() == 0

    def test_alloc_acquires_and_fills_pages(self):
        heap = _heap(page_words=16)
        region = heap.new_region("r")
        heap.alloc(region, 1)
        assert region.pages() == 1
        assert region.cur_free == 15
        heap.alloc(region, 15)  # exactly fills the page
        assert region.pages() == 1
        assert region.cur_free == 0
        heap.alloc(region, 1)  # spills onto a second page, no waste
        assert region.pages() == 2
        assert region.waste_words == 0
        assert heap.stats.pages_created == 2

    def test_value_never_spans_a_page_boundary(self):
        heap = _heap(page_words=16)
        region = heap.new_region("r")
        heap.alloc(region, 10)  # 6 words left on the page
        heap.alloc(region, 8)   # does not fit: page closes, 6-word tail wasted
        assert region.pages() == 2
        assert region.waste_words == 6
        assert heap.stats.page_waste_words == 6
        assert region.cur_free == 16 - 8
        assert region.words == 18  # waste is accounting, not data

    def test_large_value_takes_a_dedicated_page_run(self):
        heap = _heap(page_words=16)
        region = heap.new_region("r")
        heap.alloc(region, 40)  # ceil(40/16) = 3 pages in one acquisition
        assert region.pages() == 3
        assert region.cur_free == 3 * 16 - 40
        assert region.cur_page is region.page_list[-1]

    def test_dealloc_returns_every_page_in_one_release(self):
        heap = _heap(page_words=16)
        region = heap.new_region("r")
        heap.alloc(region, 100)
        owned = list(region.page_list)
        assert len(owned) == 7
        assert heap.stats.current_pages == 7
        heap.dealloc_region(region)
        assert region.page_list == []
        assert region.cur_page is NO_PAGE
        assert region.cur_free == 0
        assert heap.stats.current_pages == 0
        assert set(map(id, heap.free_pages)) == set(map(id, owned))

    def test_dealloc_resets_young_words(self):
        """Bugfix regression: a dead descriptor must not carry stale
        generation accounting into a later minor-collection decision."""
        heap = _heap()
        region = heap.new_region("r")
        heap.alloc(region, 10)
        assert region.young_words == 10
        heap.dealloc_region(region)
        assert region.young_words == 0
        assert region.words == 0
        assert region.waste_words == 0

    def test_free_list_is_lifo_and_recycles_before_creating(self):
        heap = _heap(page_words=16)
        a = heap.new_region("a")
        heap.alloc(a, 32)  # two pages
        first, second = a.page_list
        heap.dealloc_region(a)
        # Pages pop from the region's tail, so `first` lands on top.
        assert heap.free_pages[-1] is first
        b = heap.new_region("b")
        heap.alloc(b, 1)
        assert b.cur_page is first
        assert heap.stats.pages_recycled == 1
        assert heap.stats.pages_created == 2  # no new page was made
        heap.alloc(b, 16)  # spill: recycles `second` too
        assert b.page_list == [first, second]
        assert heap.stats.pages_recycled == 2
        assert heap.stats.pages_created == 2

    def test_release_bumps_the_recycle_stamp(self):
        heap = _heap(page_words=16)
        region = heap.new_region("r")
        heap.alloc(region, 1)
        page = region.cur_page
        born = page.stamp
        heap.dealloc_region(region)
        assert page.stamp == born + 1
        # A second lifecycle bumps it again.
        r2 = heap.new_region("r2")
        heap.alloc(r2, 1)
        assert r2.cur_page is page
        heap.dealloc_region(r2)
        assert page.stamp == born + 2

    def test_no_page_sentinel_is_never_stamped(self):
        heap = _heap(page_words=16)
        for _ in range(3):
            region = heap.new_region("r")
            heap.alloc(region, 20)
            heap.dealloc_region(region)
        assert NO_PAGE.stamp == 0
        assert NO_PAGE not in heap.free_pages

    def test_page_conservation(self):
        """Every page ever created is either owned by a live region or
        on the free list — pages are recycled, never leaked."""
        heap = _heap(page_words=16)
        keep = heap.new_region("keep")
        heap.alloc(keep, 24)
        for _ in range(4):
            region = heap.new_region("tmp")
            heap.alloc(region, 50)
            heap.dealloc_region(region)
        owned = sum(len(r.page_list) for r in heap.region_stack)
        assert owned == heap.stats.current_pages
        assert owned + len(heap.free_pages) == heap.stats.pages_created

    def test_peak_pages_is_a_high_water_mark(self):
        heap = _heap(page_words=16)
        region = heap.new_region("r")
        heap.alloc(region, 16 * 5)
        assert heap.stats.peak_pages == 5
        heap.dealloc_region(region)
        assert heap.stats.current_pages == 0
        assert heap.stats.peak_pages == 5  # the mark survives the release

    def test_finite_regions_stay_pageless_until_morph(self):
        heap = _heap(page_words=16)
        region = heap.new_region("r", kind=FINITE, capacity=4)
        heap.alloc(region, 4)
        assert region.kind == FINITE
        assert region.pages() == 0
        heap.alloc(region, 4)  # overflow: morphs to infinite
        assert region.kind == INFINITE
        # The 4 stack words moved onto pages along with the new value.
        assert region.pages() == 1
        assert region.words == 8


# -- peak consolidation (satellite bugfix 2, unit level) --------------------------


class TestNoteCurrent:
    def test_folds_both_gauges(self):
        stats = RunStats()
        stats.current_words, stats.current_pages = 100, 7
        stats.note_current()
        assert (stats.peak_words, stats.peak_pages) == (100, 7)

    def test_never_lowers_a_peak(self):
        stats = RunStats(peak_words=500, peak_pages=9)
        stats.current_words, stats.current_pages = 100, 7
        stats.note_current()
        assert (stats.peak_words, stats.peak_pages) == (500, 9)

    def test_merge_treats_peaks_as_maxima(self):
        a = RunStats(peak_words=10, peak_pages=4, allocations=5)
        b = RunStats(peak_words=7, peak_pages=6, allocations=3)
        merged = a.merge(b)
        assert merged.peak_words == 10
        assert merged.peak_pages == 6
        assert merged.allocations == 8


# -- policy selection -------------------------------------------------------------


class TestPolicySelection:
    def test_registry_names(self):
        assert set(POLICIES) == {"copying", "generational", "mark-compact"}
        assert POLICIES["copying"] is CopyingPolicy
        assert POLICIES["generational"] is GenerationalPolicy
        assert POLICIES["mark-compact"] is MarkCompactPolicy

    def test_explicit_policy_wins_over_legacy_boolean(self):
        assert resolve_policy(None, False) == "copying"
        assert resolve_policy(None, True) == "generational"
        assert resolve_policy("mark-compact", True) == "mark-compact"
        assert resolve_policy("copying", True) == "copying"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown gc policy"):
            resolve_policy("cheney", False)

    def test_unknown_policy_rejected_at_run_time(self):
        prog = compile_program("val it = 1 + 1", strategy=Strategy.RG)
        with pytest.raises(ValueError, match="unknown gc policy"):
            prog.run(gc_policy="bogus")

    def test_collector_resolves_flags(self):
        heap = Heap(RuntimeFlags(gc_policy="mark-compact"), RunStats())
        collector = Collector(heap)
        assert isinstance(collector.policy, MarkCompactPolicy)
        assert collector.generational is False
        legacy = Collector(Heap(RuntimeFlags(generational=True), RunStats()))
        assert isinstance(legacy.policy, GenerationalPolicy)
        assert legacy.policy.until_major == MINORS_PER_MAJOR

    def test_policy_table_lists_every_policy(self):
        table = policy_table()
        assert table.splitlines()[0].startswith("| policy |")
        for name in POLICIES:
            assert f"`{name}`" in table


# -- policy bit-identity and the page-residency split (program level) -------------


class TestPolicyBitIdentity:
    """The tentpole contract: policies are a page-residency and schedule
    knob, never a semantics knob."""

    #: Word-level fields that must be identical across *all* policies.
    #: (The generational schedule legitimately changes gc/minor counts
    #: and traced/reclaimed words; page fields legitimately differ.)
    CORE_FIELDS = (
        "steps", "allocations", "allocated_words", "peak_words",
        "letregions", "region_deallocs", "finite_allocations",
        "infinite_regions_created", "finite_regions_created",
        "max_region_stack",
    )

    @pytest.fixture(scope="class")
    def by_policy(self):
        prog = compile_program(LIVE_LIST_SOURCE, strategy=Strategy.RG)
        plan = FaultPlan(every=100, kind="auto")
        return {
            policy: prog.run(gc_policy=policy, fault_plan=plan)
            for policy in sorted(POLICIES)
        }

    def test_values_identical(self, by_policy):
        values = {policy: r.value for policy, r in by_policy.items()}
        assert len(set(values.values())) == 1, values
        assert values["copying"] == 2 * sum(range(1, 401))

    def test_core_stats_identical(self, by_policy):
        rows = {
            policy: tuple(getattr(r.stats, f) for f in self.CORE_FIELDS)
            for policy, r in by_policy.items()
        }
        assert rows["copying"] == rows["generational"] == rows["mark-compact"]

    def test_majors_only_policies_fully_identical_but_for_pages(self, by_policy):
        """copying and mark-compact run the *same* schedule: every
        word-level stat matches; only page residency may differ."""
        page_fields = {"peak_pages", "current_pages", "pages_created",
                       "pages_recycled"}
        a = by_policy["copying"].stats.to_dict()
        b = by_policy["mark-compact"].stats.to_dict()
        diff = {k for k in a if a[k] != b[k]}
        assert diff <= page_fields, {k: (a[k], b[k]) for k in diff}

    def test_generational_actually_ran_minors(self, by_policy):
        gen = by_policy["generational"].stats
        assert gen.gc_minor_count > 0
        for policy in ("copying", "mark-compact"):
            assert by_policy[policy].stats.gc_minor_count == 0

    def test_copying_reserve_spikes_peak_pages(self):
        """The to-space reserve is the whole reason ``peak_pages``
        exists: with ~800 live words collected by a forced major, the
        copying policy's page peak crests mid-GC above mark-compact's,
        while ``peak_words`` stays bit-identical."""
        prog = compile_program(LIVE_LIST_SOURCE, strategy=Strategy.RG)
        plan = FaultPlan(at=(410,), kind="major")  # the list is (nearly) all live
        copying = prog.run(gc_policy="copying", fault_plan=plan).stats
        sliding = prog.run(gc_policy="mark-compact", fault_plan=plan).stats
        assert copying.peak_words == sliding.peak_words
        assert copying.peak_pages > sliding.peak_pages
        assert copying.gc_count == sliding.gc_count == 1


# -- cross-backend identity (satellite bugfixes 1 + 2, program level) -------------


class TestCrossBackendIdentity:
    def _all_backends(self, source, **overrides):
        prog = compile_program(source, strategy=Strategy.RG)
        return {b: prog.run(backend=b, **overrides) for b in BACKENDS}

    def test_mid_gc_peak_identical_across_backends(self):
        """Satellite bugfix 2: the peak of this run happens *inside* a
        collection (the copying to-space reserve).  With peak folding
        consolidated in ``RunStats.note_current`` the full stats dict —
        ``peak_words`` and ``peak_pages`` included — is bit-identical
        across the tree walker, the closure backend, and the VM."""
        results = self._all_backends(
            LIVE_LIST_SOURCE,
            gc_policy="copying",
            fault_plan=FaultPlan(at=(410,), kind="major"),
        )
        dicts = {b: r.stats.to_dict() for b, r in results.items()}
        assert dicts["tree"] == dicts["closure"] == dicts["bytecode"]
        assert len({r.value for r in results.values()}) == 1
        # And the peak really did crest mid-GC: page residency beyond
        # what the live data alone accounts for.
        stats = results["tree"].stats
        assert stats.peak_pages > -(-stats.peak_words // RuntimeFlags().page_words)

    def test_collect_at_every_dealloc_is_clean_and_identical(self):
        """Satellite bugfix 1: a minor collection fired immediately
        after every ``letregion`` exit must not be confused by the
        just-deallocated region's stale ``young_words``.  Runs clean and
        bit-identical under the generational policy on all backends."""
        plan = FaultPlan(dealloc_every=1, kind="minor")
        results = self._all_backends(
            CHURN_SOURCE, gc_policy="generational", fault_plan=plan
        )
        dicts = {b: r.stats.to_dict() for b, r in results.items()}
        assert dicts["tree"] == dicts["closure"] == dicts["bytecode"]
        stats = results["tree"].stats
        assert stats.gc_minor_count > 0
        assert stats.region_deallocs > 0
        assert results["tree"].value == sum(range(1, 41))

    def test_dealloc_schedule_identical_across_policies(self):
        """The dealloc-point schedule composes with every policy."""
        prog = compile_program(CHURN_SOURCE, strategy=Strategy.RG)
        plan = FaultPlan(dealloc_every=1, kind="major")
        outcomes = {
            policy: (r.value, r.stats.peak_words, r.stats.gc_count)
            for policy, r in (
                (p, prog.run(gc_policy=p, fault_plan=plan)) for p in sorted(POLICIES)
            )
        }
        assert len(set(outcomes.values())) == 1, outcomes

"""Unit tests for the big-step region interpreter: root discipline,
references, exceptions, limits, statistics, and strategy-specific
behaviour."""

import pytest

from repro import CompilerFlags, Strategy, compile_program
from repro.core.errors import InterpreterLimit, MLExceptionError, RuntimeFault
from repro.runtime.values import RReal, RStr, Unit, show_value

FLAGS = CompilerFlags(with_prelude=False)


def run(src, strategy=Strategy.RG, with_prelude=False, **overrides):
    from dataclasses import replace

    flags = replace(FLAGS, with_prelude=with_prelude, strategy=strategy)
    return compile_program(src, flags=flags).run(**overrides)


class TestRootDiscipline:
    """gc_every_alloc runs a collection at every allocation: any missing
    root would mis-account live words or crash on a dangling trace.  The
    invariants: correct results and current_words back to ~global-only."""

    CASES = {
        "pair_components": 'val it = size (#1 ("aa" ^ "b", "c" ^ "d"))',
        "cons_chain": (
            "fun up n = if n = 0 then nil else (itos n) :: up (n - 1) "
            "fun count xs = if null xs then 0 else size (hd xs) + count (tl xs) "
            "val it = count (up 12)"
        ),
        "ref_cells": (
            'val r = ref ("a" ^ "b") '
            'val _ = r := ("cc" ^ "dd") '
            "val it = size (!r)"
        ),
        "closure_captures": (
            'fun mk s = fn () => s ^ "!" '
            'val f = mk ("he" ^ "llo") '
            "val it = size (f ()) + size (f ())"
        ),
        "handler_payload": (
            "exception Oops of string "
            'val it = size ((raise Oops ("x" ^ "yz")) handle Oops s => s ^ s)'
        ),
        "deep_arith": "fun f n = if n = 0 then 0 else ((n, itos n); f (n - 1)) val it = f 30",
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_gc_every_alloc_correct(self, name):
        src = self.CASES[name]
        with_prelude = "itos" in src or "null" in src
        plain = run(src, with_prelude=with_prelude)
        stressed = run(src, with_prelude=with_prelude, gc_every_alloc=True)
        assert show_value(plain.value) == show_value(stressed.value)
        assert stressed.stats.gc_count > 0


class TestReferences:
    def test_ref_update_and_read(self):
        res = run("val r = ref 1 val _ = r := !r + 41 val it = !r")
        assert res.value == 42

    def test_refs_are_shared(self):
        res = run(
            "val r = ref 0 "
            "fun bump u = r := !r + 1 "
            "val _ = bump () val _ = bump () val it = !r"
        )
        assert res.value == 2

    def test_ref_in_closure_counter(self):
        res = run(
            "fun counter u = let val r = ref 0 in fn () => (r := !r + 1; !r) end "
            "val c = counter () "
            "val _ = c () val _ = c () val it = c ()"
        )
        assert res.value == 3


class TestExceptionsRuntime:
    def test_uncaught_exception(self):
        with pytest.raises(MLExceptionError, match="Boom"):
            run("exception Boom val it = if true then raise Boom else 0")

    def test_handler_catches_matching(self):
        res = run("exception E of int val it = (raise E 5) handle E n => n + 1")
        assert res.value == 6

    def test_handler_rethrows_others(self):
        with pytest.raises(MLExceptionError, match="B"):
            run("exception A exception B val it = (raise B) handle A => 1")

    def test_nested_handlers(self):
        res = run(
            "exception A exception B "
            "val it = ((raise A) handle B => 1) handle A => 2"
        )
        assert res.value == 2

    def test_hd_of_nil_faults(self):
        with pytest.raises(RuntimeFault, match="Empty"):
            run("val it = hd nil", with_prelude=True)

    def test_division_by_zero_faults(self):
        with pytest.raises(RuntimeFault, match="Div"):
            run("val it = 1 div 0")


class TestLimits:
    def test_step_budget(self):
        with pytest.raises(InterpreterLimit, match="step"):
            run("fun loop n = loop (n + 1) val it = loop 0", max_steps=10_000)

    def test_depth_budget(self):
        with pytest.raises(InterpreterLimit, match="depth"):
            run("fun deep n = 1 + deep n val it = deep 0", max_depth=2_000)


class TestStrategySemantics:
    def test_ml_mode_has_no_letregions(self):
        src = "fun f n = let val p = (n, n) in #1 p end val it = f 1"
        res = run(src, strategy=Strategy.ML)
        assert res.stats.letregions == 0
        assert res.value == 1

    def test_r_never_collects(self):
        res = run(
            "fun ws n = if n = 0 then 0 else size (itos n) + ws (n - 1) "
            "val it = ws 200",
            strategy=Strategy.R, with_prelude=True, initial_threshold=64,
        )
        assert res.stats.gc_count == 0

    def test_trivial_everything_in_one_region(self):
        src = "fun f n = let val p = (n, n) in #1 p end val it = f 1"
        res = run(src, strategy=Strategy.TRIVIAL)
        assert res.stats.letregions == 0
        assert res.stats.infinite_regions_created == 0

    def test_generational_minor_collections(self):
        src = (
            "fun churn n = if n = 0 then nil else (itos n) :: churn (n - 1) "
            "val keep = churn 40 "
            "fun rounds k = if k = 0 then 0 else length (churn 40) + rounds (k - 1) "
            "val it = rounds 10 + length keep"
        )
        res = run(src, with_prelude=True, generational=True, initial_threshold=256)
        assert res.value == 440
        assert res.stats.gc_minor_count > 0

    def test_direct_calls_counted(self):
        res = run("fun f x = x + 1 val it = f (f (f 0))")
        assert res.stats.direct_calls >= 3

    def test_reals_are_boxed_allocations(self):
        res = run("val x = 1.5 val y = 2.5 val it = floor (x + y)", with_prelude=True)
        assert res.value == 4
        assert res.stats.allocations >= 3  # two literals + the sum


class TestValueRendering:
    def test_final_values_render(self):
        res = run('val it = (1, ("two", [3, 4]))', with_prelude=False)
        assert show_value(res.value) == '(1, ("two", [3, 4]))'

"""Unit tests for substitutions (paper Section 3.3, Propositions 3-4)."""

import pytest

from repro.core.effects import ArrowEffect, EffectVar, RegionVar, VarSupply, effect
from repro.core.rtypes import (
    EMPTY_CTX,
    MU_INT,
    MuBoxed,
    MuVar,
    Scheme,
    TAU_STRING,
    TauArrow,
    TauPair,
    TyCtx,
    TyVar,
    frev,
)
from repro.core.substitution import EMPTY_SUBST, Subst, rename_scheme


@pytest.fixture
def vars_():
    r1, r2, r3 = RegionVar(1, "r1"), RegionVar(2, "r2"), RegionVar(3, "r3")
    e1, e2, e3 = EffectVar(4, "e1"), EffectVar(5, "e2"), EffectVar(6, "e3")
    a, b = TyVar(7, "'a"), TyVar(8, "'b")
    return r1, r2, r3, e1, e2, e3, a, b


class TestEffectSubstitution:
    def test_region_renaming(self, vars_):
        r1, r2, r3, e1, *_ = vars_
        s = Subst(rgn={r1: r2})
        assert s.effect(effect(r1, r3)) == {r2, r3}

    def test_effect_var_expands_to_frev_of_target(self, vars_):
        r1, r2, r3, e1, e2, e3, a, b = vars_
        s = Subst(eff={e1: ArrowEffect(e2, effect(r1))})
        # S({e1}) = frev(e2.{r1}) = {e2, r1}
        assert s.effect(effect(e1)) == {e2, r1}

    def test_identity_off_domain(self, vars_):
        r1, r2, r3, e1, *_ = vars_
        assert EMPTY_SUBST.effect(effect(r1, e1)) == {r1, e1}

    def test_arrow_effect_grows(self, vars_):
        """S(eps.phi) = eps'.(phi' | S(phi)): effects can only grow."""
        r1, r2, r3, e1, e2, e3, a, b = vars_
        s = Subst(eff={e1: ArrowEffect(e2, effect(r2))})
        out = s.arrow(ArrowEffect(e1, effect(r1)))
        assert out.handle == e2
        assert out.latent == {r2, r1}

    def test_monotonicity_prop3(self, vars_):
        """Proposition 3: phi <= phi' implies S(phi) <= S(phi')."""
        r1, r2, r3, e1, e2, e3, a, b = vars_
        s = Subst(rgn={r1: r2}, eff={e1: ArrowEffect(e3, effect(r3))})
        small = effect(r1)
        big = effect(r1, e1)
        assert s.effect(small) <= s.effect(big)

    def test_interchange_property(self, vars_):
        """frev(S(eps.phi)) = S({eps} | phi)."""
        r1, r2, r3, e1, e2, e3, a, b = vars_
        s = Subst(rgn={r1: r2}, eff={e1: ArrowEffect(e2, effect(r3))})
        ae = ArrowEffect(e1, effect(r1, e3))
        assert s.arrow(ae).frev() == s.effect(effect(e1, r1, e3))


class TestTypeSubstitution:
    def test_tyvar_replacement(self, vars_):
        *_, a, b = vars_
        s = Subst(ty={a: MU_INT})
        assert s.mu(MuVar(a)) == MU_INT
        assert s.mu(MuVar(b)) == MuVar(b)

    def test_boxed_structure(self, vars_):
        r1, r2, r3, e1, e2, e3, a, b = vars_
        mu = MuBoxed(TauPair(MuVar(a), MuBoxed(TAU_STRING, r1)), r2)
        s = Subst(ty={a: MU_INT}, rgn={r1: r3})
        out = s.mu(mu)
        assert out == MuBoxed(TauPair(MU_INT, MuBoxed(TAU_STRING, r3)), r2)

    def test_arrow_type_substitution(self, vars_):
        r1, r2, r3, e1, e2, e3, a, b = vars_
        tau = TauArrow(MuVar(a), ArrowEffect(e1, effect(r1)), MuVar(b))
        s = Subst(ty={a: MU_INT}, eff={e1: ArrowEffect(e2, effect(r2))})
        out = s.tau(tau)
        assert out.dom == MU_INT
        assert out.arrow == ArrowEffect(e2, effect(r2, r1))

    def test_ctx_application_requires_disjoint_domain(self, vars_):
        r1, r2, r3, e1, e2, e3, a, b = vars_
        delta = TyCtx({a: ArrowEffect(e1)})
        with pytest.raises(ValueError):
            Subst(ty={a: MU_INT}).ctx(delta)

    def test_ctx_application_maps_arrow_effects(self, vars_):
        r1, r2, r3, e1, e2, e3, a, b = vars_
        delta = TyCtx({a: ArrowEffect(e1)})
        s = Subst(eff={e1: ArrowEffect(e2, effect(r1))})
        assert s.ctx(delta)[a] == ArrowEffect(e2, effect(r1))


class TestSchemes:
    def _scheme(self, vars_):
        r1, r2, r3, e1, e2, e3, a, b = vars_
        body = TauArrow(MuVar(a), ArrowEffect(e1, effect(r1)), MuVar(b))
        return Scheme((r1,), (e1,), (a,), TyCtx({b: ArrowEffect(e2)}), body)

    def test_scheme_substitution_rejects_capture(self, vars_):
        r1, *_ = vars_
        sigma = self._scheme(vars_)
        with pytest.raises(ValueError):
            Subst(rgn={r1: RegionVar(99)}).scheme(sigma)

    def test_rename_scheme_is_alpha_equivalent(self, vars_):
        sigma = self._scheme(vars_)
        renamed, _ren = rename_scheme(sigma, VarSupply(start=1000))
        assert len(renamed.rvars) == 1
        assert len(renamed.evars) == 1
        assert len(renamed.tvars) == 1
        assert len(renamed.delta) == 1
        # fresh binders really are fresh
        assert renamed.rvars[0] != sigma.rvars[0]
        assert renamed.evars[0] != sigma.evars[0]
        # free variables unchanged
        assert frev(renamed) == frev(sigma)

    def test_composition_matches_sequential_application(self, vars_):
        r1, r2, r3, e1, e2, e3, a, b = vars_
        s1 = Subst(rgn={r1: r2})
        s2 = Subst(rgn={r2: r3}, eff={e1: ArrowEffect(e2)})
        mu = MuBoxed(TauArrow(MU_INT, ArrowEffect(e1, effect(r1)), MU_INT), r1)
        assert s1.then(s2).mu(mu) == s2.mu(s1.mu(mu))

    def test_restrict(self, vars_):
        r1, r2, r3, e1, e2, e3, a, b = vars_
        s = Subst(ty={a: MU_INT}, rgn={r1: r2}, eff={e1: ArrowEffect(e2)})
        out = s.restrict(frozenset({a, e1}))
        assert a in out.ty and r1 not in out.rgn and e1 in out.eff

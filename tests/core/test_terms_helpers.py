"""Unit tests for the term-language helpers: free variables, value
substitution (Proposition 16's engine), substitution application to
annotated terms, and sizes."""

import pytest

from repro.core import terms as T
from repro.core.effects import ArrowEffect, EffectVar, RegionVar, effect
from repro.core.rtypes import MU_INT, arrow_mu
from repro.core.substitution import Subst

R1, R2 = RegionVar(1, "r1"), RegionVar(2, "r2")
E1 = EffectVar(11, "e1")
MU = arrow_mu(MU_INT, ArrowEffect(E1), MU_INT, R1)


class TestFpv:
    def test_var_is_free(self):
        assert T.fpv(T.Var("x")) == {"x"}

    def test_lambda_binds_param(self):
        lam = T.Lam("x", T.App(T.Var("x"), T.Var("y")), R1, MU)
        assert T.fpv(lam) == {"y"}

    def test_fun_binds_self_and_param(self):
        fd = T.FunDef("f", (), "x", T.App(T.Var("f"), T.Var("x")), R1, None)
        assert T.fpv(fd) == frozenset()

    def test_let_scoping(self):
        t = T.Let("x", T.Var("x"), T.Var("x"))
        assert T.fpv(t) == {"x"}  # the rhs occurrence is free

    def test_handle_binder(self):
        t = T.Handle(T.Var("a"), "E", "v", T.Var("v"))
        assert T.fpv(t) == {"a"}

    def test_case_branch_binders(self):
        t = T.Case(
            T.Var("s"),
            (
                T.CaseBranchT("C", "p", T.Var("p")),
                T.CaseBranchT(None, "q", T.Var("r")),
            ),
        )
        assert T.fpv(t) == {"s", "r"}


class TestSubstValue:
    def test_replaces_free_occurrences(self):
        out = T.subst_value(T.App(T.Var("x"), T.Var("y")), "x", T.VInt(1))
        assert out == T.App(T.VInt(1), T.Var("y"))

    def test_respects_shadowing(self):
        lam = T.Lam("x", T.Var("x"), R1, MU)
        assert T.subst_value(lam, "x", T.VInt(1)) == lam

    def test_substitutes_under_other_binders(self):
        lam = T.Lam("y", T.Var("x"), R1, MU)
        out = T.subst_value(lam, "x", T.VInt(7))
        assert out.body == T.VInt(7)

    def test_let_rhs_always_substituted(self):
        t = T.Let("x", T.Var("x"), T.Var("x"))
        out = T.subst_value(t, "x", T.VInt(3))
        assert out.rhs == T.VInt(3)
        assert out.body == T.Var("x")

    def test_values_substitute_into_pairs(self):
        t = T.Pair(T.Var("a"), T.Var("a"), R1)
        out = T.subst_value(t, "a", T.VStr("s", R2))
        assert out.fst == out.snd == T.VStr("s", R2)


class TestApplySubstTerm:
    def test_regions_rewritten_in_allocations(self):
        s = Subst(rgn={R1: R2})
        out = T.apply_subst_term(s, T.StringLit("x", R1))
        assert out.rho == R2

    def test_annotations_rewritten(self):
        s = Subst(rgn={R1: R2})
        lam = T.Lam("x", T.Var("x"), R1, MU)
        out = T.apply_subst_term(s, lam)
        assert out.rho == R2
        assert out.mu.rho == R2

    def test_effect_substitution_in_annotations(self):
        e2 = EffectVar(12, "e2")
        s = Subst(eff={E1: ArrowEffect(e2, effect(R2))})
        out = T.apply_subst_term(s, T.Lam("x", T.Var("x"), R1, MU))
        assert out.mu.tau.arrow.handle == e2
        assert R2 in out.mu.tau.arrow.latent

    def test_rapp_inst_composes(self):
        inner = Subst(rgn={R1: R2})
        rapp = T.RApp(T.Var("f"), (R2,), R2, inner)
        out = T.apply_subst_term(Subst(rgn={R2: R1}), rapp)
        assert out.rargs == (R1,)
        assert out.inst.rgn[R1] == R1  # R1 -> R2 -> R1


class TestStructure:
    def test_term_size(self):
        t = T.Pair(T.IntLit(1), T.Pair(T.IntLit(2), T.IntLit(3), R1), R1)
        assert T.term_size(t) == 5

    def test_iter_children_covers_every_node(self):
        """Every term class is either atomic or yields children."""
        samples = [
            T.Var("x"), T.IntLit(1), T.BoolLit(True), T.UnitLit(),
            T.StringLit("s", R1), T.RealLit(1.0, R1),
            T.Lam("x", T.IntLit(1), R1, MU),
            T.App(T.IntLit(1), T.IntLit(2)),
            T.Let("x", T.IntLit(1), T.Var("x")),
            T.Letregion((R1,), T.IntLit(0)),
            T.Pair(T.IntLit(1), T.IntLit(2), R1),
            T.Select(1, T.Var("p")),
            T.Cons(T.IntLit(1), T.Var("t"), R1),
            T.If(T.BoolLit(True), T.IntLit(1), T.IntLit(2)),
            T.Prim("add", (T.IntLit(1), T.IntLit(2))),
            T.MkRef(T.IntLit(0), R1),
            T.Deref(T.Var("r")),
            T.Assign(T.Var("r"), T.IntLit(1)),
            T.Raise(T.Var("e"), MU_INT),
            T.Handle(T.IntLit(1), "E", None, T.IntLit(2)),
            T.Con("E", None, R1),
            T.Case(T.Var("s"), (T.CaseBranchT(None, None, T.IntLit(1)),)),
            T.DataCon("d", "C", (), None, R1),
        ]
        for t in samples:
            T.iter_children(t)  # must not raise
            T.term_size(t)

"""Unit tests for the instance-of relation (paper Section 3.4,
Propositions 6-7) on hand-built schemes."""

import pytest

from repro.core.effects import ArrowEffect, EffectVar, RegionVar, VarSupply, effect
from repro.core.errors import CoverageError, RegionTypeError
from repro.core.instantiation import check_instance, instantiate
from repro.core.rtypes import (
    EMPTY_CTX,
    MU_INT,
    MU_UNIT,
    MuBoxed,
    MuVar,
    Scheme,
    TAU_STRING,
    TauArrow,
    TyCtx,
    TyVar,
)
from repro.core.substitution import Subst

R1, R2, R3 = RegionVar(1, "r1"), RegionVar(2, "r2"), RegionVar(3, "r3")
E1, E2 = EffectVar(11, "e1"), EffectVar(12, "e2")
A, B = TyVar(21, "'a"), TyVar(22, "'b")


def id_scheme() -> Scheme:
    """all r1 e1 'a . 'a -e1.{}-> 'a   (the identity function's scheme)."""
    return Scheme((R1,), (E1,), (A,), EMPTY_CTX,
                  TauArrow(MuVar(A), ArrowEffect(E1), MuVar(A)))


def spurious_scheme() -> Scheme:
    """all r1 e1 e2 ('b : e2.{}) . int -e1.{e2}-> int — 'b is tracked."""
    return Scheme(
        (R1,), (E1, E2), (), TyCtx({B: ArrowEffect(E2)}),
        TauArrow(MU_INT, ArrowEffect(E1, effect(E2)), MU_INT),
    )


class TestInstantiate:
    def test_identity_instance(self):
        subst = Subst(
            ty={A: MU_INT},
            rgn={R1: R2},
            eff={E1: ArrowEffect(EffectVar(31))},
        )
        tau = instantiate(EMPTY_CTX, id_scheme(), subst)
        assert tau.dom == MU_INT and tau.cod == MU_INT

    def test_region_substitution_applied(self):
        sigma = Scheme((R1,), (E1,), (), EMPTY_CTX,
                       TauArrow(MU_UNIT, ArrowEffect(E1, effect(R1)),
                                MuBoxed(TAU_STRING, R1)))
        subst = Subst(rgn={R1: R3}, eff={E1: ArrowEffect(EffectVar(31))})
        tau = instantiate(EMPTY_CTX, sigma, subst)
        assert tau.cod.rho == R3
        assert R3 in tau.arrow.latent

    def test_effect_instance_grows(self):
        """S(eps.phi) = eps'.(phi' | S(phi)): the instance latent includes
        the target's latent."""
        sigma = Scheme((), (E1,), (), EMPTY_CTX,
                       TauArrow(MU_INT, ArrowEffect(E1), MU_INT))
        target = ArrowEffect(EffectVar(31), effect(R2))
        tau = instantiate(EMPTY_CTX, sigma, Subst(eff={E1: target}))
        assert R2 in tau.arrow.latent

    def test_domain_mismatch_rejected(self):
        with pytest.raises(RegionTypeError):
            instantiate(EMPTY_CTX, id_scheme(), Subst(ty={A: MU_INT}))

    def test_tyvar_domain_mismatch_rejected(self):
        subst = Subst(rgn={R1: R2}, eff={E1: ArrowEffect(EffectVar(31))})
        with pytest.raises(RegionTypeError):
            instantiate(EMPTY_CTX, id_scheme(), subst)

    def test_coverage_failure_on_boxed_spurious_instance(self):
        """Instantiating a tracked variable with a boxed type whose region
        is not covered must fail — the rg- hole, statically."""
        subst = Subst(
            ty={B: MuBoxed(TAU_STRING, R3)},
            rgn={R1: R1},
            eff={E1: ArrowEffect(EffectVar(31)),
                 E2: ArrowEffect(EffectVar(32))},  # no coverage of R3
        )
        with pytest.raises(CoverageError):
            instantiate(EMPTY_CTX, spurious_scheme(), subst)

    def test_coverage_success_when_region_in_budget(self):
        subst = Subst(
            ty={B: MuBoxed(TAU_STRING, R3)},
            rgn={R1: R1},
            eff={E1: ArrowEffect(EffectVar(31)),
                 E2: ArrowEffect(EffectVar(32), effect(R3))},
        )
        tau = instantiate(EMPTY_CTX, spurious_scheme(), subst)
        # ... and the covered region is visible in the instance latent
        # because e2 occurs in the scheme's arrow latent.
        assert R3 in tau.arrow.latent

    def test_check_instance_agrees(self):
        subst = Subst(
            ty={A: MU_INT},
            rgn={R1: R2},
            eff={E1: ArrowEffect(EffectVar(31))},
        )
        expected = instantiate(EMPTY_CTX, id_scheme(), subst)
        check_instance(EMPTY_CTX, id_scheme(), expected, subst)
        with pytest.raises(RegionTypeError):
            check_instance(
                EMPTY_CTX, id_scheme(),
                TauArrow(MU_UNIT, ArrowEffect(EffectVar(31)), MU_UNIT),
                subst,
            )

    def test_instantiation_closed_under_renaming_prop6(self):
        """Renaming bound variables first yields an alpha-equivalent
        instance (a corollary of Proposition 6)."""
        from repro.core.substitution import rename_scheme

        supply = VarSupply(start=500)
        sigma = id_scheme()
        renamed, _ = rename_scheme(sigma, supply)
        subst1 = Subst(ty={A: MU_INT}, rgn={R1: R2},
                       eff={E1: ArrowEffect(EffectVar(31))})
        subst2 = Subst(
            ty={renamed.tvars[0]: MU_INT},
            rgn={renamed.rvars[0]: R2},
            eff={renamed.evars[0]: ArrowEffect(EffectVar(31))},
        )
        assert instantiate(EMPTY_CTX, sigma, subst1) == instantiate(
            EMPTY_CTX, renamed, subst2
        )

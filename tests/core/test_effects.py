"""Unit tests for the region/effect algebra (paper Section 3.1, 3.5)."""

import pytest

from repro.core.effects import (
    ArrowEffect,
    EffectBasis,
    EffectVar,
    EMPTY_EFFECT,
    EPS_TOP,
    RegionVar,
    RHO_TOP,
    VarSupply,
    effect,
    effectvars_of,
    regions_of,
    show_effect,
)


class TestVariables:
    def test_region_identity_ignores_name(self):
        assert RegionVar(3, "rho") == RegionVar(3, "other")
        assert hash(RegionVar(3, "rho")) == hash(RegionVar(3, "other"))

    def test_region_and_effect_vars_distinct(self):
        assert RegionVar(1) != EffectVar(1)

    def test_top_flag_not_part_of_identity(self):
        assert RegionVar(5, top=True) == RegionVar(5, top=False)

    def test_supply_produces_distinct_idents(self):
        supply = VarSupply()
        seen = {supply.fresh_region().ident for _ in range(50)}
        seen |= {supply.fresh_effectvar().ident for _ in range(50)}
        assert len(seen) == 100

    def test_supply_never_reuses_reserved_zero(self):
        supply = VarSupply()
        assert supply.fresh_region().ident != RHO_TOP.ident

    def test_supply_start_floor(self):
        supply = VarSupply(start=100)
        assert supply.fresh_region().ident >= 100


class TestEffects:
    def test_effect_builder(self):
        r = RegionVar(1)
        e = EffectVar(2)
        assert effect(r, e) == frozenset({r, e})

    def test_regions_and_effectvars_partition(self):
        r1, r2 = RegionVar(1), RegionVar(2)
        e1 = EffectVar(3)
        phi = effect(r1, r2, e1)
        assert regions_of(phi) == {r1, r2}
        assert effectvars_of(phi) == {e1}

    def test_show_effect_deterministic(self):
        r1, r2 = RegionVar(2, "r2"), RegionVar(1, "r1")
        e = EffectVar(3, "e3")
        assert show_effect(effect(r1, r2, e)) == "{r1,r2,e3}"


class TestArrowEffects:
    def test_frev_includes_handle(self):
        eps = EffectVar(1)
        rho = RegionVar(2)
        ae = ArrowEffect(eps, effect(rho))
        assert ae.frev() == {eps, rho}

    def test_widen(self):
        eps = EffectVar(1)
        rho = RegionVar(2)
        ae = ArrowEffect(eps).widen([rho])
        assert ae.latent == {rho}
        assert ae.handle == eps

    def test_handle_must_be_effect_var(self):
        with pytest.raises(TypeError):
            ArrowEffect(RegionVar(1))

    def test_latent_coerced_to_frozenset(self):
        ae = ArrowEffect(EffectVar(1), {RegionVar(2)})
        assert isinstance(ae.latent, frozenset)


class TestEffectBasis:
    def test_functional_basis_accepts_repeats(self):
        eps = EffectVar(1)
        rho = RegionVar(2)
        basis = EffectBasis()
        basis.record(ArrowEffect(eps, effect(rho)))
        basis.record(ArrowEffect(eps, effect(rho)))
        assert basis[eps] == {rho}

    def test_functional_basis_rejects_conflicts(self):
        eps = EffectVar(1)
        basis = EffectBasis()
        basis.record(ArrowEffect(eps, effect(RegionVar(2))))
        with pytest.raises(ValueError):
            basis.record(ArrowEffect(eps, effect(RegionVar(3))))

    def test_transitivity_check_flags_violation(self):
        e1, e2 = EffectVar(1), EffectVar(2)
        rho = RegionVar(3)
        basis = EffectBasis()
        basis.record(ArrowEffect(e1, effect(e2)))       # e1 contains e2 ...
        basis.record(ArrowEffect(e2, effect(rho)))      # ... whose rho e1 misses
        assert basis.check_transitive()

    def test_transitivity_check_accepts_closed(self):
        e1, e2 = EffectVar(1), EffectVar(2)
        rho = RegionVar(3)
        basis = EffectBasis()
        basis.record(ArrowEffect(e1, effect(e2, rho)))
        basis.record(ArrowEffect(e2, effect(rho)))
        assert basis.check_transitive() == []

    def test_closure_follows_chains(self):
        e1, e2, e3 = EffectVar(1), EffectVar(2), EffectVar(3)
        r = RegionVar(4)
        basis = EffectBasis()
        basis.record(ArrowEffect(e1, effect(e2)))
        basis.record(ArrowEffect(e2, effect(e3)))
        basis.record(ArrowEffect(e3, effect(r)))
        assert basis.closure(effect(e1)) == {e1, e2, e3, r}

    def test_closure_handles_cycles(self):
        e1, e2 = EffectVar(1), EffectVar(2)
        basis = EffectBasis()
        basis.record(ArrowEffect(e1, effect(e2)))
        basis.record(ArrowEffect(e2, effect(e1)))
        assert basis.closure(effect(e1)) == {e1, e2}

    def test_globals_are_marked_top(self):
        assert RHO_TOP.top
        assert EPS_TOP.top
        assert not RegionVar(9).top

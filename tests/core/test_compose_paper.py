"""The paper's running example, hand-elaborated: region type schemes
(1), (2), and (3) for the composition function ``o`` (Section 2), the
Figure 2 programs, and the coverage check that separates sound from
unsound annotations."""

import pytest

from repro.core import terms as T
from repro.core.containment import check_coverage, is_covered
from repro.core.effects import ArrowEffect, EffectVar, RegionVar, effect
from repro.core.errors import CoverageError, RegionTypeError
from repro.core.instantiation import instantiate
from repro.core.rtypes import (
    EMPTY_CTX,
    MU_UNIT,
    MuBoxed,
    MuVar,
    PiScheme,
    Scheme,
    TAU_STRING,
    TauArrow,
    TauPair,
    TyCtx,
    TyVar,
)
from repro.core.substitution import Subst
from repro.core.typecheck import typecheck

# Variables mirroring the paper's notation.
EPS = EffectVar(101, "e")
EPS0 = EffectVar(102, "e0")
EPS1 = EffectVar(103, "e1")
EPS2 = EffectVar(104, "e2")
EPSP = EffectVar(105, "e'")          # the secondary effect variable of (2)
RHO0 = RegionVar(111, "rho0")
RHO1 = RegionVar(112, "rho1")
RHO2 = RegionVar(113, "rho2")
RHO3 = RegionVar(114, "rho3")
RHO_O = RegionVar(115, "rho_o")      # where the closure for `o` itself lives
ALPHA = TyVar(121, "'a")
BETA = TyVar(122, "'b")
GAMMA = TyVar(123, "'c")


def _compose_types(result_latent):
    """The domain, result, and outer arrow of `o`'s scheme body."""
    f_mu = MuBoxed(TauArrow(MuVar(GAMMA), ArrowEffect(EPS2), MuVar(BETA)), RHO2)
    g_mu = MuBoxed(TauArrow(MuVar(ALPHA), ArrowEffect(EPS1), MuVar(GAMMA)), RHO1)
    dom = MuBoxed(TauPair(f_mu, g_mu), RHO0)
    cod = MuBoxed(
        TauArrow(MuVar(ALPHA), ArrowEffect(EPS, frozenset(result_latent)), MuVar(BETA)),
        RHO3,
    )
    outer = TauArrow(dom, ArrowEffect(EPS0, effect(RHO0, RHO3)), cod)
    return dom, cod, outer


def scheme_1() -> Scheme:
    """Type scheme (1): the original, unsound scheme — `'c` is a plain
    quantified type variable with no arrow effect."""
    _, _, outer = _compose_types([EPS1, EPS2, RHO1, RHO2])
    return Scheme(
        rvars=(RHO0, RHO1, RHO2, RHO3),
        evars=(EPS, EPS0, EPS1, EPS2),
        tvars=(ALPHA, BETA, GAMMA),
        delta=EMPTY_CTX,
        body=outer,
    )


def scheme_2() -> Scheme:
    """Type scheme (2): `'c` carries the secondary arrow effect e'.{},
    and e' is added to the latent effect of the result arrow."""
    _, _, outer = _compose_types([EPS1, EPS2, EPSP, RHO1, RHO2])
    return Scheme(
        rvars=(RHO0, RHO1, RHO2, RHO3),
        evars=(EPS, EPS0, EPS1, EPS2, EPSP),
        tvars=(ALPHA, BETA),
        delta=TyCtx({GAMMA: ArrowEffect(EPSP)}),
        body=outer,
    )


def scheme_3() -> Scheme:
    """Type scheme (3): `'c`'s arrow effect is *identified* with the
    arrow effect of the result function — no secondary effect variable."""
    latent = [EPS1, EPS2, RHO1, RHO2]
    _, _, outer = _compose_types(latent)
    return Scheme(
        rvars=(RHO0, RHO1, RHO2, RHO3),
        evars=(EPS, EPS0, EPS1, EPS2),
        tvars=(ALPHA, BETA),
        delta=TyCtx({GAMMA: ArrowEffect(EPS, frozenset(latent))}),
        body=outer,
    )


def compose_fundef(sigma: Scheme) -> T.FunDef:
    """``fun o [rho0,rho1,rho2,rho3] p = let f = #1 p in let g = #2 p in
    (fn a => f (g a)) at rho3``, annotated with the given scheme."""
    cod = sigma.body.cod
    inner_lam = T.Lam(
        "a",
        T.App(T.Var("f"), T.App(T.Var("g"), T.Var("a"))),
        RHO3,
        cod,
    )
    body = T.Let("f", T.Select(1, T.Var("p")), T.Let("g", T.Select(2, T.Var("p")), inner_lam))
    return T.FunDef("o", (RHO0, RHO1, RHO2, RHO3), "p", body, RHO_O, PiScheme(sigma, RHO_O))


class TestSchemeTypability:
    """Which of the paper's three schemes the Figure 4 rules accept."""

    def test_scheme_2_is_accepted(self):
        from repro.core.rtypes import MU_INT

        program = T.Letregion((RHO_O,), T.Let("o", compose_fundef(scheme_2()), T.IntLit(0)))
        result = typecheck(program)
        assert result.pi == MU_INT

    def test_scheme_3_is_accepted(self):
        program = T.Letregion((RHO_O,), T.Let("o", compose_fundef(scheme_3()), T.IntLit(0)))
        typecheck(program)

    def test_scheme_1_is_rejected(self):
        """Scheme (1) leaves 'c untracked although it occurs in the type of
        the captured variable f but not in the inner lambda's own type —
        the GC-safety relation fails, which is the paper's Section 2
        diagnosis."""
        program = T.Letregion((RHO_O,), T.Let("o", compose_fundef(scheme_1()), T.IntLit(0)))
        with pytest.raises(RegionTypeError, match="GC-safety|spurious"):
            typecheck(program)


class TestInstantiationCoverage:
    """Figure 1's instantiation: 'c := (string, rho) with rho local."""

    RHO = RegionVar(200, "rho")

    def _inst(self, covered: bool) -> Subst:
        fresh = {
            RHO0: RegionVar(201, "rho0'"),
            RHO1: RegionVar(202, "rho1'"),
            RHO2: RegionVar(203, "rho2'"),
            RHO3: RegionVar(204, "rho3'"),
        }
        eps_p_latent = effect(self.RHO) if covered else frozenset()
        return Subst(
            ty={ALPHA: MU_UNIT, BETA: MU_UNIT, GAMMA: MuBoxed(TAU_STRING, self.RHO)},
            rgn=fresh,
            eff={
                EPS: ArrowEffect(EffectVar(211, "e_i")),
                EPS0: ArrowEffect(EffectVar(212, "e0_i")),
                EPS1: ArrowEffect(EffectVar(213, "e1_i")),
                EPS2: ArrowEffect(EffectVar(214, "e2_i")),
                EPSP: ArrowEffect(EffectVar(215, "e'_i"), eps_p_latent),
            },
        )

    def test_covered_instantiation_accepted_and_rho_becomes_visible(self):
        tau = instantiate(EMPTY_CTX, scheme_2(), self._inst(covered=True))
        # The region of the string instantiated for 'c flows into the
        # latent effect of the resulting function type: exactly the
        # mechanism that keeps rho alive while h is alive (Figure 2(b)).
        assert self.RHO in tau.cod.tau.arrow.latent

    def test_uncovered_instantiation_rejected(self):
        with pytest.raises(CoverageError):
            instantiate(EMPTY_CTX, scheme_2(), self._inst(covered=False))

    def test_is_covered_helper(self):
        delta = TyCtx({GAMMA: ArrowEffect(EffectVar(215, "e'_i"), effect(self.RHO))})
        ok = Subst(ty={GAMMA: MuBoxed(TAU_STRING, self.RHO)})
        bad = Subst(ty={GAMMA: MuBoxed(TAU_STRING, RegionVar(999))})
        assert is_covered(EMPTY_CTX, ok, delta)
        assert not is_covered(EMPTY_CTX, bad, delta)

    def test_unit_instantiation_needs_no_coverage(self):
        """Instantiating 'c with an unboxed type imposes nothing."""
        delta = TyCtx({GAMMA: ArrowEffect(EffectVar(216))})
        check_coverage(EMPTY_CTX, Subst(ty={GAMMA: MU_UNIT}), delta)

    def test_transitive_spuriousness_strictness(self):
        """A type variable occurring in a type instantiated for a spurious
        type variable must itself be tracked (Section 4.3): coverage is
        strict about untracked type variables."""
        other = TyVar(300, "'d")
        delta = TyCtx({GAMMA: ArrowEffect(EffectVar(216))})
        with pytest.raises(CoverageError):
            check_coverage(EMPTY_CTX, Subst(ty={GAMMA: MuVar(other)}), delta)
        # ... but is satisfied when the inner variable is tracked and its
        # effect is inside the budget.
        eps_d = EffectVar(301, "e_d")
        omega = TyCtx({other: ArrowEffect(eps_d)})
        delta_ok = TyCtx({GAMMA: ArrowEffect(EffectVar(216), effect(eps_d))})
        check_coverage(omega, Subst(ty={GAMMA: MuVar(other)}), delta_ok)

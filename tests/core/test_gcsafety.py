"""Unit tests for value containment (Figure 3), context containment
(Figure 7), and the GC-safety relation G (Section 3.7)."""

import pytest

from repro.core import terms as T
from repro.core.effects import ArrowEffect, EffectVar, RegionVar, effect
from repro.core.gcsafety import (
    context_contained,
    expr_contained,
    gc_safe,
    gc_safety_failures,
    value_contained,
)
from repro.core.rtypes import (
    EMPTY_CTX,
    MU_INT,
    MuBoxed,
    MuVar,
    TAU_STRING,
    TauArrow,
    TyCtx,
    TyVar,
    arrow_mu,
)

R1, R2, R3 = RegionVar(1, "r1"), RegionVar(2, "r2"), RegionVar(3, "r3")
E1 = EffectVar(11, "e1")
PHI = effect(R1, R2)


def mk_mu(rho=R1):
    return arrow_mu(MU_INT, ArrowEffect(E1), MU_INT, rho)


class TestValueContainment:
    def test_integers_always_contained(self):
        assert value_contained(frozenset(), T.VInt(3))
        assert value_contained(frozenset(), T.VBool(True))
        assert value_contained(frozenset(), T.VUnit())

    def test_boxed_needs_its_region(self):
        assert value_contained(PHI, T.VStr("s", R1))
        assert not value_contained(PHI, T.VStr("s", R3))

    def test_pair_needs_components(self):
        good = T.VPair(T.VStr("a", R1), T.VInt(1), R2)
        bad = T.VPair(T.VStr("a", R3), T.VInt(1), R2)
        assert value_contained(PHI, good)
        assert not value_contained(PHI, bad)

    def test_closure_checks_body(self):
        body_ok = T.VStr("captured", R2)
        body_bad = T.VStr("captured", R3)
        assert value_contained(PHI, T.VClos("x", body_ok, R1, mk_mu()))
        assert not value_contained(PHI, T.VClos("x", body_bad, R1, mk_mu()))

    def test_fun_closure_region_params_must_be_fresh(self):
        """Figure 3: <fun f [rvec] x = e>^rho requires {rvec} disjoint from
        phi (the bound regions are not yet allocated)."""
        from repro.core.rtypes import EMPTY_CTX as _E, PiScheme, Scheme

        pi = PiScheme(Scheme((R2,), (), (), _E, mk_mu().tau), R1)
        clos_bad = T.VFunClos("f", (R2,), "x", T.VInt(1), R1, pi)
        assert not value_contained(PHI, clos_bad)  # R2 in phi
        pi2 = PiScheme(Scheme((R3,), (), (), _E, mk_mu().tau), R1)
        clos_ok = T.VFunClos("f", (R3,), "x", T.VInt(1), R1, pi2)
        assert value_contained(PHI, clos_ok)


class TestExprContainment:
    def test_letregion_bound_region_must_be_fresh(self):
        e = T.Letregion((R1,), T.IntLit(0))
        assert not expr_contained(PHI, e)           # R1 already allocated
        assert expr_contained(effect(R2), e)

    def test_plain_terms_recurse(self):
        e = T.Pair(T.VStr("a", R1), T.IntLit(2), R3)
        assert expr_contained(PHI, e)  # the Pair's target rho is not a value
        assert not expr_contained(effect(R3), e)    # the embedded VStr fails


class TestContextContainment:
    def test_letregion_extends_phi_on_the_spine(self):
        """Figure 7: descending through letregion rho adds rho."""
        e = T.Letregion((R3,), T.App(T.VClos("x", T.Var("x"), R3, mk_mu(R3)),
                                     T.IntLit(1)))
        assert context_contained(PHI, e)

    def test_off_spine_values_use_plain_containment(self):
        inner = T.Let("x", T.VStr("a", R3), T.Var("x"))
        assert not context_contained(PHI, inner)

    def test_values_left_of_the_hole_are_checked(self):
        e = T.App(T.VClos("x", T.Var("x"), R3, mk_mu(R3)), T.IntLit(1))
        assert not context_contained(PHI, e)
        assert context_contained(PHI | {R3}, e)


class TestGRelation:
    def test_closed_body_is_safe(self):
        assert gc_safe(EMPTY_CTX, {}, T.IntLit(1), frozenset({"x"}), mk_mu())

    def test_free_var_with_visible_region_is_safe(self):
        mu = mk_mu(R1)
        gamma = {"y": MuBoxed(TAU_STRING, R1)}
        assert gc_safe(EMPTY_CTX, gamma, T.Var("y"), frozenset({"x"}), mu)

    def test_free_var_with_invisible_region_fails(self):
        mu = mk_mu(R1)
        gamma = {"y": MuBoxed(TAU_STRING, R3)}
        failures = gc_safety_failures(EMPTY_CTX, gamma, T.Var("y"),
                                      frozenset({"x"}), mu)
        assert failures and "y" in failures[0]

    def test_tracked_tyvar_effect_must_be_visible(self):
        alpha = TyVar(21, "'a")
        mu = mk_mu(R1)
        gamma = {"y": MuVar(alpha)}
        omega_bad = TyCtx({alpha: ArrowEffect(EffectVar(99))})
        assert not gc_safe(omega_bad, gamma, T.Var("y"), frozenset(), mu)
        # ... visible when the handle is in the arrow's latent effect
        e_ok = EffectVar(12, "e_ok")
        mu_ok = MuBoxed(TauArrow(MU_INT, ArrowEffect(E1, effect(e_ok)), MU_INT), R1)
        omega_ok = TyCtx({alpha: ArrowEffect(e_ok)})
        assert gc_safe(omega_ok, gamma, T.Var("y"), frozenset(), mu_ok)

    def test_untracked_invisible_tyvar_fails(self):
        """The paper's hole: a type variable in a captured type, neither in
        the function's own type nor tracked in Omega."""
        alpha = TyVar(21, "'a")
        gamma = {"y": MuVar(alpha)}
        assert not gc_safe(EMPTY_CTX, gamma, T.Var("y"), frozenset(), mk_mu())

    def test_tyvar_in_own_type_is_lenient(self):
        alpha = TyVar(21, "'a")
        mu = MuBoxed(TauArrow(MuVar(alpha), ArrowEffect(E1), MuVar(alpha)), R1)
        gamma = {"y": MuVar(alpha)}
        assert gc_safe(EMPTY_CTX, gamma, T.Var("y"), frozenset(), mu)

    def test_unbound_free_variable_reported(self):
        failures = gc_safety_failures(EMPTY_CTX, {}, T.Var("ghost"),
                                      frozenset(), mk_mu())
        assert failures and "ghost" in failures[0]

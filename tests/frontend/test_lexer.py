"""Lexer unit tests."""

import pytest

from repro.core.errors import LexError
from repro.frontend.lexer import tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


class TestBasics:
    def test_keywords_vs_identifiers(self):
        assert kinds("val x fun funny") == [
            ("kw", "val"), ("id", "x"), ("kw", "fun"), ("id", "funny"),
        ]

    def test_integers_and_reals(self):
        assert kinds("42 3.14 2e3 1.5e~2") == [
            ("int", "42"), ("real", "3.14"), ("real", "2e3"), ("real", "1.5e~2"),
        ]

    def test_int_then_identifier_e(self):
        assert kinds("2 e") == [("int", "2"), ("id", "e")]

    def test_tyvars(self):
        assert kinds("'a 'b2") == [("tyvar", "'a"), ("tyvar", "'b2")]

    def test_symbols_longest_match(self):
        assert kinds("=> -> :: := <> <= >=") == [
            ("sym", "=>"), ("sym", "->"), ("sym", "::"),
            ("sym", ":="), ("sym", "<>"), ("sym", "<="), ("sym", ">="),
        ]

    def test_primes_in_identifiers(self):
        assert kinds("x' go'") == [("id", "x'"), ("id", "go'")]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestStrings:
    def test_simple_string(self):
        assert kinds('"hello"') == [("string", "hello")]

    def test_escapes(self):
        assert kinds(r'"a\nb\t\"q\""') == [("string", 'a\nb\t"q"')]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')


class TestComments:
    def test_comment_is_skipped(self):
        assert kinds("1 (* two *) 3") == [("int", "1"), ("int", "3")]

    def test_nested_comments(self):
        assert kinds("1 (* a (* b *) c *) 2") == [("int", "1"), ("int", "2")]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("(* oops")


class TestPositions:
    def test_line_and_column(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_lex_error_carries_position(self):
        with pytest.raises(LexError) as err:
            tokenize("a\n  $")
        assert err.value.line == 2
        assert err.value.col == 3

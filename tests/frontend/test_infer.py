"""Hindley-Milner inference tests: principal types, value restriction,
overloading, instantiation recording."""

import pytest

from repro.core.errors import TypeError_
from repro.frontend import ast as A
from repro.frontend import infer_program, parse_program
from repro.frontend.builtins import PRELUDE_SOURCE
from repro.frontend.mltypes import show_scheme, show_type


def infer(src: str, with_prelude: bool = False):
    full = (PRELUDE_SOURCE + src) if with_prelude else src
    return infer_program(parse_program(full))


def scheme_str(src: str, name: str, with_prelude: bool = False) -> str:
    from repro.frontend.mltypes import reset_tvar_names

    res = infer(src, with_prelude)
    reset_tvar_names()
    return show_scheme(res.top_env[name])


class TestPrincipalTypes:
    def test_identity(self):
        assert scheme_str("fun id x = x", "id") == "forall 'a. 'a -> 'a"

    def test_const_int(self):
        assert scheme_str("val x = 42", "x") == "int"

    def test_compose_scheme_matches_paper(self):
        # The ML type scheme of `o` from Section 2:
        # (gamma -> beta) * (alpha -> gamma) -> alpha -> beta.
        s = scheme_str("fun o p = fn x => (#1 p) ((#2 p) x)", "o")
        assert s == "forall 'a 'b 'c. ('a -> 'b) * ('c -> 'a) -> 'c -> 'b"

    def test_map(self):
        s = scheme_str(
            "fun map f xs = if null xs then nil else f (hd xs) :: map f (tl xs)",
            "map",
        )
        assert s == "forall 'a 'b. ('a -> 'b) -> 'a list -> 'b list"

    def test_app_overgeneralizes_like_algorithm_w(self):
        """Section 4.2: plain W gives List.app the type
        forall 'a 'b. ('a -> 'b) -> 'a list -> unit."""
        src = (
            "fun app f =\n"
            "  let fun loop xs = if null xs then () else (f (hd xs); loop (tl xs))\n"
            "  in loop end"
        )
        assert scheme_str(src, "app") == "forall 'a 'b. ('a -> 'b) -> 'a list -> unit"

    def test_app_constrained_by_annotation(self):
        """... and the explicit constraint of Section 4.2 removes 'b."""
        src = (
            "fun app (f : 'a -> unit) =\n"
            "  let fun loop xs = if null xs then () else (f (hd xs); loop (tl xs))\n"
            "  in loop end"
        )
        assert scheme_str(src, "app") == "forall 'a. ('a -> unit) -> 'a list -> unit"

    def test_polymorphic_use_at_two_types(self):
        res = infer("fun id x = x  val a = id 1  val b = id \"s\"")
        assert show_type(res.top_env["a"].body) == "int"
        assert show_type(res.top_env["b"].body) == "string"

    def test_fn_bound_val_generalizes(self):
        assert scheme_str("val id = fn x => x", "id") == "forall 'a. 'a -> 'a"

    def test_non_function_val_does_not_generalize(self):
        res = infer("val p = (nil, nil) val q = 1 :: #1 p")
        # #1 p is forced to int list; p itself stayed monomorphic.
        assert "int list" in show_type(res.top_env["q"].body)


class TestOverloading:
    def test_plus_defaults_to_int(self):
        assert scheme_str("fun f x = x + x", "f") == "int -> int"

    def test_plus_on_reals(self):
        assert scheme_str("fun f (x : real) = x + x", "f") == "real -> real"

    def test_comparison_on_strings(self):
        assert scheme_str('val b = "a" < "b"', "b") == "bool"

    def test_equality_on_ints(self):
        assert scheme_str("val b = 1 = 2", "b") == "bool"

    def test_equality_rejects_functions(self):
        with pytest.raises(TypeError_):
            infer("val b = (fn x => x) = (fn y => y)")

    def test_div_is_integer_only(self):
        with pytest.raises(TypeError_):
            infer("val x = 1.5 div 2.0")

    def test_slash_is_real_only(self):
        with pytest.raises(TypeError_):
            infer("val x = 1 / 2")

    def test_min_defaults_to_int(self):
        s = scheme_str("fun min (a, b) = if a < b then a else b", "min")
        assert s == "int * int -> int"


class TestErrors:
    def test_unbound_variable(self):
        with pytest.raises(TypeError_, match="unbound"):
            infer("val x = y")

    def test_if_branches_must_agree(self):
        with pytest.raises(TypeError_):
            infer("val x = if true then 1 else \"s\"")

    def test_occurs_check(self):
        with pytest.raises(TypeError_, match="circular|occurs"):
            infer("fun f x = x x")

    def test_condition_must_be_bool(self):
        with pytest.raises(TypeError_):
            infer("val x = if 1 then 2 else 3")

    def test_wide_selector_rejected(self):
        with pytest.raises(TypeError_, match="#3"):
            infer("fun f t = #3 t")

    def test_annotation_mismatch(self):
        with pytest.raises(TypeError_):
            infer("val x = (1 : string)")


class TestExceptions:
    def test_raise_is_polymorphic(self):
        s = scheme_str(
            "exception Bad fun f x = if x then 1 else raise Bad", "f"
        )
        assert s == "bool -> int"

    def test_handle_types_agree(self):
        res = infer(
            "exception Bad of string\n"
            "fun f x = (if x then 1 else raise Bad \"no\") handle Bad s => size s"
        )
        assert show_type(res.top_env["f"].body) == "bool -> int"

    def test_handler_payload_binding(self):
        with pytest.raises(TypeError_):
            infer("exception Stop fun f x = x handle Stop v => v")

    def test_exception_payload_with_scoped_tyvar(self):
        """Section 4.4: a local exception may mention a function's type
        variable in its payload type."""
        res = infer(
            "fun find (p : 'a -> bool) (xs : 'a list) =\n"
            "  let exception Found of 'a\n"
            "      fun go ys = if null ys then nil\n"
            "                  else if p (hd ys) then raise Found (hd ys)\n"
            "                  else go (tl ys)\n"
            "  in go xs handle Found v => v :: nil end"
        )
        from repro.frontend.mltypes import reset_tvar_names

        reset_tvar_names()
        assert (
            show_scheme(res.top_env["find"])
            == "forall 'a. ('a -> bool) -> 'a list -> 'a list"
        )


class TestInstantiationRecording:
    def test_instances_recorded_per_occurrence(self):
        src = "fun id x = x  val a = id 1  val b = id \"s\""
        prog = parse_program(src)
        res = infer_program(prog)
        uses = [
            node
            for node, inst in _var_uses(prog, res)
            if inst.binder.name == "id"
        ]
        # two instantiating occurrences (the recursion placeholder is mono)
        assert len(uses) == 2

    def test_builtin_instances_recorded(self):
        src = "val h = hd [1, 2]"
        prog = parse_program(src)
        res = infer_program(prog)
        assert any(
            inst.binder.builtin is not None and inst.binder.name == "hd"
            for _, inst in _var_uses(prog, res)
        )

    def test_instance_mapping_resolves_to_ground_types(self):
        src = "fun id x = x  val a = id 1"
        prog = parse_program(src)
        res = infer_program(prog)
        for _, inst in _var_uses(prog, res):
            if inst.binder.name == "id" and inst.mapping:
                (t,) = inst.mapping.values()
                assert show_type(t) == "int"
                return
        raise AssertionError("no instantiation of id found")


def _var_uses(prog, res):
    out = []

    def walk(node):
        if isinstance(node, A.EVar) and id(node) in res.var_instance:
            out.append((node, res.var_instance[id(node)]))
        for name in getattr(node, "__dataclass_fields__", {}):
            val = getattr(node, name)
            items = val if isinstance(val, tuple) else [val]
            for item in items:
                if isinstance(item, A.Node):
                    walk(item)

    walk(prog)
    return out

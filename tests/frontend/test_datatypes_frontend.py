"""Frontend tests for the datatype extension: parsing and HM inference."""

import pytest

from repro.core.errors import ParseError, TypeError_
from repro.frontend import ast as A
from repro.frontend.infer import infer_program
from repro.frontend.mltypes import reset_tvar_names, show_scheme
from repro.frontend.parser import parse_expression, parse_program


def scheme_of(src, name):
    res = infer_program(parse_program(src))
    reset_tvar_names()
    return show_scheme(res.top_env[name])


class TestParsing:
    def test_simple_datatype(self):
        prog = parse_program("datatype colour = Red | Green | Blue")
        dec = prog.decs[0]
        assert isinstance(dec, A.DatatypeDec)
        assert [c.name for c in dec.constructors] == ["Red", "Green", "Blue"]

    def test_payloads(self):
        prog = parse_program("datatype shape = Circle of real | Rect of real * real")
        cons = prog.decs[0].constructors
        assert cons[0].payload is not None
        assert isinstance(cons[1].payload, A.TyTupleS)

    def test_single_parameter(self):
        prog = parse_program("datatype 'a opt = None | Some of 'a")
        assert prog.decs[0].params == ("'a",)

    def test_multi_parameter(self):
        prog = parse_program("datatype ('k, 'v) pairy = P of 'k * 'v")
        assert prog.decs[0].params == ("'k", "'v")

    def test_recursive_type_reference(self):
        prog = parse_program("datatype t = L | N of t * t")
        payload = prog.decs[0].constructors[1].payload
        assert isinstance(payload, A.TyTupleS)
        assert payload.elems[0].name == "t"

    def test_user_tycon_in_annotations(self):
        prog = parse_program(
            "datatype 'a box = B of 'a\nfun f (x : int box) = x"
        )
        ann = prog.decs[1].params[0].ann
        assert ann.name == "box"
        assert ann.args[0].name == "int"

    def test_case_expression(self):
        e = parse_expression("case x of A => 1 | B n => n | _ => 0")
        assert isinstance(e, A.ECase)
        assert len(e.branches) == 3
        assert e.branches[0].conname == "A" and e.branches[0].pat is None
        assert e.branches[1].conname == "B" and isinstance(e.branches[1].pat, A.PVar)
        assert e.branches[2].conname is None

    def test_case_with_tuple_payload_pattern(self):
        e = parse_expression("case t of N (l, r) => 1 | L => 0")
        assert isinstance(e.branches[0].pat, A.PTuple)

    def test_mutually_recursive_datatypes_rejected(self):
        with pytest.raises(ParseError, match="mutually"):
            parse_program("datatype a = A of b and b = B of a")

    def test_parenthesized_case_as_argument(self):
        e = parse_expression("f (case x of A => 1 | _ => 2)")
        assert isinstance(e, A.EApp)
        assert isinstance(e.arg, A.ECase)


class TestInference:
    def test_constructor_schemes(self):
        s = scheme_of("datatype 'a opt = None2 | Some2 of 'a val x = Some2 3", "x")
        assert s == "int opt"

    def test_nullary_constructor_polymorphic(self):
        s = scheme_of(
            "datatype 'a opt = None2 | Some2 of 'a\n"
            "fun get (d, x) = case x of None2 => d | Some2 v => v",
            "get",
        )
        assert s == "forall 'a. 'a * 'a opt -> 'a"

    def test_case_unifies_branches(self):
        with pytest.raises(TypeError_):
            infer_program(parse_program(
                "datatype t = A | B\nval it = case A of A => 1 | B => true"
            ))

    def test_scrutinee_must_match_constructor(self):
        with pytest.raises(TypeError_):
            infer_program(parse_program(
                "datatype t = A\ndatatype u = B\nval it = case A of B => 1"
            ))

    def test_shadowing_constructor_with_variable_branch(self):
        """A branch name that is not a constructor in scope binds the
        scrutinee (SML's variable-pattern rule)."""
        res = infer_program(parse_program(
            "datatype t = A | B\n"
            "fun f x = case x of A => 0 | whatever => 1"
        ))
        reset_tvar_names()
        assert show_scheme(res.top_env["f"]) == "t -> int"

    def test_datatype_arity_checked(self):
        with pytest.raises(TypeError_, match="argument"):
            infer_program(parse_program(
                "datatype 'a box = B of 'a\nfun f (x : box) = x"
            ))

    def test_duplicate_params_rejected(self):
        with pytest.raises(TypeError_, match="duplicate"):
            infer_program(parse_program("datatype ('a, 'a) t = T of 'a"))

    def test_instances_recorded_for_constructors(self):
        prog = parse_program(
            "datatype 'a box = B of 'a\nval x = B 1\nval y = B \"s\""
        )
        res = infer_program(prog)
        assert len(res.data_con_use) == 2

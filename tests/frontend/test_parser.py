"""Parser unit tests: precedence, desugarings, declarations."""

import pytest

from repro.core.errors import ParseError
from repro.frontend import ast as A
from repro.frontend.parser import parse_expression, parse_program


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, A.EBinOp) and e.op == "+"
        assert isinstance(e.rhs, A.EBinOp) and e.rhs.op == "*"

    def test_comparison_below_arith(self):
        e = parse_expression("1 + 2 < 3 * 4")
        assert isinstance(e, A.EBinOp) and e.op == "<"

    def test_cons_is_right_associative(self):
        e = parse_expression("1 :: 2 :: nil")
        assert isinstance(e, A.EBinOp) and e.op == "::"
        assert isinstance(e.lhs, A.EInt)
        assert isinstance(e.rhs, A.EBinOp) and e.rhs.op == "::"

    def test_application_binds_tighter_than_infix(self):
        e = parse_expression("f x + g y")
        assert isinstance(e, A.EBinOp) and e.op == "+"
        assert isinstance(e.lhs, A.EApp)
        assert isinstance(e.rhs, A.EApp)

    def test_left_associative_application(self):
        e = parse_expression("f x y")
        assert isinstance(e, A.EApp)
        assert isinstance(e.fn, A.EApp)

    def test_unary_minus_literal(self):
        e = parse_expression("~3")
        assert isinstance(e, A.EInt) and e.value == -3

    def test_unary_minus_expression(self):
        e = parse_expression("~(x)")
        assert isinstance(e, A.EUnOp) and e.op == "~"

    def test_andalso_desugars_to_if(self):
        e = parse_expression("a andalso b")
        assert isinstance(e, A.EIf)
        assert isinstance(e.els, A.EBool) and e.els.value is False

    def test_orelse_desugars_to_if(self):
        e = parse_expression("a orelse b")
        assert isinstance(e, A.EIf)
        assert isinstance(e.then, A.EBool) and e.then.value is True


class TestCompositionInfix:
    def test_infix_o_applies_compose_to_pair(self):
        e = parse_expression("f o g")
        assert isinstance(e, A.EApp)
        assert isinstance(e.fn, A.EVar) and e.fn.name == "o"
        assert isinstance(e.arg, A.EPair)

    def test_op_o_is_the_bare_function(self):
        e = parse_expression("(op o) (f, g)")
        assert isinstance(e, A.EApp)
        assert isinstance(e.fn, A.EVar) and e.fn.name == "o"

    def test_op_plus_is_a_function(self):
        e = parse_expression("op + (1, 2)")
        assert isinstance(e, A.EApp)
        assert isinstance(e.fn, A.EFn)

    def test_variable_named_o_can_be_defined(self):
        prog = parse_program("fun o p = p")
        assert isinstance(prog.decs[0], A.FunDec)
        assert prog.decs[0].name == "o"


class TestDesugarings:
    def test_tuple_nests_right(self):
        e = parse_expression("(1, 2, 3)")
        assert isinstance(e, A.EPair)
        assert isinstance(e.snd, A.EPair)

    def test_list_literal(self):
        e = parse_expression("[1, 2]")
        assert isinstance(e, A.EBinOp) and e.op == "::"
        assert isinstance(e.rhs, A.EBinOp)
        assert isinstance(e.rhs.rhs, A.ENil)

    def test_empty_list(self):
        assert isinstance(parse_expression("[]"), A.ENil)

    def test_sequence_in_parens(self):
        e = parse_expression("(print \"x\"; 1)")
        assert isinstance(e, A.ELet)
        assert isinstance(e.body, A.EInt)

    def test_at_uses_append(self):
        e = parse_expression("xs @ ys")
        assert isinstance(e, A.EApp)
        assert e.fn.name == "append"

    def test_selector(self):
        e = parse_expression("#1 p")
        assert isinstance(e, A.ESelect) and e.index == 1

    def test_deref_and_assign(self):
        e = parse_expression("r := !r + 1")
        assert isinstance(e, A.EBinOp) and e.op == ":="
        assert isinstance(e.rhs.lhs, A.EUnOp) and e.rhs.lhs.op == "!"

    def test_annotation(self):
        e = parse_expression("(x : int)")
        assert isinstance(e, A.EAnnot)
        assert isinstance(e.ann, A.TyConS) and e.ann.name == "int"


class TestDeclarations:
    def test_val_dec(self):
        prog = parse_program("val x = 1")
        dec = prog.decs[0]
        assert isinstance(dec, A.ValDec)
        assert isinstance(dec.pat, A.PVar) and dec.pat.name == "x"

    def test_val_tuple_pattern(self):
        prog = parse_program("val (a, b) = p")
        assert isinstance(prog.decs[0].pat, A.PTuple)

    def test_fun_curried(self):
        prog = parse_program("fun f x y = x")
        dec = prog.decs[0]
        assert isinstance(dec, A.FunDec)
        assert len(dec.params) == 2

    def test_fun_with_annotated_param(self):
        prog = parse_program("fun app (f : 'a -> unit) xs = ()")
        p0 = prog.decs[0].params[0]
        assert isinstance(p0, A.PVar) and p0.ann is not None

    def test_fun_result_annotation(self):
        prog = parse_program("fun f x : int = x")
        assert prog.decs[0].result_ann is not None

    def test_exception_dec(self):
        prog = parse_program("exception Bad of string")
        dec = prog.decs[0]
        assert isinstance(dec, A.ExnDec) and dec.payload is not None

    def test_nullary_exception(self):
        prog = parse_program("exception Stop")
        assert prog.decs[0].payload is None

    def test_mutual_recursion_rejected(self):
        with pytest.raises(ParseError, match="and"):
            parse_program("fun f x = g x and g x = f x")

    def test_fun_needs_parameters(self):
        with pytest.raises(ParseError):
            parse_program("fun f = 1")


class TestControl:
    def test_if_then_else(self):
        e = parse_expression("if a then 1 else 2")
        assert isinstance(e, A.EIf)

    def test_let_in_end(self):
        e = parse_expression("let val x = 1 in x end")
        assert isinstance(e, A.ELet)

    def test_let_with_sequence_body(self):
        e = parse_expression("let val x = 1 in print \"a\"; x end")
        assert isinstance(e, A.ELet)
        assert isinstance(e.body, A.ELet)

    def test_fn(self):
        e = parse_expression("fn x => x")
        assert isinstance(e, A.EFn)

    def test_raise(self):
        e = parse_expression("raise Bad \"x\"")
        assert isinstance(e, A.ERaise)

    def test_handle_nullary(self):
        e = parse_expression("f x handle Stop => 0")
        assert isinstance(e, A.EHandle)
        assert e.pat is None

    def test_handle_with_payload(self):
        e = parse_expression("f x handle Bad s => size s")
        assert isinstance(e, A.EHandle)
        assert isinstance(e.pat, A.PVar)


class TestTypes:
    def test_arrow_right_assoc(self):
        prog = parse_program("fun f (x : int -> int -> int) = x")
        ann = prog.decs[0].params[0].ann
        assert isinstance(ann, A.TyArrowS)
        assert isinstance(ann.cod, A.TyArrowS)

    def test_star_binds_tighter_than_arrow(self):
        prog = parse_program("fun f (x : int * int -> int) = x")
        ann = prog.decs[0].params[0].ann
        assert isinstance(ann, A.TyArrowS)
        assert isinstance(ann.dom, A.TyTupleS)

    def test_postfix_list(self):
        prog = parse_program("fun f (x : int list list) = x")
        ann = prog.decs[0].params[0].ann
        assert ann.name == "list"
        assert ann.args[0].name == "list"

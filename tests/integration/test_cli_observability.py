"""End-to-end: the repro-run --trace/--profile flags on the Figure 1
program, under the sound and unsound strategies."""

import json

import pytest

from repro.cli import main
from repro.runtime.trace import validate_event

FIGURE_1 = """
fun work n = if n = 0 then nil else n :: work (n - 1)
fun run () =
  let val h : unit -> unit =
        (op o) (let val x = "oh" ^ "no"
                in (fn x => (), fn () => x)
                end)
      val _ = work 200
  in h ()
  end
val it = run ()
"""


@pytest.fixture()
def fig1(tmp_path):
    path = tmp_path / "fig1.mml"
    path.write_text(FIGURE_1)
    return path


def _read_trace(path):
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert [validate_event(e) for e in events] == [None] * len(events)
    return events


class TestTraceFlag:
    def test_rg_clean_run_writes_full_trace(self, fig1, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [str(fig1), "--strategy", "rg", "--gc-every-alloc",
             "--trace", str(trace)]
        )
        assert code == 0
        events = _read_trace(trace)
        kinds = {e["ev"] for e in events}
        assert {"run_begin", "region_push", "region_pop",
                "gc_begin", "gc_end", "run_end"} <= kinds
        assert "dangle" not in kinds
        assert events[0]["strategy"] == "rg"

    def test_rg_minus_faulting_run_flushes_dangle(self, fig1, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [str(fig1), "--strategy", "rg-", "--gc-every-alloc",
             "--trace", str(trace)]
        )
        assert code == 1
        assert "dangling" in capsys.readouterr().err
        events = _read_trace(trace)
        dangles = [e for e in events if e["ev"] == "dangle"]
        assert len(dangles) == 1
        assert dangles[0]["obj"] == "RStr"
        # The fault aborts the run: no run_end is ever written.
        assert all(e["ev"] != "run_end" for e in events)


class TestProfileFlag:
    def test_profile_report_on_stderr(self, fig1, capsys):
        code = main([str(fig1), "--strategy", "rg", "--profile"])
        assert code == 0
        err = capsys.readouterr().err
        assert "region profile (strategy rg)" in err
        assert "hiwater" in err

    def test_profile_printed_even_when_run_faults(self, fig1, capsys):
        code = main(
            [str(fig1), "--strategy", "rg-", "--gc-every-alloc", "--profile"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "region profile (strategy rg-)" in err
        assert "DANGLED" in err

    def test_trace_and_profile_combined(self, fig1, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [str(fig1), "--strategy", "rg", "--trace", str(trace), "--profile"]
        )
        assert code == 0
        assert _read_trace(trace)
        assert "region profile" in capsys.readouterr().err

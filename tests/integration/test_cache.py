"""The pipeline compile cache: key semantics, LRU bounds, hit wrappers,
and the ``cache=False`` escape hatch."""

import pytest

from repro.cache import CompileCache, cache_key, default_cache
from repro.config import CompilerFlags, RuntimeFlags, Strategy
from repro.pipeline import compile_program

SOURCE = "fun twice f x = f (f x)\nval it = twice (fn n => n + 3) 1"
OTHER = "val it = 1 :: 2 :: nil"


@pytest.fixture()
def cache():
    return CompileCache(maxsize=4)


class TestKey:
    def test_same_source_same_flags_same_key(self):
        assert cache_key(SOURCE, CompilerFlags()) == cache_key(SOURCE, CompilerFlags())

    def test_source_and_compile_flags_feed_the_key(self):
        base = cache_key(SOURCE, CompilerFlags())
        assert cache_key(OTHER, CompilerFlags()) != base
        assert cache_key(SOURCE, CompilerFlags(strategy=Strategy.R)) != base
        assert cache_key(SOURCE, CompilerFlags(verify=False)) != base
        assert cache_key(SOURCE, CompilerFlags(with_prelude=False)) != base

    def test_runtime_flags_excluded(self):
        """Runtime flags never influence compilation, so two programs
        differing only in them share a cache entry."""
        noisy = CompilerFlags(runtime=RuntimeFlags(gc_every_alloc=True, max_steps=7))
        assert cache_key(SOURCE, noisy) == cache_key(SOURCE, CompilerFlags())


class TestHitsAndMisses:
    def test_miss_then_hit(self, cache):
        p1 = compile_program(SOURCE, cache=cache)
        p2 = compile_program(SOURCE, cache=cache)
        assert (p1.cache_hit, p2.cache_hit) == (False, True)
        assert cache.stats.to_dict() == {"hits": 1, "misses": 1, "evictions": 0}

    def test_hit_shares_term_and_backend(self, cache):
        p1 = compile_program(SOURCE, cache=cache)
        p2 = compile_program(SOURCE, cache=cache)
        assert p2.term is p1.term
        assert p2._backend is p1._backend
        p1.run()  # closure-compile once...
        assert p2._backend.code is not None  # ...visible through the hit

    def test_hit_carries_callers_runtime_flags(self, cache):
        compile_program(SOURCE, cache=cache)
        flags = CompilerFlags(runtime=RuntimeFlags(max_steps=123))
        hit = compile_program(SOURCE, flags=flags, cache=cache)
        assert hit.cache_hit
        assert hit.flags.runtime.max_steps == 123

    def test_hit_runs_identically(self, cache):
        r1 = compile_program(SOURCE, cache=cache).run()
        r2 = compile_program(SOURCE, cache=cache).run()
        assert r1.output == r2.output
        assert r1.stats.to_dict() == r2.stats.to_dict()

    def test_different_strategy_misses(self, cache):
        compile_program(SOURCE, cache=cache)
        p = compile_program(SOURCE, strategy=Strategy.R, cache=cache)
        assert not p.cache_hit

    def test_cache_false_bypasses(self, cache):
        compile_program(SOURCE, cache=cache)
        p = compile_program(SOURCE, cache=False)
        assert not p.cache_hit
        assert cache.stats.hits == 0

    def test_default_cache_is_used_by_default(self):
        default_cache().clear()
        compile_program(SOURCE)
        assert compile_program(SOURCE).cache_hit


class TestLRU:
    def test_eviction_order(self):
        cache = CompileCache(maxsize=2)
        compile_program(SOURCE, cache=cache)
        compile_program(OTHER, cache=cache)
        compile_program(SOURCE, cache=cache)  # touch: SOURCE is now newest
        compile_program("val it = true", cache=cache)  # evicts OTHER
        assert compile_program(SOURCE, cache=cache).cache_hit
        assert not compile_program(OTHER, cache=cache).cache_hit
        assert cache.stats.evictions >= 1

    def test_len_bounded(self):
        cache = CompileCache(maxsize=2)
        for src in (SOURCE, OTHER, "val it = 0", "val it = 9"):
            compile_program(src, cache=cache)
        assert len(cache) == 2

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            CompileCache(maxsize=0)

    def test_clear_keeps_counters(self, cache):
        compile_program(SOURCE, cache=cache)
        compile_program(SOURCE, cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert not compile_program(SOURCE, cache=cache).cache_hit

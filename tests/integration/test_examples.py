"""Every example script must run cleanly (they are part of the public
face of the reproduction)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    out = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=540, cwd=str(path.parents[1]),
    )
    assert out.returncode == 0, out.stderr[-2000:]
    assert out.stdout.strip(), "examples should narrate what they show"


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "gc_safety_bug",
        "spurious_tracking",
        "exception_escape",
        "region_profiles",
        "calculator",
    } <= names

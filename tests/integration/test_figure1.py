"""The paper's headline experiment (Figures 1 and 2): the program that
combines higher-order functions, type polymorphism, and a dead value.

Under ``rg`` (the paper's sound system) the region of the dead string is
kept alive because coverage forces it into the arrow effect of ``h``'s
type through the spurious type variable's effect variable — Figure 2(b).
Under ``rg-`` the region is deallocated early — Figure 2(a) — and the
collector stumbles over the dangling pointer.  Under ``r`` the dangling
pointer is harmless because nothing traces it.
"""

import pytest

from repro import CompilerFlags, DanglingPointerError, Strategy, compile_program
from repro.core.errors import CoverageError, RegionTypeError

FIG1 = """
fun work n = if n = 0 then nil else n :: work (n - 1)
fun run () =
  let val h : unit -> unit =
        (op o) (let val x = "oh" ^ "no"
                in (fn x => (), fn () => x)
                end)
      val _ = work 200     (* trigger gc *)
  in h ()
  end
val it = run ()
"""


class TestFigure1:
    def test_rg_verifies_statically(self):
        prog = compile_program(FIG1, strategy=Strategy.RG)
        assert prog.verification_error is None

    def test_rg_runs_safely_under_aggressive_gc(self):
        prog = compile_program(FIG1, strategy=Strategy.RG)
        res = prog.run(gc_every_alloc=True)
        assert res.stats.gc_count > 0

    def test_rg_minus_fails_the_type_checker(self):
        prog = compile_program(FIG1, strategy=Strategy.RG_MINUS)
        assert isinstance(prog.verification_error, RegionTypeError)

    def test_rg_minus_dangles_at_runtime(self):
        prog = compile_program(FIG1, strategy=Strategy.RG_MINUS)
        with pytest.raises(DanglingPointerError):
            prog.run(gc_every_alloc=True)

    def test_r_tolerates_dangling_pointers(self):
        """Region inference alone is sound: the program never dereferences
        the dangling pointer, and with no collector nothing traces it."""
        prog = compile_program(FIG1, strategy=Strategy.R)
        res = prog.run()
        assert res.stats.gc_count == 0

    def test_trivial_and_ml_are_safe(self):
        for strat in (Strategy.TRIVIAL, Strategy.ML):
            prog = compile_program(FIG1, strategy=strat)
            assert prog.verification_error is None
            prog.run(gc_every_alloc=True)

    def test_compose_is_spurious_in_rg(self):
        prog = compile_program(FIG1, strategy=Strategy.RG)
        assert "o" in prog.spurious.spurious_function_names

    def test_rg_annotation_mentions_region_in_h_effect(self):
        """Figure 2(b): the string's region appears in the latent effect of
        h's arrow type; structurally we check that the string region is
        NOT letregion-bound before the call to work."""
        prog = compile_program(FIG1, strategy=Strategy.RG)
        rg_pretty = prog.pretty()
        minus = compile_program(FIG1, strategy=Strategy.RG_MINUS).pretty()
        # The two annotations must differ (the paper's `diff` column).
        assert rg_pretty != minus


class TestStrategiesAgree:
    SRC = """
    fun fact n = if n = 0 then 1 else n * fact (n - 1)
    val strs = map itos [fact 5, fact 7]
    val it = foldl (fn (s, acc) => acc ^ s) "" strs
    """

    def test_all_strategies_same_result(self):
        results = {}
        for strat in Strategy:
            res = compile_program(self.SRC, strategy=strat).run()
            from repro.runtime.values import show_value

            results[strat] = show_value(res.value)
        assert len(set(results.values())) == 1, results

    def test_gc_every_alloc_is_safe_for_rg(self):
        prog = compile_program(self.SRC, strategy=Strategy.RG)
        res = prog.run(gc_every_alloc=True)
        from repro.runtime.values import show_value

        assert show_value(res.value) == '"1205040"'


class TestBasisSpuriousClaim:
    """Section 4.2: the Basis implementation contains exactly three
    spurious functions: o, Option.compose, Option.mapPartial."""

    def test_exactly_three_spurious_in_prelude(self):
        prog = compile_program("val it = 0", strategy=Strategy.RG)
        assert sorted(prog.spurious.spurious_function_names) == [
            "composeOpt", "mapPartialOpt", "o",
        ]

    def test_rg_minus_tracks_none(self):
        prog = compile_program("val it = 0", strategy=Strategy.RG_MINUS)
        assert prog.spurious.spurious_functions == 0

    def test_unconstrained_app_is_spurious(self):
        """The List.app example: plain algorithm W makes 'b spurious..."""
        src = (
            "fun appU f =\n"
            "  let fun loop xs = if null xs then () else (f (hd xs); loop (tl xs))\n"
            "  in loop end\n"
            "val it = appU (fn x => ()) [1,2,3]\n"
        )
        prog = compile_program(src, strategy=Strategy.RG)
        assert "appU" in prog.spurious.spurious_function_names

    def test_annotated_app_is_not_spurious(self):
        """... and the Section 4.2 annotation removes the spuriousness."""
        src = (
            "fun appC (f : 'a -> unit) =\n"
            "  let fun loop xs = if null xs then () else (f (hd xs); loop (tl xs))\n"
            "  in loop end\n"
            "val it = appC (fn x => ()) [1,2,3]\n"
        )
        prog = compile_program(src, strategy=Strategy.RG)
        assert "appC" not in prog.spurious.spurious_function_names

"""The repro-run --backend / --no-cache flags."""

import pytest

from repro.cli import main

PROGRAM = """
fun sum n = if n = 0 then 0 else n + sum (n - 1)
val it = sum 100
"""


@pytest.fixture()
def mml(tmp_path):
    path = tmp_path / "sum.mml"
    path.write_text(PROGRAM)
    return path


def _stdout(capsys):
    return capsys.readouterr().out


def test_backends_print_identical_results(mml, capsys):
    assert main([str(mml)]) == 0
    closure_out = _stdout(capsys)
    for backend in ("tree", "bytecode"):
        assert main([str(mml), "--backend", backend]) == 0
        assert _stdout(capsys) == closure_out
    assert "val it = 5050" in closure_out


def test_no_cache_matches_cached(mml, capsys):
    assert main([str(mml), "--stats"]) == 0
    cached = capsys.readouterr()
    assert main([str(mml), "--stats", "--no-cache"]) == 0
    uncached = capsys.readouterr()
    assert uncached.out == cached.out
    # The deterministic stats fields agree; wall time differs.
    def fields(err):
        return [f for f in err.split() if "=" in f and not f.startswith("wall")]
    assert fields(uncached.err) == fields(cached.err)


def test_unknown_backend_rejected(mml, capsys):
    with pytest.raises(SystemExit):
        main([str(mml), "--backend", "jit"])

"""Algebraic datatypes under the region type system: the MLKit-style
uniform (single-region) representation, case analysis, GC safety of
datatype values, and spurious type variables instantiated with datatype
instances — the paper's mechanism exercised through user-defined boxed
types."""

import pytest

from repro import CompilerFlags, DanglingPointerError, Strategy, compile_program
from repro.runtime.values import show_value

TREE = """
datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
fun insert (t, x) =
  case t of
    Leaf => Node (Leaf, x, Leaf)
  | Node q =>
      let val (l, v, r) = q
      in if x < v then Node (insert (l, x), v, r)
         else if x > v then Node (l, v, insert (r, x))
         else t
      end
fun fold f acc t =
  case t of
    Leaf => acc
  | Node q => let val (l, v, r) = q in fold f (f (v, fold f acc l)) r end
fun fromList xs = foldl (fn (x, t) => insert (t, x)) Leaf xs
"""


def run(src, strategy=Strategy.RG, **kw):
    prog = compile_program(src, strategy=strategy)
    return prog, prog.run(**kw)


class TestDatatypeBasics:
    def test_construction_and_case(self):
        src = (
            "datatype colour = Red | Green | Blue\n"
            "fun code c = case c of Red => 1 | Green => 2 | Blue => 3\n"
            "val it = code Green * 10 + code Blue"
        )
        prog, res = run(src)
        assert res.value == 23
        assert prog.verification_error is None

    def test_payload_constructors(self):
        src = (
            "datatype shape = Circle of real | Rect of real * real\n"
            "fun area s = case s of Circle r => 3.14 * r * r\n"
            "                     | Rect p => #1 p * #2 p\n"
            "val it = floor (area (Rect (3.0, 4.0)) + area (Circle 1.0))"
        )
        _, res = run(src)
        assert res.value == 15

    def test_catch_all_variable_branch(self):
        src = (
            "datatype t = A | B | C\n"
            "fun f x = case x of A => 1 | other => 0\n"
            "val it = f A * 10 + f B + f C"
        )
        _, res = run(src)
        assert res.value == 10

    def test_wildcard_branch(self):
        src = (
            "datatype t = A of int | B\n"
            "fun f x = case x of A n => n | _ => ~1\n"
            "val it = f (A 7) + f B"
        )
        _, res = run(src)
        assert res.value == 6

    def test_match_failure_raises(self):
        from repro.core.errors import RuntimeFault

        src = (
            "datatype t = A | B\n"
            "fun f x = case x of A => 1\n"
            "val it = f B"
        )
        prog = compile_program(src)
        with pytest.raises(RuntimeFault, match="Match"):
            prog.run()

    def test_polymorphic_tree(self):
        prog, res = run(TREE + "val it = fold (fn (v, a) => a + v) 0 (fromList [5,2,8,1,9,3])")
        assert res.value == 28
        assert prog.verification_error is None

    def test_constructor_as_first_class_function(self):
        src = (
            "datatype box = Box of int\n"
            "fun unbox b = case b of Box n => n\n"
            "val boxes = map Box [1, 2, 3]\n"
            "val it = foldl (fn (b, a) => a + unbox b) 0 boxes"
        )
        _, res = run(src)
        assert res.value == 6

    def test_multi_parameter_datatype(self):
        src = (
            "datatype ('k, 'v) entry = E of 'k * 'v\n"
            "fun key e = case e of E p => #1 p\n"
            "fun value e = case e of E p => #2 p\n"
            "val e = E (3, \"three\")\n"
            "val it = key e + size (value e)"
        )
        _, res = run(src)
        assert res.value == 8

    def test_nested_datatypes(self):
        src = (
            "datatype leaf = L of int\n"
            "datatype t = One of leaf | Two of leaf * leaf\n"
            "fun total x = case x of One l => (case l of L n => n)\n"
            "                      | Two p => (case #1 p of L a => a)\n"
            "                                  + (case #2 p of L b => b)\n"
            "val it = total (Two (L 3, L 4)) + total (One (L 1))"
        )
        _, res = run(src)
        assert res.value == 8

    def test_local_datatype_in_let(self):
        src = (
            "fun f n = let datatype sign = Pos | Neg\n"
            "              val s = if n >= 0 then Pos else Neg\n"
            "          in case s of Pos => 1 | Neg => ~1 end\n"
            "val it = f 5 + f (~3)"
        )
        _, res = run(src)
        assert res.value == 0


class TestDatatypeRegionBehaviour:
    def test_all_strategies_agree(self):
        src = TREE + "val it = fold (fn (v, a) => a * 10 + v) 0 (fromList [5,2,8])"
        values = set()
        for strategy in Strategy:
            _, res = run(src, strategy=strategy)
            values.add(show_value(res.value))
        assert len(values) == 1

    def test_rg_safe_under_gc_every_alloc(self):
        src = TREE + "val it = fold (fn (v, a) => a + v) 0 (fromList [5,2,8,1,9,3,7,4])"
        prog, res = run(src, gc_every_alloc=True)
        assert res.value == 39
        assert res.stats.gc_count > 0

    def test_tree_garbage_is_collected(self):
        """Persistent insertion makes the old spine garbage inside a live
        region: only the collector reclaims it (the gc-essential
        pattern)."""
        src = TREE + (
            "fun build (n, t) = if n = 0 then t "
            "else build (n - 1, insert (t, n * 7 mod 50))\n"
            "val it = fold (fn (v, a) => a + 1) 0 (build (120, Leaf))"
        )
        _, res_rg = run(src, strategy=Strategy.RG, initial_threshold=512)
        _, res_r = run(src, strategy=Strategy.R)
        assert res_rg.value == res_r.value
        assert res_rg.stats.gc_count > 0
        assert res_rg.stats.peak_words < res_r.stats.peak_words

    def test_spurious_tyvar_instantiated_with_datatype(self):
        """Figure 1 with the dead value being a *tree*: the spurious type
        variable of `o` is instantiated with a user datatype instance;
        coverage must keep the tree's region alive under rg, and rg-
        dangles."""
        src = TREE + """
fun work n = if n = 0 then nil else n :: work (n - 1)
fun run () =
  let val h : unit -> unit =
        (op o) (let val x = insert (insert (Leaf, 1), 2)
                in (fn x => (), fn () => x)
                end)
      val _ = work 200
  in h ()
  end
val it = run ()
"""
        prog_rg = compile_program(src, strategy=Strategy.RG)
        assert prog_rg.verification_error is None
        prog_rg.run(gc_every_alloc=True)

        prog_minus = compile_program(src, strategy=Strategy.RG_MINUS)
        assert prog_minus.verification_error is not None
        with pytest.raises(DanglingPointerError):
            prog_minus.run(gc_every_alloc=True)

    def test_uniform_representation_single_region_per_tree_value(self):
        """Every constructor of one tree value is traced within one region:
        collect region ids of an RData chain at runtime."""
        src = TREE + "val it = fromList [4, 2, 6]"
        _, res = run(src)
        from repro.runtime.values import RData

        root = res.value
        assert isinstance(root, RData)
        regions = set()

        def walk(v):
            if isinstance(v, RData):
                regions.add(v.region.ident)
                if v.payload is not None:
                    walk(v.payload)
            elif hasattr(v, "fst"):
                walk(v.fst)
                walk(v.snd)

        walk(root)
        assert len(regions) == 1


class TestDatatypeErrors:
    def test_unknown_constructor_in_case(self):
        from repro.core.errors import TypeError_

        with pytest.raises(TypeError_):
            compile_program(
                "datatype t = A\nfun f x = case x of A y => y\nval it = 0"
            )

    def test_arity_mismatch(self):
        from repro.core.errors import TypeError_

        with pytest.raises(TypeError_):
            compile_program(
                "datatype t = A of int\nval x = A\nval it = (x : t)"
            )

    def test_function_payloads_rejected(self):
        from repro.core.errors import RegionInferenceError

        with pytest.raises(RegionInferenceError, match="payload"):
            prog = compile_program(
                "datatype t = F of int -> int\nval it = (case F (fn x => x) of F g => g 1)"
            )

    def test_branch_type_mismatch(self):
        from repro.core.errors import TypeError_

        with pytest.raises(TypeError_):
            compile_program(
                "datatype t = A | B\n"
                "val it = case A of A => 1 | B => \"two\""
            )

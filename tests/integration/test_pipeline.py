"""Pipeline- and CLI-level integration tests."""

import subprocess
import sys

import pytest

from repro import CompilerFlags, Strategy, compile_program, run_source
from repro.core.errors import ParseError, TypeError_
from repro.runtime.values import show_value


class TestCompileProgram:
    def test_returns_reports(self):
        prog = compile_program("val it = 1 + 1")
        assert prog.check_result is not None
        assert prog.compile_seconds > 0
        assert prog.spurious.total_functions > 0  # the prelude

    def test_run_source_shortcut(self):
        res = run_source("val it = 6 * 7")
        assert res.value == 42

    def test_runtime_overrides(self):
        res = compile_program("val it = length (tabulate (50, fn i => i))").run(
            gc_every_alloc=True
        )
        assert res.value == 50
        assert res.stats.gc_count > 0

    def test_without_prelude(self):
        flags = CompilerFlags(with_prelude=False)
        res = compile_program("val it = 2 + 3", flags=flags).run()
        assert res.value == 5

    def test_prelude_needed_for_map(self):
        flags = CompilerFlags(with_prelude=False)
        with pytest.raises(TypeError_, match="unbound"):
            compile_program("val it = map (fn x => x) [1]", flags=flags)

    def test_parse_errors_propagate(self):
        with pytest.raises(ParseError):
            compile_program("val = 3")

    def test_print_output_collected(self):
        res = run_source('val _ = print "a" val _ = print "b" val it = 0')
        assert res.output == "ab"

    def test_program_without_it_returns_unit(self):
        from repro.runtime.values import Unit

        res = run_source("val x = 5")
        assert isinstance(res.value, Unit)

    def test_pretty_shows_letregion_and_at(self):
        prog = compile_program(
            "fun f n = let val p = (n, n) in #1 p end val it = f 1",
            flags=CompilerFlags(with_prelude=False),
        )
        text = prog.pretty()
        assert "letregion" in text
        assert " at r" in text
        assert "fun f [" in text

    def test_verification_effect_is_global_only(self):
        """A whole program's residual effect mentions only global atoms:
        everything else was discharged by letregion."""
        prog = compile_program("val it = size (\"a\" ^ \"bc\")")
        for atom in prog.check_result.effect:
            assert getattr(atom, "top", False) or atom.ident == 0


class TestCLI:
    def _run(self, *args, stdin=""):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True, text=True, input=stdin,
            cwd="/root/repo", timeout=300,
        )

    def test_run_file(self):
        out = self._run("benchmarks/programs/fib.mml")
        assert out.returncode == 0
        assert "val it = 2584" in out.stdout

    def test_stdin(self):
        out = self._run("-", stdin="val it = 1 + 1")
        assert "val it = 2" in out.stdout

    def test_pretty_flag(self):
        out = self._run("-", "--pretty", "--no-prelude", stdin="val it = (1, 2)")
        assert "letregion" in out.stdout or " at r" in out.stdout

    def test_stats_flag(self):
        out = self._run("-", "--stats", stdin="val it = 0")
        assert "[stats]" in out.stderr

    def test_strategy_flag(self):
        out = self._run("-", "--strategy", "r", stdin="val it = 3")
        assert "val it = 3" in out.stdout

    def test_rg_minus_warns(self):
        fig1 = (
            'fun run () = let val h : unit -> unit = '
            '(op o) (let val x = "a" ^ "b" in (fn x => (), fn () => x) end) '
            'in h () end val it = run ()'
        )
        out = self._run("-", "--strategy", "rg-", stdin=fig1)
        assert "warning" in out.stderr

    def test_compile_error_reported(self):
        out = self._run("-", stdin="val it = undefined_name")
        assert out.returncode == 1
        assert "error" in out.stderr


class TestMinimization:
    def test_minimize_removes_gratuitous_variable(self):
        """An unused over-generalized helper loses its gratuitous type
        variable under minimization (Section 4.2) and stops being
        spurious."""
        src = (
            "fun appU f =\n"
            "  let fun loop xs = if null xs then () else (f (hd xs); loop (tl xs))\n"
            "  in loop end\n"
            "val it = 0\n"
        )
        with_min = compile_program(src, flags=CompilerFlags(minimize_types=True))
        without = compile_program(src, flags=CompilerFlags(minimize_types=False))
        assert "appU" not in with_min.spurious.spurious_function_names
        assert "appU" in without.spurious.spurious_function_names

    def test_minimize_keeps_constrained_instances(self):
        """When a use pins the variable to a boxed type, minimization must
        not fire and the function stays spurious."""
        src = (
            "fun appU f =\n"
            "  let fun loop xs = if null xs then () else (f (hd xs); loop (tl xs))\n"
            "  in loop end\n"
            "val _ = appU (fn x => \"s\" ^ x) [\"a\"]\n"
            "val it = 0\n"
        )
        prog = compile_program(src, flags=CompilerFlags(minimize_types=True))
        assert "appU" in prog.spurious.spurious_function_names
        assert prog.verification_error is None
        prog.run(gc_every_alloc=True)

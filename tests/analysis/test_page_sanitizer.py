"""Mutation-kill test for the *page-aware* pointer sanitizer.

The reuse-after-free this suite pins down cannot be expressed at the
MiniML level — it needs a forged region descriptor, the kind of
corruption a compiler or runtime bug (not a program) would produce.  So
the mutant works directly on the runtime heap, in the style of
``test_mutations.py``'s term surgery:

1. allocate a value ``v`` in region ``A`` (``v`` records its birth page
   and that page's recycle stamp);
2. deallocate ``A`` — its pages go back to the heap-wide free list,
   each bumping its recycle stamp;
3. open region ``B``, whose first allocation *recycles* ``v``'s birth
   page (LIFO free list);
4. **forge** ``v.region = B`` and ``v.san = B.stamp`` — the classic
   single-witness sanitizer check ``v.san == region.stamp`` now
   *passes*: the value masquerades as live data of ``B``.

The region stamp alone is provably blind to this (asserted below — that
blindness is the mutant the page witness exists to kill).  The second
witness is not: ``v.page_san`` still carries the stamp its page had
before recycling, so the page-aware sanitizer raises
``StalePointerError("... birth page was recycled ...")`` the moment a
collection traces ``v``.
"""

from __future__ import annotations

import pytest

from repro.config import RuntimeFlags
from repro.core.errors import StalePointerError
from repro.runtime.gc import Collector
from repro.runtime.heap import NO_PAGE, Heap
from repro.runtime.stats import RunStats
from repro.runtime.values import RArray, RPair


def _sanitizing_heap(**kw) -> Heap:
    kw.setdefault("sanitize", True)
    kw.setdefault("page_words", 16)
    return Heap(RuntimeFlags(**kw), RunStats())


def _alloc_pair(heap: Heap, region, fst=1, snd=2) -> RPair:
    """Allocate the way the interpreter does: account the words first,
    then construct the value (so it records the page it landed on)."""
    heap.alloc(region, 2)
    return RPair(fst, snd, region)


def _forged_reuse_after_free(heap: Heap) -> RPair:
    """Steps 1-4 of the module docstring; returns the forged value."""
    a = heap.new_region("rA")
    v = _alloc_pair(heap, a)
    birth_page = v.page
    birth_stamp = v.page_san
    heap.dealloc_region(a)
    assert birth_page.stamp == birth_stamp + 1  # recycle stamp bumped

    b = heap.new_region("rB")
    fresh = _alloc_pair(heap, b)
    assert fresh.page is birth_page  # LIFO free list recycled it

    v.region = b
    v.san = b.stamp
    return v


class TestPageWitnessKillsReuseAfterFree:
    def test_region_stamp_alone_is_blind(self):
        """The mutant's premise: after the forgery the single-witness
        check has nothing to object to."""
        heap = _sanitizing_heap()
        v = _forged_reuse_after_free(heap)
        assert v.region.alive
        assert v.san == v.region.stamp  # the old check passes...
        assert v.page_san != v.page.stamp  # ...only the page witness objects

    def test_page_aware_sanitizer_kills_the_mutant(self):
        heap = _sanitizing_heap()
        v = _forged_reuse_after_free(heap)
        collector = Collector(heap)
        with pytest.raises(StalePointerError, match="birth page was recycled"):
            collector.collect([v])

    def test_kill_is_attributed_in_the_trace(self):
        from repro.runtime.trace import EventBus, RecordingSink

        sink = RecordingSink()
        heap = Heap(
            RuntimeFlags(sanitize=True, page_words=16, tracer=EventBus(sink)),
            RunStats(),
        )
        v = _forged_reuse_after_free(heap)
        with pytest.raises(StalePointerError):
            Collector(heap).collect([v])
        dangles = [e for e in sink.events if e["ev"] == "dangle"]
        assert len(dangles) == 1
        assert dangles[0]["sanitizer"] is True
        assert dangles[0]["obj"] == "RPair"

    def test_page_blind_mutant_misses_the_fault(self):
        """Retiring the witness (``page = NO_PAGE, page_san = 0``) *is*
        the region-stamp-only sanitizer: the same forged value then
        traces silently — the collection completes and even counts the
        corpse as live data of the forged region.  This is the miss the
        page witness closes; if someone weakens the check, the kill
        above disappears and this test documents exactly what escapes."""
        heap = _sanitizing_heap()
        v = _forged_reuse_after_free(heap)
        v.page = NO_PAGE
        v.page_san = 0
        retained = Collector(heap).collect([v])
        assert retained >= v.words()  # silently accepted as live


class TestStaleArrayElementReuseAfterFree:
    """The same forgery reached *through a mutable array slot*: an
    ``Array.update`` stored a pointer whose region was later freed and
    whose birth page was recycled, then the region descriptor was forged
    back to life.  Arrays are the canonical carrier for this corpse — an
    update can happen long before the collection that traces the slot —
    so the suite pins that slot tracing goes through the same two-witness
    check as direct roots."""

    def _array_with_stale_slot(self, heap: Heap) -> RArray:
        v = _forged_reuse_after_free(heap)
        holder = heap.new_region("rC")
        heap.alloc(holder, 1 + 2)
        return RArray([v, 0], holder)

    def test_page_witness_kills_through_the_slot(self):
        heap = _sanitizing_heap()
        arr = self._array_with_stale_slot(heap)
        with pytest.raises(StalePointerError, match="birth page was recycled"):
            Collector(heap).collect([arr])

    def test_region_stamp_witness_alone_misses_it(self):
        """Blinding the page witness on the element reduces the check to
        the region stamp, which the forgery satisfies: the stale element
        traces silently and is even retained as live data — exactly the
        miss the page witness closes for array slots."""
        heap = _sanitizing_heap()
        arr = self._array_with_stale_slot(heap)
        stale = arr.slots[0]
        stale.page = NO_PAGE
        stale.page_san = 0
        assert stale.san == stale.region.stamp  # region witness is content
        retained = Collector(heap).collect([arr])
        assert retained >= arr.words() + stale.words()

    def test_kill_is_attributed_to_the_element(self):
        from repro.runtime.trace import EventBus, RecordingSink

        sink = RecordingSink()
        heap = Heap(
            RuntimeFlags(sanitize=True, page_words=16, tracer=EventBus(sink)),
            RunStats(),
        )
        arr = self._array_with_stale_slot(heap)
        with pytest.raises(StalePointerError):
            Collector(heap).collect([arr])
        dangles = [e for e in sink.events if e["ev"] == "dangle"]
        assert len(dangles) == 1
        assert dangles[0]["obj"] == "RPair"  # the element, not the array

    def test_healthy_array_slots_trace_clean(self):
        heap = _sanitizing_heap()
        region = heap.new_region("r")
        heap.alloc(region, 2)
        elem = RPair(1, 2, region)
        heap.alloc(region, 1 + 2)
        arr = RArray([elem, 7], region)
        Collector(heap).collect([arr])  # must not raise


class TestPageWitnessStaysQuiet:
    """The other half of a kill matrix: no false positives."""

    def test_value_on_a_live_page_is_clean(self):
        heap = _sanitizing_heap()
        region = heap.new_region("r")
        v = _alloc_pair(heap, region)
        Collector(heap).collect([v])  # must not raise

    def test_evacuation_retires_the_witness(self):
        """A traced value's witness moves to the never-stamped
        ``NO_PAGE`` sentinel (its data notionally moved to to-space):
        the evacuating collection itself releases the birth page, and a
        survivor must not be indicted by its own evacuation."""
        heap = _sanitizing_heap()
        region = heap.new_region("r")
        heap.alloc(region, 16)  # a full page of garbage ahead of v
        v = _alloc_pair(heap, region)
        birth_page = v.page
        born_stamp = v.page_san
        collector = Collector(heap)
        # Evacuates v (2 live words repack onto one page); the birth
        # page goes back to the free list with its stamp bumped.
        collector.collect([v])
        assert v.page is NO_PAGE
        assert v.page_san == 0
        assert birth_page in heap.free_pages
        assert birth_page.stamp == born_stamp + 1
        # The survivor still traces clean, birth page long recycled.
        collector.collect([v])

    def test_unsanitized_run_ignores_forgery(self):
        """Without ``sanitize`` the witnesses are inert (the production
        configuration): the forged value traces without checks, pinning
        that the sanitizer is pure checking, never semantics."""
        heap = _sanitizing_heap(sanitize=False)
        v = _forged_reuse_after_free(heap)
        Collector(heap).collect([v])  # must not raise

"""Mutation-kill conformance suite for the independent verifier.

Each mutant takes a sound, fully region-annotated program the pipeline
produced (which the verifier accepts) and surgically corrupts ONE
annotation the way a region-inference bug would: dropping a region from
an arrow effect, stripping a spurious ``Delta`` binding, widening a
``letregion`` scope, retyping an instantiation without coverage, moving
an allocation's place, and so on.  The suite asserts the verifier kills
*every* mutant and pins the exact kill matrix — mutant x violated-rule
tuple — so a regression that silences one judgment (while others still
fire) is caught, not just "some violation somewhere".

The surgery works on the immutable term tree with
``dataclasses.replace``; it never goes through the inference code under
test, so a mutant exercises the verifier alone.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import verify_term
from repro.config import CompilerFlags
from repro.core import terms as T
from repro.core.effects import EMPTY_EFFECT, RHO_TOP, ArrowEffect, RegionVar
from repro.core.rtypes import (
    EMPTY_CTX,
    MU_INT,
    MuBoxed,
    PiScheme,
    TAU_STRING,
    TauArrow,
)
from repro.core.substitution import Subst
from repro.pipeline import compile_program

# ---------------------------------------------------------------------------
# Term surgery
# ---------------------------------------------------------------------------

#: Child Term fields per node type, for rebuilding a path down to the
#: mutated node.  ``Prim`` and ``Case`` need bespoke handling (tuple of
#: args / branch records) and are special-cased in ``replace_first``.
_CHILD_FIELDS = {
    T.Lam: ("body",),
    T.FunDef: ("body",),
    T.RApp: ("fn",),
    T.App: ("fn", "arg"),
    T.Let: ("rhs", "body"),
    T.Letregion: ("body",),
    T.Pair: ("fst", "snd"),
    T.Select: ("pair",),
    T.Cons: ("head", "tail"),
    T.If: ("cond", "then", "els"),
    T.MkRef: ("init",),
    T.Deref: ("ref",),
    T.Assign: ("ref", "value"),
    T.LetData: ("body",),
    T.DataCon: ("arg",),
    T.LetExn: ("body",),
    T.Con: ("arg",),
    T.Raise: ("exn",),
    T.Handle: ("body", "handler"),
}


def replace_first(term: T.Term, pred, make) -> T.Term:
    """Rebuild ``term`` with ``make(node)`` substituted for the first
    (preorder) node satisfying ``pred``.  Asserts the target exists, so
    a mutant can never silently degenerate into the identity."""
    state = {"done": False}

    def go(t: T.Term) -> T.Term:
        if state["done"]:
            return t
        if pred(t):
            state["done"] = True
            return make(t)
        if isinstance(t, T.Prim):
            return dataclasses.replace(t, args=tuple(go(a) for a in t.args))
        if isinstance(t, T.Case):
            scrut = go(t.scrutinee)
            branches = tuple(
                dataclasses.replace(b, body=go(b.body)) for b in t.branches
            )
            return T.Case(scrut, branches)
        fields = _CHILD_FIELDS.get(type(t))
        if not fields:
            return t
        updates = {
            f: go(getattr(t, f))
            for f in fields
            if getattr(t, f) is not None
        }
        return dataclasses.replace(t, **updates)

    out = go(term)
    assert state["done"], "mutation target not found in the term"
    return out


def _rbad(i: int) -> RegionVar:
    """A region variable no sound annotation of these programs mentions:
    the forged region a buggy inference would leak."""
    return RegionVar(990_000 + i, f"rbad{i}")


def _find_fun(term: T.Term, name: str) -> T.FunDef:
    found: list[T.FunDef] = []

    def walk(t: T.Term) -> None:
        if isinstance(t, T.FunDef) and t.fname == name:
            found.append(t)
        for c in T.iter_children(t):
            walk(c)

    walk(term)
    assert found, f"no fun {name} in the term"
    return found[0]


# ---------------------------------------------------------------------------
# Base programs (sound; the verifier must accept them unmutated)
# ---------------------------------------------------------------------------

FIG8 = """
fun g (f : unit -> 'a) : unit -> unit =
  op o (let val x = f ()
        in (fn x => (), fn () => x)
        end)
fun work n = if n = 0 then nil else n :: work (n - 1)
val h = g (fn () => "oh" ^ "no")
val _ = work 200
val it = h ()
"""

EXN = """
exception Boom of string
val it = (size ((raise Boom "no") handle Boom s => s)) handle Boom s => 0
"""

REF = """
val r = ref 1
val _ = r := 2
val it = !r
"""

# A *polymorphic* exception: Alt's payload mentions the enclosing
# function's 'a, so the scheme's Delta tracks an exception type variable
# pinned to the global effect (Section 4.4).
POLYEXN = """
fun pick (x : 'a) (y : 'a) : 'a =
  let exception Alt of 'a list
  in (if true then raise Alt (y :: nil) else x) handle Alt v => hd v end
val it = pick 1 2
"""

BASES = {"fig8": FIG8, "exn": EXN, "ref": REF, "polyexn": POLYEXN}


@pytest.fixture(scope="module")
def terms():
    return {
        key: compile_program(src, flags=CompilerFlags(), cache=False).term
        for key, src in BASES.items()
    }


# ---------------------------------------------------------------------------
# The mutants
# ---------------------------------------------------------------------------


def _mut_lam_latent_drop(term):
    """Drop every region from a lambda's arrow effect: the latent effect
    no longer admits the body's allocations."""

    def make(n):
        arrow = n.mu.tau.arrow
        tau = dataclasses.replace(
            n.mu.tau, arrow=ArrowEffect(arrow.handle, EMPTY_EFFECT)
        )
        return dataclasses.replace(n, mu=dataclasses.replace(n.mu, tau=tau))

    return replace_first(
        term,
        lambda n: isinstance(n, T.Lam) and bool(n.mu.tau.arrow.latent),
        make,
    )


def _mut_lam_place(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.Lam),
        lambda n: dataclasses.replace(n, rho=_rbad(1)),
    )


def _mut_lam_cod_retype(term):
    def make(n):
        tau = dataclasses.replace(n.mu.tau, cod=MU_INT)
        return dataclasses.replace(n, mu=dataclasses.replace(n.mu, tau=tau))

    return replace_first(
        term,
        lambda n: isinstance(n, T.Lam) and n.mu.tau.cod != MU_INT,
        make,
    )


def _mut_fun_place(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.FunDef),
        lambda n: dataclasses.replace(n, rho=_rbad(2)),
    )


def _mut_fun_params_swap(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.FunDef) and len(n.rparams) >= 2,
        lambda n: dataclasses.replace(n, rparams=tuple(reversed(n.rparams))),
    )


def _mut_fun_latent_drop(term):
    def make(n):
        sigma = n.pi.scheme
        body = dataclasses.replace(
            sigma.body, arrow=ArrowEffect(sigma.body.arrow.handle, EMPTY_EFFECT)
        )
        return dataclasses.replace(
            n, pi=PiScheme(dataclasses.replace(sigma, body=body), n.pi.rho)
        )

    return replace_first(
        term,
        lambda n: isinstance(n, T.FunDef)
        and isinstance(n.pi.scheme.body, TauArrow)
        and bool(n.pi.scheme.body.arrow.latent),
        make,
    )


def _mut_delta_strip(term):
    """Strip the spurious Delta binding (Section 4): the tracked type
    variable becomes a plain quantified variable, so the closure capture
    inside the function is no longer covered by any arrow effect."""

    def make(n):
        sigma = n.pi.scheme
        stripped = dataclasses.replace(
            sigma, tvars=sigma.tvars + tuple(sigma.delta), delta=EMPTY_CTX
        )
        return dataclasses.replace(n, pi=PiScheme(stripped, n.pi.rho))

    return replace_first(
        term,
        lambda n: isinstance(n, T.FunDef) and len(n.pi.scheme.delta) > 0,
        make,
    )


def _mut_coverage_retype(term):
    """Retype an instantiation without coverage: the type substituted for
    a Delta-tracked variable mentions a region its arrow effect does not
    cover — the exact hole a dangling pointer escapes through."""
    delta_var = next(iter(_find_fun(term, "o").pi.scheme.delta))

    def make(n):
        ty = {**n.inst.ty, delta_var: MuBoxed(TAU_STRING, _rbad(3))}
        return dataclasses.replace(
            n, inst=Subst(rgn=dict(n.inst.rgn), eff=dict(n.inst.eff), ty=ty)
        )

    return replace_first(
        term,
        lambda n: isinstance(n, T.RApp) and delta_var in n.inst.ty,
        make,
    )


def _mut_rapp_args_swap(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.RApp) and len(n.rargs) >= 1,
        lambda n: dataclasses.replace(n, rargs=(_rbad(4),) + n.rargs[1:]),
    )


def _mut_rapp_domain_drop(term):
    def make(n):
        rgn = {k: v for i, (k, v) in enumerate(n.inst.rgn.items()) if i > 0}
        return dataclasses.replace(
            n, inst=Subst(rgn=rgn, eff=dict(n.inst.eff), ty=dict(n.inst.ty))
        )

    return replace_first(
        term,
        lambda n: isinstance(n, T.RApp) and len(n.inst.rgn) >= 1,
        make,
    )


def _mut_unbound_var(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.Var) and n.name == "work",
        lambda n: T.Var("missing_variable"),
    )


def _mut_letregion_global(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.IntLit),
        lambda n: T.Letregion((RHO_TOP,), n),
    )


def _mut_letregion_widen(term):
    """Widen a letregion over an allocation whose value the context still
    uses: the bound region escapes through the result type."""
    return replace_first(
        term,
        lambda n: isinstance(n, T.StringLit) and not n.rho.top,
        lambda n: T.Letregion((n.rho,), n),
    )


def _mut_select_index(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.Select),
        lambda n: dataclasses.replace(n, index=3),
    )


def _mut_nil_retype(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.NilLit),
        lambda n: dataclasses.replace(n, mu=MU_INT),
    )


def _mut_cons_place(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.Cons),
        lambda n: dataclasses.replace(n, rho=_rbad(5)),
    )


def _mut_app_swap(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.App) and isinstance(n.arg, T.IntLit),
        lambda n: T.App(n.arg, n.fn),
    )


def _mut_if_cond_retype(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.If),
        lambda n: dataclasses.replace(n, cond=T.IntLit(7)),
    )


def _mut_exn_local_region(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.Con),
        lambda n: dataclasses.replace(n, rho=_rbad(6)),
    )


def _mut_assign_retype(term):
    return replace_first(
        term,
        lambda n: isinstance(n, T.Assign),
        lambda n: dataclasses.replace(n, value=T.BoolLit(True)),
    )


def _mut_exn_tyvar_strip(term):
    """Drop the exception type variable from the spurious set (Section
    4.4): the payload of ``Alt`` now mentions a plain quantified variable
    with no pinned arrow effect, so a value smuggled through a raise is
    invisible to the GC-safety analysis."""

    def make(n):
        sigma = n.pi.scheme
        stripped = dataclasses.replace(
            sigma, tvars=sigma.tvars + tuple(sigma.delta), delta=EMPTY_CTX
        )
        return dataclasses.replace(n, pi=PiScheme(stripped, n.pi.rho))

    return replace_first(
        term,
        lambda n: isinstance(n, T.FunDef)
        and n.fname == "pick"
        and len(n.pi.scheme.delta) > 0,
        make,
    )


def _contains_handle(t: T.Term) -> bool:
    if isinstance(t, T.Handle):
        return True
    return any(_contains_handle(c) for c in T.iter_children(t))


def _mut_handler_latent_widen(term):
    """Widen the handler-enclosing lambda's latent effect onto a forged
    region: the annotation claims the handler may touch a region no
    binder introduces, diverging from the scheme the enclosing fun
    publishes."""

    def make(n):
        arrow = n.mu.tau.arrow
        tau = dataclasses.replace(
            n.mu.tau, arrow=ArrowEffect(arrow.handle, arrow.latent | {_rbad(7)})
        )
        return dataclasses.replace(n, mu=dataclasses.replace(n.mu, tau=tau))

    return replace_first(
        term,
        lambda n: isinstance(n, T.Lam) and _contains_handle(n.body),
        make,
    )


def _mut_exn_payload_localize(term):
    """Move the declared payload type of a parameterized exception into a
    non-global region — the raised value could then outlive its region
    (the exact escape Section 4.4's globalization rules out)."""

    return replace_first(
        term,
        lambda n: isinstance(n, T.LetExn) and n.payload is not None,
        lambda n: dataclasses.replace(
            n, payload=dataclasses.replace(n.payload, rho=_rbad(8))
        ),
    )


#: mutant name -> (base program, surgery).
MUTANTS = {
    "lam-latent-drop": ("fig8", _mut_lam_latent_drop),
    "lam-place": ("fig8", _mut_lam_place),
    "lam-cod-retype": ("fig8", _mut_lam_cod_retype),
    "fun-place": ("fig8", _mut_fun_place),
    "fun-params-swap": ("fig8", _mut_fun_params_swap),
    "fun-latent-drop": ("fig8", _mut_fun_latent_drop),
    "delta-strip": ("fig8", _mut_delta_strip),
    "coverage-retype": ("fig8", _mut_coverage_retype),
    "rapp-args-swap": ("fig8", _mut_rapp_args_swap),
    "rapp-domain-drop": ("fig8", _mut_rapp_domain_drop),
    "unbound-var": ("fig8", _mut_unbound_var),
    "letregion-global": ("fig8", _mut_letregion_global),
    "letregion-widen": ("fig8", _mut_letregion_widen),
    "select-index": ("fig8", _mut_select_index),
    "nil-retype": ("fig8", _mut_nil_retype),
    "cons-place": ("fig8", _mut_cons_place),
    "app-swap": ("fig8", _mut_app_swap),
    "if-cond-retype": ("fig8", _mut_if_cond_retype),
    "exn-local-region": ("exn", _mut_exn_local_region),
    "assign-retype": ("ref", _mut_assign_retype),
    "exn-tyvar-strip": ("polyexn", _mut_exn_tyvar_strip),
    "handler-latent-widen": ("polyexn", _mut_handler_latent_widen),
    "exn-payload-localize": ("polyexn", _mut_exn_payload_localize),
}

#: The pinned kill matrix: the exact (deduplicated, first-occurrence
#: ordered) rule tuple each mutant must violate.  The leading rule is
#: the mutated judgment itself; trailing rules are honest knock-on
#: effects of the corruption (e.g. emptying a latent effect also breaks
#: the enclosing body-effect check).
KILL_MATRIX = {
    "lam-latent-drop": ("TeLam-latent", "TeLam-G", "TeFun-cod"),
    "lam-place": ("TeLam-place", "TeFun-latent"),
    "lam-cod-retype": ("TeLam-cod", "TeLam-G", "TeFun-cod"),
    "fun-place": ("TeFun-place",),
    "fun-params-swap": ("TeFun-params",),
    "fun-latent-drop": ("TeFun-latent",),
    "delta-strip": ("TeLam-G",),
    "coverage-retype": ("TeRapp-coverage", "TeApp-arg"),
    "rapp-args-swap": ("TeRapp-args",),
    "rapp-domain-drop": ("TeRapp-domain",),
    "unbound-var": ("unbound-var",),
    "letregion-global": ("TeReg-global",),
    "letregion-widen": ("TeReg-escape",),
    "select-index": ("TeSel-index",),
    "nil-retype": ("wf-annotation",),
    "cons-place": ("TeCons-place", "TeFun-latent"),
    "app-swap": ("TeApp-fun",),
    "if-cond-retype": ("TeIf-cond",),
    "exn-local-region": ("exn-global",),
    "assign-retype": ("TeRef-assign",),
    "exn-tyvar-strip": ("exn-tyvar",),
    "handler-latent-widen": ("TeFun-cod",),
    "exn-payload-localize": ("exn-global", "TeExn-payload", "TeLam-latent"),
}


# ---------------------------------------------------------------------------
# Tests
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("key", sorted(BASES))
def test_base_program_verifies_clean(terms, key):
    report = verify_term(terms[key])
    assert report.ok, report.summary()


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_mutant_killed_with_expected_rules(terms, name):
    base_key, surgery = MUTANTS[name]
    mutant = surgery(terms[base_key])
    assert mutant != terms[base_key], f"{name}: surgery was the identity"
    report = verify_term(mutant)
    assert not report.ok, f"{name} survived the verifier"
    assert report.rules == KILL_MATRIX[name], (
        f"{name}: violated {report.rules}, expected {KILL_MATRIX[name]}\n"
        + report.summary()
    )
    # Every violation is localized: a rule name plus a non-degenerate
    # term path or an explanatory message.
    for violation in report.violations:
        assert violation.rule
        assert violation.message


def test_kill_matrix_is_total_and_exact(terms):
    """The matrix covers every mutant, every mutant is killed, and the
    observed matrix equals the pinned one entry-for-entry."""
    assert set(MUTANTS) == set(KILL_MATRIX)
    observed = {}
    for name, (base_key, surgery) in MUTANTS.items():
        observed[name] = verify_term(surgery(terms[base_key])).rules
    assert observed == KILL_MATRIX


def test_matrix_spans_the_judgment_families():
    """The suite exercises every family of judgments the verifier
    re-derives: lambda/fun typing, the G relation, scheme instantiation
    and coverage, letregion scoping, data structure placement, and the
    exception side conditions."""
    killed = {rule for rules in KILL_MATRIX.values() for rule in rules}
    for family in (
        "TeLam-latent",
        "TeLam-G",
        "TeFun-latent",
        "TeRapp-coverage",
        "TeRapp-domain",
        "TeReg-escape",
        "TeReg-global",
        "TeCons-place",
        "exn-global",
        "exn-tyvar",
        "TeRef-assign",
    ):
        assert family in killed, f"no mutant kills {family}"


#: Checker-side kill matrix: the Figure 4 checker raises on the first
#: violation, so its matrix pins one distinguishing message fragment per
#: mutant (the checker has no multi-violation report to compare whole).
CHECKER_KILL_MATRIX = {
    "lam-place": "lambda allocated at rbad1 but typed at",
    "fun-place": "fun allocated at a region different from its scheme place",
    "cons-place": ":: allocates at rbad5 but the spine lives in",
    "letregion-widen": "escapes into the context or the result type",
    "exn-tyvar-strip": "untracked exception type variable",
    "handler-latent-widen": "scheme says",
    "exn-payload-localize": "payload type mentions non-global regions {rbad8}",
}


def test_mutants_also_fail_the_dependent_checker(terms):
    """Cross-check: the annotation mutants that corrupt region safety
    (not mere shape errors) are rejected by the Figure 4 checker too —
    the two oracles agree on the mutants, not only on sound programs.
    The match is exact: each mutant must trip the *mutated* judgment,
    not merely raise somewhere."""
    from repro.core.errors import RegionTypeError
    from repro.core.typecheck import typecheck

    for name, fragment in CHECKER_KILL_MATRIX.items():
        base_key, surgery = MUTANTS[name]
        with pytest.raises(RegionTypeError, match=".*") as exc:
            typecheck(surgery(terms[base_key]))
        assert fragment in str(exc.value), (
            f"{name}: checker said {exc.value}, expected a message "
            f"containing {fragment!r}"
        )


def test_exception_mutants_kill_agreement(terms):
    """Zero kill-matrix disagreement on the exception side: every
    exception mutant is killed by BOTH oracles (the acceptance criterion
    of the exception-type-variable work)."""
    from repro.core.errors import RegionTypeError
    from repro.core.typecheck import typecheck

    for name in ("exn-tyvar-strip", "handler-latent-widen",
                 "exn-payload-localize", "exn-local-region"):
        base_key, surgery = MUTANTS[name]
        mutant = surgery(terms[base_key])
        assert not verify_term(mutant).ok, f"{name} survived the verifier"
        if name in CHECKER_KILL_MATRIX:
            with pytest.raises(RegionTypeError):
                typecheck(mutant)

"""The repro-bench export: document construction and schema validation."""

import copy
import json

import pytest

from repro.bench.export import (
    ALL_STRATEGIES,
    SCHEMA,
    CELL_FIELDS,
    build_document,
    main,
    validate_document,
)
from repro.bench.registry import BENCHMARKS


@pytest.fixture(scope="module")
def doc():
    # fib is the fastest benchmark; two strategies keep the test quick
    # while still exercising the per-strategy layout.
    return build_document(["fib"], strategies=("rg", "r"), repeat=1)


class TestBuildDocument:
    def test_envelope(self, doc):
        assert doc["schema"] == SCHEMA
        assert doc["suite"] == "figure9"
        assert doc["repeat"] == 1
        assert doc["strategies"] == ["rg", "r"]
        assert list(doc["programs"]) == ["fib"]

    def test_cells_complete_and_correct(self, doc):
        row = doc["programs"]["fib"]
        assert row["expected"] == BENCHMARKS["fib"].expected
        assert row["loc"] == 2
        for strategy in ("rg", "r"):
            cell = row["strategies"][strategy]
            assert CELL_FIELDS <= set(cell)
            assert cell["ok"] is True
            assert cell["value"] == "2584"
            assert cell["steps"] > 0
            assert cell["seconds"] > 0
            assert cell["peak_words"] > 0

    def test_deterministic_columns_agree_across_strategies(self, doc):
        # fib is stack-only: rg and r behave identically.
        rg = doc["programs"]["fib"]["strategies"]["rg"]
        r = doc["programs"]["fib"]["strategies"]["r"]
        for key in ("steps", "peak_words", "allocations", "allocated_words"):
            assert rg[key] == r[key]

    def test_document_is_json_serializable(self, doc):
        assert json.loads(json.dumps(doc)) == doc

    def test_validates(self, doc):
        assert validate_document(doc) == []
        assert validate_document(doc, require_programs=["fib"]) == []


class TestValidateDocument:
    def test_rejects_non_object(self):
        assert validate_document([1, 2]) != []

    def test_rejects_wrong_schema(self, doc):
        bad = copy.deepcopy(doc)
        bad["schema"] = "repro-bench/v0"
        assert any("schema" in e for e in validate_document(bad))

    def test_rejects_missing_cell_field(self, doc):
        bad = copy.deepcopy(doc)
        del bad["programs"]["fib"]["strategies"]["rg"]["steps"]
        assert any("steps" in e for e in validate_document(bad))

    def test_rejects_missing_strategy(self, doc):
        bad = copy.deepcopy(doc)
        del bad["programs"]["fib"]["strategies"]["r"]
        assert any("missing strategy 'r'" in e for e in validate_document(bad))

    def test_coverage_requirements(self, doc):
        errors = validate_document(
            doc,
            require_programs=sorted(BENCHMARKS),
            require_strategies=ALL_STRATEGIES,
        )
        assert any("missing programs" in e for e in errors)
        assert any("missing strategies" in e for e in errors)

    def test_unknown_strategy_flagged(self, doc):
        bad = copy.deepcopy(doc)
        bad["strategies"] = ["rg", "mlton"]
        assert any("unknown strategies" in e for e in validate_document(bad))


class TestMainCli:
    def test_write_and_validate(self, tmp_path, doc):
        out = tmp_path / "bench.json"
        out.write_text(json.dumps(doc))
        assert main(["--validate", str(out)]) == 0

    def test_validate_rejects_corrupt(self, tmp_path):
        out = tmp_path / "bench.json"
        out.write_text("{\"schema\": \"nope\"}")
        assert main(["--validate", str(out)]) == 1

    def test_validate_missing_file(self, tmp_path):
        assert main(["--validate", str(tmp_path / "absent.json")]) == 1

    def test_unknown_program_exit_2(self):
        assert main(["--programs", "no_such_bench"]) == 2

    def test_unknown_strategy_exit_2(self):
        assert main(["--programs", "fib", "--strategies", "mlton"]) == 2

    def test_end_to_end_single_program(self, tmp_path):
        out = tmp_path / "bench.json"
        assert (
            main(
                [
                    "--programs",
                    "fib",
                    "--strategies",
                    "rg,r",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        loaded = json.loads(out.read_text())
        assert validate_document(loaded, require_programs=["fib"]) == []


class TestParallelJobs:
    def test_jobs_document_matches_sequential(self):
        # --jobs now fans out through repro.server.pool: the parallel
        # document must be identical to the sequential one in every
        # deterministic field (wall-clock fields excepted).
        names = ["fib", "ratio", "tak"]
        sequential = build_document(names, strategies=("rg",), repeat=1)
        parallel = build_document(names, strategies=("rg",), repeat=1, jobs=3)

        def strip_timing(document):
            clean = copy.deepcopy(document)
            clean.pop("generated_at", None)
            for row in clean["programs"].values():
                for cell in row["strategies"].values():
                    cell.pop("seconds", None)
                    cell.pop("compile_seconds", None)
            return clean

        assert strip_timing(parallel) == strip_timing(sequential)
        assert validate_document(parallel) == []

    def test_jobs_logs_progress(self):
        lines = []
        build_document(["fib", "ratio"], strategies=("rg",), repeat=1,
                       jobs=2, log=lines.append)
        assert sorted(lines) == ["done fib", "done ratio"]

"""Benchmark harness units: the loc counter and measurement cells."""

from repro.bench.harness import loc_of
from repro.bench.registry import BENCHMARKS, benchmark_source


class TestLocOf:
    def test_blank_and_code_lines(self):
        assert loc_of("") == 0
        assert loc_of("\n\n  \n") == 0
        assert loc_of("val it = 1") == 1
        assert loc_of("val x = 1\nval it = x") == 2

    def test_single_line_comment(self):
        assert loc_of("(* comment *)\nval it = 1") == 1

    def test_multi_line_comment_body_not_counted(self):
        # The old counter only skipped single-line (* ... *) lines, so a
        # comment *body* spanning lines was counted as code.
        src = "(* a header comment\n   spanning three\n   lines *)\nval it = 1"
        assert loc_of(src) == 1

    def test_code_before_open_and_after_close(self):
        assert loc_of("val x = 1 (* trailing\ncomment *)") == 1
        assert loc_of("(* open\nstill comment *) val z = 3") == 1

    def test_nested_comments(self):
        src = "(* outer (* inner *)\n still outer *)\nval it = 1"
        assert loc_of(src) == 1

    def test_inline_comment_line_is_code(self):
        assert loc_of("val x = (* why *) 1") == 1

    def test_comment_opener_inside_string_literal(self):
        assert loc_of('val s = "(* not a comment *)"') == 1
        assert loc_of('val s = "a\\"(*b"') == 1

    def test_every_benchmark_loc_positive_and_not_inflated(self):
        for name in BENCHMARKS:
            source = benchmark_source(name)
            loc = loc_of(source)
            assert 0 < loc <= len(source.splitlines())

    def test_fib_header_comment_excluded(self):
        # fib.mml opens with a two-line comment block; only the fun and
        # the val lines are code.
        assert loc_of(benchmark_source("fib")) == 2

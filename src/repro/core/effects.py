"""Regions, effects, and arrow effects (paper Section 3.1 and 3.5).

The vocabulary of the region type system:

* *region variables* ``rho`` (:class:`RegionVar`),
* *effect variables* ``eps`` (:class:`EffectVar`),
* *atomic effects* ``eta`` — either of the above,
* *effects* ``phi`` — finite sets of atomic effects (plain ``frozenset``),
* *arrow effects* ``eps.phi`` (:class:`ArrowEffect`) — a pair of an effect
  variable (the *handle*) and an effect (its *latent* effect).

Function types are annotated with arrow effects rather than bare effects so
that effects can *grow* under substitution and so that unification-based
region inference has unifiers (Section 3.5).

An :class:`EffectBasis` records the denotation of every effect variable in
a derivation and enforces the two consistency conditions from Section 3.5:
the basis is *functional* (``eps = eps'`` implies ``phi = phi'``) and
*transitive* (``eps' in phi`` implies ``phi' subseteq phi``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

__all__ = [
    "RegionVar",
    "EffectVar",
    "Atom",
    "Effect",
    "ArrowEffect",
    "EMPTY_EFFECT",
    "RHO_TOP",
    "EPS_TOP",
    "ARROW_TOP",
    "effect",
    "is_region",
    "is_effectvar",
    "regions_of",
    "effectvars_of",
    "VarSupply",
    "EffectBasis",
    "show_effect",
]


@dataclass(frozen=True, slots=True)
class RegionVar:
    """A region variable ``rho``.

    Identity is the numeric ``ident``; ``name`` is for display only.
    ``top`` marks global (top-level) regions, which are never deallocated
    and therefore can never be the target of a dangling pointer.
    """

    ident: int
    name: str = field(default="", compare=False)
    top: bool = field(default=False, compare=False)

    def __hash__(self) -> int:
        # Equality is by ``ident`` alone, so the ident *is* the hash.
        # Region environments are RegionVar-keyed dicts on the
        # interpreter's hottest paths; skipping the generated tuple hash
        # is measurable there.
        return self.ident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.display()

    def display(self) -> str:
        if self.name:
            return self.name
        return f"r{self.ident}"


@dataclass(frozen=True, slots=True)
class EffectVar:
    """An effect variable ``eps``.  Identity is the numeric ``ident``."""

    ident: int
    name: str = field(default="", compare=False)
    top: bool = field(default=False, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.display()

    def display(self) -> str:
        if self.name:
            return self.name
        return f"e{self.ident}"


Atom = Union[RegionVar, EffectVar]
Effect = frozenset  # an effect ``phi`` is a frozenset of Atom

EMPTY_EFFECT: Effect = frozenset()

#: The distinguished global region: top-level values (string literals that
#: escape, exception values, ...) live here.  It is pre-allocated and never
#: deallocated by the runtime.
RHO_TOP = RegionVar(0, "rtop", top=True)

#: The distinguished global effect variable used by the trivial region
#: inference algorithm of Section 4.1 and for exception type variables
#: (Section 4.4).
EPS_TOP = EffectVar(0, "etop", top=True)


def effect(*atoms: Atom) -> Effect:
    """Build an effect from atomic effects."""
    return frozenset(atoms)


def is_region(atom: Atom) -> bool:
    return isinstance(atom, RegionVar)


def is_effectvar(atom: Atom) -> bool:
    return isinstance(atom, EffectVar)


def regions_of(phi: Iterable[Atom]) -> frozenset:
    """The region variables of an effect."""
    return frozenset(a for a in phi if isinstance(a, RegionVar))


def effectvars_of(phi: Iterable[Atom]) -> frozenset:
    """The effect variables of an effect."""
    return frozenset(a for a in phi if isinstance(a, EffectVar))


@dataclass(frozen=True, slots=True)
class ArrowEffect:
    """An arrow effect ``eps.phi``: an effect-variable handle plus its
    latent effect."""

    handle: EffectVar
    latent: Effect = EMPTY_EFFECT

    def __post_init__(self) -> None:
        if not isinstance(self.handle, EffectVar):
            raise TypeError(f"arrow-effect handle must be an EffectVar, got {self.handle!r}")
        if not isinstance(self.latent, frozenset):
            object.__setattr__(self, "latent", frozenset(self.latent))

    def frev(self) -> Effect:
        """``frev(eps.phi) = {eps} | phi`` — all free region and effect
        variables of the arrow effect."""
        return self.latent | {self.handle}

    def widen(self, extra: Iterable[Atom]) -> "ArrowEffect":
        """The arrow effect with ``extra`` atoms added to the latent set."""
        return ArrowEffect(self.handle, self.latent | frozenset(extra))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.display()

    def display(self) -> str:
        return f"{self.handle.display()}.{show_effect(self.latent)}"


#: The arrow effect assigned by the trivial inference algorithm.
ARROW_TOP = ArrowEffect(EPS_TOP, effect(RHO_TOP))


def show_effect(phi: Iterable[Atom]) -> str:
    """Render an effect as ``{r1,e2,...}`` deterministically."""
    atoms = sorted(phi, key=lambda a: (isinstance(a, EffectVar), a.ident))
    inner = ",".join(a.display() for a in atoms)
    return "{" + inner + "}"


class VarSupply:
    """A supply of fresh region, effect, and type variable identifiers.

    Identifier 0 is reserved for the global ``RHO_TOP`` / ``EPS_TOP``
    variables, so supplies start at 1 (or at a caller-provided floor, which
    lets a pass continue numbering where a previous pass stopped).
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(max(1, start))

    def next_ident(self) -> int:
        return next(self._counter)

    def fresh_region(self, name: str = "") -> RegionVar:
        ident = self.next_ident()
        return RegionVar(ident, name or f"r{ident}")

    def fresh_effectvar(self, name: str = "") -> EffectVar:
        ident = self.next_ident()
        return EffectVar(ident, name or f"e{ident}")

    def fresh_arrow(self, latent: Iterable[Atom] = ()) -> ArrowEffect:
        return ArrowEffect(self.fresh_effectvar(), frozenset(latent))


class EffectBasis:
    """The denotations of effect variables appearing in a derivation.

    Section 3.5: rather than threading an external effect basis through the
    typing rules, the paper annotates arrows with full arrow effects.  The
    basis is still a useful *validation* device: collecting every arrow
    effect of a program into a basis and checking functionality and
    transitivity catches inconsistent annotations early.
    """

    def __init__(self) -> None:
        self._map: dict[EffectVar, Effect] = {}

    def __contains__(self, eps: EffectVar) -> bool:
        return eps in self._map

    def __getitem__(self, eps: EffectVar) -> Effect:
        return self._map[eps]

    def __iter__(self) -> Iterator[EffectVar]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def record(self, arrow: ArrowEffect) -> None:
        """Record ``arrow`` in the basis.

        Raises ``ValueError`` if the basis would stop being functional
        (same handle, different latent effect).
        """
        existing = self._map.get(arrow.handle)
        if existing is None:
            self._map[arrow.handle] = arrow.latent
        elif existing != arrow.latent:
            raise ValueError(
                f"effect basis not functional at {arrow.handle.display()}: "
                f"{show_effect(existing)} vs {show_effect(arrow.latent)}"
            )

    def check_transitive(self) -> list[str]:
        """Return a list of transitivity violations (empty when consistent).

        Transitivity: if ``eps' in phi`` and both are in the basis then
        ``phi' subseteq phi``.
        """
        problems: list[str] = []
        for eps, phi in self._map.items():
            for atom in phi:
                if isinstance(atom, EffectVar) and atom in self._map:
                    inner = self._map[atom]
                    if not inner <= phi:
                        missing = inner - phi
                        problems.append(
                            f"{eps.display()} contains {atom.display()} but misses "
                            f"{show_effect(missing)} from its denotation"
                        )
        return problems

    def closure(self, phi: Effect) -> Effect:
        """The transitive closure of ``phi`` through the basis: add the
        denotation of every effect variable reachable from ``phi``."""
        seen: set = set()
        work = list(phi)
        out: set = set(phi)
        while work:
            atom = work.pop()
            if isinstance(atom, EffectVar) and atom not in seen:
                seen.add(atom)
                for inner in self._map.get(atom, EMPTY_EFFECT):
                    if inner not in out:
                        out.add(inner)
                        work.append(inner)
        return frozenset(out)

"""Value containment, context containment, and the GC-safety relation
(paper Section 3.7, Figures 3 and 7).

*Value containment* ``phi |= v`` / ``phi |=v e`` says every value embedded
in a term lives in a region in ``phi`` (and that regions bound by inner
``letregion``/``fun`` binders are suitably fresh).  *Context containment*
``phi |=c e`` extends this through an evaluation context, adding the
regions bound by the ``letregion``s that surround the hole — Theorem 2
states it is preserved by evaluation, which is what makes interleaving a
reference-tracing collector with evaluation safe.

The *GC-safety relation*

.. code-block:: text

    G(Omega, Gamma, e, X, pi) =  frv(pi) |=v e
                              and forall y in fpv(e)\\X.
                                    Omega |- Gamma(y) : frev(pi)

is the side condition on the typing rules for functions ([TeLam], [TeFun])
that rules dangling pointers out: every free variable of a function body
must have a type contained in the free region/effect variables of the
function's own type, so that whatever the closure keeps alive is visible
in the function's type (and hence kept alive by region inference).
"""

from __future__ import annotations

from typing import Mapping

from .containment import contained_pi
from .effects import Effect, RegionVar
from .rtypes import Pi, PiScheme, TyCtx, frev, frv, ftv
from . import terms as T

__all__ = [
    "value_contained",
    "expr_contained",
    "context_contained",
    "gc_safe",
    "gc_safety_failures",
]


def value_contained(phi: Effect, v: T.Value) -> bool:
    """``phi |= v`` (Figure 3, values)."""
    if isinstance(v, (T.VInt, T.VBool, T.VUnit, T.VNil)):
        return True
    if isinstance(v, (T.VStr, T.VReal)):
        return v.rho in phi
    if isinstance(v, (T.VPair, T.VCons)):
        return (
            v.rho in phi
            and value_contained(phi, v.fst if isinstance(v, T.VPair) else v.head)
            and value_contained(phi, v.snd if isinstance(v, T.VPair) else v.tail)
        )
    if isinstance(v, T.VClos):
        return v.rho in phi and expr_contained(phi, v.body)
    if isinstance(v, T.VFunClos):
        return (
            v.rho in phi
            and expr_contained(phi, v.body)
            and not (set(v.rparams) & phi)
        )
    raise TypeError(f"value_contained: {v!r}")


def expr_contained(phi: Effect, e: T.Term) -> bool:
    """``phi |=v e`` (Figure 3, expressions)."""
    if isinstance(e, T.Value):
        return value_contained(phi, e)
    if isinstance(e, T.Letregion):
        return not (set(e.rhos) & phi) and expr_contained(phi, e.body)
    if isinstance(e, T.FunDef):
        return not (set(e.rparams) & phi) and expr_contained(phi, e.body)
    return all(expr_contained(phi, c) for c in T.iter_children(e))


def context_contained(phi: Effect, e: T.Term) -> bool:
    """``phi |=c e`` (Figure 7).

    Containment through the spine of the term viewed as an evaluation
    context: descending through a ``letregion rho`` *adds* ``rho`` to the
    containing set (the region is on the region stack), while sub-terms off
    the evaluation spine are checked with plain value containment.
    """
    if isinstance(e, T.Var):
        return True
    if isinstance(e, T.Value):
        return value_contained(phi, e)
    if isinstance(e, T.Letregion):
        if set(e.rhos) & phi:
            return False
        return context_contained(phi | set(e.rhos), e.body)
    if isinstance(e, T.Let):
        return context_contained(phi, e.rhs) and expr_contained(phi, e.body)
    if isinstance(e, T.App):
        if isinstance(e.fn, T.Value):
            return value_contained(phi, e.fn) and context_contained(phi, e.arg)
        return context_contained(phi, e.fn) and expr_contained(phi, e.arg)
    if isinstance(e, T.RApp):
        return context_contained(phi, e.fn)
    if isinstance(e, T.Pair):
        if isinstance(e.fst, T.Value):
            return value_contained(phi, e.fst) and context_contained(phi, e.snd)
        return context_contained(phi, e.fst) and expr_contained(phi, e.snd)
    if isinstance(e, T.Cons):
        if isinstance(e.head, T.Value):
            return value_contained(phi, e.head) and context_contained(phi, e.tail)
        return context_contained(phi, e.head) and expr_contained(phi, e.tail)
    if isinstance(e, T.Select):
        return context_contained(phi, e.pair)
    if isinstance(e, T.If):
        return (
            context_contained(phi, e.cond)
            and expr_contained(phi, e.then)
            and expr_contained(phi, e.els)
        )
    if isinstance(e, T.Prim):
        # left-to-right evaluation: values before the first non-value are
        # on the stack; the first non-value is the active sub-context.
        active_seen = False
        for a in e.args:
            if not active_seen and isinstance(a, T.Value):
                if not value_contained(phi, a):
                    return False
            elif not active_seen:
                active_seen = True
                if not context_contained(phi, a):
                    return False
            else:
                if not expr_contained(phi, a):
                    return False
        return True
    # Remaining extension forms: treat the whole node as off-spine.
    return expr_contained(phi, e)


def gc_safe(
    omega: TyCtx,
    gamma: Mapping[str, Pi],
    body: T.Term,
    params: frozenset,
    pi: Pi,
) -> bool:
    """The relation ``G(Omega, Gamma, e, X, pi)`` — equation (4)."""
    return not gc_safety_failures(omega, gamma, body, params, pi)


def gc_safety_failures(
    omega: TyCtx,
    gamma: Mapping[str, Pi],
    body: T.Term,
    params: frozenset,
    pi: Pi,
) -> list[str]:
    """Diagnose violations of ``G``; empty list means GC-safe.

    Used by the region type checker to produce actionable error messages
    for the unsound ``rg-`` output.
    """
    problems: list[str] = []
    pi_frv = frv(pi)
    pi_frev = frev(pi)
    # Type variables visible in the function's own type need no tracking:
    # their instances remain visible in instantiated types (Section 4).
    lenient = ftv(pi)
    if not expr_contained(pi_frv, body):
        problems.append(
            "a value embedded in the function body lives outside the regions "
            "of the function's type"
        )
    for y in sorted(T.fpv(body) - params):
        pi_y = gamma.get(y)
        if pi_y is None:
            problems.append(f"free variable {y} unbound in the environment")
            continue
        if not contained_pi(omega, pi_y, pi_frev, lenient):
            problems.append(
                f"free variable {y} : {_show_pi(pi_y)} is not contained in "
                f"frev of the function type (a region or untracked spurious "
                f"type variable reachable from the closure is invisible in "
                f"the function's type)"
            )
    return problems


def _show_pi(pi: Pi) -> str:
    from .rtypes import show_pi

    return show_pi(pi)

"""Substitutions (paper Section 3.3).

A substitution is a triple ``(St, Sr, Se)`` of

* a *type substitution* ``St`` : type variables -> type-and-places,
* a *region substitution* ``Sr`` : region variables -> region variables,
* an *effect substitution* ``Se`` : effect variables -> arrow effects,

applied simultaneously.  The two defining equations from the paper:

.. code-block:: text

    S(phi)     = { Sr(rho) | rho in phi }
                 union { eta | exists eps. eps in phi and eta in frev(Se(eps)) }
    S(eps.phi) = eps'.(phi' union S(phi))      where Se(eps) = eps'.phi'

Substitution on effects is *monotone* (Proposition 3) and satisfies the
arrow-effect-substitution interchange property
``frev(S(eps.phi)) = S({eps} union phi)``; both are exercised by the
property-based tests.

Scheme application assumes bound variables have been renamed apart from the
substitution's domain and range (capture avoidance); :func:`rename_scheme`
produces such a renaming with fresh variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .effects import (
    ArrowEffect,
    Effect,
    EffectVar,
    EMPTY_EFFECT,
    RegionVar,
    VarSupply,
)
from .rtypes import (
    Mu,
    MuBase,
    MuBoxed,
    MuVar,
    PiScheme,
    Pi,
    Scheme,
    Tau,
    TauArray,
    TauArrow,
    TauData,
    TauExn,
    TauList,
    TauPair,
    TauReal,
    TauRef,
    TauString,
    TyCtx,
    TyVar,
    frev,
)

__all__ = ["Subst", "EMPTY_SUBST", "rename_scheme"]


@dataclass(frozen=True)
class Subst:
    """An immutable substitution triple ``(St, Sr, Se)``."""

    ty: Mapping[TyVar, Mu] = field(default_factory=dict)
    rgn: Mapping[RegionVar, RegionVar] = field(default_factory=dict)
    eff: Mapping[EffectVar, ArrowEffect] = field(default_factory=dict)

    # -- variables ---------------------------------------------------------

    def region(self, rho: RegionVar) -> RegionVar:
        return self.rgn.get(rho, rho)

    def arrow_of(self, eps: EffectVar) -> ArrowEffect:
        """``Se(eps)``, extended as the identity ``eps.{}`` off-domain."""
        return self.eff.get(eps, ArrowEffect(eps, EMPTY_EFFECT))

    def is_region_effect(self) -> bool:
        """True when ``dom(St)`` is empty (a region-effect substitution)."""
        return not self.ty

    def domain_atoms(self) -> frozenset:
        return frozenset(self.ty) | frozenset(self.rgn) | frozenset(self.eff)

    # -- effects -----------------------------------------------------------

    def effect(self, phi: Effect) -> Effect:
        """Apply the substitution to an effect (first paper equation)."""
        out: set = set()
        for atom in phi:
            if isinstance(atom, RegionVar):
                out.add(self.region(atom))
            else:
                out |= self.arrow_of(atom).frev()
        return frozenset(out)

    def arrow(self, ae: ArrowEffect) -> ArrowEffect:
        """Apply the substitution to an arrow effect (second equation)."""
        target = self.arrow_of(ae.handle)
        return ArrowEffect(target.handle, target.latent | self.effect(ae.latent))

    # -- types -------------------------------------------------------------

    def mu(self, m: Mu) -> Mu:
        if isinstance(m, MuVar):
            return self.ty.get(m.alpha, m)
        if isinstance(m, MuBase):
            return m
        if isinstance(m, MuBoxed):
            return MuBoxed(self.tau(m.tau), self.region(m.rho))
        raise TypeError(f"Subst.mu: {m!r}")

    def tau(self, t: Tau) -> Tau:
        if isinstance(t, TauPair):
            return TauPair(self.mu(t.fst), self.mu(t.snd))
        if isinstance(t, TauArrow):
            return TauArrow(self.mu(t.dom), self.arrow(t.arrow), self.mu(t.cod))
        if isinstance(t, (TauString, TauReal, TauExn)):
            return t
        if isinstance(t, TauList):
            return TauList(self.mu(t.elem))
        if isinstance(t, TauRef):
            return TauRef(self.mu(t.content))
        if isinstance(t, TauArray):
            return TauArray(self.mu(t.elem))
        if isinstance(t, TauData):
            return TauData(t.name, tuple(self.mu(a) for a in t.targs))
        raise TypeError(f"Subst.tau: {t!r}")

    # -- contexts and schemes ------------------------------------------------

    def ctx(self, delta: TyCtx) -> TyCtx:
        """Apply to a type-variable context.

        Defined only when ``dom(S) cap dom(Delta)`` is empty (the paper's
        side condition); violating it is a programming error here.
        """
        overlap = set(self.ty) & set(delta)
        if overlap:
            raise ValueError(f"substitution domain overlaps Delta: {overlap}")
        return TyCtx({alpha: self.arrow(ae) for alpha, ae in delta.items()})

    def scheme(self, sigma: Scheme) -> Scheme:
        """Apply to a scheme, assuming bound variables are disjoint from the
        substitution (rename first with :func:`rename_scheme` otherwise)."""
        clash = (
            (set(sigma.rvars) | set(sigma.evars)) & self.domain_atoms()
            or sigma.bound_tyvars() & set(self.ty)
        )
        if clash:
            raise ValueError(f"substitution captures bound variables: {clash}")
        return Scheme(sigma.rvars, sigma.evars, sigma.tvars,
                      self.ctx(sigma.delta), self.tau(sigma.body))

    def pi(self, p: Pi) -> Pi:
        if isinstance(p, PiScheme):
            return PiScheme(self.scheme(p.scheme), self.region(p.rho))
        return self.mu(p)

    # -- composition ---------------------------------------------------------

    def then(self, outer: "Subst") -> "Subst":
        """``outer compose self`` restricted to ``dom(self)``, extended with
        ``outer`` off that domain: the usual substitution composition."""
        ty = {a: outer.mu(m) for a, m in self.ty.items()}
        rgn = {r: outer.region(r2) for r, r2 in self.rgn.items()}
        eff = {e: outer.arrow(ae) for e, ae in self.eff.items()}
        for a, m in outer.ty.items():
            ty.setdefault(a, m)
        for r, r2 in outer.rgn.items():
            rgn.setdefault(r, r2)
        for e, ae in outer.eff.items():
            eff.setdefault(e, ae)
        return Subst(ty, rgn, eff)

    def restrict(self, atoms: frozenset) -> "Subst":
        """Restriction ``S | atoms`` (used by Propositions 6-7)."""
        return Subst(
            {a: m for a, m in self.ty.items() if a in atoms},
            {r: r2 for r, r2 in self.rgn.items() if r in atoms},
            {e: ae for e, ae in self.eff.items() if e in atoms},
        )

    def display(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for a, m in self.ty.items():
            parts.append(f"{a.display()}:={m!r}")
        for r, r2 in self.rgn.items():
            parts.append(f"{r.display()}:={r2.display()}")
        for e, ae in self.eff.items():
            parts.append(f"{e.display()}:={ae.display()}")
        return "[" + ", ".join(parts) + "]"


EMPTY_SUBST = Subst()


def rename_scheme(sigma: Scheme, supply: VarSupply) -> tuple[Scheme, Subst]:
    """Rename the bound variables of ``sigma`` to fresh ones.

    Returns the renamed scheme together with the renaming (a substitution
    from old bound variables to the fresh ones) — the renaming is what an
    instantiation then composes with.
    """
    rmap = {rv: supply.fresh_region() for rv in sigma.rvars}
    emap = {ev: supply.fresh_effectvar() for ev in sigma.evars}
    tmap = {alpha: TyVar(supply.next_ident()) for alpha in sigma.bound_tyvars()}

    ren = Subst(
        ty={a: MuVar(b) for a, b in tmap.items()},
        rgn=rmap,
        eff={e: ArrowEffect(e2, EMPTY_EFFECT) for e, e2 in emap.items()},
    )
    new_delta = TyCtx({tmap[a]: ren.arrow(ae) for a, ae in sigma.delta.items()})
    renamed = Scheme(
        tuple(rmap[rv] for rv in sigma.rvars),
        tuple(emap[ev] for ev in sigma.evars),
        tuple(tmap[tv] for tv in sigma.tvars),
        new_delta,
        ren.tau(sigma.body),
    )
    return renamed, ren

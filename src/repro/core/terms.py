"""The region-annotated term language (paper Section 3.6).

This is the *target* language of region inference and the language the
region type checker (Figure 4), the small-step semantics (Figure 6), and
the big-step region interpreter all operate on.

The paper's core calculus has integers, pairs, (recursive, region- and
effect-polymorphic) functions, ``let``, ``letregion``, and region
application.  We extend it with the constructors our MiniML frontend needs
— strings, reals, booleans, lists, references, exceptions, conditionals
and primitives — each following the same ``at rho`` discipline.  The
formal-subset nodes are exactly the paper's; the extensions are marked.

Terms carry the annotations that make checking syntax-directed:

* a :class:`Lam` carries its full ``(mu1 -eps.phi-> mu2, rho)`` type,
* a :class:`FunDef` carries its type scheme and place ``pi``,
* a :class:`RApp` carries the *instantiation substitution* it was elaborated
  with, so the checker can verify the instance-of relation including the
  coverage requirement ``Omega |- St : Delta``.

Value forms (used by the small-step semantics, which substitutes values
into terms) are the classes with a ``rho`` superscript mirroring the
paper's ``<v1,v2>^rho`` notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .effects import RegionVar
from .rtypes import Mu, MuBoxed, PiScheme, TyVar
from .substitution import Subst

__all__ = [
    "Term",
    "Var",
    "IntLit",
    "BoolLit",
    "UnitLit",
    "StringLit",
    "RealLit",
    "NilLit",
    "Lam",
    "FunDef",
    "RApp",
    "App",
    "Let",
    "Letregion",
    "Pair",
    "Select",
    "Cons",
    "If",
    "Prim",
    "MkRef",
    "Deref",
    "Assign",
    "LetData",
    "DataCon",
    "CaseBranchT",
    "Case",
    "LetExn",
    "Con",
    "Raise",
    "Handle",
    "Value",
    "VInt",
    "VBool",
    "VUnit",
    "VNil",
    "VStr",
    "VReal",
    "VPair",
    "VCons",
    "VClos",
    "VFunClos",
    "is_value",
    "fpv",
    "subst_value",
    "apply_subst_term",
    "iter_children",
    "term_size",
]


class Term:
    """Base class for region-annotated terms."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# The paper's core language
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Var(Term):
    name: str


@dataclass(frozen=True, slots=True)
class IntLit(Term):
    value: int


@dataclass(frozen=True, slots=True)
class Lam(Term):
    """``fn x => e at rho`` — annotated with its full type ``mu``."""

    param: str
    body: Term
    rho: RegionVar
    mu: MuBoxed  # (dom -eps.phi-> cod, rho)


@dataclass(frozen=True, slots=True)
class FunDef(Term):
    """``fun f [rvec] x = e at rho`` — a region/effect/type-polymorphic,
    possibly recursive function, annotated with its scheme-and-place."""

    fname: str
    rparams: tuple[RegionVar, ...]
    param: str
    body: Term
    rho: RegionVar
    pi: PiScheme


@dataclass(frozen=True, slots=True)
class RApp(Term):
    """``e [rvec] at rho`` — region application / scheme instantiation.

    ``inst`` is the full substitution ``(St, Sr, Se)`` the elaborator used;
    ``rargs`` duplicates ``rng(Sr)`` in parameter order for the runtime.
    """

    fn: Term
    rargs: tuple[RegionVar, ...]
    rho: RegionVar
    inst: Subst = field(default_factory=Subst)


@dataclass(frozen=True, slots=True)
class App(Term):
    fn: Term
    arg: Term


@dataclass(frozen=True, slots=True)
class Let(Term):
    """``let x = e1 in e2`` — monomorphic, per the paper."""

    name: str
    rhs: Term
    body: Term


@dataclass(frozen=True, slots=True)
class Letregion(Term):
    """``letregion rho1,...,rhon in e`` (n >= 1)."""

    rhos: tuple[RegionVar, ...]
    body: Term


@dataclass(frozen=True, slots=True)
class Pair(Term):
    fst: Term
    snd: Term
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class Select(Term):
    """``#i e`` with ``i`` in {1, 2}."""

    index: int
    pair: Term


# ---------------------------------------------------------------------------
# Extensions beyond the formal core (MiniML features)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BoolLit(Term):
    value: bool


@dataclass(frozen=True, slots=True)
class UnitLit(Term):
    pass


@dataclass(frozen=True, slots=True)
class StringLit(Term):
    """A string literal allocated ``at rho``."""

    value: str
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class RealLit(Term):
    """A (boxed) real literal allocated ``at rho``."""

    value: float
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class NilLit(Term):
    """The empty list.  Unboxed at runtime, but its type mentions the spine
    region, so the annotation records the full ``mu``."""

    mu: Mu


@dataclass(frozen=True, slots=True)
class Cons(Term):
    """``e1 :: e2`` with the cons cell allocated ``at rho``."""

    head: Term
    tail: Term
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class If(Term):
    cond: Term
    then: Term
    els: Term


@dataclass(frozen=True, slots=True)
class Prim(Term):
    """A primitive operation.

    ``rho`` is the destination region for allocating primitives (string
    concatenation, int-to-string, real arithmetic, ...) and ``None`` for
    non-allocating ones.  The typing of each primitive lives in the
    checker's primitive table.
    """

    op: str
    args: tuple[Term, ...]
    rho: Optional[RegionVar] = None


@dataclass(frozen=True, slots=True)
class MkRef(Term):
    """``ref e at rho``."""

    init: Term
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class Deref(Term):
    ref: Term


@dataclass(frozen=True, slots=True)
class Assign(Term):
    ref: Term
    value: Term


@dataclass(frozen=True, slots=True)
class LetData(Term):
    """``datatype (a1,...,an) name = C1 of mu | ... in e``.

    ``params`` are the bound type variables of the declaration;
    ``self_rho`` is the placeholder region standing for "this value's
    region" inside the constructor payload templates (the uniform
    representation: every boxed component of a payload has place
    ``self_rho``; recursive occurrences are ``(TauData(name, params),
    self_rho)``).  Constructor application and case analysis instantiate
    templates with ``params -> targs`` and ``self_rho -> rho``.
    """

    name: str
    params: tuple[TyVar, ...]
    self_rho: RegionVar
    constructors: tuple[tuple[str, Optional[Mu]], ...]
    body: Term


@dataclass(frozen=True, slots=True)
class DataCon(Term):
    """``C e at rho`` — build a datatype value at ``rho``."""

    dataname: str
    conname: str
    targs: tuple[Mu, ...]
    arg: Optional[Term]
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class CaseBranchT:
    """One branch of a ``case``: a constructor branch (``conname`` set,
    ``binder`` binds the payload when the constructor has one) or a
    catch-all (``conname`` None; ``binder`` optionally binds the
    scrutinee)."""

    conname: Optional[str]
    binder: Optional[str]
    body: Term


@dataclass(frozen=True, slots=True)
class Case(Term):
    """``case e of C1 x => e1 | ... | _ => en``."""

    scrutinee: Term
    branches: tuple[CaseBranchT, ...]


@dataclass(frozen=True, slots=True)
class LetExn(Term):
    """``exception E of mu in e`` — a generative exception declaration.

    ``payload`` is ``None`` for nullary exceptions.  GC safety requires
    every region in ``payload`` to be a top-level region (Section 4.4).
    """

    exname: str
    payload: Optional[Mu]
    body: Term


@dataclass(frozen=True, slots=True)
class Con(Term):
    """``E e at rho`` — build an exception value (``rho`` is global)."""

    exname: str
    arg: Optional[Term]
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class Raise(Term):
    """``raise e`` — annotated with the type the context expects."""

    exn: Term
    mu: Mu


@dataclass(frozen=True, slots=True)
class Handle(Term):
    """``e handle E x => h`` — single-constructor handler; other
    exceptions re-raise."""

    body: Term
    exname: str
    binder: Optional[str]
    handler: Term


# ---------------------------------------------------------------------------
# Value forms (small-step semantics substitutes these into terms)
# ---------------------------------------------------------------------------


class Value(Term):
    """Base class for value forms ``v``."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class VInt(Value):
    value: int


@dataclass(frozen=True, slots=True)
class VBool(Value):
    value: bool


@dataclass(frozen=True, slots=True)
class VUnit(Value):
    pass


@dataclass(frozen=True, slots=True)
class VNil(Value):
    mu: Mu


@dataclass(frozen=True, slots=True)
class VStr(Value):
    value: str
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class VReal(Value):
    value: float
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class VPair(Value):
    """``<v1, v2>^rho``."""

    fst: Value
    snd: Value
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class VCons(Value):
    head: Value
    tail: Value
    rho: RegionVar


@dataclass(frozen=True, slots=True)
class VClos(Value):
    """``<fn x => e>^rho``."""

    param: str
    body: Term
    rho: RegionVar
    mu: MuBoxed


@dataclass(frozen=True, slots=True)
class VFunClos(Value):
    """``<fun f [rvec] x = e>^rho``."""

    fname: str
    rparams: tuple[RegionVar, ...]
    param: str
    body: Term
    rho: RegionVar
    pi: PiScheme


def is_value(term: Term) -> bool:
    return isinstance(term, Value)


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def iter_children(term: Term) -> tuple[Term, ...]:
    """The direct sub-terms of a term (binding structure ignored)."""
    if isinstance(term, (Var, IntLit, BoolLit, UnitLit, StringLit, RealLit, NilLit,
                         VInt, VBool, VUnit, VNil, VStr, VReal)):
        return ()
    if isinstance(term, (Lam, VClos)):
        return (term.body,)
    if isinstance(term, (FunDef, VFunClos)):
        return (term.body,)
    if isinstance(term, RApp):
        return (term.fn,)
    if isinstance(term, App):
        return (term.fn, term.arg)
    if isinstance(term, Let):
        return (term.rhs, term.body)
    if isinstance(term, Letregion):
        return (term.body,)
    if isinstance(term, Pair):
        return (term.fst, term.snd)
    if isinstance(term, VPair):
        return (term.fst, term.snd)
    if isinstance(term, Select):
        return (term.pair,)
    if isinstance(term, Cons):
        return (term.head, term.tail)
    if isinstance(term, VCons):
        return (term.head, term.tail)
    if isinstance(term, If):
        return (term.cond, term.then, term.els)
    if isinstance(term, Prim):
        return term.args
    if isinstance(term, MkRef):
        return (term.init,)
    if isinstance(term, Deref):
        return (term.ref,)
    if isinstance(term, Assign):
        return (term.ref, term.value)
    if isinstance(term, LetData):
        return (term.body,)
    if isinstance(term, DataCon):
        return (term.arg,) if term.arg is not None else ()
    if isinstance(term, Case):
        return (term.scrutinee,) + tuple(br.body for br in term.branches)
    if isinstance(term, LetExn):
        return (term.body,)
    if isinstance(term, Con):
        return (term.arg,) if term.arg is not None else ()
    if isinstance(term, Raise):
        return (term.exn,)
    if isinstance(term, Handle):
        return (term.body, term.handler)
    raise TypeError(f"iter_children: {term!r}")


def term_size(term: Term) -> int:
    """Number of nodes — handy for tests and reporting."""
    return 1 + sum(term_size(c) for c in iter_children(term))


def fpv(term: Term) -> frozenset:
    """Free program variables of a term."""
    out: set = set()
    _fpv(term, frozenset(), out)
    return frozenset(out)


def _fpv(term: Term, bound: frozenset, out: set) -> None:
    if isinstance(term, Var):
        if term.name not in bound:
            out.add(term.name)
    elif isinstance(term, (Lam, VClos)):
        _fpv(term.body, bound | {term.param}, out)
    elif isinstance(term, (FunDef, VFunClos)):
        _fpv(term.body, bound | {term.fname, term.param}, out)
    elif isinstance(term, Let):
        _fpv(term.rhs, bound, out)
        _fpv(term.body, bound | {term.name}, out)
    elif isinstance(term, Handle):
        _fpv(term.body, bound, out)
        inner = bound | {term.binder} if term.binder else bound
        _fpv(term.handler, inner, out)
    elif isinstance(term, Case):
        _fpv(term.scrutinee, bound, out)
        for br in term.branches:
            inner = bound | {br.binder} if br.binder else bound
            _fpv(br.body, inner, out)
    else:
        for child in iter_children(term):
            _fpv(child, bound, out)


def subst_value(term: Term, name: str, value: Value) -> Term:
    """Capture-free value substitution ``term[value/name]``.

    Well-typed values are closed (Proposition 15), so substituting them
    under binders cannot capture.
    """
    if isinstance(term, Var):
        return value if term.name == name else term
    if isinstance(term, (Lam, VClos)):
        if term.param == name:
            return term
        cls = type(term)
        return cls(term.param, subst_value(term.body, name, value), term.rho, term.mu)
    if isinstance(term, (FunDef, VFunClos)):
        if name in (term.fname, term.param):
            return term
        cls = type(term)
        return cls(term.fname, term.rparams, term.param,
                   subst_value(term.body, name, value), term.rho, term.pi)
    if isinstance(term, Let):
        rhs = subst_value(term.rhs, name, value)
        body = term.body if term.name == name else subst_value(term.body, name, value)
        return Let(term.name, rhs, body)
    if isinstance(term, Handle):
        body = subst_value(term.body, name, value)
        if term.binder == name:
            handler = term.handler
        else:
            handler = subst_value(term.handler, name, value)
        return Handle(body, term.exname, term.binder, handler)
    if isinstance(term, Case):
        scrut = subst_value(term.scrutinee, name, value)
        branches = tuple(
            br if br.binder == name
            else CaseBranchT(br.conname, br.binder, subst_value(br.body, name, value))
            for br in term.branches
        )
        return Case(scrut, branches)
    return _rebuild(term, tuple(subst_value(c, name, value) for c in iter_children(term)))


def _rebuild(term: Term, children: tuple[Term, ...]) -> Term:
    """Rebuild a node with new children in `iter_children` order."""
    if not children and not iter_children(term):
        return term
    if isinstance(term, RApp):
        return RApp(children[0], term.rargs, term.rho, term.inst)
    if isinstance(term, App):
        return App(children[0], children[1])
    if isinstance(term, Letregion):
        return Letregion(term.rhos, children[0])
    if isinstance(term, Pair):
        return Pair(children[0], children[1], term.rho)
    if isinstance(term, VPair):
        return VPair(children[0], children[1], term.rho)
    if isinstance(term, Select):
        return Select(term.index, children[0])
    if isinstance(term, Cons):
        return Cons(children[0], children[1], term.rho)
    if isinstance(term, VCons):
        return VCons(children[0], children[1], term.rho)
    if isinstance(term, If):
        return If(children[0], children[1], children[2])
    if isinstance(term, Prim):
        return Prim(term.op, children, term.rho)
    if isinstance(term, MkRef):
        return MkRef(children[0], term.rho)
    if isinstance(term, Deref):
        return Deref(children[0])
    if isinstance(term, Assign):
        return Assign(children[0], children[1])
    if isinstance(term, LetExn):
        return LetExn(term.exname, term.payload, children[0])
    if isinstance(term, LetData):
        return LetData(term.name, term.params, term.self_rho,
                       term.constructors, children[0])
    if isinstance(term, DataCon):
        return DataCon(term.dataname, term.conname, term.targs,
                       children[0] if children else None, term.rho)
    if isinstance(term, Con):
        return Con(term.exname, children[0] if children else None, term.rho)
    if isinstance(term, Raise):
        return Raise(children[0], term.mu)
    raise TypeError(f"_rebuild: {term!r}")


def apply_subst_term(subst: Subst, term: Term) -> Term:
    """Apply a substitution to a term: region annotations, type
    annotations, and recorded instantiations are all rewritten.

    Used by the small-step [Rapp] rule, which specialises a polymorphic
    function body with the instantiating substitution, and by the freezing
    phase of region inference.
    """
    s = subst
    if isinstance(term, Var):
        return term
    if isinstance(term, (IntLit, BoolLit, UnitLit, VInt, VBool, VUnit)):
        return term
    if isinstance(term, StringLit):
        return StringLit(term.value, s.region(term.rho))
    if isinstance(term, RealLit):
        return RealLit(term.value, s.region(term.rho))
    if isinstance(term, NilLit):
        return NilLit(s.mu(term.mu))
    if isinstance(term, VStr):
        return VStr(term.value, s.region(term.rho))
    if isinstance(term, VReal):
        return VReal(term.value, s.region(term.rho))
    if isinstance(term, VNil):
        return VNil(s.mu(term.mu))
    if isinstance(term, (Lam, VClos)):
        cls = type(term)
        return cls(term.param, apply_subst_term(s, term.body),
                   s.region(term.rho), s.mu(term.mu))
    if isinstance(term, (FunDef, VFunClos)):
        # Bound region parameters are renamed apart by construction; the
        # substitution must not capture them.
        cls = type(term)
        return cls(term.fname, term.rparams, term.param,
                   apply_subst_term(s, term.body), s.region(term.rho),
                   s.pi(term.pi))
    if isinstance(term, RApp):
        return RApp(apply_subst_term(s, term.fn),
                    tuple(s.region(r) for r in term.rargs),
                    s.region(term.rho),
                    term.inst.then(s))
    if isinstance(term, App):
        return App(apply_subst_term(s, term.fn), apply_subst_term(s, term.arg))
    if isinstance(term, Let):
        return Let(term.name, apply_subst_term(s, term.rhs), apply_subst_term(s, term.body))
    if isinstance(term, Letregion):
        return Letregion(term.rhos, apply_subst_term(s, term.body))
    if isinstance(term, Pair):
        return Pair(apply_subst_term(s, term.fst), apply_subst_term(s, term.snd),
                    s.region(term.rho))
    if isinstance(term, VPair):
        return VPair(apply_subst_term(s, term.fst), apply_subst_term(s, term.snd),
                     s.region(term.rho))
    if isinstance(term, Select):
        return Select(term.index, apply_subst_term(s, term.pair))
    if isinstance(term, Cons):
        return Cons(apply_subst_term(s, term.head), apply_subst_term(s, term.tail),
                    s.region(term.rho))
    if isinstance(term, VCons):
        return VCons(apply_subst_term(s, term.head), apply_subst_term(s, term.tail),
                     s.region(term.rho))
    if isinstance(term, If):
        return If(apply_subst_term(s, term.cond), apply_subst_term(s, term.then),
                  apply_subst_term(s, term.els))
    if isinstance(term, Prim):
        return Prim(term.op, tuple(apply_subst_term(s, a) for a in term.args),
                    s.region(term.rho) if term.rho is not None else None)
    if isinstance(term, MkRef):
        return MkRef(apply_subst_term(s, term.init), s.region(term.rho))
    if isinstance(term, Deref):
        return Deref(apply_subst_term(s, term.ref))
    if isinstance(term, Assign):
        return Assign(apply_subst_term(s, term.ref), apply_subst_term(s, term.value))
    if isinstance(term, LetData):
        # params and self_rho are binders: the substitution must avoid them
        cons = tuple(
            (c, s.mu(m) if m is not None else None) for c, m in term.constructors
        )
        return LetData(term.name, term.params, term.self_rho, cons,
                       apply_subst_term(s, term.body))
    if isinstance(term, DataCon):
        arg = apply_subst_term(s, term.arg) if term.arg is not None else None
        return DataCon(term.dataname, term.conname,
                       tuple(s.mu(t) for t in term.targs), arg, s.region(term.rho))
    if isinstance(term, Case):
        return Case(
            apply_subst_term(s, term.scrutinee),
            tuple(CaseBranchT(br.conname, br.binder, apply_subst_term(s, br.body))
                  for br in term.branches),
        )
    if isinstance(term, LetExn):
        payload = s.mu(term.payload) if term.payload is not None else None
        return LetExn(term.exname, payload, apply_subst_term(s, term.body))
    if isinstance(term, Con):
        arg = apply_subst_term(s, term.arg) if term.arg is not None else None
        return Con(term.exname, arg, s.region(term.rho))
    if isinstance(term, Raise):
        return Raise(apply_subst_term(s, term.exn), s.mu(term.mu))
    if isinstance(term, Handle):
        return Handle(apply_subst_term(s, term.body), term.exname, term.binder,
                      apply_subst_term(s, term.handler))
    raise TypeError(f"apply_subst_term: {term!r}")

"""Region-annotated types and type schemes (paper Section 3.2).

Grammar (extended beyond the paper's minimal pairs-and-functions calculus
with the constructors the MLKit — and our MiniML — actually needs):

.. code-block:: text

    mu  ::= alpha | int | bool | unit | (tau, rho)          type and place
    tau ::= mu1 * mu2 | mu1 -eps.phi-> mu2                   paper core
          | string | real | mu list | mu ref | exn           extensions
    sigma ::= all rvec evec Delta . tau                      type scheme
    pi  ::= (sigma, rho) | mu                                scheme and place

A *type-variable context* ``Omega`` (or ``Delta``) maps type variables to
arrow effects — this is the paper's central novelty: a quantified type
variable ``alpha : eps'.phi'`` carries an arrow effect, and instantiation
demands that the regions of the type substituted for ``alpha`` are covered
by ``eps'``'s effect (substitution coverage, Section 3.3).

All structures here are immutable; region inference works on a separate
mutable union-find layer (:mod:`repro.regions.nodes`) and *freezes* its
result into these types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Union

from .effects import (
    ArrowEffect,
    Atom,
    Effect,
    EffectVar,
    EMPTY_EFFECT,
    RegionVar,
    show_effect,
)

__all__ = [
    "TyVar",
    "Mu",
    "MuVar",
    "MuBase",
    "MU_INT",
    "MU_BOOL",
    "MU_UNIT",
    "MuBoxed",
    "Tau",
    "TauPair",
    "TauArrow",
    "TauString",
    "TauReal",
    "TauList",
    "TauRef",
    "TauArray",
    "TauExn",
    "TauData",
    "TAU_STRING",
    "TAU_REAL",
    "TAU_EXN",
    "TyCtx",
    "EMPTY_CTX",
    "Scheme",
    "PiScheme",
    "Pi",
    "frv",
    "frev",
    "ftv",
    "fev",
    "show_mu",
    "show_tau",
    "show_scheme",
    "show_pi",
    "arrow_mu",
    "scheme_of_mu",
    "pi_of_mu",
]


@dataclass(frozen=True, slots=True)
class TyVar:
    """A type variable ``alpha``.  Identity is the numeric ``ident``."""

    ident: int
    name: str = field(default="", compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.display()

    def display(self) -> str:
        return self.name or f"'a{self.ident}"


# ---------------------------------------------------------------------------
# mu — type and place
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MuVar:
    """A type variable used as a type-and-place."""

    alpha: TyVar

    def __repr__(self) -> str:  # pragma: no cover
        return self.alpha.display()


@dataclass(frozen=True, slots=True)
class MuBase:
    """An unboxed base type (``int``, ``bool``, or ``unit``): no place."""

    kind: str  # "int" | "bool" | "unit"

    def __repr__(self) -> str:  # pragma: no cover
        return self.kind


MU_INT = MuBase("int")
MU_BOOL = MuBase("bool")
MU_UNIT = MuBase("unit")


@dataclass(frozen=True, slots=True)
class MuBoxed:
    """A boxed type with a place: ``(tau, rho)``."""

    tau: "Tau"
    rho: RegionVar

    def __repr__(self) -> str:  # pragma: no cover
        return show_mu(self)


Mu = Union[MuVar, MuBase, MuBoxed]


# ---------------------------------------------------------------------------
# tau — the boxed type constructors
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TauPair:
    """Product type ``mu1 * mu2``.  Wider tuples desugar to nested pairs."""

    fst: Mu
    snd: Mu


@dataclass(frozen=True, slots=True)
class TauArrow:
    """Function type ``mu1 -eps.phi-> mu2`` with an arrow effect."""

    dom: Mu
    arrow: ArrowEffect
    cod: Mu


@dataclass(frozen=True, slots=True)
class TauString:
    """Strings are boxed (string concatenation allocates ``at rho``)."""


@dataclass(frozen=True, slots=True)
class TauReal:
    """Reals are boxed, as in the MLKit (tag-free 64-bit float boxes)."""


@dataclass(frozen=True, slots=True)
class TauList:
    """List spine type; all cons cells of the list live in the place of
    the enclosing :class:`MuBoxed` (the MLKit's uniform list regions,
    simplified to a single spine region)."""

    elem: Mu


@dataclass(frozen=True, slots=True)
class TauRef:
    """Mutable reference cell."""

    content: Mu


@dataclass(frozen=True, slots=True)
class TauArray:
    """Mutable array.  Like :class:`TauRef` the slots are updatable in
    place; the whole backing store lives in the place of the enclosing
    :class:`MuBoxed` while slot *values* keep their own regions through
    ``elem``."""

    elem: Mu


@dataclass(frozen=True, slots=True)
class TauExn:
    """The exception type.  Exception values are boxed and always live in
    the global region (Section 4.4)."""


@dataclass(frozen=True, slots=True)
class TauData:
    """A user datatype with the MLKit-style *uniform* representation: the
    whole constructor tree (spine and concrete boxed components) lives in
    the place of the enclosing :class:`MuBoxed`; only values of the type
    *parameters* keep their own regions, through ``targs``."""

    name: str
    targs: tuple[Mu, ...]


TAU_STRING = TauString()
TAU_REAL = TauReal()
TAU_EXN = TauExn()

Tau = Union[
    TauPair, TauArrow, TauString, TauReal, TauList, TauRef, TauArray, TauExn, TauData
]


def arrow_mu(dom: Mu, arrow: ArrowEffect, cod: Mu, rho: RegionVar) -> MuBoxed:
    """Convenience constructor for ``(mu1 -eps.phi-> mu2, rho)``."""
    return MuBoxed(TauArrow(dom, arrow, cod), rho)


# ---------------------------------------------------------------------------
# Type-variable contexts and schemes
# ---------------------------------------------------------------------------


class TyCtx(Mapping[TyVar, ArrowEffect]):
    """An immutable, insertion-ordered type-variable context Omega/Delta."""

    __slots__ = ("_map",)

    def __init__(self, items: Mapping[TyVar, ArrowEffect] | Iterable[tuple[TyVar, ArrowEffect]] = ()):
        if isinstance(items, Mapping):
            self._map = dict(items)
        else:
            self._map = dict(items)

    def __getitem__(self, alpha: TyVar) -> ArrowEffect:
        return self._map[alpha]

    def __iter__(self) -> Iterator[TyVar]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TyCtx):
            return self._map == other._map
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def __repr__(self) -> str:  # pragma: no cover
        return self.display()

    def extend(self, other: "TyCtx | Mapping[TyVar, ArrowEffect]") -> "TyCtx":
        """``Omega + Delta``: right-biased union (paper Section 3.1)."""
        merged = dict(self._map)
        merged.update(other)
        return TyCtx(merged)

    def display(self) -> str:
        inner = ",".join(f"{a.display()}:{ae.display()}" for a, ae in self._map.items())
        return "{" + inner + "}"


EMPTY_CTX = TyCtx()


@dataclass(frozen=True, slots=True)
class Scheme:
    """A region type scheme ``all rvec evec alphavec Delta . tau``.

    ``rvars``/``evars`` are the bound region and effect variables;
    ``tvars`` are the *plain* bound type variables (non-spurious: they
    occur in the scheme body, so their instances stay visible in
    instantiated types); ``delta`` is the bound type-variable context —
    the *spurious* type variables, each with its arrow effect, which is
    the paper's central addition (Section 4: "only spurious type
    variables need to be associated with arrow effects in type variable
    contexts").  ``body`` is the underlying ``tau`` (in practice always
    an arrow type for function schemes).
    """

    rvars: tuple[RegionVar, ...]
    evars: tuple[EffectVar, ...]
    tvars: tuple[TyVar, ...]
    delta: TyCtx
    body: Tau

    def bound_atoms(self) -> frozenset:
        return frozenset(self.rvars) | frozenset(self.evars)

    def bound_tyvars(self) -> frozenset:
        return frozenset(self.tvars) | frozenset(self.delta.keys())

    def is_monotype(self) -> bool:
        return not self.rvars and not self.evars and not self.tvars and not self.delta

    def __repr__(self) -> str:  # pragma: no cover
        return show_scheme(self)


@dataclass(frozen=True, slots=True)
class PiScheme:
    """A type scheme and place ``(sigma, rho)``."""

    scheme: Scheme
    rho: RegionVar

    def __repr__(self) -> str:  # pragma: no cover
        return show_pi(self)


#: ``pi ::= (sigma, rho) | mu``
Pi = Union[PiScheme, MuVar, MuBase, MuBoxed]


def scheme_of_mu(mu: Mu) -> Scheme | None:
    """View a boxed mu as a degenerate (mono) scheme; ``None`` for unboxed."""
    if isinstance(mu, MuBoxed):
        return Scheme((), (), (), EMPTY_CTX, mu.tau)
    return None


def pi_of_mu(mu: Mu) -> Pi:
    """A mu *is* a pi."""
    return mu


# ---------------------------------------------------------------------------
# Free variables:  frv / frev / ftv
# ---------------------------------------------------------------------------


def _walk(obj: object, rvs: set, evs: set, tvs: set) -> None:
    """Accumulate free region / effect / type variables of a type-level
    object into the three sets.  Binding structure of schemes is honoured."""
    if obj is None:
        return
    if isinstance(obj, RegionVar):
        rvs.add(obj)
    elif isinstance(obj, EffectVar):
        evs.add(obj)
    elif isinstance(obj, TyVar):
        tvs.add(obj)
    elif isinstance(obj, frozenset):
        for atom in obj:
            _walk(atom, rvs, evs, tvs)
    elif isinstance(obj, ArrowEffect):
        evs.add(obj.handle)
        _walk(obj.latent, rvs, evs, tvs)
    elif isinstance(obj, MuVar):
        tvs.add(obj.alpha)
    elif isinstance(obj, MuBase):
        pass
    elif isinstance(obj, MuBoxed):
        _walk(obj.tau, rvs, evs, tvs)
        rvs.add(obj.rho)
    elif isinstance(obj, TauPair):
        _walk(obj.fst, rvs, evs, tvs)
        _walk(obj.snd, rvs, evs, tvs)
    elif isinstance(obj, TauArrow):
        _walk(obj.dom, rvs, evs, tvs)
        _walk(obj.arrow, rvs, evs, tvs)
        _walk(obj.cod, rvs, evs, tvs)
    elif isinstance(obj, (TauString, TauReal, TauExn)):
        pass
    elif isinstance(obj, TauList):
        _walk(obj.elem, rvs, evs, tvs)
    elif isinstance(obj, TauRef):
        _walk(obj.content, rvs, evs, tvs)
    elif isinstance(obj, TauArray):
        _walk(obj.elem, rvs, evs, tvs)
    elif isinstance(obj, TauData):
        for targ in obj.targs:
            _walk(targ, rvs, evs, tvs)
    elif isinstance(obj, TyCtx):
        for alpha, arrow in obj.items():
            tvs.add(alpha)
            _walk(arrow, rvs, evs, tvs)
    elif isinstance(obj, Scheme):
        inner_r: set = set()
        inner_e: set = set()
        inner_t: set = set()
        _walk(obj.body, inner_r, inner_e, inner_t)
        _walk(obj.delta, inner_r, inner_e, inner_t)
        inner_r -= set(obj.rvars)
        inner_e -= set(obj.evars)
        inner_t -= set(obj.delta.keys()) | set(obj.tvars)
        rvs |= inner_r
        evs |= inner_e
        tvs |= inner_t
    elif isinstance(obj, PiScheme):
        _walk(obj.scheme, rvs, evs, tvs)
        rvs.add(obj.rho)
    elif isinstance(obj, (tuple, list)):
        for item in obj:
            _walk(item, rvs, evs, tvs)
    elif isinstance(obj, dict):
        for item in obj.values():
            _walk(item, rvs, evs, tvs)
    else:
        raise TypeError(f"frv/frev/ftv: unknown object {obj!r}")


def frv(*objs: object) -> frozenset:
    """Free region variables."""
    rvs: set = set()
    evs: set = set()
    tvs: set = set()
    for obj in objs:
        _walk(obj, rvs, evs, tvs)
    return frozenset(rvs)


def frev(*objs: object) -> Effect:
    """Free region *and* effect variables (an effect)."""
    rvs: set = set()
    evs: set = set()
    tvs: set = set()
    for obj in objs:
        _walk(obj, rvs, evs, tvs)
    return frozenset(rvs | evs)


def ftv(*objs: object) -> frozenset:
    """Free type variables."""
    rvs: set = set()
    evs: set = set()
    tvs: set = set()
    for obj in objs:
        _walk(obj, rvs, evs, tvs)
    return frozenset(tvs)


def fev(*objs: object) -> frozenset:
    """Free effect variables only."""
    rvs: set = set()
    evs: set = set()
    tvs: set = set()
    for obj in objs:
        _walk(obj, rvs, evs, tvs)
    return frozenset(evs)


# ---------------------------------------------------------------------------
# Pretty printing (the paper's notation, ASCII-fied)
# ---------------------------------------------------------------------------


def show_mu(mu: Mu) -> str:
    if isinstance(mu, MuVar):
        return mu.alpha.display()
    if isinstance(mu, MuBase):
        return mu.kind
    if isinstance(mu, MuBoxed):
        return f"({show_tau(mu.tau)},{mu.rho.display()})"
    raise TypeError(f"show_mu: {mu!r}")


def show_tau(tau: Tau) -> str:
    if isinstance(tau, TauPair):
        return f"{show_mu(tau.fst)}*{show_mu(tau.snd)}"
    if isinstance(tau, TauArrow):
        return f"{show_mu(tau.dom)} -{tau.arrow.display()}-> {show_mu(tau.cod)}"
    if isinstance(tau, TauString):
        return "string"
    if isinstance(tau, TauReal):
        return "real"
    if isinstance(tau, TauList):
        return f"{show_mu(tau.elem)} list"
    if isinstance(tau, TauRef):
        return f"{show_mu(tau.content)} ref"
    if isinstance(tau, TauArray):
        return f"{show_mu(tau.elem)} array"
    if isinstance(tau, TauExn):
        return "exn"
    if isinstance(tau, TauData):
        if not tau.targs:
            return tau.name
        inner = ",".join(show_mu(t) for t in tau.targs)
        return f"({inner}) {tau.name}"
    raise TypeError(f"show_tau: {tau!r}")


def show_scheme(sigma: Scheme) -> str:
    binders = [rv.display() for rv in sigma.rvars]
    binders += [ev.display() for ev in sigma.evars]
    binders += [tv.display() for tv in sigma.tvars]
    binders += [f"({a.display()}:{ae.display()})" for a, ae in sigma.delta.items()]
    prefix = f"all {' '.join(binders)}." if binders else ""
    return f"{prefix}{show_tau(sigma.body)}"


def show_pi(pi: Pi) -> str:
    if isinstance(pi, PiScheme):
        return f"({show_scheme(pi.scheme)},{pi.rho.display()})"
    return show_mu(pi)

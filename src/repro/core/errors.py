"""Exception hierarchy shared by the whole repro package.

Every error raised by the compiler pipeline or the runtime derives from
:class:`ReproError`, so callers can catch one type.  The distinction that
matters for the paper is :class:`DanglingPointerError`: it is raised when
the reference-tracing collector traces a pointer into a deallocated region,
i.e. exactly the failure mode that the GC-safe region type system rules
out (Section 1 and Figure 1 of the paper).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LexError(ReproError):
    """Raised by the MiniML lexer on malformed input."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class ParseError(ReproError):
    """Raised by the MiniML parser on a syntax error."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class TypeError_(ReproError):
    """Raised by Hindley-Milner type inference on an ill-typed program.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class RegionTypeError(ReproError):
    """Raised by the region type checker when a region-annotated program
    violates the typing rules of Figure 4 (including the GC-safety side
    conditions and the substitution-coverage requirement)."""


class CoverageError(RegionTypeError):
    """A type substitution failed the coverage requirement ``Omega |- S : Delta``.

    This is the specific check that the unsound ``rg-`` strategy omits: a
    type instantiated for a spurious type variable mentions regions that do
    not appear in the arrow effect associated with that variable.
    """


class RegionInferenceError(ReproError):
    """Raised when region inference cannot produce an annotation (a bug, or
    the bounded polymorphic-recursion fixpoint failed to converge and no
    monomorphic fallback applied)."""


class RuntimeFault(ReproError):
    """Base class for faults of the region abstract machine."""


class DanglingPointerError(RuntimeFault):
    """The collector traced a pointer into a deallocated region.

    This is the observable unsoundness the paper fixes: under the ``rg-``
    strategy the program of Figure 1 deallocates the region holding the
    string ``"ohno"`` while a live closure still points to it; the next
    collection stumbles over the dangling pointer and raises this error.
    """

    def __init__(self, message: str, region_id: int | None = None) -> None:
        super().__init__(message)
        self.region_id = region_id


class UseAfterFreeError(RuntimeFault):
    """The *program itself* dereferenced a value in a deallocated region.

    Distinct from :class:`DanglingPointerError`: region inference guarantees
    this never happens in any strategy (soundness of region inference
    proper); it is detected so tests can assert its absence.
    """


class StalePointerError(RuntimeFault):
    """The pointer sanitizer caught a stale pointer.

    Every boxed value carries the generation stamp its region had at
    allocation time; under ``RuntimeFlags.sanitize`` the runtime compares
    the stamp on every read, write, and GC scavenge.  A mismatch means
    the value outlived a ``letregion`` exit — caught at the *access*,
    before a collection would stumble over it (or even when none ever
    runs).
    """

    def __init__(self, message: str, region_id: int | None = None) -> None:
        super().__init__(message)
        self.region_id = region_id


class MLExceptionError(RuntimeFault):
    """An uncaught MiniML exception escaped to top level."""

    def __init__(self, exn_name: str, payload: object = None) -> None:
        super().__init__(f"uncaught exception {exn_name}")
        self.exn_name = exn_name
        self.payload = payload


class InterpreterLimit(RuntimeFault):
    """The interpreter hit a configured resource bound (steps, depth, heap
    words, or wall-clock deadline).

    The exception carries the partial :class:`~repro.runtime.stats.RunStats`
    accumulated up to the point of the limit, so fuzzing harnesses and
    benchmarks can report how far a run got before it was cut off.
    """

    def __init__(self, message: str, stats=None) -> None:
        super().__init__(message)
        #: Partial run statistics at the moment the limit fired (may be
        #: ``None`` for limits raised outside an interpreter run).
        self.stats = stats


class HeapLimitError(InterpreterLimit):
    """The heap grew past ``RuntimeFlags.max_heap_words``.

    The bound counts *all* words currently accounted to regions, including
    garbage that a collection has not yet reclaimed, so it is a bound on
    the heap's footprint rather than on live data.  Runaway allocators
    fail fast with this error instead of hanging the harness.
    """


class DeadlineExceeded(InterpreterLimit):
    """The interpreter ran past ``RuntimeFlags.deadline_seconds`` of
    wall-clock time.  Checked periodically in the evaluation loop, so the
    overshoot is bounded by a few hundred interpreter steps."""

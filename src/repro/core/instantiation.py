"""The instance-of relation ``Omega |- sigma >= tau via S`` (Section 3.4).

Given a scheme ``sigma = all rvec evec Delta . tau'`` and a substitution
``S = (St, Sr, Se)``:

1. ``dom(Sr) = {rvec}`` and ``dom(Se) = {evec}``;
2. ``Omega |- Se(Sr(sigma')) >= tau via St`` where ``sigma' = all Delta.tau'``,
   which unfolds to  ``Omega |- St : Delta''`` (substitution coverage,
   with ``Delta'' = Se(Sr(Delta))``) and ``St(Se(Sr(tau'))) = tau``.

The checker either *verifies* a recorded substitution against an expected
result type, or *computes* the instance type from the substitution.  The
coverage step is the paper's crucial addition: it is what forces regions
occurring in types instantiated for spurious type variables into effects
that remain visible in the result type.
"""

from __future__ import annotations

from .containment import check_coverage
from .errors import RegionTypeError
from .rtypes import Scheme, Tau, TyCtx
from .substitution import Subst

__all__ = ["instantiate", "check_instance"]


def _split(subst: Subst) -> tuple[Subst, Subst]:
    """Split ``S`` into its region-effect part and its type part."""
    return Subst(rgn=subst.rgn, eff=subst.eff), Subst(ty=subst.ty)


def instantiate(omega: TyCtx, sigma: Scheme, subst: Subst) -> Tau:
    """Compute ``tau`` with ``Omega |- sigma >= tau via subst``.

    Raises :class:`RegionTypeError` when the domain conditions fail, or
    :class:`~repro.core.errors.CoverageError` when coverage fails.
    """
    if set(subst.rgn) != set(sigma.rvars):
        raise RegionTypeError(
            f"region-substitution domain {sorted(r.display() for r in subst.rgn)} "
            f"differs from bound regions {sorted(r.display() for r in sigma.rvars)}"
        )
    if set(subst.eff) != set(sigma.evars):
        raise RegionTypeError(
            f"effect-substitution domain {sorted(e.display() for e in subst.eff)} "
            f"differs from bound effect variables "
            f"{sorted(e.display() for e in sigma.evars)}"
        )
    expected_tyvars = set(sigma.tvars) | set(sigma.delta)
    if set(subst.ty) != expected_tyvars:
        raise RegionTypeError(
            f"type-substitution domain {sorted(a.display() for a in subst.ty)} "
            f"differs from bound type variables "
            f"{sorted(a.display() for a in expected_tyvars)}"
        )
    re_part, ty_part = _split(subst)
    delta2 = re_part.ctx(sigma.delta)
    body2 = re_part.tau(sigma.body)
    check_coverage(omega, ty_part, delta2)
    return ty_part.tau(body2)


def check_instance(omega: TyCtx, sigma: Scheme, tau: Tau, subst: Subst) -> None:
    """Verify ``Omega |- sigma >= tau via subst``; raise on failure."""
    got = instantiate(omega, sigma, subst)
    if got != tau:
        from .rtypes import show_tau

        raise RegionTypeError(
            f"instance mismatch:\n  expected {show_tau(tau)}\n  got      {show_tau(got)}"
        )

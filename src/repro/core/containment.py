"""Type containment and substitution coverage (paper Sections 3.2-3.3).

*Type containment* ``Omega |- mu : phi`` says all free region and effect
variables of ``mu`` — including, via ``Omega``, the arrow effects of the
type variables occurring in ``mu`` — are in the effect ``phi``.  It extends
to type schemes by discharging the bound variables.

Two implementations are provided and tested against each other:

* :func:`contained_mu` / :func:`contained_pi` — direct transcriptions of
  the inference rules, returning a boolean;
* :func:`required_effect_mu` / :func:`required_effect_pi` — the *minimal*
  effect in which the object is contained, exploiting the observation
  (Propositions 1-2 plus effect extensibility) that
  ``Omega |- o : phi  iff  required_effect(Omega, o) subseteq phi``.

The paper's formal system puts every quantified type variable in the
type-variable context; its implementation (Section 4) only associates
arrow effects with *spurious* type variables — those that occur in the
type of a captured identifier but not in the function's own type.  Type
variables that do occur in the function's own type are safe without
tracking, because their instances remain visible in instantiated types
and region inference keeps visible regions alive.  The ``lenient``
parameter expresses this: type variables in ``lenient`` that lack an
``Omega`` entry are treated as contained.  The GC-safety check passes
``lenient = ftv(function type)``; the *coverage* check passes the empty
set — so a type variable occurring in a type instantiated for a spurious
type variable must itself be tracked, which is exactly the paper's
transitive spuriousness rule (Section 4.3).

*Substitution coverage* ``Omega |- St : Delta`` (Section 3.3) is the key
device of the paper: a type substitution is covered when, for every
``alpha`` in its domain with an arrow effect, the substituted type is
contained in the effect ``frev(Delta(alpha))``.  Coverage is what makes
type containment — and with it the whole type system — closed under type
substitution (Proposition 5), and it is precisely the check the unsound
``rg-`` configuration omits.
"""

from __future__ import annotations

from .effects import Effect, EMPTY_EFFECT, show_effect
from .errors import CoverageError, RegionTypeError
from .rtypes import (
    Mu,
    MuBase,
    MuBoxed,
    MuVar,
    Pi,
    PiScheme,
    Scheme,
    Tau,
    TauArray,
    TauArrow,
    TauData,
    TauExn,
    TauList,
    TauPair,
    TauReal,
    TauRef,
    TauString,
    TyCtx,
    frev,
)
from .substitution import Subst

__all__ = [
    "contained_mu",
    "contained_tau_at",
    "contained_pi",
    "required_effect_mu",
    "required_effect_pi",
    "check_coverage",
    "is_covered",
]

_NO_TYVARS: frozenset = frozenset()


# ---------------------------------------------------------------------------
# Rule-based containment (direct transcription of the figure)
# ---------------------------------------------------------------------------


def contained_mu(omega: TyCtx, mu: Mu, phi: Effect, lenient: frozenset = _NO_TYVARS) -> bool:
    """``Omega |- mu : phi`` per the type-containment rules."""
    if isinstance(mu, MuVar):
        if mu.alpha in lenient:
            # Visible in the relevant type: its instances stay visible in
            # instantiated types, no effect tracking needed (Section 4).
            return True
        ae = omega.get(mu.alpha)
        if ae is None:
            return False
        return ae.frev() <= phi
    if isinstance(mu, MuBase):
        return True
    if isinstance(mu, MuBoxed):
        return mu.rho in phi and contained_tau_at(omega, mu.tau, phi, lenient)
    raise TypeError(f"contained_mu: {mu!r}")


def contained_tau_at(
    omega: TyCtx, tau: Tau, phi: Effect, lenient: frozenset = _NO_TYVARS
) -> bool:
    """Containment conditions contributed by the boxed constructor itself
    (its place has already been checked by the caller)."""
    if isinstance(tau, TauPair):
        return contained_mu(omega, tau.fst, phi, lenient) and contained_mu(
            omega, tau.snd, phi, lenient
        )
    if isinstance(tau, TauArrow):
        return (
            contained_mu(omega, tau.dom, phi, lenient)
            and contained_mu(omega, tau.cod, phi, lenient)
            and tau.arrow.latent <= phi
            and tau.arrow.handle in phi
        )
    if isinstance(tau, (TauString, TauReal, TauExn)):
        return True
    if isinstance(tau, TauList):
        return contained_mu(omega, tau.elem, phi, lenient)
    if isinstance(tau, TauRef):
        return contained_mu(omega, tau.content, phi, lenient)
    if isinstance(tau, TauArray):
        return contained_mu(omega, tau.elem, phi, lenient)
    if isinstance(tau, TauData):
        return all(contained_mu(omega, a, phi, lenient) for a in tau.targs)
    raise TypeError(f"contained_tau_at: {tau!r}")


def contained_pi(
    omega: TyCtx, pi: Pi, phi: Effect, lenient: frozenset = _NO_TYVARS
) -> bool:
    """``Omega |- pi : phi`` — type-scheme containment.

    For ``(all rvec evec alphavec Delta.tau, rho)`` the rules require the
    body to be contained (under ``Omega + Delta``) in ``phi`` extended with
    the bound region/effect variables, ``rho in phi``, the bound variables
    disjoint from ``frev(Omega, rho)``, and ``dom(Delta)`` disjoint from
    ``dom(Omega)``.
    """
    if not isinstance(pi, PiScheme):
        return contained_mu(omega, pi, phi, lenient)
    sigma = pi.scheme
    bound = sigma.bound_atoms()
    if bound & frev(omega, pi.rho):
        return False
    if set(sigma.delta) & set(omega):
        return False
    inner_omega = omega.extend(sigma.delta)
    inner_phi = phi | bound
    inner_lenient = lenient | frozenset(sigma.tvars)
    return pi.rho in phi and contained_mu(
        inner_omega, MuBoxed(sigma.body, pi.rho), inner_phi | {pi.rho}, inner_lenient
    )


# ---------------------------------------------------------------------------
# Minimal required effects (closed form)
# ---------------------------------------------------------------------------


def required_effect_mu(
    omega: TyCtx, mu: Mu, lenient: frozenset = _NO_TYVARS
) -> Effect:
    """The least ``phi`` with ``Omega |- mu : phi``.

    For a type variable that is neither bound in ``Omega`` nor lenient
    there is no such effect; :class:`RegionTypeError` is raised so misuse
    is loud.
    """
    out: set = set()
    _collect_mu(omega, mu, out, lenient)
    return frozenset(out)


def _collect_mu(omega: TyCtx, mu: Mu, out: set, lenient: frozenset) -> None:
    if isinstance(mu, MuVar):
        if mu.alpha in lenient:
            return
        ae = omega.get(mu.alpha)
        if ae is None:
            raise RegionTypeError(
                f"type variable {mu.alpha.display()} is neither tracked in the "
                "type-variable context nor visible in the function type — an "
                "untracked spurious type variable"
            )
        out |= ae.frev()
    elif isinstance(mu, MuBase):
        pass
    elif isinstance(mu, MuBoxed):
        out.add(mu.rho)
        _collect_tau(omega, mu.tau, out, lenient)
    else:
        raise TypeError(f"required_effect_mu: {mu!r}")


def _collect_tau(omega: TyCtx, tau: Tau, out: set, lenient: frozenset) -> None:
    if isinstance(tau, TauPair):
        _collect_mu(omega, tau.fst, out, lenient)
        _collect_mu(omega, tau.snd, out, lenient)
    elif isinstance(tau, TauArrow):
        out.add(tau.arrow.handle)
        out |= tau.arrow.latent
        _collect_mu(omega, tau.dom, out, lenient)
        _collect_mu(omega, tau.cod, out, lenient)
    elif isinstance(tau, (TauString, TauReal, TauExn)):
        pass
    elif isinstance(tau, TauList):
        _collect_mu(omega, tau.elem, out, lenient)
    elif isinstance(tau, TauRef):
        _collect_mu(omega, tau.content, out, lenient)
    elif isinstance(tau, TauArray):
        _collect_mu(omega, tau.elem, out, lenient)
    elif isinstance(tau, TauData):
        for a in tau.targs:
            _collect_mu(omega, a, out, lenient)
    else:
        raise TypeError(f"required_effect_tau: {tau!r}")


def required_effect_pi(
    omega: TyCtx, pi: Pi, lenient: frozenset = _NO_TYVARS
) -> Effect:
    """The least ``phi`` with ``Omega |- pi : phi`` (see
    :func:`required_effect_mu`)."""
    if not isinstance(pi, PiScheme):
        return required_effect_mu(omega, pi, lenient)
    sigma = pi.scheme
    inner_omega = omega.extend(sigma.delta)
    inner_lenient = lenient | frozenset(sigma.tvars)
    inner = set(
        required_effect_mu(inner_omega, MuBoxed(sigma.body, pi.rho), inner_lenient)
    )
    inner -= sigma.bound_atoms()
    inner.add(pi.rho)
    return frozenset(inner)


# ---------------------------------------------------------------------------
# Substitution coverage  Omega |- St : Delta
# ---------------------------------------------------------------------------


def check_coverage(omega: TyCtx, subst: Subst, delta: TyCtx) -> None:
    """Check ``Omega |- St : Delta``; raise :class:`CoverageError` otherwise.

    Requires ``dom(Delta) subseteq dom(St)`` and, for every tracked
    ``alpha``, ``Omega |- St(alpha) : frev(Delta(alpha))``.  Coverage is
    *strict* about type variables: a type variable occurring in
    ``St(alpha)`` must itself be tracked in ``Omega`` (the transitive
    spuriousness rule of Section 4.3).
    """
    missing = set(delta) - set(subst.ty)
    if missing:
        raise CoverageError(
            "substitution does not instantiate the tracked type variables "
            f"{sorted(a.display() for a in missing)}"
        )
    for alpha, ae in delta.items():
        target = subst.ty[alpha]
        budget = ae.frev()
        try:
            need = required_effect_mu(omega, target)
        except RegionTypeError as exc:
            raise CoverageError(str(exc)) from exc
        if not need <= budget:
            diff = need - budget
            raise CoverageError(
                f"type instantiated for {alpha.display()} mentions "
                f"{show_effect(diff)} not covered by its arrow effect "
                f"{ae.display()} — a dangling pointer could escape"
            )


def is_covered(omega: TyCtx, subst: Subst, delta: TyCtx) -> bool:
    """Boolean form of :func:`check_coverage`."""
    try:
        check_coverage(omega, subst, delta)
    except CoverageError:
        return False
    return True

"""The paper's formal system (Section 3): regions, effects, region types,
substitutions, containment, instantiation, GC safety, the region-annotated
term language, and the Figure 4 typing rules as an executable checker."""

from .effects import (
    ARROW_TOP,
    ArrowEffect,
    EffectBasis,
    EffectVar,
    EMPTY_EFFECT,
    EPS_TOP,
    RegionVar,
    RHO_TOP,
    VarSupply,
    effect,
    show_effect,
)
from .errors import (
    CoverageError,
    DanglingPointerError,
    LexError,
    MLExceptionError,
    ParseError,
    RegionInferenceError,
    RegionTypeError,
    ReproError,
    RuntimeFault,
    TypeError_,
    UseAfterFreeError,
)
from .rtypes import (
    EMPTY_CTX,
    MU_BOOL,
    MU_INT,
    MU_UNIT,
    Mu,
    MuBase,
    MuBoxed,
    MuVar,
    Pi,
    PiScheme,
    Scheme,
    TAU_EXN,
    TAU_REAL,
    TAU_STRING,
    TauArray,
    TauArrow,
    TauList,
    TauPair,
    TauRef,
    TyCtx,
    TyVar,
    arrow_mu,
    frev,
    frv,
    ftv,
    show_mu,
    show_pi,
    show_scheme,
    show_tau,
)
from .substitution import EMPTY_SUBST, Subst, rename_scheme
from .containment import (
    check_coverage,
    contained_mu,
    contained_pi,
    is_covered,
    required_effect_mu,
    required_effect_pi,
)
from .instantiation import check_instance, instantiate
from .gcsafety import context_contained, expr_contained, gc_safe, value_contained
from .typecheck import CheckResult, RegionTypeChecker, typecheck

__all__ = [name for name in dir() if not name.startswith("_")]

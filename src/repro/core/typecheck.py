"""The region type checker — the typing rules of Figure 4, executable.

``typecheck(term)`` computes a type-scheme-and-place ``pi`` and a minimal
effect ``phi`` for a region-annotated term, verifying every side condition
of the rules:

* well-formedness of annotations (``Omega |- mu``),
* the GC-safety relation ``G`` on [TeLam]/[TeFun] (Section 3.7),
* the instance-of relation — including *substitution coverage*
  ``Omega |- St : Delta`` — on region application [TeRapp] (Section 3.4),
* the freshness side conditions of [TeReg]/[TeFun],
* for the exception extension, the Section 4.4 requirement that exception
  payload types only mention top-level regions.

Because every rule's effect premise has the form ``phi_body subseteq
phi_declared``, checking with *minimal* effects is complete: [TeSub] never
needs to be guessed.

The checker is the referee of the whole reproduction: the ``rg`` strategy's
output must always pass it, and the ``rg-`` strategy's output fails it on
exactly the programs where spurious type variables matter (the paper's
Figures 1 and 8), mirroring the runtime dangling-pointer fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .containment import required_effect_mu
from .effects import EMPTY_EFFECT, Effect, RegionVar, show_effect
from .errors import RegionTypeError
from .gcsafety import gc_safety_failures
from .instantiation import instantiate
from .substitution import Subst
from .rtypes import (
    EMPTY_CTX,
    MU_BOOL,
    MU_INT,
    MU_UNIT,
    Mu,
    MuBase,
    MuBoxed,
    MuVar,
    Pi,
    PiScheme,
    Scheme,
    TAU_EXN,
    TAU_REAL,
    TAU_STRING,
    TauArray,
    TauArrow,
    TauData,
    TauList,
    TauPair,
    TauRef,
    TauString,
    TyCtx,
    frev,
    frv,
    ftv,
    show_mu,
    show_pi,
)
from . import terms as T

__all__ = ["CheckResult", "RegionTypeChecker", "typecheck"]


@dataclass(frozen=True)
class CheckResult:
    """The outcome of checking a closed program."""

    pi: Pi
    effect: Effect


def _is_mu(pi: Pi) -> bool:
    return not isinstance(pi, PiScheme)


def well_formed_mu(omega: TyCtx, mu: Mu) -> bool:
    """``Omega |- mu``.

    The paper's well-formedness demands every type variable be in
    ``dom(Omega)``; our implementation variant also admits *plain* bound
    type variables (non-spurious ones, which carry no arrow effect), whose
    scoping is guaranteed by Hindley-Milner inference upstream.  The
    checker therefore does not re-verify type-variable scoping here; the
    region-relevant side conditions (containment, coverage, GC safety)
    are checked where they matter.
    """
    return True


class RegionTypeChecker:
    """Syntax-directed checker for the Figure 4 rules.

    Parameters
    ----------
    strict_exceptions:
        enforce the Section 4.4 side condition that exception payload types
        mention only top-level regions (on by default; disabled only to
        demonstrate the resulting unsoundness in tests).
    """

    def __init__(self, strict_exceptions: bool = True) -> None:
        self.strict_exceptions = strict_exceptions

    # -- entry points -------------------------------------------------------

    def check_program(self, term: T.Term) -> CheckResult:
        """Check a closed program."""
        pi, phi = self.check(EMPTY_CTX, {}, {}, term)
        return CheckResult(pi, phi)

    # -- main dispatch ------------------------------------------------------

    def check(
        self,
        omega: TyCtx,
        gamma: Mapping[str, Pi],
        exnenv: Mapping[str, Optional[Mu]],
        e: T.Term,
    ) -> tuple[Pi, Effect]:
        """``Omega, Gamma |- e : pi, phi`` with minimal ``phi``."""
        method = getattr(self, f"_check_{type(e).__name__}", None)
        if method is None:
            raise RegionTypeError(f"no typing rule for {type(e).__name__}")
        return method(omega, gamma, exnenv, e)

    def check_mu(
        self,
        omega: TyCtx,
        gamma: Mapping[str, Pi],
        exnenv: Mapping[str, Optional[Mu]],
        e: T.Term,
    ) -> tuple[Mu, Effect]:
        """Like :meth:`check` but requires the result to be a ``mu``."""
        pi, phi = self.check(omega, gamma, exnenv, e)
        if isinstance(pi, PiScheme):
            if pi.scheme.is_monotype():
                return MuBoxed(pi.scheme.body, pi.rho), phi
            raise RegionTypeError(
                f"expected a type-and-place, got the polymorphic {show_pi(pi)} "
                "(a region application is missing)"
            )
        return pi, phi

    # -- variables and literals ---------------------------------------------

    def _check_Var(self, omega, gamma, exnenv, e: T.Var):
        pi = gamma.get(e.name)
        if pi is None:
            raise RegionTypeError(f"unbound variable {e.name}")
        return pi, EMPTY_EFFECT

    def _check_IntLit(self, omega, gamma, exnenv, e: T.IntLit):
        return MU_INT, EMPTY_EFFECT

    def _check_BoolLit(self, omega, gamma, exnenv, e: T.BoolLit):
        return MU_BOOL, EMPTY_EFFECT

    def _check_UnitLit(self, omega, gamma, exnenv, e: T.UnitLit):
        return MU_UNIT, EMPTY_EFFECT

    def _check_StringLit(self, omega, gamma, exnenv, e: T.StringLit):
        return MuBoxed(TAU_STRING, e.rho), frozenset({e.rho})

    def _check_RealLit(self, omega, gamma, exnenv, e: T.RealLit):
        return MuBoxed(TAU_REAL, e.rho), frozenset({e.rho})

    def _check_NilLit(self, omega, gamma, exnenv, e: T.NilLit):
        mu = e.mu
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, TauList)):
            raise RegionTypeError(f"nil annotated with a non-list type {show_mu(mu)}")
        if not well_formed_mu(omega, mu):
            raise RegionTypeError(f"nil annotation {show_mu(mu)} is not well-formed")
        return mu, EMPTY_EFFECT

    # -- functions -----------------------------------------------------------

    def _check_Lam(self, omega, gamma, exnenv, e: T.Lam):
        mu = e.mu
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, TauArrow)):
            raise RegionTypeError("lambda annotated with a non-arrow type")
        if mu.rho != e.rho:
            raise RegionTypeError(
                f"lambda allocated at {e.rho.display()} but typed at {mu.rho.display()}"
            )
        if not well_formed_mu(omega, mu):
            raise RegionTypeError(f"lambda type {show_mu(mu)} is not well-formed")
        arrow = mu.tau.arrow
        inner_gamma = dict(gamma)
        inner_gamma[e.param] = mu.tau.dom
        cod, phi_body = self.check_mu(omega, inner_gamma, exnenv, e.body)
        if cod != mu.tau.cod:
            raise RegionTypeError(
                f"lambda body has type {show_mu(cod)}, annotation says {show_mu(mu.tau.cod)}"
            )
        if not phi_body <= arrow.latent:
            raise RegionTypeError(
                f"lambda body effect {show_effect(phi_body - arrow.latent)} "
                f"exceeds the latent effect {arrow.display()}"
            )
        restricted = _restrict(gamma, T.fpv(e.body) - {e.param})
        failures = gc_safety_failures(omega, restricted, e.body, frozenset({e.param}), mu)
        if failures:
            raise RegionTypeError("GC-safety violation in fn: " + "; ".join(failures))
        return mu, frozenset({e.rho})

    def _check_FunDef(self, omega, gamma, exnenv, e: T.FunDef):
        pi = e.pi
        sigma = pi.scheme
        if pi.rho != e.rho:
            raise RegionTypeError("fun allocated at a region different from its scheme place")
        if tuple(sigma.rvars) != tuple(e.rparams):
            raise RegionTypeError("fun region parameters differ from the scheme's bound regions")
        body_tau = sigma.body
        if not isinstance(body_tau, TauArrow):
            raise RegionTypeError("fun scheme body is not an arrow type")
        arrow = body_tau.arrow
        bound = sigma.bound_atoms()
        delta = sigma.delta

        free_names = T.fpv(e)
        restricted = _restrict(gamma, free_names)
        # (dom(Delta) | frev(rvec, evec)) disjoint from fv(Omega, Gamma, rho)
        outer_fv = frev(omega, _pis(restricted), e.rho) | ftv(omega, _pis(restricted))
        clash = (bound | sigma.bound_tyvars()) & outer_fv
        if clash:
            raise RegionTypeError(
                f"bound variables of fun {e.fname} occur free in the context: "
                f"{sorted(str(c) for c in clash)}"
            )
        if set(delta) & set(omega):
            raise RegionTypeError("Delta overlaps the enclosing type-variable context")

        recursive = e.fname in T.fpv(e.body)
        if recursive and bound & frev(delta):
            raise RegionTypeError(
                f"fun {e.fname}: polymorphic recursion may not quantify over "
                "variables appearing in the type-variable context Delta"
            )

        inner_omega = omega.extend(delta)
        inner_gamma = dict(gamma)
        if recursive:
            rec_scheme = Scheme(sigma.rvars, sigma.evars, (), EMPTY_CTX, body_tau)
            inner_gamma[e.fname] = PiScheme(rec_scheme, e.rho)
        inner_gamma[e.param] = body_tau.dom

        cod, phi_body = self.check_mu(inner_omega, inner_gamma, exnenv, e.body)
        if cod != body_tau.cod:
            raise RegionTypeError(
                f"fun {e.fname} body has type {show_mu(cod)}, "
                f"scheme says {show_mu(body_tau.cod)}"
            )
        if not phi_body <= arrow.latent:
            raise RegionTypeError(
                f"fun {e.fname} body effect {show_effect(phi_body - arrow.latent)} "
                f"exceeds the latent effect {arrow.display()}"
            )
        failures = gc_safety_failures(
            omega, restricted, e.body, frozenset({e.fname, e.param}), pi
        )
        if failures:
            raise RegionTypeError(
                f"GC-safety violation in fun {e.fname}: " + "; ".join(failures)
            )
        return pi, frozenset({e.rho})

    def _check_RApp(self, omega, gamma, exnenv, e: T.RApp):
        pi_fn, phi = self.check(omega, gamma, exnenv, e.fn)
        if not isinstance(pi_fn, PiScheme):
            raise RegionTypeError("region application of a non-polymorphic value")
        sigma = pi_fn.scheme
        if tuple(e.inst.rgn.get(r, r) for r in sigma.rvars) != tuple(e.rargs):
            raise RegionTypeError(
                "region arguments disagree with the recorded instantiation"
            )
        tau = instantiate(omega, sigma, e.inst)
        result = MuBoxed(tau, e.rho)
        if not well_formed_mu(omega, result):
            raise RegionTypeError("instance type is not well-formed")
        return result, phi | {e.rho, pi_fn.rho}

    def _check_App(self, omega, gamma, exnenv, e: T.App):
        mu_fn, phi1 = self.check_mu(omega, gamma, exnenv, e.fn)
        if not (isinstance(mu_fn, MuBoxed) and isinstance(mu_fn.tau, TauArrow)):
            raise RegionTypeError(f"application of a non-function: {show_mu(mu_fn)}")
        mu_arg, phi2 = self.check_mu(omega, gamma, exnenv, e.arg)
        if mu_arg != mu_fn.tau.dom:
            raise RegionTypeError(
                f"argument type {show_mu(mu_arg)} differs from domain "
                f"{show_mu(mu_fn.tau.dom)}"
            )
        arrow = mu_fn.tau.arrow
        return (
            mu_fn.tau.cod,
            arrow.latent | phi1 | phi2 | {arrow.handle, mu_fn.rho},
        )

    # -- binding forms --------------------------------------------------------

    def _check_Let(self, omega, gamma, exnenv, e: T.Let):
        pi1, phi1 = self.check(omega, gamma, exnenv, e.rhs)
        inner = dict(gamma)
        inner[e.name] = pi1
        mu, phi2 = self.check_mu(omega, inner, exnenv, e.body)
        return mu, phi1 | phi2

    def _check_Letregion(self, omega, gamma, exnenv, e: T.Letregion):
        mu, phi = self.check_mu(omega, gamma, exnenv, e.body)
        restricted = _restrict(gamma, T.fpv(e.body))
        outside = frev(omega, _pis(restricted), mu)
        bound = frozenset(e.rhos)
        if bound & outside:
            raise RegionTypeError(
                f"letregion-bound {show_effect(bound & outside)} escapes "
                "into the context or the result type"
            )
        for rho in e.rhos:
            if rho.top:
                raise RegionTypeError("letregion may not bind a global region")
        # Discharge the bound regions plus any effect variables local to e.
        local_evars = frozenset(
            a for a in phi if not isinstance(a, RegionVar) and a not in outside and not a.top
        )
        return mu, phi - bound - local_evars

    # -- data ------------------------------------------------------------------

    def _check_Pair(self, omega, gamma, exnenv, e: T.Pair):
        mu1, phi1 = self.check_mu(omega, gamma, exnenv, e.fst)
        mu2, phi2 = self.check_mu(omega, gamma, exnenv, e.snd)
        return MuBoxed(TauPair(mu1, mu2), e.rho), phi1 | phi2 | {e.rho}

    def _check_Select(self, omega, gamma, exnenv, e: T.Select):
        mu, phi = self.check_mu(omega, gamma, exnenv, e.pair)
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, TauPair)):
            raise RegionTypeError(f"# {e.index} of a non-pair: {show_mu(mu)}")
        if e.index not in (1, 2):
            raise RegionTypeError(f"pair projection index {e.index}")
        out = mu.tau.fst if e.index == 1 else mu.tau.snd
        return out, phi | {mu.rho}

    def _check_Cons(self, omega, gamma, exnenv, e: T.Cons):
        mu_h, phi1 = self.check_mu(omega, gamma, exnenv, e.head)
        mu_t, phi2 = self.check_mu(omega, gamma, exnenv, e.tail)
        if not (isinstance(mu_t, MuBoxed) and isinstance(mu_t.tau, TauList)):
            raise RegionTypeError(f":: onto a non-list {show_mu(mu_t)}")
        if mu_t.tau.elem != mu_h:
            raise RegionTypeError(
                f":: element type {show_mu(mu_h)} differs from list "
                f"element type {show_mu(mu_t.tau.elem)}"
            )
        if mu_t.rho != e.rho:
            raise RegionTypeError(
                f":: allocates at {e.rho.display()} but the spine lives in "
                f"{mu_t.rho.display()}"
            )
        return mu_t, phi1 | phi2 | {e.rho}

    def _check_If(self, omega, gamma, exnenv, e: T.If):
        mu_c, phi0 = self.check_mu(omega, gamma, exnenv, e.cond)
        if mu_c != MU_BOOL:
            raise RegionTypeError(f"if-condition has type {show_mu(mu_c)}")
        mu1, phi1 = self.check_mu(omega, gamma, exnenv, e.then)
        mu2, phi2 = self.check_mu(omega, gamma, exnenv, e.els)
        if mu1 != mu2:
            raise RegionTypeError(
                f"if-branches disagree: {show_mu(mu1)} vs {show_mu(mu2)}"
            )
        return mu1, phi0 | phi1 | phi2

    # -- primitives -------------------------------------------------------------

    def _check_Prim(self, omega, gamma, exnenv, e: T.Prim):
        arg_results = [self.check_mu(omega, gamma, exnenv, a) for a in e.args]
        mus = [mu for mu, _ in arg_results]
        phi = frozenset().union(*(p for _, p in arg_results)) if arg_results else EMPTY_EFFECT
        mu_out, extra = _prim_type(e.op, mus, e.rho)
        return mu_out, phi | extra

    # -- references ---------------------------------------------------------------

    def _check_MkRef(self, omega, gamma, exnenv, e: T.MkRef):
        mu, phi = self.check_mu(omega, gamma, exnenv, e.init)
        return MuBoxed(TauRef(mu), e.rho), phi | {e.rho}

    def _check_Deref(self, omega, gamma, exnenv, e: T.Deref):
        mu, phi = self.check_mu(omega, gamma, exnenv, e.ref)
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, TauRef)):
            raise RegionTypeError(f"! of a non-ref {show_mu(mu)}")
        return mu.tau.content, phi | {mu.rho}

    def _check_Assign(self, omega, gamma, exnenv, e: T.Assign):
        mu_r, phi1 = self.check_mu(omega, gamma, exnenv, e.ref)
        if not (isinstance(mu_r, MuBoxed) and isinstance(mu_r.tau, TauRef)):
            raise RegionTypeError(f":= into a non-ref {show_mu(mu_r)}")
        mu_v, phi2 = self.check_mu(omega, gamma, exnenv, e.value)
        if mu_v != mu_r.tau.content:
            raise RegionTypeError(
                f":= stores {show_mu(mu_v)} into a {show_mu(mu_r)} cell"
            )
        return MU_UNIT, phi1 | phi2 | {mu_r.rho}

    # -- datatypes -------------------------------------------------------------------

    def _check_LetData(self, omega, gamma, exnenv, e: T.LetData):
        from .rtypes import TauData

        for conname, template in e.constructors:
            if template is None:
                continue
            # Uniform representation: every place in a payload template is
            # the declaration's self region.
            for rho in _template_places(template):
                if rho != e.self_rho:
                    raise RegionTypeError(
                        f"constructor {conname} of {e.name}: payload component "
                        f"at {rho.display()} violates the uniform "
                        f"single-region representation"
                    )
            if _template_has_arrow(template):
                raise RegionTypeError(
                    f"constructor {conname} of {e.name}: function types in "
                    "constructor payloads are not supported (wrap them in a "
                    "type parameter)"
                )
        inner = dict(exnenv)
        inner[f"data:{e.name}"] = e
        return self.check(omega, gamma, inner, e.body)

    def _data_decl(self, exnenv, dataname: str) -> T.LetData:
        decl = exnenv.get(f"data:{dataname}")
        if decl is None:
            raise RegionTypeError(f"unknown datatype {dataname}")
        return decl

    def _con_payload(
        self, decl: T.LetData, conname: str, targs: tuple, rho: RegionVar
    ) -> Optional[Mu]:
        """Instantiate a constructor's payload template at (targs, rho)."""
        for cname, template in decl.constructors:
            if cname == conname:
                if template is None:
                    return None
                if len(targs) != len(decl.params):
                    raise RegionTypeError(
                        f"{decl.name} expects {len(decl.params)} type "
                        f"argument(s), got {len(targs)}"
                    )
                subst = Subst(
                    ty=dict(zip(decl.params, targs)),
                    rgn={decl.self_rho: rho},
                )
                return subst.mu(template)
        raise RegionTypeError(f"{conname} is not a constructor of {decl.name}")

    def _check_DataCon(self, omega, gamma, exnenv, e: T.DataCon):
        from .rtypes import TauData

        decl = self._data_decl(exnenv, e.dataname)
        payload = self._con_payload(decl, e.conname, e.targs, e.rho)
        phi: Effect = frozenset({e.rho})
        if (payload is None) != (e.arg is None):
            raise RegionTypeError(f"arity mismatch for constructor {e.conname}")
        if e.arg is not None:
            mu, phi_arg = self.check_mu(omega, gamma, exnenv, e.arg)
            if mu != payload:
                raise RegionTypeError(
                    f"constructor {e.conname} expects {show_mu(payload)}, "
                    f"got {show_mu(mu)}"
                )
            phi = phi | phi_arg
        return MuBoxed(TauData(e.dataname, e.targs), e.rho), phi

    def _check_Case(self, omega, gamma, exnenv, e: T.Case):
        from .rtypes import TauData

        mu_s, phi = self.check_mu(omega, gamma, exnenv, e.scrutinee)
        if not (isinstance(mu_s, MuBoxed) and isinstance(mu_s.tau, TauData)):
            # `case v of x => ...` over a non-datatype value is a binding
            # form (SML allows irrefutable patterns): only catch-all
            # branches may appear.
            if any(br.conname is not None for br in e.branches):
                raise RegionTypeError(
                    f"case on a non-datatype value {show_mu(mu_s)}"
                )
            decl = None
        else:
            decl = self._data_decl(exnenv, mu_s.tau.name)
            phi = phi | {mu_s.rho}
        result: Optional[Mu] = None
        for br in e.branches:
            inner = dict(gamma)
            if br.conname is not None:
                payload = self._con_payload(
                    decl, br.conname, mu_s.tau.targs, mu_s.rho
                )
                if (payload is None) and br.binder is not None:
                    raise RegionTypeError(
                        f"{br.conname} is nullary but the branch binds a payload"
                    )
                if payload is not None:
                    if br.binder is None:
                        raise RegionTypeError(
                            f"{br.conname} carries a payload the branch ignores "
                            "without binding"
                        )
                    inner[br.binder] = payload
            elif br.binder is not None:
                inner[br.binder] = mu_s
            mu_b, phi_b = self.check_mu(omega, inner, exnenv, br.body)
            phi = phi | phi_b
            if result is None:
                result = mu_b
            elif mu_b != result:
                raise RegionTypeError(
                    f"case branches disagree: {show_mu(result)} vs {show_mu(mu_b)}"
                )
        if result is None:
            raise RegionTypeError("case with no branches")
        return result, phi

    # -- exceptions ------------------------------------------------------------------

    def _check_LetExn(self, omega, gamma, exnenv, e: T.LetExn):
        if e.payload is not None:
            if not well_formed_mu(omega, e.payload):
                raise RegionTypeError(
                    f"exception {e.exname}: payload type is not well-formed"
                )
            if self.strict_exceptions:
                try:
                    need = required_effect_mu(omega, e.payload)
                except RegionTypeError as exc:
                    raise RegionTypeError(
                        f"exception {e.exname}: payload type mentions an "
                        f"untracked exception type variable ({exc}) — "
                        "Section 4.4 tracks exception type variables like "
                        "spurious ones, pinned to the global effect"
                    ) from exc
                bad = [r for r in need
                       if isinstance(r, RegionVar) and not r.top]
                if bad:
                    raise RegionTypeError(
                        f"exception {e.exname}: payload type mentions non-global "
                        f"regions {show_effect(frozenset(bad))} (Section 4.4: a "
                        "raised value may escape; all its regions must be "
                        "top-level)"
                    )
        inner = dict(exnenv)
        inner[e.exname] = e.payload
        return self.check(omega, gamma, inner, e.body)

    def _check_Con(self, omega, gamma, exnenv, e: T.Con):
        if e.exname not in exnenv:
            raise RegionTypeError(f"unknown exception constructor {e.exname}")
        payload = exnenv[e.exname]
        phi: Effect = frozenset({e.rho})
        if self.strict_exceptions and not e.rho.top:
            raise RegionTypeError(
                f"exception value allocated in non-global region {e.rho.display()}"
            )
        if (payload is None) != (e.arg is None):
            raise RegionTypeError(f"arity mismatch for exception {e.exname}")
        if e.arg is not None:
            mu, phi_arg = self.check_mu(omega, gamma, exnenv, e.arg)
            if mu != payload:
                raise RegionTypeError(
                    f"exception {e.exname} expects {show_mu(payload)}, got {show_mu(mu)}"
                )
            phi |= phi_arg
        return MuBoxed(TAU_EXN, e.rho), phi

    def _check_Raise(self, omega, gamma, exnenv, e: T.Raise):
        mu, phi = self.check_mu(omega, gamma, exnenv, e.exn)
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, type(TAU_EXN))):
            raise RegionTypeError(f"raise of a non-exception {show_mu(mu)}")
        if not well_formed_mu(omega, e.mu):
            raise RegionTypeError("raise annotated with an ill-formed type")
        return e.mu, phi | {mu.rho}

    def _check_Handle(self, omega, gamma, exnenv, e: T.Handle):
        mu, phi1 = self.check_mu(omega, gamma, exnenv, e.body)
        if e.exname not in exnenv:
            raise RegionTypeError(f"handler for unknown exception {e.exname}")
        payload = exnenv[e.exname]
        inner = dict(gamma)
        if e.binder is not None:
            if payload is None:
                raise RegionTypeError(
                    f"handler binds a payload but {e.exname} is nullary"
                )
            inner[e.binder] = payload
        mu_h, phi2 = self.check_mu(omega, inner, exnenv, e.handler)
        if mu_h != mu:
            raise RegionTypeError(
                f"handler type {show_mu(mu_h)} differs from body type {show_mu(mu)}"
            )
        return mu, phi1 | phi2

    # -- values (for small-step preservation tests) ------------------------------------

    def _check_VInt(self, omega, gamma, exnenv, e: T.VInt):
        return MU_INT, EMPTY_EFFECT

    def _check_VBool(self, omega, gamma, exnenv, e: T.VBool):
        return MU_BOOL, EMPTY_EFFECT

    def _check_VUnit(self, omega, gamma, exnenv, e: T.VUnit):
        return MU_UNIT, EMPTY_EFFECT

    def _check_VNil(self, omega, gamma, exnenv, e: T.VNil):
        return self._check_NilLit(omega, gamma, exnenv, T.NilLit(e.mu))

    def _check_VStr(self, omega, gamma, exnenv, e: T.VStr):
        return MuBoxed(TAU_STRING, e.rho), EMPTY_EFFECT

    def _check_VReal(self, omega, gamma, exnenv, e: T.VReal):
        return MuBoxed(TAU_REAL, e.rho), EMPTY_EFFECT

    def _check_VPair(self, omega, gamma, exnenv, e: T.VPair):
        mu1, _ = self.check(omega, {}, exnenv, e.fst)
        mu2, _ = self.check(omega, {}, exnenv, e.snd)
        return MuBoxed(TauPair(mu1, mu2), e.rho), EMPTY_EFFECT

    def _check_VCons(self, omega, gamma, exnenv, e: T.VCons):
        mu_h, _ = self.check(omega, {}, exnenv, e.head)
        mu_t, _ = self.check(omega, {}, exnenv, e.tail)
        if not (isinstance(mu_t, MuBoxed) and isinstance(mu_t.tau, TauList)):
            raise RegionTypeError("cons value with a non-list tail")
        if mu_t.rho != e.rho or mu_t.tau.elem != mu_h:
            raise RegionTypeError("ill-typed cons value")
        return mu_t, EMPTY_EFFECT

    def _check_VClos(self, omega, gamma, exnenv, e: T.VClos):
        # [TvLam]: the body is checked in an empty environment; values are
        # closed (Proposition 15); values have no effect.
        mu, _phi = self._check_Lam(
            omega, {}, exnenv, T.Lam(e.param, e.body, e.rho, e.mu)
        )
        return mu, EMPTY_EFFECT

    def _check_VFunClos(self, omega, gamma, exnenv, e: T.VFunClos):
        pi, _phi = self._check_FunDef(
            omega, {}, exnenv,
            T.FunDef(e.fname, e.rparams, e.param, e.body, e.rho, e.pi),
        )
        return pi, EMPTY_EFFECT


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _template_places(mu: Mu) -> set:
    from .rtypes import frv

    return set(frv(mu))


def _template_has_arrow(mu: Mu) -> bool:
    from .rtypes import TauData

    if isinstance(mu, MuBoxed):
        tau = mu.tau
        if isinstance(tau, TauArrow):
            return True
        if isinstance(tau, TauPair):
            return _template_has_arrow(tau.fst) or _template_has_arrow(tau.snd)
        if isinstance(tau, TauList):
            return _template_has_arrow(tau.elem)
        if isinstance(tau, TauRef):
            return _template_has_arrow(tau.content)
        if isinstance(tau, TauArray):
            return _template_has_arrow(tau.elem)
        if isinstance(tau, TauData):
            return any(_template_has_arrow(a) for a in tau.targs)
    return False


def _restrict(gamma: Mapping[str, Pi], names: frozenset) -> dict[str, Pi]:
    return {x: pi for x, pi in gamma.items() if x in names}


def _pis(gamma: Mapping[str, Pi]) -> tuple[Pi, ...]:
    return tuple(gamma.values())


def _erase(mu: Mu) -> str:
    """The ML erasure of a type-and-place, for region-polymorphic
    comparisons (only base-ish types compare, so a shallow tag works)."""
    if isinstance(mu, MuBoxed):
        return type(mu.tau).__name__
    if isinstance(mu, MuBase):
        return mu.kind
    return "tyvar"


def _admits_eq_mu(mu: Mu) -> bool:
    """SML equality types over region types: base types, strings, pairs
    and lists of equality types, any ref, and datatypes whose parameter
    instantiations are equality types (the frontend already verified the
    datatype's own constructors).  Reals, arrows, and ``exn`` are not
    equality types.  Type variables are assumed to admit equality — the
    frontend's ``''a`` discipline guarantees only equality types are
    instantiated for them at ``=``."""
    if isinstance(mu, (MuVar, MuBase)):
        return True
    assert isinstance(mu, MuBoxed)
    tau = mu.tau
    if isinstance(tau, TauString):
        return True
    if isinstance(tau, TauPair):
        return _admits_eq_mu(tau.fst) and _admits_eq_mu(tau.snd)
    if isinstance(tau, TauList):
        return _admits_eq_mu(tau.elem)
    if isinstance(tau, (TauRef, TauArray)):
        return True
    if isinstance(tau, TauData):
        return all(_admits_eq_mu(a) for a in tau.targs)
    return False  # real, arrow, exn


def _prim_type(op: str, mus: list[Mu], rho: Optional[RegionVar]) -> tuple[Mu, Effect]:
    """Typing of primitive operations.

    Returns the result type and the *extra* effect contributed by the
    primitive itself (argument effects are the caller's business): a get
    effect on every boxed argument and a put effect on ``rho`` when the
    primitive allocates.
    """
    get: set = set()
    for mu in mus:
        if isinstance(mu, MuBoxed):
            get.add(mu.rho)

    def want(n: int) -> None:
        if len(mus) != n:
            raise RegionTypeError(f"primitive {op} expects {n} arguments, got {len(mus)}")

    def boxed(i: int, tau_cls) -> MuBoxed:
        mu = mus[i]
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, tau_cls)):
            raise RegionTypeError(
                f"primitive {op}: argument {i + 1} has type {show_mu(mu)}"
            )
        return mu

    def put() -> RegionVar:
        if rho is None:
            raise RegionTypeError(f"allocating primitive {op} lacks a destination region")
        get.add(rho)
        return rho

    if op in ("add", "sub", "mul", "div", "mod"):
        want(2)
        for i in range(2):
            if mus[i] != MU_INT:
                raise RegionTypeError(f"{op}: int expected, got {show_mu(mus[i])}")
        return MU_INT, frozenset(get)
    if op == "neg":
        want(1)
        if mus[0] != MU_INT:
            raise RegionTypeError(f"neg: int expected, got {show_mu(mus[0])}")
        return MU_INT, frozenset(get)
    if op in ("lt", "le", "gt", "ge", "eq", "ne"):
        want(2)
        # Comparison is region-polymorphic: the operands may live in
        # different regions (both are read — the get effects cover them);
        # only the underlying (erased) types must agree.
        if _erase(mus[0]) != _erase(mus[1]):
            raise RegionTypeError(
                f"{op}: operand types differ: {show_mu(mus[0])} vs {show_mu(mus[1])}"
            )
        if op in ("eq", "ne"):
            if not _admits_eq_mu(mus[0]):
                raise RegionTypeError(
                    f"{op}: not an equality type: {show_mu(mus[0])}"
                )
            # Structural equality reads the whole operand: a get effect
            # on every region reachable through the type, not just the
            # top box, so the containment rule keeps spines alive.
            get.update(frv(mus[0]))
            get.update(frv(mus[1]))
        else:
            ok = mus[0] in (MU_INT, MU_BOOL, MU_UNIT) or (
                isinstance(mus[0], MuBoxed)
                and isinstance(mus[0].tau, (type(TAU_STRING), type(TAU_REAL)))
            )
            if not ok:
                raise RegionTypeError(
                    f"{op}: not an ordered type: {show_mu(mus[0])}"
                )
        return MU_BOOL, frozenset(get)
    if op in ("radd", "rsub", "rmul", "rdiv"):
        want(2)
        boxed(0, type(TAU_REAL))
        boxed(1, type(TAU_REAL))
        return MuBoxed(TAU_REAL, put()), frozenset(get)
    if op in ("rneg", "sqrt", "rsin", "rcos", "ratan", "rexp", "rln", "rabs"):
        want(1)
        boxed(0, type(TAU_REAL))
        return MuBoxed(TAU_REAL, put()), frozenset(get)
    if op == "real":  # int -> real
        want(1)
        if mus[0] != MU_INT:
            raise RegionTypeError("real: int expected")
        return MuBoxed(TAU_REAL, put()), frozenset(get)
    if op in ("floor", "round", "trunc"):
        want(1)
        boxed(0, type(TAU_REAL))
        return MU_INT, frozenset(get)
    if op == "concat":
        want(2)
        boxed(0, type(TAU_STRING))
        boxed(1, type(TAU_STRING))
        return MuBoxed(TAU_STRING, put()), frozenset(get)
    if op == "size":
        want(1)
        boxed(0, type(TAU_STRING))
        return MU_INT, frozenset(get)
    if op == "int_to_string":
        want(1)
        if mus[0] != MU_INT:
            raise RegionTypeError("int_to_string: int expected")
        return MuBoxed(TAU_STRING, put()), frozenset(get)
    if op == "real_to_string":
        want(1)
        boxed(0, type(TAU_REAL))
        return MuBoxed(TAU_STRING, put()), frozenset(get)
    if op == "print":
        want(1)
        boxed(0, type(TAU_STRING))
        return MU_UNIT, frozenset(get)
    if op == "not":
        want(1)
        if mus[0] != MU_BOOL:
            raise RegionTypeError("not: bool expected")
        return MU_BOOL, frozenset(get)
    if op == "null":
        want(1)
        boxed(0, TauList)
        return MU_BOOL, frozenset(get)
    if op == "hd":
        want(1)
        mu = boxed(0, TauList)
        return mu.tau.elem, frozenset(get)
    if op == "tl":
        want(1)
        mu = boxed(0, TauList)
        return mu, frozenset(get)
    if op == "array":
        # array (n, init) at rho : (elem array, rho)
        want(1)
        mu = boxed(0, TauPair)
        if mu.tau.fst != MU_INT:
            raise RegionTypeError(
                f"array: length must be int, got {show_mu(mu.tau.fst)}"
            )
        return MuBoxed(TauArray(mu.tau.snd), put()), frozenset(get)
    if op == "asub":
        # sub (a, i): reads a slot — a get effect on the array's region.
        want(1)
        mu = boxed(0, TauPair)
        arr = mu.tau.fst
        if not (isinstance(arr, MuBoxed) and isinstance(arr.tau, TauArray)):
            raise RegionTypeError(f"sub of a non-array {show_mu(arr)}")
        if mu.tau.snd != MU_INT:
            raise RegionTypeError("sub: index must be int")
        get.add(arr.rho)
        return arr.tau.elem, frozenset(get)
    if op == "aupdate":
        # update (a, (i, v)): writes a slot — a get effect on the array's
        # region (and the inner index/value pair's own box).
        want(1)
        mu = boxed(0, TauPair)
        arr = mu.tau.fst
        if not (isinstance(arr, MuBoxed) and isinstance(arr.tau, TauArray)):
            raise RegionTypeError(f"update of a non-array {show_mu(arr)}")
        iv = mu.tau.snd
        if not (isinstance(iv, MuBoxed) and isinstance(iv.tau, TauPair)):
            raise RegionTypeError("update: expected an (index, value) pair")
        if iv.tau.fst != MU_INT:
            raise RegionTypeError("update: index must be int")
        if iv.tau.snd != arr.tau.elem:
            raise RegionTypeError(
                f"update stores {show_mu(iv.tau.snd)} into a "
                f"{show_mu(arr)} slot"
            )
        get.add(arr.rho)
        get.add(iv.rho)
        return MU_UNIT, frozenset(get)
    if op == "alength":
        want(1)
        mu = boxed(0, TauArray)
        return MU_INT, frozenset(get)
    raise RegionTypeError(f"unknown primitive {op}")


def typecheck(term: T.Term, strict_exceptions: bool = True) -> CheckResult:
    """Check a closed region-annotated program; raise on any violation."""
    return RegionTypeChecker(strict_exceptions).check_program(term)

"""Seeded, deterministic GC schedules (fault plans).

A :class:`FaultPlan` decides, as a pure function of the run's event
indices, where the runtime injects a collection and of which kind.  Two
families of GC points exist:

* **allocation points** — after the ``i``-th allocation (0-based), the
  classic place a collection can happen; ``gc_every_alloc`` is the single
  densest point of this family (``FaultPlan.every_nth(1)``);
* **region-deallocation points** — right after the ``i``-th region is
  popped from the region stack.  These reach dangle windows that contain
  *no* allocation: a closure that captures a value in a just-deallocated
  region is traced immediately, before the program gets a chance to drop
  it.  ``gc_every_alloc`` alone can never observe that class of fault.

Because a plan consults only ``(seed, index)``, the same seed always
reproduces the same schedule — there is no hidden RNG state threaded
through the run.  Plans are frozen dataclasses, so they can live inside
the frozen :class:`~repro.config.RuntimeFlags` and be compared, hashed,
and round-tripped through JSON for corpus reproducers.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = ["FaultPlan", "GC_EVERY_ALLOC"]

#: Collection kinds a plan may inject.  ``"auto"`` defers to the
#: collector's generational policy, ``"random"`` picks minor/major from
#: the seed — the mode that stresses the write barrier.
KINDS = ("auto", "minor", "major", "random")


def _chance(seed: int, salt: str, index: int) -> float:
    """A deterministic uniform draw in [0, 1) for one event index.

    Seeding :class:`random.Random` with a string hashes it with SHA-512,
    which is stable across Python versions and ``PYTHONHASHSEED``.
    """
    return random.Random(f"{seed}:{salt}:{index}").random()


@dataclass(frozen=True)
class FaultPlan:
    """Where and how to inject collections.  All fields compose: a plan
    may fire on an every-Nth cadence, at explicit indices, and randomly,
    at both allocation and deallocation points."""

    #: Collect after every Nth allocation (1 = every allocation).
    every: Optional[int] = None
    #: Collect after exactly these allocation indices (0-based).
    at: tuple[int, ...] = ()
    #: Collect after each allocation with this probability.
    rate: float = 0.0
    #: Collect after every Nth region deallocation.
    dealloc_every: Optional[int] = None
    #: Collect after exactly these deallocation indices (0-based).
    dealloc_at: tuple[int, ...] = ()
    #: Collect after each region deallocation with this probability.
    dealloc_rate: float = 0.0
    #: Seed for the randomized cadences and the ``"random"`` kind.
    seed: int = 0
    #: Which collection to run at an injected point (see :data:`KINDS`).
    kind: str = "auto"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown collection kind {self.kind!r}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def every_nth(cls, n: int, kind: str = "auto") -> "FaultPlan":
        """Collect at every Nth allocation; ``every_nth(1)`` is the
        ``gc_every_alloc`` point of the plan space."""
        return cls(every=n, kind=kind)

    @classmethod
    def at_indices(cls, indices, kind: str = "auto") -> "FaultPlan":
        return cls(at=tuple(sorted(indices)), kind=kind)

    @classmethod
    def random_plan(
        cls,
        seed: int,
        rate: float,
        dealloc_rate: float = 0.0,
        kind: str = "auto",
    ) -> "FaultPlan":
        return cls(seed=seed, rate=rate, dealloc_rate=dealloc_rate, kind=kind)

    @classmethod
    def every_dealloc(cls, n: int = 1, kind: str = "major") -> "FaultPlan":
        """Collect at every Nth region-deallocation point — the schedule
        family ``gc_every_alloc`` cannot express."""
        return cls(dealloc_every=n, kind=kind)

    # -- decisions -----------------------------------------------------------

    def _kind_for(self, salt: str, index: int) -> str:
        if self.kind != "random":
            return self.kind
        return "minor" if _chance(self.seed, "kind:" + salt, index) < 0.5 else "major"

    def decide_alloc(self, index: int) -> Optional[str]:
        """Collection kind to inject after allocation ``index``, else None."""
        fire = (
            (self.every is not None and self.every > 0 and (index + 1) % self.every == 0)
            or index in self.at
            or (self.rate > 0.0 and _chance(self.seed, "alloc", index) < self.rate)
        )
        return self._kind_for("alloc", index) if fire else None

    def decide_dealloc(self, index: int) -> Optional[str]:
        """Collection kind to inject after region-deallocation ``index``."""
        fire = (
            (
                self.dealloc_every is not None
                and self.dealloc_every > 0
                and (index + 1) % self.dealloc_every == 0
            )
            or index in self.dealloc_at
            or (
                self.dealloc_rate > 0.0
                and _chance(self.seed, "dealloc", index) < self.dealloc_rate
            )
        )
        return self._kind_for("dealloc", index) if fire else None

    # -- reporting / persistence ----------------------------------------------

    def describe(self) -> str:
        parts = []
        if self.every:
            parts.append(f"alloc%{self.every}")
        if self.at:
            parts.append(f"alloc@{','.join(map(str, self.at))}")
        if self.rate:
            parts.append(f"alloc~{self.rate}")
        if self.dealloc_every:
            parts.append(f"dealloc%{self.dealloc_every}")
        if self.dealloc_at:
            parts.append(f"dealloc@{','.join(map(str, self.dealloc_at))}")
        if self.dealloc_rate:
            parts.append(f"dealloc~{self.dealloc_rate}")
        if not parts:
            return "policy"
        return f"{'+'.join(parts)} kind={self.kind} seed={self.seed}"

    def to_dict(self) -> dict:
        """A JSON-ready dict (tuples become lists under ``json.dumps``);
        inverse of :meth:`from_dict`, so plans travel over the wire —
        the fuzz corpus and the ``repro.server`` protocol both ship
        plans this way."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (or the JSON decode
        of it).  Unknown keys are ignored so plans serialized by a newer
        schema still load; missing keys keep their defaults; the index
        lists come back as tuples so the plan is hashable again."""
        known = {k: v for k, v in data.items() if k in cls.__dataclass_fields__}
        known["at"] = tuple(known.get("at", ()))
        known["dealloc_at"] = tuple(known.get("dealloc_at", ()))
        return cls(**known)


#: The alias for the legacy crash-test flag: one point in the plan space.
GC_EVERY_ALLOC = FaultPlan.every_nth(1)

"""The differential oracle: one program, every strategy, many schedules.

Region annotation is semantically transparent, so all five strategies
must compute the same value and output, under *every* GC schedule.  The
one permitted divergence is the paper's: under ``rg-`` (no spurious-type-
variable tracking) the collector may trace a dangling pointer — that is
the Figure 1/8 bug class, recorded as an **expected** divergence.  Any
other disagreement (a dangling pointer under a sound strategy, a value or
output mismatch, a use-after-free, an unexpected verification failure) is
a **genuine** soundness bug in the reproduction.

Runs that hit a resource limit are inconclusive for that cell and are
counted but not compared — limits are how the harness avoids hanging,
not a verdict.

A third, *independent* oracle cross-checks the other two: every compiled
cell is also re-judged by :func:`repro.analysis.verify_term` (which
shares no code with the Figure 4 checker).  The two static judges must
agree — both accept or both reject the annotation; a split verdict is a
bug in one of them and is reported as ``CLASS_VERIFIER_DISAGREE``.

The matrix also has a **backend column**: ``backends`` selects which
evaluators each cell runs under (``closure``, ``bytecode``, ``tree`` —
see docs/bytecode.md).  The backends are contractually bit-identical, so
every backend's outcome is compared against the single ``rg``/closure
reference; a backend-dependent result is always a genuine bug, never an
expected divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import CompilerFlags, RuntimeFlags, SpuriousMode, Strategy
from ..core.errors import (
    DanglingPointerError,
    InterpreterLimit,
    MLExceptionError,
    ReproError,
    UseAfterFreeError,
)
from ..pipeline import compile_program
from ..runtime.values import show_value
from .faultplan import GC_EVERY_ALLOC, FaultPlan

__all__ = [
    "CLASS_COMPILE_ERROR",
    "CLASS_EXPECTED_DANGLING",
    "CLASS_SOUNDNESS_BUG",
    "CLASS_USE_AFTER_FREE",
    "CLASS_VALUE_MISMATCH",
    "CLASS_VERIFIER_DISAGREE",
    "CLASS_VERIFY_UNEXPECTED",
    "DifferentialReport",
    "Divergence",
    "Outcome",
    "default_plan_matrix",
    "run_differential",
]

CLASS_EXPECTED_DANGLING = "expected-rg-minus-dangling"
CLASS_SOUNDNESS_BUG = "soundness-bug"
CLASS_VALUE_MISMATCH = "value-mismatch"
CLASS_COMPILE_ERROR = "compile-error"
CLASS_VERIFY_UNEXPECTED = "unexpected-verification-failure"
CLASS_USE_AFTER_FREE = "use-after-free"
CLASS_VERIFIER_DISAGREE = "verifier-checker-disagreement"


@dataclass(frozen=True)
class Outcome:
    """What one (strategy, mode, plan) cell produced."""

    status: str  # "value" | "exception" | "dangling" | "use-after-free" | "limit" | "fault"
    value: str = ""
    output: str = ""
    detail: str = ""

    def agrees_with(self, other: "Outcome") -> bool:
        return (
            self.status == other.status
            and self.value == other.value
            and self.output == other.output
            and (self.status != "exception" or self.detail == other.detail)
        )


@dataclass(frozen=True)
class Divergence:
    classification: str
    strategy: str
    mode: str
    plan: Optional[FaultPlan]
    detail: str
    #: Which evaluator produced the divergent outcome (static
    #: classifications — compile errors, verifier splits — are
    #: backend-independent and report the default).
    backend: str = "closure"

    @property
    def genuine(self) -> bool:
        return self.classification != CLASS_EXPECTED_DANGLING

    def plan_desc(self) -> str:
        return self.plan.describe() if self.plan is not None else "policy"


@dataclass
class DifferentialReport:
    source: str
    reference: Optional[Outcome] = None
    divergences: list[Divergence] = field(default_factory=list)
    runs: int = 0
    limited: int = 0
    inconclusive: bool = False

    @property
    def genuine(self) -> list[Divergence]:
        return [d for d in self.divergences if d.genuine]

    @property
    def expected_danglings(self) -> list[Divergence]:
        return [
            d for d in self.divergences if d.classification == CLASS_EXPECTED_DANGLING
        ]

    def dangling_beyond_every_alloc(self) -> bool:
        """True when ``rg-`` dangles under some injected schedule but NOT
        under the legacy ``gc_every_alloc`` point of the plan space — the
        schedule-dependent bug class the fault planner exists to reach."""
        dangles = self.expected_danglings
        if not dangles:
            return False
        return not any(
            d.plan is not None and d.plan == GC_EVERY_ALLOC for d in dangles
        )


def default_plan_matrix(seed: int) -> list[Optional[FaultPlan]]:
    """The schedule matrix each program is run under.  ``None`` is the
    production heap-to-live policy; ``GC_EVERY_ALLOC`` keeps the legacy
    flag as one point of the space; the rest explore sparse, randomized,
    and deallocation-point schedules with the minor/major choice also
    randomized (write-barrier stress)."""
    return [
        None,
        GC_EVERY_ALLOC,
        FaultPlan.every_nth(3, kind="major"),
        FaultPlan.random_plan(seed, rate=0.15, kind="random"),
        FaultPlan.every_dealloc(1, kind="major"),
        FaultPlan.random_plan(seed, rate=0.05, dealloc_rate=0.5, kind="random"),
    ]


def _limits(
    max_steps: int, max_heap_words: int, deadline_seconds: float
) -> dict:
    return dict(
        max_steps=max_steps,
        max_heap_words=max_heap_words,
        deadline_seconds=deadline_seconds,
        generational=True,
    )


def _run_cell(
    prog, plan: Optional[FaultPlan], limits: dict, backend: str = "closure"
) -> Outcome:
    try:
        result = prog.run(backend=backend, fault_plan=plan, **limits)
    except DanglingPointerError as exc:
        return Outcome("dangling", detail=str(exc))
    except UseAfterFreeError as exc:
        return Outcome("use-after-free", detail=str(exc))
    except MLExceptionError as exc:
        return Outcome("exception", detail=exc.exn_name)
    except InterpreterLimit as exc:
        return Outcome("limit", detail=type(exc).__name__)
    except ReproError as exc:
        return Outcome("fault", detail=f"{type(exc).__name__}: {exc}")
    return Outcome("value", value=show_value(result.value), output=result.output)


def run_differential(
    source: str,
    plans: Optional[list] = None,
    max_steps: int = 200_000,
    max_heap_words: int = 2_000_000,
    deadline_seconds: float = 10.0,
    seed: int = 0,
    backends: tuple = ("closure",),
) -> DifferentialReport:
    """Compile ``source`` under all five strategies x both spurious modes,
    run every combination under every plan in the matrix **and every
    backend in** ``backends``, and classify all divergences from the
    ``rg``/secondary/closure reference."""
    report = DifferentialReport(source=source)
    if plans is None:
        plans = default_plan_matrix(seed)
    limits = _limits(max_steps, max_heap_words, deadline_seconds)

    # -- the reference cell: the paper's sound system, production policy.
    # The matrix below recompiles this exact (source, flags) pair for the
    # rg/default-mode cell; the pipeline compile cache makes that free.
    try:
        ref_prog = compile_program(source, strategy=Strategy.RG)
    except ReproError as exc:
        # The program does not compile at all (e.g. the generator tripped
        # over the value restriction): nothing to compare, so the whole
        # report is inconclusive rather than a divergence.  A *strategy-
        # dependent* compile failure below is still genuine.
        report.reference = Outcome("fault", detail=f"{type(exc).__name__}: {exc}")
        report.inconclusive = True
        return report
    reference = _run_cell(ref_prog, None, limits)
    report.reference = reference
    report.runs += 1
    if reference.status == "limit":
        report.limited += 1
        report.inconclusive = True
        return report

    for strategy in Strategy:
        for mode in SpuriousMode:
            flags = CompilerFlags(strategy=strategy, spurious_mode=mode)
            try:
                prog = compile_program(source, flags=flags)
            except ReproError as exc:
                report.divergences.append(
                    Divergence(
                        CLASS_COMPILE_ERROR,
                        strategy.value,
                        mode.value,
                        None,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            if strategy.tracks_spurious and prog.verification_error is not None:
                report.divergences.append(
                    Divergence(
                        CLASS_VERIFY_UNEXPECTED,
                        strategy.value,
                        mode.value,
                        None,
                        str(prog.verification_error),
                    )
                )
            # Third oracle: the independent verifier must agree with the
            # Figure 4 checker on whether this annotation is safe.
            from ..analysis import verify_term

            verdict = verify_term(prog.term)
            if verdict.ok == (prog.verification_error is not None):
                report.divergences.append(
                    Divergence(
                        CLASS_VERIFIER_DISAGREE,
                        strategy.value,
                        mode.value,
                        None,
                        f"independent verifier says "
                        f"{'safe' if verdict.ok else 'unsafe'} "
                        f"({', '.join(verdict.rules) or 'no violations'}) but "
                        f"the Figure 4 checker says "
                        f"{'unsafe' if prog.verification_error else 'safe'}"
                        + (f": {prog.verification_error}"
                           if prog.verification_error else ""),
                    )
                )
            # Without a collector the schedule is irrelevant: run `r`
            # under the policy cell only.
            cell_plans = plans if strategy.uses_gc else [None]
            for plan in cell_plans:
                for backend in backends:
                    outcome = _run_cell(prog, plan, limits, backend)
                    report.runs += 1
                    if outcome.status == "limit":
                        report.limited += 1
                        continue
                    if outcome.status == "dangling":
                        classification = (
                            CLASS_EXPECTED_DANGLING
                            if strategy is Strategy.RG_MINUS
                            else CLASS_SOUNDNESS_BUG
                        )
                        report.divergences.append(
                            Divergence(
                                classification,
                                strategy.value,
                                mode.value,
                                plan,
                                outcome.detail,
                                backend,
                            )
                        )
                        continue
                    if outcome.status == "use-after-free":
                        report.divergences.append(
                            Divergence(
                                CLASS_USE_AFTER_FREE,
                                strategy.value,
                                mode.value,
                                plan,
                                outcome.detail,
                                backend,
                            )
                        )
                        continue
                    if not outcome.agrees_with(reference):
                        report.divergences.append(
                            Divergence(
                                CLASS_VALUE_MISMATCH,
                                strategy.value,
                                mode.value,
                                plan,
                                f"got {outcome.status}:{outcome.value!r} "
                                f"out={outcome.output!r} {outcome.detail} — "
                                f"expected "
                                f"{reference.status}:{reference.value!r} "
                                f"out={reference.output!r}",
                                backend,
                            )
                        )
    return report

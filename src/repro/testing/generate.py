"""A seeded generator of well-typed MiniML programs, with a shrinker.

The grammar mirrors the hypothesis generator of
``tests/properties/test_generated_programs.py`` — every production builds
source of a statically known type, so generated programs always compile —
extended with the shapes that make GC schedules interesting:

* the paper's running example in three forms: the inline composition,
  the *escaping* composition (``let val h = let val x = s in (op o)
  (fn u => e, fn () => x) end in h () end`` — the Figure 1/2(a) shape
  whose dangle window contains **no allocation**, invisible to
  ``gc_every_alloc``), and the same with an allocating filler (the
  literal Figure 1 program);
* reference cells updated through ``:=`` (the write-barrier path);
* ``raise``/``handle`` with parameterized exceptions, both monomorphic
  (``exception Bang of int``) and polymorphic (``exception Alt of 'a``
  inside an ``'a``-annotated function — the paper's exception type
  variables, Section 4.4);
* mutable arrays: ``array``/``sub``/``update``/``alength`` over int and
  string element types (string slots put boxed values behind the array
  write barrier).

Programs are represented as typed expression trees so the shrinker can do
structural delta debugging: replace any subtree with the minimal leaf of
its type, or hoist a same-typed child.  Rendering a tree gives the
``.mml`` source; shrinking preserves well-typedness by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

__all__ = ["Node", "Program", "generate_program", "render", "shrink"]


class Node:
    """One typed expression: ``fmt`` with a ``{i}`` hole per child."""

    __slots__ = ("typ", "fmt", "kids")

    def __init__(self, typ: str, fmt: str, kids: tuple = ()) -> None:
        self.typ = typ
        self.fmt = fmt
        self.kids = kids

    def render(self) -> str:
        if not self.kids:
            return self.fmt
        return self.fmt.format(*[k.render() for k in self.kids])

    def size(self) -> int:
        return 1 + sum(k.size() for k in self.kids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.typ}: {self.render()[:40]}>"


def _leaf(typ: str, text: str) -> Node:
    return Node(typ, text)


#: The minimal leaf of each type — the shrinker's terminal candidates.
MIN_LEAF = {
    "int": "0",
    "bool": "true",
    "str": '""',
    "ilist": "nil",
    "ifun": "(fn u => u)",
    "pair": '(0, "")',
}


def _int_lit(rng: random.Random) -> Node:
    n = rng.randint(-9, 9)
    return _leaf("int", str(n) if n >= 0 else f"~{-n}")


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def gen_int(rng: random.Random, depth: int) -> Node:
    if depth <= 0:
        return rng.choice([_int_lit(rng), _leaf("int", "a"), _leaf("int", "b")])
    pick = rng.random()
    d = depth - 1
    if pick < 0.18:
        return rng.choice([_int_lit(rng), _leaf("int", "a"), _leaf("int", "b")])
    if pick < 0.30:
        op = rng.choice(["+", "-", "*"])
        return Node("int", f"({{0}} {op} {{1}})", (gen_int(rng, d), gen_int(rng, d)))
    if pick < 0.36:
        return Node(
            "int",
            "(if {0} then {1} else {2})",
            (gen_bool(rng, d), gen_int(rng, d), gen_int(rng, d)),
        )
    if pick < 0.42:
        return Node(
            "int", "(let val t = {0} in t + {1} end)", (gen_int(rng, d), gen_int(rng, d))
        )
    if pick < 0.48:
        return Node("int", "({0} ({1}))", (gen_ifun(rng, d), gen_int(rng, d)))
    if pick < 0.54:
        return Node("int", "length ({0})", (gen_ilist(rng, d),))
    if pick < 0.60:
        return Node(
            "int", "(foldl (fn (u, v) => u + v) 0 ({0}))", (gen_ilist(rng, d),)
        )
    if pick < 0.66:
        return Node("int", "size ({0})", (gen_str(rng, d),))
    if pick < 0.72:
        return Node("int", "(#1 {0})", (gen_pair(rng, d),))
    if pick < 0.80:
        # The paper's pattern, inline: compose with a dead captured value.
        return Node(
            "int",
            "(let val h = (op o) (fn u => {0}, fn () => {1}) in h () end)",
            (gen_int(rng, d), gen_str(rng, d)),
        )
    if pick < 0.88:
        # The escaping composition (Figure 2(a)): h is built *inside* the
        # string's region scope and escapes it.  Under rg- the region pops
        # after h is complete, and if the remaining window allocates
        # nothing, only a dealloc-point collection can observe the dangle.
        return Node(
            "int",
            "(let val h = let val x = {1} in (op o) (fn u => {0}, fn () => x) end"
            " in h () end)",
            (gen_int(rng, d), gen_str(rng, d)),
        )
    if pick < 0.91:
        # The literal Figure 1 shape: an allocating filler inside the
        # dangle window, reachable by allocation-point schedules too.
        return Node(
            "int",
            "(let val h = let val x = {1} in (op o) (fn u => {0}, fn () => x) end"
            " in let val _ = {2} in h () end end)",
            (gen_int(rng, d), gen_str(rng, d), gen_ilist(rng, d)),
        )
    if pick < 0.93:
        # Reference cell updated through := (exercises the write barrier).
        return Node(
            "int",
            "(let val c = ref ({0}) in c := {1}; !c end)",
            (gen_int(rng, d), gen_int(rng, d)),
        )
    if pick < 0.95:
        # A parameterized exception raised and handled locally.
        return Node(
            "int",
            "(let exception Bang of int"
            " in (if {0} then raise Bang ({1}) else {2}) handle Bang n => n + 1"
            " end)",
            (gen_bool(rng, d), gen_int(rng, d), gen_int(rng, d)),
        )
    if pick < 0.97:
        # A *polymorphic* exception: Alt's payload type mentions the
        # enclosing function's 'a (an exception type variable,
        # Section 4.4).  The payload is 'a list (the kb_exn shape) and
        # the instantiation is at int: a boxed instantiation would put
        # the instance's local region into the payload type, which the
        # Section 4.4 globalization check rightly rejects.
        return Node(
            "int",
            "(let fun pick2 (x : 'a) (y : 'a) : 'a ="
            " let exception Alt of 'a list"
            " in (if {0} then raise Alt (y :: nil) else x)"
            " handle Alt v => hd v end"
            " in pick2 ({1}) ({2}) end)",
            (gen_bool(rng, d), gen_int(rng, d), gen_int(rng, d)),
        )
    if pick < 0.99:
        # Int array: alloc, in-bounds update, read back plus length.
        return Node(
            "int",
            "(let val arr = array (4, {0})"
            " in update (arr, ((abs ({1})) mod 4, {2}));"
            " sub (arr, (abs ({3})) mod 4) + alength arr end)",
            (gen_int(rng, d), gen_int(rng, d), gen_int(rng, d), gen_int(rng, d)),
        )
    # String array: boxed slots go through the array write barrier.
    return Node(
        "int",
        "(let val sa = array (3, {0})"
        " in update (sa, (1 + (abs ({1})) mod 2, {2}));"
        " size (sub (sa, 0)) + size (sub (sa, 2)) end)",
        (gen_str(rng, d), gen_int(rng, d), gen_str(rng, d)),
    )


def gen_bool(rng: random.Random, depth: int) -> Node:
    if depth <= 0:
        return _leaf("bool", rng.choice(["true", "false"]))
    pick = rng.random()
    d = depth - 1
    if pick < 0.3:
        return _leaf("bool", rng.choice(["true", "false"]))
    if pick < 0.6:
        return Node("bool", "({0} < {1})", (gen_int(rng, d), gen_int(rng, d)))
    if pick < 0.85:
        return Node("bool", "({0} = {1})", (gen_int(rng, d), gen_int(rng, d)))
    return Node("bool", "(not {0})", (gen_bool(rng, d),))


def gen_str(rng: random.Random, depth: int) -> Node:
    if depth <= 0:
        return _leaf("str", rng.choice(['"x"', '"hi"', '""']))
    pick = rng.random()
    d = depth - 1
    if pick < 0.4:
        return _leaf("str", rng.choice(['"x"', '"hi"', '""']))
    if pick < 0.75:
        return Node("str", "({0} ^ {1})", (gen_str(rng, d), gen_str(rng, d)))
    return Node("str", "itos ({0})", (gen_int(rng, d),))


def gen_ilist(rng: random.Random, depth: int) -> Node:
    if depth <= 0:
        xs = [str(rng.randint(0, 9)) for _ in range(rng.randint(0, 4))]
        return _leaf("ilist", "[" + ", ".join(xs) + "]" if xs else "nil")
    pick = rng.random()
    d = depth - 1
    if pick < 0.25:
        xs = [str(rng.randint(0, 9)) for _ in range(rng.randint(0, 4))]
        return _leaf("ilist", "[" + ", ".join(xs) + "]" if xs else "nil")
    if pick < 0.45:
        return Node("ilist", "({0} :: {1})", (gen_int(rng, d), gen_ilist(rng, d)))
    if pick < 0.6:
        return Node("ilist", "(map ({0}) ({1}))", (gen_ifun(rng, d), gen_ilist(rng, d)))
    if pick < 0.75:
        return Node("ilist", "(rev ({0}))", (gen_ilist(rng, d),))
    if pick < 0.9:
        return Node("ilist", "({0} @ {1})", (gen_ilist(rng, d), gen_ilist(rng, d)))
    return Node("ilist", "(filter (fn u => u > 2) ({0}))", (gen_ilist(rng, d),))


def gen_ifun(rng: random.Random, depth: int) -> Node:
    base = ["(fn u => u)", "(fn u => u + 1)", "(fn u => 0)"]
    if depth <= 0:
        return _leaf("ifun", rng.choice(base))
    if rng.random() < 0.6:
        return _leaf("ifun", rng.choice(base))
    # Composition: exercises the spurious type variable of `o`.
    d = depth - 1
    return Node(
        "ifun", "((op o) ({0}, {1}))", (gen_ifun(rng, d), gen_ifun(rng, d))
    )


def gen_pair(rng: random.Random, depth: int) -> Node:
    d = max(0, depth - 1)
    return Node("pair", "({0}, {1})", (gen_int(rng, d), gen_str(rng, d)))


_GEN = {
    "int": gen_int,
    "bool": gen_bool,
    "str": gen_str,
    "ilist": gen_ilist,
    "ifun": gen_ifun,
    "pair": gen_pair,
}


@dataclass
class Program:
    """Four typed roots rendering to the standard program template."""

    a: Node
    b: Node
    mid: Node
    body: Node

    ROOTS = ("a", "b", "mid", "body")

    def render(self) -> str:
        return (
            f"val a = {self.a.render()}\n"
            f"val b = {self.b.render()}\n"
            f"val _ = {self.mid.render()}\n"
            f"val it = {self.body.render()}"
        )

    def size(self) -> int:
        return sum(getattr(self, r).size() for r in self.ROOTS)


def generate_program(seed: int, depth: int = 3) -> Program:
    """The deterministic program for ``seed``: same seed, same source."""
    rng = random.Random(f"program:{seed}")
    return Program(
        a=_int_lit(rng),
        b=_int_lit(rng),
        mid=gen_int(rng, max(1, depth - 1)),
        body=gen_int(rng, depth),
    )


def render(program: Program) -> str:
    return program.render()


# ---------------------------------------------------------------------------
# Shrinking: structural delta debugging over the typed tree
# ---------------------------------------------------------------------------


def _iter_paths(node: Node, prefix: tuple = ()) -> Iterator[tuple[tuple, Node]]:
    yield prefix, node
    for i, kid in enumerate(node.kids):
        yield from _iter_paths(kid, prefix + (i,))


def _replace(node: Node, path: tuple, repl: Node) -> Node:
    if not path:
        return repl
    i = path[0]
    kids = tuple(
        _replace(k, path[1:], repl) if j == i else k for j, k in enumerate(node.kids)
    )
    return Node(node.typ, node.fmt, kids)


def _candidates(node: Node) -> list[Node]:
    """Smaller same-typed replacements, most aggressive first."""
    out: list[Node] = []
    minimal = MIN_LEAF[node.typ]
    if node.kids or node.fmt != minimal:
        out.append(_leaf(node.typ, minimal))
    for kid in node.kids:
        if kid.typ == node.typ:
            out.append(kid)
    return out


def shrink(
    program: Program,
    predicate: Callable[[Program], bool],
    max_checks: int = 200,
) -> Program:
    """Greedily minimize ``program`` while ``predicate`` holds.

    The predicate must already hold for ``program``.  Each step replaces
    one subtree with a strictly smaller same-typed tree, so the loop
    terminates; ``max_checks`` bounds the number of predicate runs (each
    run re-executes the differential matrix, which is the expensive part).
    """
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for root in Program.ROOTS:
            tree = getattr(program, root)
            for path, node in _iter_paths(tree):
                for repl in _candidates(node):
                    cand_tree = _replace(tree, path, repl)
                    if cand_tree.size() >= tree.size():
                        continue
                    cand = Program(
                        **{
                            r: (cand_tree if r == root else getattr(program, r))
                            for r in Program.ROOTS
                        }
                    )
                    checks += 1
                    if predicate(cand):
                        program = cand
                        improved = True
                        break
                    if checks >= max_checks:
                        return program
                if improved:
                    break
            if improved:
                break
    return program

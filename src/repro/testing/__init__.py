"""Fault injection and differential testing for the region runtime.

The paper's headline claim is *dynamic*: under the sound ``rg`` strategy
the collector can never meet a dangling pointer, while ``rg-`` crashes on
the programs of Figures 1 and 8.  The blunt ``gc_every_alloc`` flag can
only probe GC schedules that collect at allocation points, always at the
same deterministic places; GC-schedule-dependent dangling pointers — the
exact bug class the paper fixes — can hide between allocation sites, or
in windows that contain *no* allocation at all.

This package explores the schedule space systematically:

* :mod:`~repro.testing.faultplan` — seeded, deterministic GC schedules
  (:class:`FaultPlan`): collect at arbitrary allocation indices and at
  region-deallocation points, optionally forcing the minor/major choice
  to stress the generational write barrier;
* :mod:`~repro.testing.generate` — a seeded MiniML program generator
  (the same grammar as the hypothesis property tests) with a tree
  shrinker for minimal reproducers;
* :mod:`~repro.testing.differential` — the oracle runner: every program
  is compiled under all five strategies x both spurious modes, run under
  a matrix of fault plans, and the outcomes are compared and classified
  (expected ``rg-`` danglings vs. genuine soundness bugs);
* :mod:`~repro.testing.fuzz` — the ``repro-fuzz`` CLI: seeded fuzzing
  loop that shrinks failures and writes ``.mml`` reproducers plus their
  seeds to a corpus directory.
"""

from .differential import (
    CLASS_EXPECTED_DANGLING,
    DifferentialReport,
    Divergence,
    default_plan_matrix,
    run_differential,
)
from .faultplan import GC_EVERY_ALLOC, FaultPlan
from .generate import generate_program, render, shrink

__all__ = [
    "CLASS_EXPECTED_DANGLING",
    "DifferentialReport",
    "Divergence",
    "FaultPlan",
    "GC_EVERY_ALLOC",
    "default_plan_matrix",
    "generate_program",
    "render",
    "run_differential",
    "shrink",
]

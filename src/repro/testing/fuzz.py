"""``repro-fuzz`` — seeded differential fuzzing of the whole pipeline.

Each iteration derives a deterministic sub-seed, generates a well-typed
MiniML program, and feeds it to the differential oracle under the full
strategy x mode x schedule matrix.  Genuine divergences (anything other
than an ``rg-`` dangling pointer) are shrunk to a minimal reproducer and
written — source plus seed plus schedule — to the corpus directory, so a
failure is always one command away from being replayed:

    repro-fuzz --seed 0 --iterations 200 --corpus fuzz-corpus

The run is fully deterministic for a given seed: the same seed reproduces
the same program/schedule pairs, the same findings, and the same corpus
files.  Exit status 0 means no genuine divergences (expected ``rg-``
danglings do not fail the run — they are the paper's theorem doing its
job), 1 means at least one genuine soundness bug was found.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..config import CompilerFlags, Strategy
from ..core.errors import DanglingPointerError, ReproError
from ..pipeline import compile_program
from .differential import (
    CLASS_EXPECTED_DANGLING,
    DifferentialReport,
    Divergence,
    default_plan_matrix,
    run_differential,
)
from .faultplan import FaultPlan
from .generate import Program, generate_program, shrink

__all__ = ["FuzzSummary", "fuzz", "main"]


@dataclass
class FuzzSummary:
    seed: int
    iterations: int = 0
    runs: int = 0
    limited: int = 0
    inconclusive: int = 0
    #: Programs on which rg- dangled under some schedule (the expected,
    #: Figure 1/8 divergence class).
    expected_dangling_programs: int = 0
    #: ... of which the dangle was reachable ONLY through an injected
    #: schedule, not through the legacy gc_every_alloc flag.
    dangling_beyond_every_alloc: int = 0
    genuine: list[Divergence] = field(default_factory=list)
    corpus_files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.genuine


def _iteration_seeds(master_seed: int, iterations: int) -> list[int]:
    rng = random.Random(f"fuzz:{master_seed}")
    return [rng.randrange(2**32) for _ in range(iterations)]


def _verifier_agrees(sound, minus=None) -> bool:
    """Re-run the *independent* verifier on a shrink candidate.

    A shrunk reproducer must preserve the static judgments, not just the
    runtime symptom: the ``rg`` compilation has to stay verifier-clean
    (otherwise the candidate is not a faithful sound program any more)
    and, when the finding is an ``rg-`` dangle, the verifier has to keep
    rejecting the ``rg-`` annotation (otherwise shrinking has wandered to
    a *different* bug whose rule attribution no longer matches the corpus
    metadata).  Without this guard the shrinker happily minimizes to a
    program exhibiting an unrelated schedule accident.
    """
    from ..analysis import verify_term

    if not verify_term(sound.term).ok:
        return False
    if minus is not None and verify_term(minus.term).ok:
        return False
    return True


def _targeted_dangling_predicate(plan: Optional[FaultPlan], limits: dict):
    """A cheap shrink predicate: does rg- still dangle under this plan
    while rg stays safe?  (Two compiles instead of the full matrix.)"""

    def predicate(program: Program) -> bool:
        source = program.render()
        try:
            minus = compile_program(source, strategy=Strategy.RG_MINUS)
            sound = compile_program(source, strategy=Strategy.RG)
        except ReproError:
            return False
        if not _verifier_agrees(sound, minus):
            return False
        try:
            minus.run(fault_plan=plan, **limits)
            return False  # no longer dangles
        except DanglingPointerError:
            pass
        except ReproError:
            return False
        try:
            sound.run(fault_plan=plan, **limits)
        except ReproError:
            return False  # rg must stay clean for a faithful reproducer
        return True

    return predicate


def _genuine_predicate(finding: Divergence, plans, limits_kw: dict):
    """Shrink predicate for a genuine divergence: the same classification
    must still show up somewhere in the (cheaper, re-run) matrix."""

    def predicate(program: Program) -> bool:
        source = program.render()
        try:
            sound = compile_program(source, strategy=Strategy.RG)
        except ReproError:
            return False
        if not _verifier_agrees(sound):
            return False
        report = run_differential(source, plans=plans, **limits_kw)
        return any(
            d.classification == finding.classification for d in report.genuine
        )

    return predicate


def _write_reproducer(
    corpus: Path,
    name: str,
    program: Program,
    meta: dict,
) -> str:
    corpus.mkdir(parents=True, exist_ok=True)
    source = program.render()
    header = (
        f"(* repro-fuzz reproducer: {meta['classification']}\n"
        f"   master seed {meta['master_seed']}, iteration {meta['iteration']} "
        f"(sub-seed {meta['sub_seed']})\n"
        f"   strategy {meta['strategy']}/{meta['mode']}, "
        f"schedule {meta['plan_desc']} *)\n"
    )
    mml = corpus / f"{name}.mml"
    mml.write_text(header + source + "\n", encoding="utf-8")
    (corpus / f"{name}.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return str(mml)


def fuzz(
    seed: int,
    iterations: int,
    corpus: Optional[str] = None,
    max_heap_words: int = 2_000_000,
    deadline_seconds: float = 10.0,
    max_steps: int = 200_000,
    shrink_reproducers: bool = True,
    max_expected_repros: int = 3,
    log=None,
) -> FuzzSummary:
    """Run the fuzzing loop; returns the (deterministic) summary."""
    summary = FuzzSummary(seed=seed)
    corpus_path = Path(corpus) if corpus else None
    limits_kw = dict(
        max_steps=max_steps,
        max_heap_words=max_heap_words,
        deadline_seconds=deadline_seconds,
    )
    run_limits = dict(limits_kw, generational=True)
    expected_written = 0

    for iteration, sub_seed in enumerate(_iteration_seeds(seed, iterations)):
        program = generate_program(sub_seed)
        plans = default_plan_matrix(sub_seed)
        report = run_differential(
            program.render(), plans=plans, seed=sub_seed, **limits_kw
        )
        summary.iterations += 1
        summary.runs += report.runs
        summary.limited += report.limited
        if report.inconclusive:
            summary.inconclusive += 1

        if report.expected_danglings:
            summary.expected_dangling_programs += 1
            beyond = report.dangling_beyond_every_alloc()
            if beyond:
                summary.dangling_beyond_every_alloc += 1
            if corpus_path is not None and expected_written < max_expected_repros:
                finding = report.expected_danglings[0]
                shrunk = program
                if shrink_reproducers:
                    predicate = _targeted_dangling_predicate(
                        finding.plan, run_limits
                    )
                    if predicate(program):
                        shrunk = shrink(program, predicate, max_checks=60)
                path = _write_reproducer(
                    corpus_path,
                    f"dangle-s{seed}-i{iteration}",
                    shrunk,
                    {
                        "classification": CLASS_EXPECTED_DANGLING,
                        "master_seed": seed,
                        "iteration": iteration,
                        "sub_seed": sub_seed,
                        "strategy": finding.strategy,
                        "mode": finding.mode,
                        "plan": finding.plan.to_dict() if finding.plan else None,
                        "plan_desc": finding.plan_desc(),
                        "beyond_gc_every_alloc": beyond,
                        "detail": finding.detail,
                    },
                )
                summary.corpus_files.append(path)
                expected_written += 1

        for finding in report.genuine:
            summary.genuine.append(finding)
            if log:
                log(
                    f"[iter {iteration}] GENUINE {finding.classification} "
                    f"({finding.strategy}/{finding.mode} @ {finding.plan_desc()}): "
                    f"{finding.detail}"
                )
            if corpus_path is not None:
                shrunk = program
                if shrink_reproducers:
                    predicate = _genuine_predicate(finding, plans, limits_kw)
                    if predicate(program):
                        shrunk = shrink(program, predicate, max_checks=60)
                path = _write_reproducer(
                    corpus_path,
                    f"bug-s{seed}-i{iteration}-{finding.classification}",
                    shrunk,
                    {
                        "classification": finding.classification,
                        "master_seed": seed,
                        "iteration": iteration,
                        "sub_seed": sub_seed,
                        "strategy": finding.strategy,
                        "mode": finding.mode,
                        "plan": finding.plan.to_dict() if finding.plan else None,
                        "plan_desc": finding.plan_desc(),
                        "detail": finding.detail,
                    },
                )
                summary.corpus_files.append(path)
        if log and (iteration + 1) % 25 == 0:
            log(
                f"[{iteration + 1}/{iterations}] runs={summary.runs} "
                f"rg- danglings={summary.expected_dangling_programs} "
                f"(beyond every-alloc {summary.dangling_beyond_every_alloc}) "
                f"genuine={len(summary.genuine)}"
            )
    if log:
        from ..cache import default_cache

        # The matrix compiles each program under 10 flag combinations and
        # every shrink predicate recompiles candidates; the pipeline cache
        # absorbs the repeats.
        log(f"compile cache: {default_cache().stats.to_dict()}")
    return summary


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Seeded differential fuzzing of the region pipeline.",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    parser.add_argument(
        "--iterations", type=int, default=100, help="programs to generate"
    )
    parser.add_argument(
        "--corpus",
        default="fuzz-corpus",
        help="directory for .mml reproducers (default fuzz-corpus/)",
    )
    parser.add_argument(
        "--no-corpus", action="store_true", help="do not write reproducer files"
    )
    parser.add_argument(
        "--max-heap-words",
        type=int,
        default=2_000_000,
        help="heap footprint bound per run, in words",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=10.0,
        help="wall-clock bound per run, in seconds",
    )
    parser.add_argument(
        "--max-steps", type=int, default=200_000, help="step bound per run"
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="write unshrunk reproducers"
    )
    args = parser.parse_args(argv)

    def log(msg: str) -> None:
        print(msg, file=sys.stderr)

    summary = fuzz(
        seed=args.seed,
        iterations=args.iterations,
        corpus=None if args.no_corpus else args.corpus,
        max_heap_words=args.max_heap_words,
        deadline_seconds=args.deadline,
        max_steps=args.max_steps,
        shrink_reproducers=not args.no_shrink,
        log=log,
    )

    print(
        f"repro-fuzz: seed={summary.seed} iterations={summary.iterations} "
        f"runs={summary.runs} limited={summary.limited} "
        f"inconclusive={summary.inconclusive}"
    )
    print(
        f"  expected rg- danglings: {summary.expected_dangling_programs} programs "
        f"({summary.dangling_beyond_every_alloc} reachable only via an injected "
        f"schedule, not gc_every_alloc)"
    )
    print(f"  genuine divergences: {len(summary.genuine)}")
    for d in summary.genuine:
        print(
            f"    {d.classification} {d.strategy}/{d.mode} @ {d.plan_desc()}: "
            f"{d.detail[:120]}"
        )
    for path in summary.corpus_files:
        print(f"  wrote {path}")
    return 0 if summary.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

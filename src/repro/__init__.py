"""repro — a reproduction of *Garbage-Collection Safety for Region-Based
Type-Polymorphic Programs* (Martin Elsman, PLDI 2023).

The package implements, from scratch:

* a MiniML (Standard-ML-like) frontend with Hindley-Milner inference,
* the paper's GC-safe region type system (Section 3) as immutable data
  plus an executable checker of the Figure 4 typing rules,
* region inference with spurious-type-variable tracking (Section 4),
* a region-heap abstract machine with a reference-tracing (optionally
  generational) copying collector that detects dangling pointers,
* the paper's evaluation harness (Figure 9) over MiniML ports of the
  benchmark programs.

Quickstart::

    from repro import compile_program, Strategy

    prog = compile_program("fun double x = x + x val it = double 21")
    print(prog.pretty())            # the region-annotated program
    result = prog.run()
    print(result.value, result.stats.gc_count)
"""

from .config import CompilerFlags, SpuriousMode, Strategy
from .core.errors import (
    CoverageError,
    DanglingPointerError,
    DeadlineExceeded,
    HeapLimitError,
    InterpreterLimit,
    MLExceptionError,
    ParseError,
    RegionInferenceError,
    RegionTypeError,
    ReproError,
    TypeError_,
)
from .pipeline import CompiledProgram, RunResult, compile_program, run_source

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "CompilerFlags",
    "CoverageError",
    "DanglingPointerError",
    "DeadlineExceeded",
    "HeapLimitError",
    "InterpreterLimit",
    "MLExceptionError",
    "ParseError",
    "RegionInferenceError",
    "RegionTypeError",
    "ReproError",
    "RunResult",
    "SpuriousMode",
    "Strategy",
    "TypeError_",
    "compile_program",
    "run_source",
    "__version__",
]

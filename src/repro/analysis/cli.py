"""``repro-verify``: independently re-check a program's region annotation.

Usage::

    repro-verify program.mml [--strategy rg|rg-|r|trivial|ml]
                             [--spurious-mode secondary|identify]
                             [--no-prelude] [--no-cache] [--quiet]

Compiles the program through the normal pipeline, then runs the
:mod:`repro.analysis` verifier — a from-scratch re-derivation of the
paper's judgments, sharing no checking code with region inference — over
the annotated term.  Prints one line per violation with the violated
rule name and the term path of the offending node.

Exit codes: 0 when every judgment holds, 1 on violations *or* a compile
error (for the unsound strategies ``rg-``/``r`` a violation is the
expected outcome, and the exit code says so scriptably).
"""

from __future__ import annotations

import argparse
import sys

from ..config import CompilerFlags, SpuriousMode, Strategy
from ..core.errors import ReproError
from ..pipeline import compile_program
from .verifier import verify_term

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-verify", description=__doc__)
    parser.add_argument("file", help="MiniML source file (or - for stdin)")
    parser.add_argument(
        "--strategy",
        default="rg",
        choices=[s.value for s in Strategy],
        help="compilation strategy whose output to verify (default: rg)",
    )
    parser.add_argument(
        "--spurious-mode",
        default="secondary",
        choices=[m.value for m in SpuriousMode],
        help="how inference handles spurious type variables "
             "(default: secondary)",
    )
    parser.add_argument("--no-prelude", action="store_true",
                        help="compile without the Basis-excerpt prelude")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the compile cache")
    parser.add_argument("--quiet", action="store_true",
                        help="no output; communicate through the exit code")
    return parser


def main(argv: list | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.file == "-":
            source = sys.stdin.read()
        else:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc.strerror or exc}",
              file=sys.stderr)
        return 1

    flags = CompilerFlags(
        strategy=Strategy(args.strategy),
        spurious_mode=SpuriousMode(args.spurious_mode),
        with_prelude=not args.no_prelude,
    )
    try:
        prog = compile_program(source, flags=flags, cache=not args.no_cache)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    report = verify_term(prog.term, strict_exceptions=True)
    if not args.quiet:
        print(report.summary())
        if report.ok:
            print(f"  pi: {report.pi}")
            print(f"  effect: {report.effect}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Verifier findings: violations with rule names and term paths.

The region-annotated term language carries no source spans (region
inference rewrites the tree wholesale), so the verifier localizes each
finding by *term path* — the chain of child edges from the program root
to the offending node, e.g. ``let compose.rhs/fun compose.body`` — which
is stable across runs and meaningful next to ``repro-run --pretty``
output.

Everything here is plain strings so reports pickle cleanly (they ride on
:class:`~repro.pipeline.CompiledProgram` through the compile caches and
the server's worker pool).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import RegionTypeError

__all__ = ["Violation", "VerifierReport"]


@dataclass(frozen=True)
class Violation:
    """One violated judgment.

    ``rule`` names the violated rule or side condition (``TeLam-G``,
    ``TeRapp-coverage``, ``TeReg-escape``, ...); ``path`` localizes the
    offending node by its term path; ``message`` explains the failure in
    the paper's vocabulary.
    """

    rule: str
    path: str
    message: str

    def display(self) -> str:
        where = self.path or "<program>"
        return f"[{self.rule}] at {where}: {self.message}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "message": self.message}


@dataclass(frozen=True)
class VerifierReport:
    """The outcome of an independent verification pass."""

    violations: tuple[Violation, ...] = ()
    #: Rendering of the program's top-level pi, when derivable.
    pi: str = ""
    #: Rendering of the program's top-level effect, when derivable.
    effect: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def rules(self) -> tuple[str, ...]:
        """The distinct violated rule names, in first-occurrence order."""
        seen: list[str] = []
        for v in self.violations:
            if v.rule not in seen:
                seen.append(v.rule)
        return tuple(seen)

    def summary(self) -> str:
        if self.ok:
            return "verified: all region-safety judgments hold"
        lines = [
            f"{len(self.violations)} region-safety violation(s): "
            + ", ".join(self.rules)
        ]
        lines.extend("  " + v.display() for v in self.violations)
        return "\n".join(lines)

    def as_error(self) -> RegionTypeError:
        """The report as a raisable :class:`RegionTypeError` (used by the
        pipeline gate for strategies that must always verify)."""
        return RegionTypeError(self.summary())

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "pi": self.pi,
            "effect": self.effect,
            "rules": list(self.rules),
            "violations": [v.to_dict() for v in self.violations],
        }

"""Independent GC-safety analysis: static verifier + report types.

This package re-derives the paper's safety judgments over the pipeline's
region-annotated output with code written independently of the inference
and checking machinery it audits (see :mod:`repro.analysis.verifier` for
the import discipline), and is the home of the ``repro-verify`` CLI.
The companion *dynamic* oracle — the pointer sanitizer — lives in the
runtime (``RuntimeFlags.sanitize``) since it must sit on the heap's
read/write/scavenge paths.
"""

from .report import VerifierReport, Violation
from .verifier import UNKNOWN, Verifier, verify_term

__all__ = ["UNKNOWN", "VerifierReport", "Verifier", "Violation", "verify_term"]

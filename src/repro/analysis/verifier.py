"""An independent re-derivation of the paper's GC-safety judgments.

``verify_term`` takes the fully region-annotated program the pipeline
produced and re-checks, with code written from scratch against the paper
(not by calling the checker the pipeline already ran):

* well-formedness of type schemes and ``Delta`` contexts (every
  ``Delta``-bound type variable is *spurious*: it does not occur in the
  function's own type — the Section 4 definition),
* type containment / required effects (Section 3.2), implemented as an
  iterative worklist rather than the checker's recursive collectors,
* substitution coverage ``Omega |- St : Delta`` at every instantiation
  site (Section 3.3),
* the instance-of relation on region application (Section 3.4),
* effect containment and discharge through ``letregion`` (Figure 4),
* the GC-safety relation ``G(Omega, Gamma, e, X, pi)`` at every lambda
  and ``fun`` (Section 3.7),
* the Section 4.4 exception side conditions.

Independence discipline: this module must not import
:mod:`repro.core.containment`, :mod:`repro.core.gcsafety`,
:mod:`repro.core.instantiation`, or anything from
:mod:`repro.regions.infer` — those are the implementations under test.
It reuses only *data* layers (terms, types, effects, substitution
application, the free-variable walkers) plus the primitive signature
table, which is an extension of the language, not one of the paper's
judgments.

Unlike the checker, the verifier is *total*: it never raises on a bad
program.  A failed sub-derivation yields the :data:`UNKNOWN` type, and
checks involving ``UNKNOWN`` are skipped, so one broken annotation does
not cascade into a wall of spurious findings and a single pass can
report every independent violation (which is what the mutation-kill
matrix asserts on).
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core import terms as T
from ..core.effects import EMPTY_EFFECT, Effect, RegionVar, show_effect
from ..core.errors import RegionTypeError
from ..core.rtypes import (
    EMPTY_CTX,
    MU_BOOL,
    MU_INT,
    MU_UNIT,
    Mu,
    MuBase,
    MuBoxed,
    MuVar,
    Pi,
    PiScheme,
    Scheme,
    TAU_EXN,
    TAU_REAL,
    TAU_STRING,
    TauArray,
    TauArrow,
    TauData,
    TauList,
    TauPair,
    TauRef,
    TyCtx,
    frev,
    frv,
    ftv,
    show_mu,
    show_pi,
)
from ..core.substitution import Subst
from ..core.typecheck import _prim_type  # the extension's signature table
from .report import Violation, VerifierReport

__all__ = ["UNKNOWN", "Verifier", "verify_term"]


class _Unknown:
    """The error-recovery type: a sub-derivation failed, so nothing is
    known about this term's type.  Comparisons and containment checks
    against it are vacuously satisfied."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unknown>"


UNKNOWN = _Unknown()

_NO_TYVARS: frozenset = frozenset()


def _known(*pis: object) -> bool:
    return not any(isinstance(p, _Unknown) for p in pis)


def _same(a: object, b: object) -> bool:
    """Type equality, vacuous when either side is unknown."""
    if not _known(a, b):
        return True
    return a == b


class Verifier:
    """Collects :class:`Violation` s over one term walk."""

    def __init__(self, strict_exceptions: bool = True) -> None:
        self.strict_exceptions = strict_exceptions
        self.violations: list[Violation] = []

    # -- reporting ----------------------------------------------------------

    def fail(self, rule: str, path: tuple, message: str) -> None:
        self.violations.append(Violation(rule, "/".join(path), message))

    # -- independent judgment implementations -------------------------------

    def required_effect(
        self, omega: TyCtx, mu: object, lenient: frozenset = _NO_TYVARS
    ) -> tuple[Effect, list]:
        """The least ``phi`` with ``Omega |- mu : phi`` (Section 3.2),
        plus the list of *untracked spurious* type variables met on the
        way (type variables neither in ``lenient`` — visible in the
        relevant function type — nor tracked in ``Omega``).

        Iterative worklist over the type structure; never raises.
        """
        out: set = set()
        bad: list = []
        if isinstance(mu, _Unknown):
            return EMPTY_EFFECT, bad
        stack: list = [mu]
        while stack:
            m = stack.pop()
            if isinstance(m, MuVar):
                if m.alpha in lenient:
                    continue
                ae = omega.get(m.alpha)
                if ae is None:
                    bad.append(m.alpha)
                else:
                    out.add(ae.handle)
                    out |= ae.latent
            elif isinstance(m, MuBase):
                pass
            elif isinstance(m, MuBoxed):
                out.add(m.rho)
                t = m.tau
                if isinstance(t, TauPair):
                    stack.append(t.fst)
                    stack.append(t.snd)
                elif isinstance(t, TauArrow):
                    out.add(t.arrow.handle)
                    out |= t.arrow.latent
                    stack.append(t.dom)
                    stack.append(t.cod)
                elif isinstance(t, TauList):
                    stack.append(t.elem)
                elif isinstance(t, TauRef):
                    stack.append(t.content)
                elif isinstance(t, TauArray):
                    stack.append(t.elem)
                elif isinstance(t, TauData):
                    stack.extend(t.targs)
                # string / real / exn contribute only their place
            else:  # pragma: no cover - malformed annotation object
                bad.append(m)
        return frozenset(out), bad

    def pi_containment_failure(
        self, omega: TyCtx, pi: Pi, phi: Effect, lenient: frozenset
    ) -> Optional[str]:
        """``Omega |- pi : phi`` — ``None`` when contained, else the
        reason it is not (Section 3.2, extended to schemes by
        discharging the bound variables)."""
        if isinstance(pi, _Unknown):
            return None
        if isinstance(pi, PiScheme):
            sigma = pi.scheme
            bound = set(sigma.rvars) | set(sigma.evars)
            ambient = frev(omega, pi.rho)
            if bound & ambient:
                return (
                    "bound region/effect variables of the scheme occur free "
                    "in the ambient context"
                )
            if set(sigma.delta) & set(omega):
                return "Delta overlaps the enclosing type-variable context"
            if pi.rho not in phi:
                return f"place {pi.rho.display()} is not in the effect"
            inner_omega = omega.extend(sigma.delta)
            need, bad = self.required_effect(
                inner_omega,
                MuBoxed(sigma.body, pi.rho),
                lenient | frozenset(sigma.tvars),
            )
            if bad:
                return (
                    f"type variable {bad[0].display()} is neither tracked in "
                    "the type-variable context nor visible in the function "
                    "type — an untracked spurious type variable"
                )
            allowed = phi | bound | {pi.rho}
            if not need <= allowed:
                return (
                    f"the scheme body needs {show_effect(need - allowed)} "
                    "beyond the effect"
                )
            return None
        need, bad = self.required_effect(omega, pi, lenient)
        if bad:
            return (
                f"type variable {bad[0].display()} is neither tracked in the "
                "type-variable context nor visible in the function type — an "
                "untracked spurious type variable"
            )
        if not need <= phi:
            return f"the type needs {show_effect(need - phi)} beyond the effect"
        return None

    def expr_contained(self, phi: Effect, e: T.Term) -> bool:
        """``phi |=v e`` (Figure 3): every embedded value lives inside
        ``phi`` and inner binders are fresh for it.  Iterative."""
        stack: list = [e]
        while stack:
            t = stack.pop()
            if isinstance(t, (T.VInt, T.VBool, T.VUnit, T.VNil)):
                continue
            if isinstance(t, (T.VStr, T.VReal)):
                if t.rho not in phi:
                    return False
            elif isinstance(t, (T.VPair, T.VCons)):
                if t.rho not in phi:
                    return False
                stack.extend(T.iter_children(t))
            elif isinstance(t, T.VClos):
                if t.rho not in phi:
                    return False
                stack.append(t.body)
            elif isinstance(t, T.VFunClos):
                if t.rho not in phi or (set(t.rparams) & phi):
                    return False
                stack.append(t.body)
            elif isinstance(t, T.Letregion):
                if set(t.rhos) & phi:
                    return False
                stack.append(t.body)
            elif isinstance(t, T.FunDef):
                if set(t.rparams) & phi:
                    return False
                stack.append(t.body)
            else:
                stack.extend(T.iter_children(t))
        return True

    def check_coverage(
        self,
        omega: TyCtx,
        ty: Mapping,
        delta: TyCtx,
        path: tuple,
        rule: str = "TeRapp-coverage",
    ) -> None:
        """``Omega |- St : Delta`` (Section 3.3): every tracked type
        variable is instantiated, and each instantiated type's required
        effect fits inside the variable's arrow effect."""
        missing = set(delta) - set(ty)
        if missing:
            self.fail(
                rule,
                path,
                "the substitution does not instantiate the tracked type "
                f"variable(s) {sorted(a.display() for a in missing)}",
            )
        for alpha, ae in delta.items():
            target = ty.get(alpha)
            if target is None or isinstance(target, _Unknown):
                continue
            need, bad = self.required_effect(omega, target, _NO_TYVARS)
            if bad:
                self.fail(
                    rule,
                    path,
                    f"the type instantiated for {alpha.display()} contains "
                    f"the untracked type variable {bad[0].display()} "
                    "(transitive spuriousness, Section 4.3)",
                )
                continue
            budget = ae.frev()
            if not need <= budget:
                self.fail(
                    rule,
                    path,
                    f"the type instantiated for {alpha.display()} mentions "
                    f"{show_effect(need - budget)} not covered by its arrow "
                    f"effect {ae.display()} — a dangling pointer could escape",
                )

    def instance(
        self, omega: TyCtx, sigma: Scheme, subst: Subst, path: tuple
    ) -> object:
        """``Omega |- sigma >= tau via subst`` (Section 3.4): domain
        agreement, then coverage of the type part against the
        region/effect-substituted ``Delta``, then application."""
        ok = True
        if set(subst.rgn) != set(sigma.rvars):
            self.fail(
                "TeRapp-domain",
                path,
                "the region-substitution domain "
                f"{sorted(r.display() for r in subst.rgn)} differs from the "
                f"bound regions {sorted(r.display() for r in sigma.rvars)}",
            )
            ok = False
        if set(subst.eff) != set(sigma.evars):
            self.fail(
                "TeRapp-domain",
                path,
                "the effect-substitution domain "
                f"{sorted(e.display() for e in subst.eff)} differs from the "
                f"bound effect variables "
                f"{sorted(e.display() for e in sigma.evars)}",
            )
            ok = False
        expected_tyvars = set(sigma.tvars) | set(sigma.delta)
        if set(subst.ty) != expected_tyvars:
            self.fail(
                "TeRapp-domain",
                path,
                "the type-substitution domain "
                f"{sorted(a.display() for a in subst.ty)} differs from the "
                f"bound type variables "
                f"{sorted(a.display() for a in expected_tyvars)}",
            )
            ok = False
        if not ok:
            return UNKNOWN
        re_part = Subst(rgn=subst.rgn, eff=subst.eff)
        try:
            delta2 = re_part.ctx(sigma.delta)
            body2 = re_part.tau(sigma.body)
        except (ValueError, TypeError) as exc:
            self.fail("TeRapp-domain", path, str(exc))
            return UNKNOWN
        self.check_coverage(omega, dict(subst.ty), delta2, path)
        try:
            return Subst(ty=dict(subst.ty)).tau(body2)
        except (ValueError, TypeError) as exc:  # pragma: no cover - defensive
            self.fail("TeRapp-domain", path, str(exc))
            return UNKNOWN

    def check_G(
        self,
        omega: TyCtx,
        gamma: Mapping[str, Pi],
        body: T.Term,
        params: frozenset,
        pi: Pi,
        path: tuple,
        rule: str,
    ) -> None:
        """``G(Omega, Gamma, e, X, pi)`` (Section 3.7): every value
        embedded in the body lives in ``frv(pi)``, and every captured
        variable's type is contained in ``frev(pi)`` (type variables
        visible in ``pi`` itself are lenient, Section 4)."""
        if isinstance(pi, _Unknown):
            return
        pi_frv = frv(pi)
        pi_frev = frev(pi)
        lenient = ftv(pi)
        if not self.expr_contained(pi_frv, body):
            self.fail(
                rule,
                path,
                "a value embedded in the function body lives outside the "
                "regions of the function's type",
            )
        for y in sorted(T.fpv(body) - params):
            pi_y = gamma.get(y)
            if pi_y is None or isinstance(pi_y, _Unknown):
                continue  # unbound variables are reported at their use site
            reason = self.pi_containment_failure(omega, pi_y, pi_frev, lenient)
            if reason is not None:
                self.fail(
                    rule,
                    path,
                    f"captured variable {y} : {show_pi(pi_y)} is not "
                    f"contained in frev of the function type ({reason})",
                )

    def check_scheme_wf(self, sigma: Scheme, fname: str, path: tuple) -> None:
        """Well-formedness of the scheme and its ``Delta`` context: the
        binder lists are disjoint, and every *spurious* quantified
        variable — one not occurring in the function's own type (the
        Section 4 definition) — is tracked in ``Delta``.  (Tracking a
        visible variable too is sound: it only adds coverage
        obligations at instantiation sites.)"""
        overlap = set(sigma.delta) & set(sigma.tvars)
        if overlap:
            self.fail(
                "wf-scheme",
                path,
                f"fun {fname}: {sorted(a.display() for a in overlap)} bound "
                "both as plain type variable(s) and in Delta",
            )
        spurious = set(sigma.tvars) - ftv(sigma.body)
        if spurious:
            self.fail(
                "wf-delta",
                path,
                f"fun {fname}: quantified type variable(s) "
                f"{sorted(a.display() for a in spurious)} do not occur in "
                "the function's own type — spurious (Section 4) — yet are "
                "not tracked in Delta",
            )

    # -- the walk -----------------------------------------------------------

    def visit(
        self,
        omega: TyCtx,
        gamma: Mapping[str, Pi],
        exnenv: Mapping[str, object],
        e: T.Term,
        path: tuple,
    ) -> tuple[object, Effect]:
        method = getattr(self, f"_v_{type(e).__name__}", None)
        if method is None:
            self.fail("no-rule", path, f"no typing rule for {type(e).__name__}")
            return UNKNOWN, EMPTY_EFFECT
        return method(omega, gamma, exnenv, e, path)

    def visit_mu(self, omega, gamma, exnenv, e, path) -> tuple[object, Effect]:
        pi, phi = self.visit(omega, gamma, exnenv, e, path)
        if isinstance(pi, PiScheme):
            if pi.scheme.is_monotype():
                return MuBoxed(pi.scheme.body, pi.rho), phi
            self.fail(
                "missing-rapp",
                path,
                f"expected a type-and-place, got the polymorphic "
                f"{show_pi(pi)} (a region application is missing)",
            )
            return UNKNOWN, phi
        return pi, phi

    # -- variables and literals ---------------------------------------------

    def _v_Var(self, omega, gamma, exnenv, e: T.Var, path):
        pi = gamma.get(e.name)
        if pi is None:
            self.fail("unbound-var", path, f"unbound variable {e.name}")
            return UNKNOWN, EMPTY_EFFECT
        return pi, EMPTY_EFFECT

    def _v_IntLit(self, omega, gamma, exnenv, e, path):
        return MU_INT, EMPTY_EFFECT

    def _v_BoolLit(self, omega, gamma, exnenv, e, path):
        return MU_BOOL, EMPTY_EFFECT

    def _v_UnitLit(self, omega, gamma, exnenv, e, path):
        return MU_UNIT, EMPTY_EFFECT

    def _v_StringLit(self, omega, gamma, exnenv, e: T.StringLit, path):
        return MuBoxed(TAU_STRING, e.rho), frozenset({e.rho})

    def _v_RealLit(self, omega, gamma, exnenv, e: T.RealLit, path):
        return MuBoxed(TAU_REAL, e.rho), frozenset({e.rho})

    def _v_NilLit(self, omega, gamma, exnenv, e: T.NilLit, path):
        mu = e.mu
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, TauList)):
            self.fail(
                "wf-annotation",
                path,
                f"nil annotated with the non-list type {show_mu(mu)}",
            )
            return UNKNOWN, EMPTY_EFFECT
        return mu, EMPTY_EFFECT

    # -- functions -----------------------------------------------------------

    def _v_Lam(self, omega, gamma, exnenv, e: T.Lam, path):
        mu = e.mu
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, TauArrow)):
            self.fail("TeLam-annotation", path,
                      "lambda annotated with a non-arrow type")
            return UNKNOWN, frozenset({e.rho})
        if mu.rho != e.rho:
            self.fail(
                "TeLam-place",
                path,
                f"lambda allocated at {e.rho.display()} but typed at "
                f"{mu.rho.display()}",
            )
        arrow = mu.tau.arrow
        inner_gamma = dict(gamma)
        inner_gamma[e.param] = mu.tau.dom
        cod, phi_body = self.visit_mu(
            omega, inner_gamma, exnenv, e.body, path + ("fn.body",)
        )
        if not _same(cod, mu.tau.cod):
            self.fail(
                "TeLam-cod",
                path,
                f"lambda body has type {show_mu(cod)}, the annotation says "
                f"{show_mu(mu.tau.cod)}",
            )
        if not phi_body <= arrow.latent:
            self.fail(
                "TeLam-latent",
                path,
                f"lambda body effect {show_effect(phi_body - arrow.latent)} "
                f"exceeds the latent effect {arrow.display()}",
            )
        restricted = {
            x: p for x, p in gamma.items() if x in T.fpv(e.body) - {e.param}
        }
        self.check_G(
            omega, restricted, e.body, frozenset({e.param}), mu, path, "TeLam-G"
        )
        return mu, frozenset({e.rho})

    def _v_FunDef(self, omega, gamma, exnenv, e: T.FunDef, path):
        pi = e.pi
        sigma = pi.scheme
        here = path
        if pi.rho != e.rho:
            self.fail(
                "TeFun-place",
                here,
                f"fun {e.fname} allocated at {e.rho.display()} but its "
                f"scheme place is {pi.rho.display()}",
            )
        if tuple(sigma.rvars) != tuple(e.rparams):
            self.fail(
                "TeFun-params",
                here,
                f"fun {e.fname}: region parameters "
                f"{[r.display() for r in e.rparams]} differ from the "
                f"scheme's bound regions {[r.display() for r in sigma.rvars]}",
            )
        body_tau = sigma.body
        if not isinstance(body_tau, TauArrow):
            self.fail("TeFun-arrow", here,
                      f"fun {e.fname}: scheme body is not an arrow type")
            return pi, frozenset({e.rho})
        self.check_scheme_wf(sigma, e.fname, here)
        arrow = body_tau.arrow
        bound = sigma.bound_atoms()
        delta = sigma.delta

        free_names = T.fpv(e)
        restricted = {
            x: p
            for x, p in gamma.items()
            if x in free_names and not isinstance(p, _Unknown)
        }
        pis = tuple(restricted.values())
        outer_fv = frev(omega, pis, e.rho) | ftv(omega, pis)
        clash = (bound | sigma.bound_tyvars()) & outer_fv
        if clash:
            self.fail(
                "TeFun-fresh",
                here,
                f"bound variables of fun {e.fname} occur free in the "
                f"context: {sorted(str(c) for c in clash)}",
            )
        if set(delta) & set(omega):
            self.fail(
                "TeFun-delta",
                here,
                f"fun {e.fname}: Delta overlaps the enclosing type-variable "
                "context",
            )

        recursive = e.fname in T.fpv(e.body)
        if recursive and bound & frev(delta):
            self.fail(
                "TeFun-polyrec",
                here,
                f"fun {e.fname}: polymorphic recursion may not quantify "
                "over variables appearing in Delta",
            )

        inner_omega = omega.extend(delta)
        inner_gamma = dict(gamma)
        if recursive:
            rec_scheme = Scheme(sigma.rvars, sigma.evars, (), EMPTY_CTX, body_tau)
            inner_gamma[e.fname] = PiScheme(rec_scheme, e.rho)
        inner_gamma[e.param] = body_tau.dom

        cod, phi_body = self.visit_mu(
            inner_omega, inner_gamma, exnenv, e.body,
            path + (f"fun {e.fname}.body",),
        )
        if not _same(cod, body_tau.cod):
            self.fail(
                "TeFun-cod",
                here,
                f"fun {e.fname} body has type {show_mu(cod)}, the scheme "
                f"says {show_mu(body_tau.cod)}",
            )
        if not phi_body <= arrow.latent:
            self.fail(
                "TeFun-latent",
                here,
                f"fun {e.fname} body effect "
                f"{show_effect(phi_body - arrow.latent)} exceeds the latent "
                f"effect {arrow.display()}",
            )
        self.check_G(
            omega, restricted, e.body, frozenset({e.fname, e.param}), pi,
            here, "TeFun-G",
        )
        return pi, frozenset({e.rho})

    def _v_RApp(self, omega, gamma, exnenv, e: T.RApp, path):
        pi_fn, phi = self.visit(omega, gamma, exnenv, e.fn, path + ("rapp.fn",))
        if isinstance(pi_fn, _Unknown):
            return UNKNOWN, phi | {e.rho}
        if not isinstance(pi_fn, PiScheme):
            self.fail("TeRapp-mono", path,
                      "region application of a non-polymorphic value")
            return UNKNOWN, phi | {e.rho}
        sigma = pi_fn.scheme
        if tuple(e.inst.rgn.get(r, r) for r in sigma.rvars) != tuple(e.rargs):
            self.fail(
                "TeRapp-args",
                path,
                "region arguments disagree with the recorded instantiation",
            )
        tau = self.instance(omega, sigma, e.inst, path)
        if isinstance(tau, _Unknown):
            return UNKNOWN, phi | {e.rho, pi_fn.rho}
        return MuBoxed(tau, e.rho), phi | {e.rho, pi_fn.rho}

    def _v_App(self, omega, gamma, exnenv, e: T.App, path):
        mu_fn, phi1 = self.visit_mu(omega, gamma, exnenv, e.fn, path + ("app.fn",))
        mu_arg, phi2 = self.visit_mu(omega, gamma, exnenv, e.arg, path + ("app.arg",))
        if isinstance(mu_fn, _Unknown):
            return UNKNOWN, phi1 | phi2
        if not (isinstance(mu_fn, MuBoxed) and isinstance(mu_fn.tau, TauArrow)):
            self.fail("TeApp-fun", path,
                      f"application of a non-function: {show_mu(mu_fn)}")
            return UNKNOWN, phi1 | phi2
        if not _same(mu_arg, mu_fn.tau.dom):
            self.fail(
                "TeApp-arg",
                path,
                f"argument type {show_mu(mu_arg)} differs from the domain "
                f"{show_mu(mu_fn.tau.dom)}",
            )
        arrow = mu_fn.tau.arrow
        return (
            mu_fn.tau.cod,
            arrow.latent | phi1 | phi2 | {arrow.handle, mu_fn.rho},
        )

    # -- binding forms --------------------------------------------------------

    def _v_Let(self, omega, gamma, exnenv, e: T.Let, path):
        pi1, phi1 = self.visit(omega, gamma, exnenv, e.rhs,
                               path + (f"let {e.name}.rhs",))
        inner = dict(gamma)
        inner[e.name] = pi1
        mu, phi2 = self.visit_mu(omega, inner, exnenv, e.body,
                                 path + (f"let {e.name}.body",))
        return mu, phi1 | phi2

    def _v_Letregion(self, omega, gamma, exnenv, e: T.Letregion, path):
        mu, phi = self.visit_mu(omega, gamma, exnenv, e.body,
                                path + ("letregion.body",))
        restricted = tuple(
            p
            for x, p in gamma.items()
            if x in T.fpv(e.body) and not isinstance(p, _Unknown)
        )
        outside = frev(omega, restricted) | (
            frev(mu) if _known(mu) else EMPTY_EFFECT
        )
        bound = frozenset(e.rhos)
        escaping = bound & outside
        if escaping:
            self.fail(
                "TeReg-escape",
                path,
                f"letregion-bound {show_effect(escaping)} escapes into the "
                "context or the result type",
            )
        for rho in e.rhos:
            if rho.top:
                self.fail("TeReg-global", path,
                          "letregion may not bind a global region")
        local_evars = frozenset(
            a for a in phi
            if not isinstance(a, RegionVar) and a not in outside and not a.top
        )
        return mu, phi - bound - local_evars

    # -- data ------------------------------------------------------------------

    def _v_Pair(self, omega, gamma, exnenv, e: T.Pair, path):
        mu1, phi1 = self.visit_mu(omega, gamma, exnenv, e.fst, path + ("pair.1",))
        mu2, phi2 = self.visit_mu(omega, gamma, exnenv, e.snd, path + ("pair.2",))
        if not _known(mu1, mu2):
            return UNKNOWN, phi1 | phi2 | {e.rho}
        return MuBoxed(TauPair(mu1, mu2), e.rho), phi1 | phi2 | {e.rho}

    def _v_Select(self, omega, gamma, exnenv, e: T.Select, path):
        mu, phi = self.visit_mu(omega, gamma, exnenv, e.pair, path + ("select",))
        if isinstance(mu, _Unknown):
            return UNKNOWN, phi
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, TauPair)):
            self.fail("TeSel-pair", path,
                      f"#{e.index} of a non-pair: {show_mu(mu)}")
            return UNKNOWN, phi
        if e.index not in (1, 2):
            self.fail("TeSel-index", path,
                      f"pair projection index {e.index}")
            return UNKNOWN, phi | {mu.rho}
        out = mu.tau.fst if e.index == 1 else mu.tau.snd
        return out, phi | {mu.rho}

    def _v_Cons(self, omega, gamma, exnenv, e: T.Cons, path):
        mu_h, phi1 = self.visit_mu(omega, gamma, exnenv, e.head, path + ("cons.hd",))
        mu_t, phi2 = self.visit_mu(omega, gamma, exnenv, e.tail, path + ("cons.tl",))
        if isinstance(mu_t, _Unknown):
            return UNKNOWN, phi1 | phi2 | {e.rho}
        if not (isinstance(mu_t, MuBoxed) and isinstance(mu_t.tau, TauList)):
            self.fail("TeCons-tail", path, f":: onto a non-list {show_mu(mu_t)}")
            return UNKNOWN, phi1 | phi2 | {e.rho}
        if not _same(mu_t.tau.elem, mu_h):
            self.fail(
                "TeCons-elem",
                path,
                f":: element type {show_mu(mu_h)} differs from the list "
                f"element type {show_mu(mu_t.tau.elem)}",
            )
        if mu_t.rho != e.rho:
            self.fail(
                "TeCons-place",
                path,
                f":: allocates at {e.rho.display()} but the spine lives in "
                f"{mu_t.rho.display()}",
            )
        return mu_t, phi1 | phi2 | {e.rho}

    def _v_If(self, omega, gamma, exnenv, e: T.If, path):
        mu_c, phi0 = self.visit_mu(omega, gamma, exnenv, e.cond, path + ("if.cond",))
        if _known(mu_c) and mu_c != MU_BOOL:
            self.fail("TeIf-cond", path,
                      f"if-condition has type {show_mu(mu_c)}")
        mu1, phi1 = self.visit_mu(omega, gamma, exnenv, e.then, path + ("if.then",))
        mu2, phi2 = self.visit_mu(omega, gamma, exnenv, e.els, path + ("if.else",))
        if not _same(mu1, mu2):
            self.fail(
                "TeIf-branch",
                path,
                f"if-branches disagree: {show_mu(mu1)} vs {show_mu(mu2)}",
            )
        phi = phi0 | phi1 | phi2
        return (mu1 if _known(mu1) else mu2), phi

    # -- primitives -------------------------------------------------------------

    def _v_Prim(self, omega, gamma, exnenv, e: T.Prim, path):
        mus: list = []
        phi: Effect = EMPTY_EFFECT
        for i, a in enumerate(e.args):
            mu, p = self.visit_mu(omega, gamma, exnenv, a,
                                  path + (f"{e.op}.{i + 1}",))
            mus.append(mu)
            phi = phi | p
        if not _known(*mus):
            extra = frozenset({e.rho}) if e.rho is not None else EMPTY_EFFECT
            return UNKNOWN, phi | extra
        try:
            mu_out, extra = _prim_type(e.op, mus, e.rho)
        except RegionTypeError as exc:
            self.fail("prim-type", path, str(exc))
            extra = frozenset({e.rho}) if e.rho is not None else EMPTY_EFFECT
            return UNKNOWN, phi | extra
        return mu_out, phi | extra

    # -- references ---------------------------------------------------------------

    def _v_MkRef(self, omega, gamma, exnenv, e: T.MkRef, path):
        mu, phi = self.visit_mu(omega, gamma, exnenv, e.init, path + ("ref",))
        if isinstance(mu, _Unknown):
            return UNKNOWN, phi | {e.rho}
        return MuBoxed(TauRef(mu), e.rho), phi | {e.rho}

    def _v_Deref(self, omega, gamma, exnenv, e: T.Deref, path):
        mu, phi = self.visit_mu(omega, gamma, exnenv, e.ref, path + ("deref",))
        if isinstance(mu, _Unknown):
            return UNKNOWN, phi
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, TauRef)):
            self.fail("TeRef-deref", path, f"! of a non-ref {show_mu(mu)}")
            return UNKNOWN, phi
        return mu.tau.content, phi | {mu.rho}

    def _v_Assign(self, omega, gamma, exnenv, e: T.Assign, path):
        mu_r, phi1 = self.visit_mu(omega, gamma, exnenv, e.ref,
                                   path + ("assign.ref",))
        mu_v, phi2 = self.visit_mu(omega, gamma, exnenv, e.value,
                                   path + ("assign.value",))
        if isinstance(mu_r, _Unknown):
            return MU_UNIT, phi1 | phi2
        if not (isinstance(mu_r, MuBoxed) and isinstance(mu_r.tau, TauRef)):
            self.fail("TeRef-assign", path,
                      f":= into a non-ref {show_mu(mu_r)}")
            return MU_UNIT, phi1 | phi2
        if not _same(mu_v, mu_r.tau.content):
            self.fail(
                "TeRef-assign",
                path,
                f":= stores {show_mu(mu_v)} into a {show_mu(mu_r)} cell",
            )
        return MU_UNIT, phi1 | phi2 | {mu_r.rho}

    # -- datatypes -------------------------------------------------------------------

    def _v_LetData(self, omega, gamma, exnenv, e: T.LetData, path):
        for conname, template in e.constructors:
            if template is None:
                continue
            for rho in frv(template):
                if rho != e.self_rho:
                    self.fail(
                        "TeData-uniform",
                        path,
                        f"constructor {conname} of {e.name}: a payload "
                        f"component at {rho.display()} violates the uniform "
                        "single-region representation",
                    )
            if self._template_has_arrow(template):
                self.fail(
                    "TeData-arrow",
                    path,
                    f"constructor {conname} of {e.name}: function types in "
                    "constructor payloads are not supported",
                )
        inner = dict(exnenv)
        inner[f"data:{e.name}"] = e
        return self.visit(omega, gamma, inner, e.body,
                          path + (f"data {e.name}.body",))

    def _template_has_arrow(self, mu: Mu) -> bool:
        stack = [mu]
        while stack:
            m = stack.pop()
            if isinstance(m, MuBoxed):
                t = m.tau
                if isinstance(t, TauArrow):
                    return True
                if isinstance(t, TauPair):
                    stack += [t.fst, t.snd]
                elif isinstance(t, TauList):
                    stack.append(t.elem)
                elif isinstance(t, TauRef):
                    stack.append(t.content)
                elif isinstance(t, TauArray):
                    stack.append(t.elem)
                elif isinstance(t, TauData):
                    stack.extend(t.targs)
        return False

    def _payload(self, decl: T.LetData, conname: str, targs, rho, path):
        """Instantiate a constructor payload template; the second item is
        False when the constructor lookup itself failed."""
        for cname, template in decl.constructors:
            if cname == conname:
                if template is None:
                    return None, True
                if len(targs) != len(decl.params):
                    self.fail(
                        "TeData-arity",
                        path,
                        f"{decl.name} expects {len(decl.params)} type "
                        f"argument(s), got {len(targs)}",
                    )
                    return UNKNOWN, True
                subst = Subst(
                    ty=dict(zip(decl.params, targs)), rgn={decl.self_rho: rho}
                )
                return subst.mu(template), True
        self.fail("TeData-unknown", path,
                  f"{conname} is not a constructor of {decl.name}")
        return UNKNOWN, False

    def _v_DataCon(self, omega, gamma, exnenv, e: T.DataCon, path):
        decl = exnenv.get(f"data:{e.dataname}")
        phi: Effect = frozenset({e.rho})
        if decl is None:
            self.fail("TeData-unknown", path,
                      f"unknown datatype {e.dataname}")
            return UNKNOWN, phi
        payload, _found = self._payload(decl, e.conname, e.targs, e.rho, path)
        if not isinstance(payload, _Unknown) and (payload is None) != (e.arg is None):
            self.fail("TeData-arity", path,
                      f"arity mismatch for constructor {e.conname}")
        if e.arg is not None:
            mu, phi_arg = self.visit_mu(omega, gamma, exnenv, e.arg,
                                        path + (f"{e.conname}.arg",))
            if payload is not None and not _same(mu, payload):
                self.fail(
                    "TeData-payload",
                    path,
                    f"constructor {e.conname} expects "
                    f"{show_mu(payload)}, got {show_mu(mu)}",
                )
            phi = phi | phi_arg
        return MuBoxed(TauData(e.dataname, e.targs), e.rho), phi

    def _v_Case(self, omega, gamma, exnenv, e: T.Case, path):
        mu_s, phi = self.visit_mu(omega, gamma, exnenv, e.scrutinee,
                                  path + ("case.scrut",))
        decl = None
        if isinstance(mu_s, MuBoxed) and isinstance(mu_s.tau, TauData):
            decl = exnenv.get(f"data:{mu_s.tau.name}")
            if decl is None:
                self.fail("TeData-unknown", path,
                          f"unknown datatype {mu_s.tau.name}")
            phi = phi | {mu_s.rho}
        elif _known(mu_s):
            if any(br.conname is not None for br in e.branches):
                self.fail(
                    "TeCase-scrut",
                    path,
                    f"case on a non-datatype value {show_mu(mu_s)}",
                )
        result: object = UNKNOWN
        for i, br in enumerate(e.branches):
            inner = dict(gamma)
            if br.conname is not None:
                payload: object = UNKNOWN
                if decl is not None:
                    payload, _found = self._payload(
                        decl, br.conname, mu_s.tau.targs, mu_s.rho, path
                    )
                if payload is None and br.binder is not None:
                    self.fail(
                        "TeCase-branch",
                        path,
                        f"{br.conname} is nullary but the branch binds a "
                        "payload",
                    )
                if payload is not None:
                    if br.binder is None and not isinstance(payload, _Unknown):
                        self.fail(
                            "TeCase-branch",
                            path,
                            f"{br.conname} carries a payload the branch "
                            "ignores without binding",
                        )
                    if br.binder is not None:
                        inner[br.binder] = payload
            elif br.binder is not None:
                inner[br.binder] = mu_s
            mu_b, phi_b = self.visit_mu(
                omega, inner, exnenv, br.body,
                path + (f"case.{br.conname or '_'}",),
            )
            phi = phi | phi_b
            if isinstance(result, _Unknown):
                result = mu_b
            elif not _same(mu_b, result):
                self.fail(
                    "TeCase-branch",
                    path,
                    f"case branches disagree: {show_mu(result)} vs "
                    f"{show_mu(mu_b)}",
                )
        if not e.branches:
            self.fail("TeCase-branch", path, "case with no branches")
        return result, phi

    # -- exceptions ------------------------------------------------------------------

    def _v_LetExn(self, omega, gamma, exnenv, e: T.LetExn, path):
        if e.payload is not None and self.strict_exceptions:
            need, bad = self.required_effect(omega, e.payload, _NO_TYVARS)
            if bad:
                self.fail(
                    "exn-tyvar",
                    path,
                    f"exception {e.exname}: the payload type mentions "
                    f"untracked type variable(s) "
                    f"{sorted(a.display() for a in bad)} — Section 4.4 "
                    "tracks exception type variables like spurious ones, "
                    "pinned to the global effect",
                )
            non_global = frozenset(
                r for r in need if isinstance(r, RegionVar) and not r.top
            )
            if non_global:
                self.fail(
                    "exn-global",
                    path,
                    f"exception {e.exname}: the payload type mentions "
                    f"non-global regions {show_effect(non_global)} "
                    "(Section 4.4: a raised value may escape; all its "
                    "regions must be top-level)",
                )
        inner = dict(exnenv)
        inner[e.exname] = e.payload
        return self.visit(omega, gamma, inner, e.body,
                          path + (f"exn {e.exname}.body",))

    def _v_Con(self, omega, gamma, exnenv, e: T.Con, path):
        if e.exname not in exnenv:
            self.fail("TeExn-unknown", path,
                      f"unknown exception constructor {e.exname}")
            return MuBoxed(TAU_EXN, e.rho), frozenset({e.rho})
        payload = exnenv[e.exname]
        phi: Effect = frozenset({e.rho})
        if self.strict_exceptions and not e.rho.top:
            self.fail(
                "exn-global",
                path,
                f"exception value allocated in the non-global region "
                f"{e.rho.display()}",
            )
        if (payload is None) != (e.arg is None):
            self.fail("TeExn-arity", path,
                      f"arity mismatch for exception {e.exname}")
        if e.arg is not None:
            mu, phi_arg = self.visit_mu(omega, gamma, exnenv, e.arg,
                                        path + (f"{e.exname}.arg",))
            if payload is not None and not _same(mu, payload):
                self.fail(
                    "TeExn-payload",
                    path,
                    f"exception {e.exname} expects {show_mu(payload)}, got "
                    f"{show_mu(mu)}",
                )
            phi |= phi_arg
        return MuBoxed(TAU_EXN, e.rho), phi

    def _v_Raise(self, omega, gamma, exnenv, e: T.Raise, path):
        mu, phi = self.visit_mu(omega, gamma, exnenv, e.exn, path + ("raise",))
        if isinstance(mu, _Unknown):
            return e.mu, phi
        if not (isinstance(mu, MuBoxed) and isinstance(mu.tau, type(TAU_EXN))):
            self.fail("TeRaise-type", path,
                      f"raise of a non-exception {show_mu(mu)}")
            return e.mu, phi
        return e.mu, phi | {mu.rho}

    def _v_Handle(self, omega, gamma, exnenv, e: T.Handle, path):
        mu, phi1 = self.visit_mu(omega, gamma, exnenv, e.body,
                                 path + ("handle.body",))
        if e.exname not in exnenv:
            self.fail("TeExn-unknown", path,
                      f"handler for unknown exception {e.exname}")
            return mu, phi1
        payload = exnenv[e.exname]
        inner = dict(gamma)
        if e.binder is not None:
            if payload is None:
                self.fail(
                    "TeExn-arity",
                    path,
                    f"handler binds a payload but {e.exname} is nullary",
                )
                inner[e.binder] = UNKNOWN
            else:
                inner[e.binder] = payload
        mu_h, phi2 = self.visit_mu(omega, inner, exnenv, e.handler,
                                   path + ("handle.with",))
        if not _same(mu_h, mu):
            self.fail(
                "TeHandle-type",
                path,
                f"handler type {show_mu(mu_h)} differs from the body type "
                f"{show_mu(mu)}",
            )
        return (mu if _known(mu) else mu_h), phi1 | phi2

    # -- value forms -----------------------------------------------------------------

    def _v_VInt(self, omega, gamma, exnenv, e, path):
        return MU_INT, EMPTY_EFFECT

    def _v_VBool(self, omega, gamma, exnenv, e, path):
        return MU_BOOL, EMPTY_EFFECT

    def _v_VUnit(self, omega, gamma, exnenv, e, path):
        return MU_UNIT, EMPTY_EFFECT

    def _v_VNil(self, omega, gamma, exnenv, e: T.VNil, path):
        return self._v_NilLit(omega, gamma, exnenv, T.NilLit(e.mu), path)

    def _v_VStr(self, omega, gamma, exnenv, e: T.VStr, path):
        return MuBoxed(TAU_STRING, e.rho), EMPTY_EFFECT

    def _v_VReal(self, omega, gamma, exnenv, e: T.VReal, path):
        return MuBoxed(TAU_REAL, e.rho), EMPTY_EFFECT

    def _v_VPair(self, omega, gamma, exnenv, e: T.VPair, path):
        mu1, _ = self.visit(omega, {}, exnenv, e.fst, path + ("vpair.1",))
        mu2, _ = self.visit(omega, {}, exnenv, e.snd, path + ("vpair.2",))
        if not _known(mu1, mu2):
            return UNKNOWN, EMPTY_EFFECT
        return MuBoxed(TauPair(mu1, mu2), e.rho), EMPTY_EFFECT

    def _v_VCons(self, omega, gamma, exnenv, e: T.VCons, path):
        mu_h, _ = self.visit(omega, {}, exnenv, e.head, path + ("vcons.hd",))
        mu_t, _ = self.visit(omega, {}, exnenv, e.tail, path + ("vcons.tl",))
        if isinstance(mu_t, _Unknown):
            return UNKNOWN, EMPTY_EFFECT
        if not (isinstance(mu_t, MuBoxed) and isinstance(mu_t.tau, TauList)):
            self.fail("TeCons-tail", path, "cons value with a non-list tail")
            return UNKNOWN, EMPTY_EFFECT
        if mu_t.rho != e.rho or not _same(mu_t.tau.elem, mu_h):
            self.fail("TeCons-elem", path, "ill-typed cons value")
        return mu_t, EMPTY_EFFECT

    def _v_VClos(self, omega, gamma, exnenv, e: T.VClos, path):
        mu, _phi = self._v_Lam(
            omega, {}, exnenv, T.Lam(e.param, e.body, e.rho, e.mu), path
        )
        return mu, EMPTY_EFFECT

    def _v_VFunClos(self, omega, gamma, exnenv, e: T.VFunClos, path):
        pi, _phi = self._v_FunDef(
            omega, {}, exnenv,
            T.FunDef(e.fname, e.rparams, e.param, e.body, e.rho, e.pi),
            path,
        )
        return pi, EMPTY_EFFECT


def verify_term(term: T.Term, strict_exceptions: bool = True) -> VerifierReport:
    """Independently verify a closed region-annotated program.

    Returns a :class:`VerifierReport`; never raises on a bad program
    (callers that want an exception use ``report.as_error()``).
    """
    verifier = Verifier(strict_exceptions)
    pi, phi = verifier.visit(EMPTY_CTX, {}, {}, term, ())
    return VerifierReport(
        violations=tuple(verifier.violations),
        pi=show_pi(pi) if _known(pi) else "<unknown>",
        effect=show_effect(phi),
    )

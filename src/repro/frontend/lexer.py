"""Lexer for MiniML, the Standard-ML-like source language.

Token kinds: keywords, identifiers, type variables (``'a``), integer /
real / string literals, and symbolic operators.  SML conventions are
followed where they matter for the benchmarks: ``~`` is unary minus,
``(* ... *)`` comments nest, real literals require a digit on both sides
of the point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import LexError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "val", "fun", "fn", "let", "in", "end", "if", "then", "else",
        "true", "false", "andalso", "orelse", "raise", "handle",
        "exception", "of", "nil", "not", "ref", "div", "mod", "rec", "op",
        "and", "datatype", "case",
    }
)

_SYMBOLS = [
    # longest first
    "=>", "->", "::", ":=", "<>", "<=", ">=",
    "(", ")", "[", "]", ",", ";", "=", "<", ">", "+", "-", "*", "/",
    "^", "~", "!", ":", "_", "#", "@", "|",
]


@dataclass(frozen=True, slots=True)
class Token:
    kind: str       # "kw", "id", "tyvar", "int", "real", "string", "sym", "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text}@{self.line}:{self.col}"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on malformed input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("(*", i):
            depth = 1
            start_line, start_col = line, col
            advance(2)
            while i < n and depth:
                if source.startswith("(*", i):
                    depth += 1
                    advance(2)
                elif source.startswith("*)", i):
                    depth -= 1
                    advance(2)
                else:
                    advance(1)
            if depth:
                raise LexError("unterminated comment", start_line, start_col)
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance(1)
            buf: list[str] = []
            while i < n and source[i] != '"':
                c = source[i]
                if c == "\\":
                    advance(1)
                    if i >= n:
                        break
                    esc = source[i]
                    mapping = {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}
                    if esc not in mapping:
                        raise LexError(f"bad escape \\{esc}", line, col)
                    buf.append(mapping[esc])
                    advance(1)
                elif c == "\n":
                    raise LexError("newline in string literal", line, col)
                else:
                    buf.append(c)
                    advance(1)
            if i >= n:
                raise LexError("unterminated string", start_line, start_col)
            advance(1)  # closing quote
            tokens.append(Token("string", "".join(buf), start_line, start_col))
            continue
        if ch.isdigit():
            start_line, start_col = line, col
            j = i
            while j < n and source[j].isdigit():
                j += 1
            is_real = False
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                is_real = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "~-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_real = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("real" if is_real else "int", text, start_line, start_col))
            continue
        if ch == "'":
            start_line, start_col = line, col
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            if j == i + 1:
                raise LexError("lone quote", line, col)
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("tyvar", text, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_" and i + 1 < n and (source[i + 1].isalnum() or source[i + 1] == "_"):
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_'"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        matched = False
        for sym in _SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("sym", sym, line, col))
                advance(len(sym))
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("eof", "", line, col))
    return tokens

"""ML types, type schemes, and unification for the MiniML frontend.

Classic destructive-unification Hindley-Milner machinery with:

* *levels* (Remy-style) for efficient generalization,
* *overload classes* for SML-style arithmetic/comparison overloading
  (``num`` = {int, real}, ``ord`` = {int, real, string}), defaulting to
  ``int`` at the end of inference,
* *equality types*: ``=``/``<>`` variables carry the ``eq`` class, which
  admits the base equality types {int, bool, unit, string} **and**
  structured equality types — pairs/lists of equality types, any ``ref``,
  and datatypes whose constructors only carry equality types
  (:func:`register_eq_datatype`).  ``real``, arrows, and ``exn`` are not
  equality types, exactly as in the Definition of Standard ML,
* a ``weak`` marker for type variables that may not be generalized
  (the value restriction: only syntactic functions generalize here).

These are the *source* types; region inference later "spreads" them into
region-annotated types (:mod:`repro.core.rtypes`).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..core.errors import TypeError_

__all__ = [
    "MLType",
    "TVar",
    "TCon",
    "T_INT",
    "T_REAL",
    "T_STRING",
    "T_BOOL",
    "T_UNIT",
    "T_EXN",
    "arrow",
    "pair",
    "tuple_type",
    "list_of",
    "ref_of",
    "array_of",
    "MLScheme",
    "prune",
    "zonk",
    "unify",
    "free_tvars",
    "occurs_in",
    "fresh_tvar",
    "reset_tvar_names",
    "show_type",
    "show_scheme",
    "OVERLOAD_CLASSES",
    "EQTYPE_DATATYPES",
    "register_eq_datatype",
    "reset_eq_datatypes",
    "admits_eq",
    "require_eq",
    "default_overloads",
]


#: ``inteq``/``ordeq`` only arise as intersections (a variable that is
#: both ``num``/``ord`` and ``eq``); ``real`` is *not* an equality type,
#: so those intersections exclude it.
OVERLOAD_CLASSES: dict[str, frozenset] = {
    "num": frozenset({"int", "real"}),
    "ord": frozenset({"int", "real", "string"}),
    "eq": frozenset({"int", "bool", "unit", "string"}),
    "ordeq": frozenset({"int", "string"}),
    "inteq": frozenset({"int"}),
}

#: Which base-type members of ``eq`` stay equality types; structured
#: types go through :func:`admits_eq` instead.
_EQ_BASES = OVERLOAD_CLASSES["eq"]

#: datatype name -> does it admit equality (computed at declaration by
#: the inferencer: every constructor payload is an equality type,
#: assuming the datatype itself and its parameters are).
EQTYPE_DATATYPES: dict[str, bool] = {}


def register_eq_datatype(name: str, admits: bool) -> None:
    EQTYPE_DATATYPES[name] = admits


def reset_eq_datatypes() -> None:
    """Called at the start of each inference run so datatype names from
    a previous program cannot leak their equality status."""
    EQTYPE_DATATYPES.clear()


def admits_eq(t: MLType, assume: frozenset = frozenset()) -> bool:
    """Is ``t`` an equality type?  Non-destructive (adds no constraints):
    type variables count as equality types, matching the Definition's
    rule for computing a datatype's equality attribute where parameters
    are *assumed* to admit equality.  ``assume`` carries datatype names
    whose equality is being established (recursive occurrences)."""
    t = prune(t)
    if isinstance(t, TVar):
        return True
    assert isinstance(t, TCon)
    if t.name in _EQ_BASES:
        return True
    if t.name in ("ref", "array"):
        return True  # pointer equality for any 'a, as for refs in SML
    if t.name in ("*", "list"):
        return all(admits_eq(a, assume) for a in t.args)
    if t.name in assume or EQTYPE_DATATYPES.get(t.name, False):
        return all(admits_eq(a, assume) for a in t.args)
    return False  # real, ->, exn, non-equality datatypes


def require_eq(t: MLType, where: str = "") -> None:
    """Constrain ``t`` to be an equality type, destructively: variables
    get the ``eq`` overload, structured types recurse into their element
    types (``'a list = 'a list`` needs ``''a``), refs accept anything.
    Raises :class:`TypeError_` for real/arrow/exn/non-eq datatypes."""
    t = prune(t)
    if isinstance(t, TVar):
        t.overload = _merge_overloads(t.overload, "eq")
        return
    assert isinstance(t, TCon)
    if t.name in _EQ_BASES or t.name in ("ref", "array"):
        return
    if t.name in ("*", "list") or EQTYPE_DATATYPES.get(t.name, False):
        for a in t.args:
            require_eq(a, where)
        return
    raise TypeError_(
        f"type {show_type(t)} is not an equality type{_ctx(where)}"
    )

_counter = itertools.count(1)


class MLType:
    """Base class for source types."""

    __slots__ = ()


class TVar(MLType):
    """A unification variable.

    ``instance`` is the union-find link; ``level`` the binding depth used
    for generalization; ``overload`` an optional overload-class name;
    ``user_name`` is set for programmer-written type variables (``'a``)
    from annotations, which unify like ordinary variables but display
    with their source name.
    """

    __slots__ = ("ident", "instance", "level", "overload", "user_name")

    def __init__(
        self,
        level: int,
        overload: Optional[str] = None,
        user_name: Optional[str] = None,
    ) -> None:
        self.ident = next(_counter)
        self.instance: Optional[MLType] = None
        self.level = level
        self.overload = overload
        self.user_name = user_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return show_type(self)


class TCon(MLType):
    """A type constructor application: ``int``, ``t1 -> t2``, ``t1 * t2``,
    ``t list``, ``t ref``, ``exn``."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: tuple[MLType, ...] = ()) -> None:
        self.name = name
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return show_type(self)


T_INT = TCon("int")
T_REAL = TCon("real")
T_STRING = TCon("string")
T_BOOL = TCon("bool")
T_UNIT = TCon("unit")
T_EXN = TCon("exn")


def arrow(dom: MLType, cod: MLType) -> TCon:
    return TCon("->", (dom, cod))


def pair(fst: MLType, snd: MLType) -> TCon:
    return TCon("*", (fst, snd))


def tuple_type(elems: list[MLType]) -> MLType:
    """n-tuples desugar to right-nested pairs; the 0-tuple is unit."""
    if not elems:
        return T_UNIT
    if len(elems) == 1:
        return elems[0]
    return pair(elems[0], tuple_type(elems[1:]))


def list_of(elem: MLType) -> TCon:
    return TCon("list", (elem,))


def ref_of(content: MLType) -> TCon:
    return TCon("ref", (content,))


def array_of(elem: MLType) -> TCon:
    return TCon("array", (elem,))


def fresh_tvar(level: int, overload: Optional[str] = None) -> TVar:
    return TVar(level, overload)


def prune(t: MLType) -> MLType:
    """Follow instance links, path-compressing."""
    if isinstance(t, TVar) and t.instance is not None:
        t.instance = prune(t.instance)
        return t.instance
    return t


def zonk(t: MLType) -> MLType:
    """Fully resolve a type (pruning through constructors)."""
    t = prune(t)
    if isinstance(t, TCon) and t.args:
        return TCon(t.name, tuple(zonk(a) for a in t.args))
    return t


def occurs_in(var: TVar, t: MLType) -> bool:
    t = prune(t)
    if t is var:
        return True
    if isinstance(t, TCon):
        return any(occurs_in(var, a) for a in t.args)
    return False


def _merge_overloads(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a is None:
        return b
    if b is None or a == b:
        return a
    inter = OVERLOAD_CLASSES[a] & OVERLOAD_CLASSES[b]
    for name, members in OVERLOAD_CLASSES.items():
        if members == inter:
            return name
    if not inter:
        raise TypeError_(f"incompatible overload classes {a} and {b}")
    # Pick the smaller class containing the intersection.
    best = min(
        (name for name, members in OVERLOAD_CLASSES.items() if inter <= members),
        key=lambda n: len(OVERLOAD_CLASSES[n]),
    )
    return best


def unify(t1: MLType, t2: MLType, where: str = "") -> None:
    """Destructive unification; raises :class:`TypeError_` on mismatch."""
    t1, t2 = prune(t1), prune(t2)
    if t1 is t2:
        return
    if isinstance(t1, TVar):
        if occurs_in(t1, t2):
            raise TypeError_(f"occurs check: circular type{_ctx(where)}")
        if isinstance(t2, TVar):
            t2.level = min(t1.level, t2.level)
            t2.overload = _merge_overloads(t1.overload, t2.overload)
        else:
            if t1.overload is not None:
                if t1.overload == "eq":
                    # Equality admits structured types; recurse.
                    require_eq(t2, where)
                elif not (isinstance(t2, TCon) and not t2.args
                          and t2.name in OVERLOAD_CLASSES[t1.overload]):
                    raise TypeError_(
                        f"type {show_type(t2)} is not in overload class "
                        f"{t1.overload}{_ctx(where)}"
                    )
            _demote_levels(t2, t1.level)
        t1.instance = t2
        return
    if isinstance(t2, TVar):
        unify(t2, t1, where)
        return
    assert isinstance(t1, TCon) and isinstance(t2, TCon)
    if t1.name != t2.name or len(t1.args) != len(t2.args):
        raise TypeError_(
            f"cannot unify {show_type(t1)} with {show_type(t2)}{_ctx(where)}"
        )
    for a, b in zip(t1.args, t2.args):
        unify(a, b, where)


def _ctx(where: str) -> str:
    return f" ({where})" if where else ""


def _demote_levels(t: MLType, level: int) -> None:
    """Lower every variable in ``t`` to at most ``level`` (generalization
    must not capture variables that leaked into an outer type)."""
    t = prune(t)
    if isinstance(t, TVar):
        t.level = min(t.level, level)
        return
    for a in t.args:  # type: ignore[union-attr]
        _demote_levels(a, level)


def free_tvars(t: MLType) -> list[TVar]:
    """The free type variables of ``t``, in first-occurrence order."""
    out: list[TVar] = []
    seen: set[int] = set()

    def go(u: MLType) -> None:
        u = prune(u)
        if isinstance(u, TVar):
            if u.ident not in seen:
                seen.add(u.ident)
                out.append(u)
        else:
            for a in u.args:  # type: ignore[union-attr]
                go(a)

    go(t)
    return out


class MLScheme:
    """A source type scheme ``forall qvars. body``."""

    __slots__ = ("qvars", "body")

    def __init__(self, qvars: tuple[TVar, ...], body: MLType) -> None:
        self.qvars = qvars
        self.body = body

    def instantiate(self, level: int) -> tuple[MLType, dict[int, MLType]]:
        """A fresh instance; returns the type and the map qvar-ident ->
        fresh type (recorded by inference for region elaboration)."""
        mapping: dict[int, MLType] = {
            q.ident: fresh_tvar(level, q.overload) for q in self.qvars
        }
        return _subst(self.body, mapping), mapping

    def is_mono(self) -> bool:
        return not self.qvars

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return show_scheme(self)


def _subst(t: MLType, mapping: dict[int, MLType]) -> MLType:
    t = prune(t)
    if isinstance(t, TVar):
        return mapping.get(t.ident, t)
    if t.args:
        return TCon(t.name, tuple(_subst(a, mapping) for a in t.args))
    return t


def default_overloads(t: MLType) -> None:
    """Resolve any remaining overloaded variables in ``t`` (int wins,
    matching SML defaulting)."""
    t = prune(t)
    if isinstance(t, TVar):
        if t.overload is not None:
            t.instance = T_INT
            t.overload = None
        return
    for a in t.args:
        default_overloads(a)


# ---------------------------------------------------------------------------
# Display
# ---------------------------------------------------------------------------

_display_names: dict[int, str] = {}


def reset_tvar_names() -> None:
    _display_names.clear()


def _tvar_name(v: TVar) -> str:
    if v.user_name:
        return v.user_name
    if v.ident not in _display_names:
        letter = chr(ord("a") + len(_display_names) % 26)
        suffix = len(_display_names) // 26
        _display_names[v.ident] = f"'{letter}{suffix if suffix else ''}"
    return _display_names[v.ident]


def show_type(t: MLType, prec: int = 0) -> str:
    t = prune(t)
    if isinstance(t, TVar):
        base = _tvar_name(t)
        return f"{base}#{t.overload}" if t.overload else base
    assert isinstance(t, TCon)
    if t.name == "->":
        inner = f"{show_type(t.args[0], 2)} -> {show_type(t.args[1], 1)}"
        return f"({inner})" if prec >= 2 else inner
    if t.name == "*":
        inner = f"{show_type(t.args[0], 3)} * {show_type(t.args[1], 2)}"
        return f"({inner})" if prec >= 3 else inner
    if t.name in ("list", "ref", "array"):
        return f"{show_type(t.args[0], 3)} {t.name}"
    if t.args:  # a user datatype
        if len(t.args) == 1:
            return f"{show_type(t.args[0], 3)} {t.name}"
        inner = ", ".join(show_type(a) for a in t.args)
        return f"({inner}) {t.name}"
    return t.name


def show_scheme(s: MLScheme) -> str:
    if not s.qvars:
        return show_type(s.body)
    qs = " ".join(_tvar_name(q) for q in s.qvars)
    return f"forall {qs}. {show_type(s.body)}"

"""Hindley-Milner type inference (algorithm W) for MiniML.

Beyond checking the program, inference records everything region
inference needs, keyed by node identity:

* ``node_type``    — the type of every expression node,
* ``var_instance`` — for each occurrence of a polymorphic variable (or
  built-in), which binder it refers to and the types instantiated for
  its quantified variables; this is the ``St`` part of the paper's
  instantiating substitutions,
* ``binding_scheme`` / ``binder_of`` — the scheme of each generalizing
  binder and the resolution of every occurrence to its binder,
* ``con_use`` — occurrences that are exception constructors,
* ``recursive`` — whether a ``fun`` binding actually recurses.

Generalization follows the value restriction, narrowed (as announced in
DESIGN.md) to *syntactic functions*: ``fun`` declarations and ``val``
declarations whose right-hand side is a ``fn``.  This matches what the
paper's region language can express (its ``let`` rule does not
generalize; ``fun`` is the scheme-introducing binder).

Overloaded arithmetic (``+ - * < <= > >= = <>``) uses overload-class
type variables defaulting to ``int`` at generalization time, as in SML.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.errors import TypeError_
from . import ast as A
from .builtins import BUILTINS, Builtin
from .mltypes import (
    MLScheme,
    MLType,
    T_BOOL,
    T_EXN,
    T_INT,
    T_REAL,
    T_STRING,
    T_UNIT,
    TCon,
    TVar,
    admits_eq,
    arrow,
    free_tvars,
    fresh_tvar,
    array_of,
    list_of,
    pair,
    prune,
    ref_of,
    register_eq_datatype,
    reset_eq_datatypes,
    show_type,
    unify,
    zonk,
)

__all__ = ["InferenceResult", "VarInstance", "infer_program", "Binder"]


@dataclass(frozen=True)
class Binder:
    """A generalizing binder: a top-level/let `fun` or `val ... = fn`."""

    name: str
    node: Union[A.FunDec, A.ValDec, None]  # None for built-ins
    builtin: Optional[Builtin] = None


@dataclass(frozen=True)
class VarInstance:
    """The instantiation taken at one occurrence of a polymorphic name."""

    binder: Binder
    scheme: MLScheme
    #: qvar-ident -> the (mutable, zonk-at-read) type instantiated for it.
    mapping: dict


@dataclass
class InferenceResult:
    program: A.Program
    node_type: dict[int, MLType] = field(default_factory=dict)
    var_instance: dict[int, VarInstance] = field(default_factory=dict)
    binding_scheme: dict[int, MLScheme] = field(default_factory=dict)
    binder_of: dict[int, Binder] = field(default_factory=dict)
    con_use: dict[int, str] = field(default_factory=dict)
    recursive: set = field(default_factory=set)
    exn_payload: dict[int, Optional[MLType]] = field(default_factory=dict)
    top_env: dict[str, MLScheme] = field(default_factory=dict)
    #: datatype name -> DataInfo (declaration-keyed views also available)
    datatypes: dict[str, "DataInfo"] = field(default_factory=dict)
    #: EVar occurrences that are datatype constructors:
    #: id(node) -> (DataInfo, conname, instance mapping qvar-ident -> MLType)
    data_con_use: dict[int, tuple] = field(default_factory=dict)
    #: id(CaseBranch) -> (DataInfo, conname, instance mapping) for
    #: constructor branches; absent for catch-all branches
    case_branch: dict[int, tuple] = field(default_factory=dict)

    def type_of(self, node: A.Node) -> MLType:
        return zonk(self.node_type[id(node)])

    def scheme_of(self, dec: A.Dec) -> MLScheme:
        return self.binding_scheme[id(dec)]


# Environment entries -------------------------------------------------------


@dataclass
class _VarEntry:
    scheme: MLScheme
    binder: Binder


@dataclass
class _ExnEntry:
    payload: Optional[MLType]
    dec: A.ExnDec


@dataclass
class DataInfo:
    """A datatype declaration: its parameters and constructors.

    ``constructors`` maps constructor name -> payload MLType (over the
    ``params`` type variables) or None for nullary constructors.
    """

    name: str
    params: tuple
    constructors: dict
    order: tuple  # constructor names in declaration order


@dataclass
class _ConEntry:
    """A datatype constructor in the environment."""

    data: DataInfo
    conname: str
    scheme: MLScheme  # forall params. payload -> t   (or forall params. t)


_Entry = Union[_VarEntry, _ExnEntry, _ConEntry]


class _Inferencer:
    def __init__(self) -> None:
        self.result: Optional[InferenceResult] = None
        self.level = 0

    # -- helpers -------------------------------------------------------------

    def fresh(self, overload: Optional[str] = None) -> TVar:
        return fresh_tvar(self.level, overload)

    def record(self, node: A.Exp, t: MLType) -> MLType:
        self.result.node_type[id(node)] = t
        return t

    def error(self, node: A.Node, message: str) -> TypeError_:
        return TypeError_(f"{node.pos()}: {message}")

    # -- entry ----------------------------------------------------------------

    def run(self, program: A.Program) -> InferenceResult:
        self.result = InferenceResult(program)
        reset_eq_datatypes()
        env: dict[str, _Entry] = {}
        for name, builtin in BUILTINS.items():
            env[name] = _VarEntry(builtin.scheme, Binder(name, None, builtin))
        tyvar_scope: dict[str, TVar] = {}
        for dec in program.decs:
            env = self.dec(dec, env, tyvar_scope)
        for name, entry in env.items():
            if isinstance(entry, _VarEntry) and entry.binder.builtin is None:
                self.result.top_env[name] = entry.scheme
        return self.result

    # -- declarations ------------------------------------------------------------

    def dec(
        self,
        dec: A.Dec,
        env: dict[str, _Entry],
        scope: Optional[dict[str, TVar]] = None,
    ) -> dict[str, _Entry]:
        if isinstance(dec, A.ValDec):
            return self._val_dec(dec, env)
        if isinstance(dec, A.FunDec):
            return self._fun_dec(dec, env)
        if isinstance(dec, A.ExnDec):
            # Exception payloads share the *enclosing* type-variable scope:
            # `let exception E of 'a` inside `fun f (x : 'a)` carries the
            # function's 'a (the paper's exception type variables, §4.4),
            # not a fresh one.
            return self._exn_dec(dec, env, scope if scope is not None else {})
        if isinstance(dec, A.DatatypeDec):
            return self._datatype_dec(dec, env)
        raise TypeError(f"unknown declaration {dec!r}")

    def _datatype_dec(self, dec: A.DatatypeDec, env: dict[str, _Entry]) -> dict[str, _Entry]:
        if len(set(dec.params)) != len(dec.params):
            raise self.error(dec, f"duplicate type parameters in datatype {dec.name}")
        params = tuple(TVar(0, user_name=p) for p in dec.params)
        scope = dict(zip(dec.params, params))
        info = DataInfo(dec.name, params, {}, tuple(c.name for c in dec.constructors))
        # Register before converting payloads: constructors may recurse.
        self.result.datatypes[dec.name] = info
        data_ty = TCon(dec.name, params)
        new_env = dict(env)
        for con in dec.constructors:
            payload = None
            if con.payload is not None:
                payload = self.surface_type(con.payload, scope)
            info.constructors[con.name] = payload
            scheme_body = data_ty if payload is None else arrow(payload, data_ty)
            new_env[con.name] = _ConEntry(info, con.name, MLScheme(params, scheme_body))
        # The Definition's equality attribute: the datatype admits
        # equality iff every payload is an equality type, assuming the
        # parameters and the datatype itself (recursive payloads) are.
        register_eq_datatype(
            dec.name,
            all(
                payload is None or admits_eq(payload, frozenset({dec.name}))
                for payload in info.constructors.values()
            ),
        )
        return new_env

    def _val_dec(self, dec: A.ValDec, env: dict[str, _Entry]) -> dict[str, _Entry]:
        rhs = dec.rhs
        is_fn = isinstance(_strip_annot(rhs), A.EFn)
        if is_fn and isinstance(dec.pat, A.PVar):
            # `val f = fn ...` generalizes like `fun f ...` (non-recursive).
            self.level += 1
            tyvar_scope: dict[str, TVar] = {}
            t = self.exp(rhs, env, tyvar_scope)
            if dec.pat.ann is not None:
                unify(t, self.surface_type(dec.pat.ann, tyvar_scope), "val annotation")
            self.level -= 1
            scheme = self._generalize(t)
            binder = Binder(dec.pat.name, dec)
            self.result.binding_scheme[id(dec)] = scheme
            new_env = dict(env)
            new_env[dec.pat.name] = _VarEntry(scheme, binder)
            return new_env
        # Monomorphic val binding with (possibly) a destructuring pattern.
        self.level += 1
        tyvar_scope = {}
        t = self.exp(rhs, env, tyvar_scope)
        self.level -= 1
        new_env = dict(env)
        self._bind_pattern(dec.pat, t, new_env, tyvar_scope, dec)
        self.result.binding_scheme[id(dec)] = MLScheme((), t)
        return new_env

    def _fun_dec(self, dec: A.FunDec, env: dict[str, _Entry]) -> dict[str, _Entry]:
        self.level += 1
        tyvar_scope: dict[str, TVar] = {}
        f_type = self.fresh()
        binder = Binder(dec.name, dec)
        inner_env = dict(env)
        inner_env[dec.name] = _VarEntry(MLScheme((), f_type), binder)
        param_types: list[MLType] = []
        for p in dec.params:
            pt = self.fresh()
            self._bind_pattern(p, pt, inner_env, tyvar_scope, dec)
            param_types.append(pt)
        body_t = self.exp(dec.body, inner_env, tyvar_scope)
        if dec.result_ann is not None:
            unify(body_t, self.surface_type(dec.result_ann, tyvar_scope),
                  f"result annotation of {dec.name}")
        whole = body_t
        for pt in reversed(param_types):
            whole = arrow(pt, whole)
        unify(f_type, whole, f"recursive uses of {dec.name}")
        self.level -= 1
        scheme = self._generalize(whole)
        self.result.binding_scheme[id(dec)] = scheme
        new_env = dict(env)
        new_env[dec.name] = _VarEntry(scheme, binder)
        return new_env

    def _exn_dec(
        self, dec: A.ExnDec, env: dict[str, _Entry], scope: dict[str, TVar]
    ) -> dict[str, _Entry]:
        payload = None
        if dec.payload is not None:
            payload = self.surface_type(dec.payload, scope)
        self.result.exn_payload[id(dec)] = payload
        new_env = dict(env)
        new_env[dec.name] = _ExnEntry(payload, dec)
        return new_env

    def _generalize(self, t: MLType) -> MLScheme:
        qvars: list[TVar] = []
        for v in free_tvars(t):
            if v.level > self.level:
                if v.overload is not None:
                    # SML-style defaulting at the declaration.
                    v.instance = T_INT
                    v.overload = None
                else:
                    qvars.append(v)
        return MLScheme(tuple(qvars), t)

    def _bind_pattern(
        self,
        pat: A.Pat,
        t: MLType,
        env: dict[str, _Entry],
        tyvar_scope: dict[str, TVar],
        owner: A.Dec,
    ) -> None:
        if isinstance(pat, A.PVar):
            if pat.ann is not None:
                unify(t, self.surface_type(pat.ann, tyvar_scope),
                      f"annotation on {pat.name}")
            env[pat.name] = _VarEntry(MLScheme((), t), Binder(pat.name, owner))
        elif isinstance(pat, A.PWild):
            if pat.ann is not None:
                unify(t, self.surface_type(pat.ann, tyvar_scope), "annotation on _")
        elif isinstance(pat, A.PTuple):
            if not pat.elems:
                unify(t, T_UNIT, "unit pattern")
                return
            if len(pat.elems) == 1:
                self._bind_pattern(pat.elems[0], t, env, tyvar_scope, owner)
                return
            a, b = self.fresh(), self.fresh()
            unify(t, pair(a, b), "tuple pattern")
            self._bind_pattern(pat.elems[0], a, env, tyvar_scope, owner)
            self._bind_pattern(
                A.PTuple(pat.elems[1:], line=pat.line, col=pat.col),
                b, env, tyvar_scope, owner,
            )
        else:
            raise TypeError(f"unknown pattern {pat!r}")

    # -- surface types ----------------------------------------------------------------

    def surface_type(self, ty: A.Ty, scope: dict[str, TVar]) -> MLType:
        if isinstance(ty, A.TyVarS):
            if ty.name not in scope:
                scope[ty.name] = TVar(self.level, user_name=ty.name)
            return scope[ty.name]
        if isinstance(ty, A.TyConS):
            base = {"int": T_INT, "real": T_REAL, "string": T_STRING,
                    "bool": T_BOOL, "unit": T_UNIT, "exn": T_EXN}
            if ty.name in base:
                return base[ty.name]
            if ty.name == "list":
                return list_of(self.surface_type(ty.args[0], scope))
            if ty.name == "ref":
                return ref_of(self.surface_type(ty.args[0], scope))
            if ty.name == "array":
                return array_of(self.surface_type(ty.args[0], scope))
            info = self.result.datatypes.get(ty.name)
            if info is not None:
                if len(ty.args) != len(info.params):
                    raise self.error(
                        ty, f"datatype {ty.name} expects {len(info.params)} "
                        f"argument(s), got {len(ty.args)}"
                    )
                return TCon(ty.name, tuple(self.surface_type(a, scope) for a in ty.args))
            raise self.error(ty, f"unknown type constructor {ty.name}")
        if isinstance(ty, A.TyArrowS):
            return arrow(self.surface_type(ty.dom, scope), self.surface_type(ty.cod, scope))
        if isinstance(ty, A.TyTupleS):
            elems = [self.surface_type(t, scope) for t in ty.elems]
            out = elems[-1]
            for e in reversed(elems[:-1]):
                out = pair(e, out)
            return out
        raise TypeError(f"unknown surface type {ty!r}")

    # -- expressions ------------------------------------------------------------------

    def exp(self, e: A.Exp, env: dict[str, _Entry], scope: dict[str, TVar]) -> MLType:
        t = self._exp(e, env, scope)
        return self.record(e, t)

    def _exp(self, e: A.Exp, env: dict[str, _Entry], scope: dict[str, TVar]) -> MLType:
        if isinstance(e, A.EInt):
            return T_INT
        if isinstance(e, A.EReal):
            return T_REAL
        if isinstance(e, A.EString):
            return T_STRING
        if isinstance(e, A.EBool):
            return T_BOOL
        if isinstance(e, A.EUnit):
            return T_UNIT
        if isinstance(e, A.ENil):
            return list_of(self.fresh())
        if isinstance(e, A.EVar):
            entry = env.get(e.name)
            if entry is None:
                raise self.error(e, f"unbound variable {e.name}")
            if isinstance(entry, _ExnEntry):
                # Bare exception constructor: a nullary one is an exn value;
                # a unary one used as a value has type payload -> exn.
                self.result.con_use[id(e)] = e.name
                if entry.payload is None:
                    return T_EXN
                return arrow(entry.payload, T_EXN)
            if isinstance(entry, _ConEntry):
                inst, mapping = entry.scheme.instantiate(self.level)
                self.result.data_con_use[id(e)] = (entry.data, entry.conname, mapping)
                return inst
            inst, mapping = entry.scheme.instantiate(self.level)
            self.result.var_instance[id(e)] = VarInstance(
                entry.binder, entry.scheme, mapping
            )
            self.result.binder_of[id(e)] = entry.binder
            return inst
        if isinstance(e, A.EApp):
            fn_t = self.exp(e.fn, env, scope)
            arg_t = self.exp(e.arg, env, scope)
            res = self.fresh()
            try:
                unify(fn_t, arrow(arg_t, res), "application")
            except TypeError_ as exc:
                raise self.error(e, str(exc)) from exc
            return res
        if isinstance(e, A.EFn):
            pt = self.fresh()
            inner = dict(env)
            self._bind_pattern(e.param, pt, inner, scope, _FN_OWNER)
            body_t = self.exp(e.body, inner, scope)
            return arrow(pt, body_t)
        if isinstance(e, A.ELet):
            inner = env
            for d in e.decs:
                inner = self.dec(d, inner, scope)
            return self.exp(e.body, inner, scope)
        if isinstance(e, A.EIf):
            ct = self.exp(e.cond, env, scope)
            try:
                unify(ct, T_BOOL, "if condition")
            except TypeError_ as exc:
                raise self.error(e, str(exc)) from exc
            tt = self.exp(e.then, env, scope)
            et = self.exp(e.els, env, scope)
            try:
                unify(tt, et, "if branches")
            except TypeError_ as exc:
                raise self.error(e, str(exc)) from exc
            return tt
        if isinstance(e, A.EPair):
            return pair(self.exp(e.fst, env, scope), self.exp(e.snd, env, scope))
        if isinstance(e, A.EBinOp):
            return self._binop(e, env, scope)
        if isinstance(e, A.EUnOp):
            return self._unop(e, env, scope)
        if isinstance(e, A.ESelect):
            if e.index not in (1, 2):
                raise self.error(
                    e, f"#{e.index}: only #1 and #2 are supported; use a "
                    "tuple pattern for wider tuples"
                )
            a, b = self.fresh(), self.fresh()
            t = self.exp(e.tuple_, env, scope)
            try:
                unify(t, pair(a, b), "projection")
            except TypeError_ as exc:
                raise self.error(e, str(exc)) from exc
            return a if e.index == 1 else b
        if isinstance(e, A.ERaise):
            t = self.exp(e.exn, env, scope)
            try:
                unify(t, T_EXN, "raise")
            except TypeError_ as exc:
                raise self.error(e, str(exc)) from exc
            return self.fresh()
        if isinstance(e, A.EHandle):
            body_t = self.exp(e.body, env, scope)
            entry = env.get(e.exname)
            if not isinstance(entry, _ExnEntry):
                raise self.error(e, f"handle: {e.exname} is not an exception")
            inner = dict(env)
            if e.pat is not None:
                if entry.payload is None:
                    raise self.error(e, f"exception {e.exname} carries no payload")
                self._bind_pattern(e.pat, entry.payload, inner, scope, _FN_OWNER)
            self.result.con_use[id(e)] = e.exname
            handler_t = self.exp(e.handler, inner, scope)
            try:
                unify(body_t, handler_t, "handler")
            except TypeError_ as exc:
                raise self.error(e, str(exc)) from exc
            return body_t
        if isinstance(e, A.EAnnot):
            t = self.exp(e.exp, env, scope)
            try:
                unify(t, self.surface_type(e.ann, scope), "type annotation")
            except TypeError_ as exc:
                raise self.error(e, str(exc)) from exc
            return t
        if isinstance(e, A.ECase):
            return self._case(e, env, scope)
        if isinstance(e, A.ECon):
            raise AssertionError("ECon is produced by elaboration, not parsing")
        raise TypeError(f"unknown expression {e!r}")

    def _case(self, e: A.ECase, env: dict[str, _Entry], scope: dict[str, TVar]) -> MLType:
        scrut_t = self.exp(e.scrutinee, env, scope)
        result_t = self.fresh()
        for br in e.branches:
            inner = dict(env)
            if br.conname is not None:
                entry = env.get(br.conname)
                if isinstance(entry, _ConEntry):
                    inst, mapping = entry.scheme.instantiate(self.level)
                    payload_decl = entry.data.constructors[entry.conname]
                    if payload_decl is None:
                        if br.pat is not None:
                            raise self.error(
                                br, f"{entry.conname} is a nullary constructor"
                            )
                        try:
                            unify(scrut_t, inst, "case scrutinee")
                        except TypeError_ as exc:
                            raise self.error(br, str(exc)) from exc
                    else:
                        assert isinstance(inst, TCon) and inst.name == "->"
                        payload_t, data_t = inst.args
                        try:
                            unify(scrut_t, data_t, "case scrutinee")
                        except TypeError_ as exc:
                            raise self.error(br, str(exc)) from exc
                        if br.pat is None:
                            raise self.error(
                                br, f"constructor {entry.conname} carries a payload"
                            )
                        self._bind_pattern(br.pat, payload_t, inner, scope, _FN_OWNER)
                    self.result.case_branch[id(br)] = (
                        entry.data, entry.conname, mapping
                    )
                else:
                    # Not a constructor in scope: a variable catch-all.
                    if br.pat is not None:
                        raise self.error(br, f"{br.conname} is not a constructor")
                    inner[br.conname] = _VarEntry(
                        MLScheme((), scrut_t), Binder(br.conname, _FN_OWNER)
                    )
            else:
                self._bind_pattern(br.pat, scrut_t, inner, scope, _FN_OWNER)
            bt = self.exp(br.body, inner, scope)
            try:
                unify(result_t, bt, "case branches")
            except TypeError_ as exc:
                raise self.error(br, str(exc)) from exc
        return result_t

    def _binop(self, e: A.EBinOp, env: dict[str, _Entry], scope: dict[str, TVar]) -> MLType:
        lt = self.exp(e.lhs, env, scope)
        rt = self.exp(e.rhs, env, scope)
        op = e.op
        try:
            if op in ("+", "-", "*"):
                v = self.fresh("num")
                unify(lt, v, op)
                unify(rt, v, op)
                return v
            if op == "/":
                unify(lt, T_REAL, op)
                unify(rt, T_REAL, op)
                return T_REAL
            if op in ("div", "mod"):
                unify(lt, T_INT, op)
                unify(rt, T_INT, op)
                return T_INT
            if op == "^":
                unify(lt, T_STRING, op)
                unify(rt, T_STRING, op)
                return T_STRING
            if op in ("<", "<=", ">", ">="):
                v = self.fresh("ord")
                unify(lt, v, op)
                unify(rt, v, op)
                return T_BOOL
            if op in ("=", "<>"):
                v = self.fresh("eq")
                unify(lt, v, op)
                unify(rt, v, op)
                return T_BOOL
            if op == "::":
                unify(rt, list_of(lt), op)
                return rt
            if op == ":=":
                unify(lt, ref_of(rt), op)
                return T_UNIT
        except TypeError_ as exc:
            raise self.error(e, str(exc)) from exc
        raise TypeError(f"unknown operator {op}")

    def _unop(self, e: A.EUnOp, env: dict[str, _Entry], scope: dict[str, TVar]) -> MLType:
        t = self.exp(e.operand, env, scope)
        try:
            if e.op == "~":
                v = self.fresh("num")
                unify(t, v, "~")
                return v
            if e.op == "!":
                v = self.fresh()
                unify(t, ref_of(v), "!")
                return v
        except TypeError_ as exc:
            raise self.error(e, str(exc)) from exc
        raise TypeError(f"unknown unary operator {e.op}")


def _strip_annot(e: A.Exp) -> A.Exp:
    while isinstance(e, A.EAnnot):
        e = e.exp
    return e


#: Placeholder owner for pattern bindings inside fn / handle.
_FN_OWNER = A.ValDec(A.PWild(), A.EUnit())


def infer_program(program: A.Program) -> InferenceResult:
    """Infer types for a whole program; raises
    :class:`~repro.core.errors.TypeError_` on failure."""
    return _Inferencer().run(program)

"""The MiniML frontend: lexer, parser, surface AST, and Hindley-Milner
type inference (algorithm W) with per-occurrence instantiation recording —
the substrate the paper's region inference consumes."""

from .ast import Program
from .infer import InferenceResult, infer_program
from .lexer import tokenize
from .parser import parse_program

__all__ = ["Program", "InferenceResult", "infer_program", "parse_program", "tokenize"]

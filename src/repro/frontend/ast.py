"""Surface abstract syntax for MiniML.

Nodes are *identity-hashed* (``eq=False``): the inference pass records
per-occurrence information (instantiations, resolved overloads, inferred
types) in side tables keyed by node identity, which region inference
consumes.

Desugarings performed by the parser:

* n-tuples become right-nested pairs (``(a,b,c)`` = ``(a,(b,c))``),
* list literals become ``::`` chains ending in ``nil``,
* ``andalso`` / ``orelse`` become ``if``,
* ``e1; e2`` becomes ``let val _ = e1 in e2 end``,
* ``val f = fn p => e`` is treated as ``fun f p = e`` by inference (so
  that value-restriction generalization happens exactly for syntactic
  functions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Node", "Ty", "TyVarS", "TyConS", "TyArrowS", "TyTupleS",
    "Pat", "PVar", "PWild", "PTuple",
    "Exp", "EInt", "EReal", "EString", "EBool", "EUnit", "ENil", "EVar",
    "EApp", "EFn", "ELet", "EIf", "EPair", "EBinOp", "EUnOp", "ESelect",
    "ERaise", "EHandle", "EAnnot", "ECon",
    "Dec", "ValDec", "FunDec", "ExnDec",
    "Program",
]


@dataclass(eq=False)
class Node:
    """Base class; ``line``/``col`` point at the source."""

    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)

    def pos(self) -> str:
        return f"{self.line}:{self.col}"


# ---------------------------------------------------------------------------
# Surface types (annotations)
# ---------------------------------------------------------------------------


class Ty(Node):
    pass


@dataclass(eq=False)
class TyVarS(Ty):
    name: str  # includes the quote: "'a"


@dataclass(eq=False)
class TyConS(Ty):
    name: str                 # int | real | string | bool | unit | exn | list | ref
    args: tuple[Ty, ...] = ()


@dataclass(eq=False)
class TyArrowS(Ty):
    dom: Ty
    cod: Ty


@dataclass(eq=False)
class TyTupleS(Ty):
    elems: tuple[Ty, ...]


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


class Pat(Node):
    pass


@dataclass(eq=False)
class PVar(Pat):
    name: str
    ann: Optional[Ty] = None


@dataclass(eq=False)
class PWild(Pat):
    ann: Optional[Ty] = None


@dataclass(eq=False)
class PTuple(Pat):
    """The empty tuple is the unit pattern ``()``."""

    elems: tuple[Pat, ...] = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Exp(Node):
    pass


@dataclass(eq=False)
class EInt(Exp):
    value: int


@dataclass(eq=False)
class EReal(Exp):
    value: float


@dataclass(eq=False)
class EString(Exp):
    value: str


@dataclass(eq=False)
class EBool(Exp):
    value: bool


@dataclass(eq=False)
class EUnit(Exp):
    pass


@dataclass(eq=False)
class ENil(Exp):
    pass


@dataclass(eq=False)
class EVar(Exp):
    name: str


@dataclass(eq=False)
class EApp(Exp):
    fn: Exp
    arg: Exp


@dataclass(eq=False)
class EFn(Exp):
    param: Pat
    body: Exp


@dataclass(eq=False)
class ELet(Exp):
    decs: tuple["Dec", ...]
    body: Exp


@dataclass(eq=False)
class EIf(Exp):
    cond: Exp
    then: Exp
    els: Exp


@dataclass(eq=False)
class EPair(Exp):
    fst: Exp
    snd: Exp


@dataclass(eq=False)
class EBinOp(Exp):
    """op in { + - * / div mod ^ = <> < <= > >= :: o := }."""

    op: str
    lhs: Exp
    rhs: Exp


@dataclass(eq=False)
class EUnOp(Exp):
    """op in { ~ ! not }."""

    op: str
    operand: Exp


@dataclass(eq=False)
class ESelect(Exp):
    """``#i e``; indices beyond 2 navigate the nested-pair desugaring."""

    index: int
    tuple_: Exp


@dataclass(eq=False)
class ERaise(Exp):
    exn: Exp


@dataclass(eq=False)
class EHandle(Exp):
    """``e handle E p => h`` (single constructor; others re-raise)."""

    body: Exp
    exname: str
    pat: Optional[Pat]
    handler: Exp


@dataclass(eq=False)
class EAnnot(Exp):
    exp: Exp
    ann: Ty


@dataclass(eq=False)
class ECon(Exp):
    """An exception-constructor application ``E e`` (or bare ``E``)."""

    exname: str
    arg: Optional[Exp]


# ---------------------------------------------------------------------------
# Declarations and programs
# ---------------------------------------------------------------------------


class Dec(Node):
    pass


@dataclass(eq=False)
class ValDec(Dec):
    pat: Pat
    rhs: Exp


@dataclass(eq=False)
class FunDec(Dec):
    """``fun f p1 ... pn (: ty)? = body`` — curried, recursive."""

    name: str
    params: tuple[Pat, ...]
    result_ann: Optional[Ty]
    body: Exp


@dataclass(eq=False)
class ExnDec(Dec):
    name: str
    payload: Optional[Ty]


@dataclass(eq=False)
class ConDef(Node):
    """One constructor of a datatype: ``Name`` or ``Name of ty``."""

    name: str
    payload: Optional[Ty]


@dataclass(eq=False)
class DatatypeDec(Dec):
    """``datatype ('a, 'b) name = C1 of ty | C2 | ...``."""

    name: str
    params: tuple[str, ...]          # tyvar names, with quotes
    constructors: tuple[ConDef, ...]


@dataclass(eq=False)
class CaseBranch(Node):
    """``Con p => e`` / ``Con => e`` / ``x => e`` / ``_ => e``.

    ``conname`` is None for a variable/wildcard catch-all branch (whose
    pattern is in ``pat``); for constructor branches ``pat`` binds the
    payload (None for nullary constructors).
    """

    conname: Optional[str]
    pat: Optional[Pat]
    body: Exp


@dataclass(eq=False)
class ECase(Exp):
    scrutinee: Exp
    branches: tuple[CaseBranch, ...]


@dataclass(eq=False)
class Program(Node):
    """A sequence of declarations; the value of a program is the value of
    the last ``val it = ...``-style binding (or unit)."""

    decs: tuple[Dec, ...]

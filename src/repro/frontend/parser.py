"""Recursive-descent parser for MiniML with SML-compatible operator
precedence.

Infix levels (SML's default fixities)::

    1  orelse                (desugared to if)
    2  andalso               (desugared to if)
    3  :=   o                (o is the composition function, applied to
                              the pair of its operands, as in the paper)
    4  =  <>  <  <=  >  >=
    5  ::  @                 (right associative; @ applies `append`)
    6  +  -  ^
    7  *  /  div  mod

``handle`` binds loosest of all; ``raise`` extends to the end of the
expression; application binds tighter than any infix; the prefixes ``~``
(negation), ``!`` (dereference) and the selector ``#i`` bind tightest.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import ParseError
from . import ast as A
from .lexer import Token, tokenize

__all__ = ["parse_program", "parse_expression", "Parser"]


_INFIX_LEVELS: dict[str, tuple[int, str]] = {
    # op -> (binding power, associativity)
    "orelse": (1, "right"),
    "andalso": (2, "right"),
    ":=": (3, "left"),
    "o": (3, "left"),
    "=": (4, "left"),
    "<>": (4, "left"),
    "<": (4, "left"),
    "<=": (4, "left"),
    ">": (4, "left"),
    ">=": (4, "left"),
    "::": (5, "right"),
    "@": (5, "right"),
    "+": (6, "left"),
    "-": (6, "left"),
    "^": (6, "left"),
    "*": (7, "left"),
    "/": (7, "left"),
    "div": (7, "left"),
    "mod": (7, "left"),
}

#: Tokens that can never start an atomic expression — used to stop the
#: application loop.
_EXP_STOPPERS = frozenset(
    {
        "then", "else", "in", "end", "of", "=>", ")", "]", ",", ";",
        "val", "fun", "exception", "handle", "and", "eof", ":",
    }
    | set(_INFIX_LEVELS)
)


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok.text == text and tok.kind in ("kw", "sym", "id")

    def eat(self, text: str) -> Token:
        tok = self.peek()
        if not self.at(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line, tok.col)
        return self.next()

    def _err(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"{message} (found {tok.text!r})", tok.line, tok.col)

    # -- programs and declarations --------------------------------------------

    def program(self) -> A.Program:
        decs: list[A.Dec] = []
        while self.peek().kind != "eof":
            decs.append(self.dec())
        return A.Program(tuple(decs))

    def dec(self) -> A.Dec:
        tok = self.peek()
        if self.at("val"):
            self.next()
            pat = self.pattern()
            ann = None
            if self.at(":"):
                self.next()
                ann = self.type_()
            self.eat("=")
            rhs = self.expression()
            if ann is not None:
                rhs = A.EAnnot(rhs, ann, line=tok.line, col=tok.col)
            return A.ValDec(pat, rhs, line=tok.line, col=tok.col)
        if self.at("fun"):
            self.next()
            name_tok = self.peek()
            if name_tok.kind != "id":
                raise self._err("expected function name")
            self.next()
            params: list[A.Pat] = []
            while not self.at("=") and not self.at(":"):
                params.append(self.atomic_pattern())
            if not params:
                raise self._err(f"fun {name_tok.text} needs at least one parameter")
            result_ann = None
            if self.at(":"):
                self.next()
                result_ann = self.type_()
            self.eat("=")
            body = self.expression()
            if self.at("and"):
                raise self._err("mutually recursive 'and' declarations are not supported; nest the functions instead")
            return A.FunDec(
                name_tok.text, tuple(params), result_ann, body,
                line=tok.line, col=tok.col,
            )
        if self.at("exception"):
            self.next()
            name_tok = self.peek()
            if name_tok.kind != "id":
                raise self._err("expected exception name")
            self.next()
            payload = None
            if self.at("of"):
                self.next()
                payload = self.type_()
            return A.ExnDec(name_tok.text, payload, line=tok.line, col=tok.col)
        if self.at("datatype"):
            return self._datatype_dec()
        raise self._err("expected a declaration (val, fun, exception, or datatype)")

    def _datatype_dec(self) -> A.DatatypeDec:
        tok = self.eat("datatype")
        params: list[str] = []
        if self.peek().kind == "tyvar":
            params.append(self.next().text)
        elif self.at("("):
            self.next()
            while True:
                tv = self.peek()
                if tv.kind != "tyvar":
                    raise self._err("expected a type variable")
                params.append(self.next().text)
                if self.at(","):
                    self.next()
                    continue
                break
            self.eat(")")
        name_tok = self.peek()
        if name_tok.kind != "id":
            raise self._err("expected datatype name")
        self.next()
        self.eat("=")
        constructors: list[A.ConDef] = []
        while True:
            con_tok = self.peek()
            if con_tok.kind != "id":
                raise self._err("expected constructor name")
            self.next()
            payload = None
            if self.at("of"):
                self.next()
                payload = self.type_()
            constructors.append(
                A.ConDef(con_tok.text, payload, line=con_tok.line, col=con_tok.col)
            )
            if self.at("|"):
                self.next()
                continue
            break
        if self.at("and"):
            raise self._err("mutually recursive datatypes are not supported")
        return A.DatatypeDec(
            name_tok.text, tuple(params), tuple(constructors),
            line=tok.line, col=tok.col,
        )

    # -- expressions ------------------------------------------------------------

    def expression(self) -> A.Exp:
        exp = self._exp_no_handle()
        while self.at("handle"):
            tok = self.next()
            exname_tok = self.peek()
            if exname_tok.kind != "id":
                raise self._err("expected exception name after handle")
            self.next()
            pat: Optional[A.Pat] = None
            if not self.at("=>"):
                pat = self.atomic_pattern()
            self.eat("=>")
            handler = self._exp_no_handle()
            exp = A.EHandle(exp, exname_tok.text, pat, handler, line=tok.line, col=tok.col)
        return exp

    def _exp_no_handle(self) -> A.Exp:
        tok = self.peek()
        if self.at("if"):
            self.next()
            cond = self.expression()
            self.eat("then")
            then = self.expression()
            self.eat("else")
            els = self.expression()
            return A.EIf(cond, then, els, line=tok.line, col=tok.col)
        if self.at("fn"):
            self.next()
            pat = self.atomic_pattern()
            self.eat("=>")
            body = self.expression()
            return A.EFn(pat, body, line=tok.line, col=tok.col)
        if self.at("let"):
            self.next()
            decs = [self.dec()]
            while not self.at("in"):
                decs.append(self.dec())
            self.eat("in")
            body = self._expseq("end")
            self.eat("end")
            return A.ELet(tuple(decs), body, line=tok.line, col=tok.col)
        if self.at("raise"):
            self.next()
            return A.ERaise(self._exp_no_handle(), line=tok.line, col=tok.col)
        if self.at("case"):
            return self._case()
        return self._infix(0)

    def _case(self) -> A.Exp:
        tok = self.eat("case")
        scrutinee = self.expression()
        self.eat("of")
        branches: list[A.CaseBranch] = []
        while True:
            branches.append(self._case_branch())
            if self.at("|"):
                self.next()
                continue
            break
        return A.ECase(scrutinee, tuple(branches), line=tok.line, col=tok.col)

    def _case_branch(self) -> A.CaseBranch:
        tok = self.peek()
        if self.at("_"):
            self.next()
            self.eat("=>")
            return A.CaseBranch(None, A.PWild(line=tok.line, col=tok.col),
                                self._exp_no_handle(), line=tok.line, col=tok.col)
        if tok.kind == "id":
            self.next()
            if self.at("=>"):
                # `Name => e`: a nullary constructor or a variable binding;
                # inference disambiguates by looking Name up.
                self.next()
                return A.CaseBranch(tok.text, None, self._exp_no_handle(),
                                    line=tok.line, col=tok.col)
            pat = self.atomic_pattern()
            self.eat("=>")
            return A.CaseBranch(tok.text, pat, self._exp_no_handle(),
                                line=tok.line, col=tok.col)
        if self.at("("):
            pat = self.atomic_pattern()
            self.eat("=>")
            return A.CaseBranch(None, pat, self._exp_no_handle(),
                                line=tok.line, col=tok.col)
        raise self._err("expected a case branch pattern")

    def _expseq(self, stop: str) -> A.Exp:
        """``e1; e2; ...`` — desugars to lets discarding all but the last."""
        exps = [self.expression()]
        while self.at(";"):
            self.next()
            exps.append(self.expression())
        out = exps[-1]
        for e in reversed(exps[:-1]):
            out = A.ELet(
                (A.ValDec(A.PWild(line=e.line, col=e.col), e, line=e.line, col=e.col),),
                out,
                line=e.line,
                col=e.col,
            )
        return out

    def _infix(self, min_power: int) -> A.Exp:
        lhs = self.application()
        while True:
            tok = self.peek()
            op = tok.text
            if tok.kind not in ("sym", "kw", "id") or op not in _INFIX_LEVELS:
                break
            if op == "o" and tok.kind != "id":
                break
            power, assoc = _INFIX_LEVELS[op]
            if power < min_power:
                break
            self.next()
            next_min = power + 1 if assoc == "left" else power
            rhs = self._infix(next_min)
            lhs = self._mk_infix(op, lhs, rhs, tok)
        return lhs

    def _mk_infix(self, op: str, lhs: A.Exp, rhs: A.Exp, tok: Token) -> A.Exp:
        pos = {"line": tok.line, "col": tok.col}
        if op == "andalso":
            return A.EIf(lhs, rhs, A.EBool(False, **pos), **pos)
        if op == "orelse":
            return A.EIf(lhs, A.EBool(True, **pos), rhs, **pos)
        if op == "o":
            return A.EApp(A.EVar("o", **pos), A.EPair(lhs, rhs, **pos), **pos)
        if op == "@":
            return A.EApp(A.EVar("append", **pos), A.EPair(lhs, rhs, **pos), **pos)
        return A.EBinOp(op, lhs, rhs, **pos)

    def application(self) -> A.Exp:
        exp = self.atomic()
        while True:
            tok = self.peek()
            if tok.kind in ("eof",):
                break
            if tok.text in _EXP_STOPPERS and not (tok.kind == "string"):
                # `o` only stops application when it is an infix occurrence,
                # which _EXP_STOPPERS already covers (it is in the table).
                break
            if tok.kind in ("int", "real", "string", "id", "tyvar") or tok.text in (
                "(", "[", "#", "~", "!", "true", "false", "nil", "not",
                "ref", "let", "fn", "if", "op",
            ):
                if tok.kind == "tyvar":
                    break
                arg = self.atomic()
                exp = A.EApp(exp, arg, line=tok.line, col=tok.col)
                continue
            break
        return exp

    def atomic(self) -> A.Exp:
        tok = self.peek()
        pos = {"line": tok.line, "col": tok.col}
        if tok.kind == "int":
            self.next()
            return A.EInt(int(tok.text), **pos)
        if tok.kind == "real":
            self.next()
            return A.EReal(float(tok.text.replace("~", "-")), **pos)
        if tok.kind == "string":
            self.next()
            return A.EString(tok.text, **pos)
        if self.at("true") or self.at("false"):
            self.next()
            return A.EBool(tok.text == "true", **pos)
        if self.at("nil"):
            self.next()
            return A.ENil(**pos)
        if self.at("not"):
            self.next()
            return A.EVar("not", **pos)
        if self.at("ref"):
            self.next()
            return A.EVar("ref", **pos)
        if self.at("op"):
            self.next()
            op_tok = self.next()
            return self._op_section(op_tok)
        if tok.kind == "id":
            self.next()
            return A.EVar(tok.text, **pos)
        if self.at("~"):
            self.next()
            nxt = self.peek()
            if nxt.kind == "int":
                self.next()
                return A.EInt(-int(nxt.text), **pos)
            if nxt.kind == "real":
                self.next()
                return A.EReal(-float(nxt.text.replace("~", "-")), **pos)
            return A.EUnOp("~", self.atomic(), **pos)
        if self.at("!"):
            self.next()
            return A.EUnOp("!", self.atomic(), **pos)
        if self.at("#"):
            self.next()
            idx_tok = self.peek()
            if idx_tok.kind != "int":
                raise self._err("expected an index after #")
            self.next()
            return A.ESelect(int(idx_tok.text), self.atomic(), **pos)
        if self.at("("):
            self.next()
            if self.at(")"):
                self.next()
                return A.EUnit(**pos)
            first = self.expression()
            if self.at(","):
                elems = [first]
                while self.at(","):
                    self.next()
                    elems.append(self.expression())
                self.eat(")")
                return self._tuple(elems, pos)
            if self.at(";"):
                exps = [first]
                while self.at(";"):
                    self.next()
                    exps.append(self.expression())
                self.eat(")")
                out = exps[-1]
                for e in reversed(exps[:-1]):
                    out = A.ELet(
                        (A.ValDec(A.PWild(**pos), e, **pos),), out, **pos
                    )
                return out
            if self.at(":"):
                self.next()
                ann = self.type_()
                self.eat(")")
                return A.EAnnot(first, ann, **pos)
            self.eat(")")
            return first
        if self.at("["):
            self.next()
            elems = []
            if not self.at("]"):
                elems.append(self.expression())
                while self.at(","):
                    self.next()
                    elems.append(self.expression())
            self.eat("]")
            out: A.Exp = A.ENil(**pos)
            for e in reversed(elems):
                out = A.EBinOp("::", e, out, **pos)
            return out
        if self.at("let") or self.at("fn") or self.at("if"):
            return self._exp_no_handle()
        raise self._err("expected an expression")

    def _tuple(self, elems: list[A.Exp], pos: dict) -> A.Exp:
        if len(elems) == 1:
            return elems[0]
        return A.EPair(elems[0], self._tuple(elems[1:], pos), **pos)

    def _op_section(self, op_tok: Token) -> A.Exp:
        """``op <infix>`` as a first-class function over the operand pair."""
        pos = {"line": op_tok.line, "col": op_tok.col}
        op = op_tok.text
        if op == "o":
            return A.EVar("o", **pos)
        if op == "@":
            return A.EVar("append", **pos)
        if op not in _INFIX_LEVELS:
            raise ParseError(f"op applied to non-infix {op!r}", op_tok.line, op_tok.col)
        p = A.PTuple(
            (A.PVar("__opl", **pos), A.PVar("__opr", **pos)), **pos
        )
        if op == "::":
            body: A.Exp = A.EBinOp("::", A.EVar("__opl", **pos), A.EVar("__opr", **pos), **pos)
        else:
            body = self._mk_infix(op, A.EVar("__opl", **pos), A.EVar("__opr", **pos), op_tok)
        return A.EFn(p, body, **pos)

    # -- patterns -----------------------------------------------------------------

    def pattern(self) -> A.Pat:
        return self.atomic_pattern()

    def atomic_pattern(self) -> A.Pat:
        tok = self.peek()
        pos = {"line": tok.line, "col": tok.col}
        if self.at("_"):
            self.next()
            return A.PWild(**pos)
        if tok.kind == "id":
            self.next()
            return A.PVar(tok.text, **pos)
        if self.at("("):
            self.next()
            if self.at(")"):
                self.next()
                return A.PTuple((), **pos)
            first = self._annotated_pattern()
            if self.at(","):
                elems = [first]
                while self.at(","):
                    self.next()
                    elems.append(self._annotated_pattern())
                self.eat(")")
                return self._tuple_pat(elems, pos)
            self.eat(")")
            return first
        raise self._err("expected a pattern")

    def _annotated_pattern(self) -> A.Pat:
        """A pattern with an optional ``: ty`` annotation (inside parens)."""
        pat = self.atomic_pattern()
        if self.at(":"):
            self.next()
            ann = self.type_()
            if isinstance(pat, (A.PVar, A.PWild)):
                pat.ann = ann
            else:
                raise self._err("type annotation on a tuple pattern")
        return pat

    def _tuple_pat(self, elems: list[A.Pat], pos: dict) -> A.Pat:
        if len(elems) == 1:
            return elems[0]
        return A.PTuple((elems[0], self._tuple_pat(elems[1:], pos)), **pos)

    # -- types -----------------------------------------------------------------------

    def type_(self) -> A.Ty:
        left = self._type_tuple()
        if self.at("->"):
            tok = self.next()
            right = self.type_()
            return A.TyArrowS(left, right, line=tok.line, col=tok.col)
        return left

    def _type_tuple(self) -> A.Ty:
        parts = [self._type_postfix()]
        while self.at("*"):
            self.next()
            parts.append(self._type_postfix())
        if len(parts) == 1:
            return parts[0]
        return A.TyTupleS(tuple(parts), line=parts[0].line, col=parts[0].col)

    _BASE_TYPES = frozenset({"int", "real", "string", "bool", "unit", "exn"})

    def _type_postfix(self) -> A.Ty:
        args, ty = self._type_atom()
        if args is not None:
            # `(t1, t2) name`: a multi-parameter type constructor.
            tok = self.peek()
            if tok.kind != "id":
                raise self._err("expected a type constructor after the argument list")
            self.next()
            ty = A.TyConS(tok.text, tuple(args), line=tok.line, col=tok.col)
        while True:
            tok = self.peek()
            # postfix application: `int list`, `int tree`, ... (base type
            # names cannot be applied)
            if tok.kind == "id" and tok.text not in self._BASE_TYPES:
                self.next()
                ty = A.TyConS(tok.text, (ty,), line=tok.line, col=tok.col)
            else:
                break
        return ty

    def _type_atom(self) -> tuple:
        """Returns ``(args, ty)``: ``args`` is a list when a parenthesized
        type-argument tuple was read (awaiting a constructor name),
        otherwise ``None`` with the single type."""
        tok = self.peek()
        pos = {"line": tok.line, "col": tok.col}
        if tok.kind == "tyvar":
            self.next()
            return None, A.TyVarS(tok.text, **pos)
        if tok.kind == "id":
            self.next()
            return None, A.TyConS(tok.text, (), **pos)
        if self.at("("):
            self.next()
            ty = self.type_()
            if self.at(","):
                args = [ty]
                while self.at(","):
                    self.next()
                    args.append(self.type_())
                self.eat(")")
                return args, None
            self.eat(")")
            return None, ty
        raise self._err("expected a type")


def parse_program(source: str) -> A.Program:
    """Parse a MiniML program (a sequence of declarations)."""
    parser = Parser(tokenize(source))
    return parser.program()


def parse_expression(source: str) -> A.Exp:
    """Parse a single MiniML expression (handy in tests)."""
    parser = Parser(tokenize(source))
    exp = parser.expression()
    tok = parser.peek()
    if tok.kind != "eof":
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.col)
    return exp

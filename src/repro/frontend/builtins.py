"""Built-in primitives and the MiniML prelude (our Basis-library excerpt).

Built-ins are identifiers with fixed type schemes that elaborate to
:class:`repro.core.terms.Prim` nodes when fully applied (and are
eta-expanded otherwise).  The *prelude* is ordinary MiniML source that the
pipeline prepends to every program (unless disabled); it plays the role of
the Standard ML Basis Library in the paper's measurements.

Section 4.2 reports that the MLKit's Basis implementation contains exactly
three spurious functions: ``o``, ``Option.compose`` and
``Option.mapPartial``.  Our prelude reproduces that count with the same
shapes (options are modelled as 0/1-element lists):

* ``o`` — the composition function, the paper's running example;
* ``composeOpt`` — ``Option.compose``: the returned closure captures the
  pair whose type mentions ``'b``, but the closure's own type does not;
* ``mapPartialOpt`` — ``Option.mapPartial``, written (as in the Basis)
  with an internal helper ``check : 'a -> bool`` that captures ``f`` and
  hides ``'b``.

``app`` is written with the explicit type constraint that Section 4.2
recommends (``f : 'a -> unit``), so it is *not* spurious here; the test
suite also checks the unconstrained variant, which is.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mltypes import (
    MLScheme,
    MLType,
    T_BOOL,
    T_INT,
    T_REAL,
    T_STRING,
    T_UNIT,
    TVar,
    array_of,
    arrow,
    list_of,
    pair,
    ref_of,
)

__all__ = ["Builtin", "BUILTINS", "PRELUDE_SOURCE"]


@dataclass(frozen=True)
class Builtin:
    """A built-in identifier.

    ``prim`` names the :class:`~repro.core.terms.Prim` operation the
    application elaborates to (``"__ref"`` marks the special ``ref``
    constructor, which elaborates to :class:`~repro.core.terms.MkRef`).
    ``allocates`` says whether the elaborated primitive needs a
    destination region.
    """

    name: str
    scheme: MLScheme
    prim: str
    allocates: bool = False


def _mono(t: MLType) -> MLScheme:
    return MLScheme((), t)


def _poly1(make) -> MLScheme:
    a = TVar(level=0)
    return MLScheme((a,), make(a))


def _builtins() -> dict[str, Builtin]:
    table = [
        Builtin("hd", _poly1(lambda a: arrow(list_of(a), a)), "hd"),
        Builtin("tl", _poly1(lambda a: arrow(list_of(a), list_of(a))), "tl"),
        Builtin("null", _poly1(lambda a: arrow(list_of(a), T_BOOL)), "null"),
        Builtin("not", _mono(arrow(T_BOOL, T_BOOL)), "not"),
        Builtin("print", _mono(arrow(T_STRING, T_UNIT)), "print"),
        Builtin("size", _mono(arrow(T_STRING, T_INT)), "size"),
        Builtin("itos", _mono(arrow(T_INT, T_STRING)), "int_to_string", allocates=True),
        Builtin("rtos", _mono(arrow(T_REAL, T_STRING)), "real_to_string", allocates=True),
        Builtin("real", _mono(arrow(T_INT, T_REAL)), "real", allocates=True),
        Builtin("floor", _mono(arrow(T_REAL, T_INT)), "floor"),
        Builtin("round", _mono(arrow(T_REAL, T_INT)), "round"),
        Builtin("trunc", _mono(arrow(T_REAL, T_INT)), "trunc"),
        Builtin("sqrt", _mono(arrow(T_REAL, T_REAL)), "sqrt", allocates=True),
        Builtin("sin", _mono(arrow(T_REAL, T_REAL)), "rsin", allocates=True),
        Builtin("cos", _mono(arrow(T_REAL, T_REAL)), "rcos", allocates=True),
        Builtin("atan", _mono(arrow(T_REAL, T_REAL)), "ratan", allocates=True),
        Builtin("exp", _mono(arrow(T_REAL, T_REAL)), "rexp", allocates=True),
        Builtin("ln", _mono(arrow(T_REAL, T_REAL)), "rln", allocates=True),
        Builtin("rabs", _mono(arrow(T_REAL, T_REAL)), "rabs", allocates=True),
        Builtin("ref", _poly1(lambda a: arrow(a, ref_of(a))), "__ref", allocates=True),
        # Array.array/sub/update/length — mutable arrays (ISSUE 10).
        Builtin("array", _poly1(lambda a: arrow(pair(T_INT, a), array_of(a))),
                "array", allocates=True),
        Builtin("sub", _poly1(lambda a: arrow(pair(array_of(a), T_INT), a)), "asub"),
        Builtin("update",
                _poly1(lambda a: arrow(pair(array_of(a), pair(T_INT, a)), T_UNIT)),
                "aupdate"),
        Builtin("alength", _poly1(lambda a: arrow(array_of(a), T_INT)), "alength"),
    ]
    return {b.name: b for b in table}


BUILTINS: dict[str, Builtin] = _builtins()


PRELUDE_SOURCE = r"""
(* ------------------------------------------------------------------ *)
(* MiniML prelude: the Basis-library excerpt used by the benchmarks.  *)
(* ------------------------------------------------------------------ *)

(* The composition function: the paper's running example, and one of   *)
(* the three spurious functions of the Basis (Section 4.2).  Written   *)
(* with a destructuring pattern so the returned closure captures the   *)
(* two functions, not the argument pair — giving exactly the paper's   *)
(* type scheme (2).                                                    *)
fun o (f, g) = fn x => f (g x)

fun id x = x
fun ignore x = ()
fun fst p = #1 p
fun snd p = #2 p

fun abs x = if x < 0 then 0 - x else x
fun min (a, b) = if a < b then a else b
fun max (a, b) = if a > b then a else b

fun length xs = if null xs then 0 else 1 + length (tl xs)
fun append (xs, ys) = if null xs then ys else hd xs :: append (tl xs, ys)
fun rev xs =
    let fun go (ys, acc) = if null ys then acc else go (tl ys, hd ys :: acc)
    in go (xs, nil)
    end
fun map f xs = if null xs then nil else f (hd xs) :: map f (tl xs)
fun app (f : 'a -> unit) xs =
    if null xs then () else (f (hd xs); app f (tl xs))
fun foldl f acc xs = if null xs then acc else foldl f (f (hd xs, acc)) (tl xs)
fun foldr f acc xs = if null xs then acc else f (hd xs, foldr f acc xs)
fun filter p xs =
    if null xs then nil
    else if p (hd xs) then hd xs :: filter p (tl xs)
    else filter p (tl xs)
fun exists p xs = if null xs then false else p (hd xs) orelse exists p (tl xs)
fun all p xs = if null xs then true else p (hd xs) andalso all p (tl xs)
fun nth (xs, n) = if n = 0 then hd xs else nth (tl xs, n - 1)
fun take (xs, n) = if n = 0 then nil else hd xs :: take (tl xs, n - 1)
fun drop (xs, n) = if n = 0 then xs else drop (tl xs, n - 1)
fun tabulate (n, f) =
    let fun go i = if i >= n then nil else f i :: go (i + 1)
    in go 0
    end
fun concatLists xss = if null xss then nil else append (hd xss, concatLists (tl xss))

(* Options modelled as 0/1-element lists: NONE = nil, SOME v = [v].    *)
fun isSome v = not (null v)
fun valOf v = hd v

(* Option.compose — the second spurious Basis function: the closure    *)
(* captures p whose type mentions 'b, invisible in the closure's type. *)
fun composeOpt p =
    fn x => let val r = (#2 p) x
            in if null r then nil else ((#1 p) (hd r)) :: nil
            end

(* Option.mapPartial — the third spurious Basis function: the local    *)
(* helper check : 'a -> bool captures f and hides 'b.                  *)
fun mapPartialOpt f =
    let fun check x = null (f x)
        fun go x = if check x then nil else f x
    in go
    end
"""

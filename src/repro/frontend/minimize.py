"""Type minimization (paper Section 4.2, after Bjorner 1994).

Algorithm W can over-generalize: ``List.app``'s internal ``loop`` gives
``app`` the scheme ``forall 'a 'b. ('a -> 'b) -> 'a list -> unit`` where
``'b`` is gratuitous — nothing in the observable behaviour depends on it,
yet it becomes a *spurious* type variable for region inference.  Bjorner's
minimal-typing-derivation idea shrinks such schemes.

Our implementation performs the specific minimization the paper relies
on: a quantified type variable that occurs in the scheme *only* in the
codomain position of an argument-function type whose result is discarded
(i.e. it appears exactly once in the whole scheme) can be replaced by
``unit`` without changing typability of any use site — every instance
type for it is simply forced to ``unit``... which is only sound when all
instantiations are unconstrained.  We therefore minimize conservatively:
a singleton-occurrence quantified variable is *kept* unless every
recorded instantiation of it in the program is itself an unconstrained
variable; in that case the variable is instantiated to ``unit``
everywhere and dropped from the scheme.

The pass mutates the inference result in place (destructive unification
on the recorded instance types) before region inference reads it, and
reports what it removed.  Disable with
``CompilerFlags(minimize_types=False)`` — the ``bench_ablation``
benchmark measures the difference in spurious-function counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast as A
from .infer import InferenceResult
from .mltypes import MLScheme, T_UNIT, TVar, free_tvars, prune

__all__ = ["MinimizeReport", "minimize_types"]


@dataclass
class MinimizeReport:
    removed: int = 0
    bindings: list = field(default_factory=list)


def minimize_types(program: A.Program, infres: InferenceResult) -> MinimizeReport:
    """Minimize the schemes of generalizing binders in place."""
    report = MinimizeReport()

    # Type variables quantified by *any* scheme: an instantiation target
    # resolving to one of these belongs to a still-polymorphic binder and
    # must never be pinned.
    all_qvars = {
        q.ident
        for scheme in infres.binding_scheme.values()
        for q in scheme.qvars
    }

    # Count occurrences of each qvar in each scheme body.
    for dec_id, scheme in list(infres.binding_scheme.items()):
        if not scheme.qvars:
            continue
        occurrences: dict[int, int] = {}
        _count(scheme.body, occurrences)
        removable: list[TVar] = []
        for q in scheme.qvars:
            if occurrences.get(q.ident, 0) != 1:
                continue
            if _all_instances_unconstrained(infres, q, all_qvars):
                removable.append(q)
        if not removable:
            continue
        for q in removable:
            # Resolve the variable to unit everywhere (scheme body and all
            # recorded instances observe it through pruning).
            q.instance = T_UNIT
            for inst in infres.var_instance.values():
                target = inst.mapping.get(q.ident)
                if target is not None:
                    t = prune(target)
                    if isinstance(t, TVar):
                        t.instance = T_UNIT
        kept = tuple(q for q in scheme.qvars if q not in removable)
        new_scheme = MLScheme(kept, scheme.body)
        infres.binding_scheme[dec_id] = new_scheme
        report.removed += len(removable)
        report.bindings.append(dec_id)

    # Top-level env mirrors binding schemes.
    for name, scheme in list(infres.top_env.items()):
        if scheme.qvars:
            kept = tuple(q for q in scheme.qvars if prune(q) is q)
            if len(kept) != len(scheme.qvars):
                infres.top_env[name] = MLScheme(kept, scheme.body)
    return report


def _count(t, occurrences: dict) -> None:
    t = prune(t)
    if isinstance(t, TVar):
        occurrences[t.ident] = occurrences.get(t.ident, 0) + 1
        return
    for a in t.args:
        _count(a, occurrences)


def _all_instances_unconstrained(
    infres: InferenceResult, q: TVar, all_qvars: set
) -> bool:
    """True when every recorded instantiation of ``q`` is an unresolved
    type variable owned by no scheme (so pinning it to unit cannot break
    any use site)."""
    for inst in infres.var_instance.values():
        target = inst.mapping.get(q.ident)
        if target is None:
            continue
        t = prune(target)
        if not isinstance(t, TVar):
            return False
        if t.ident in all_qvars:
            return False
    return True

"""Content-addressed pipeline compile cache.

Compiling a MiniML program (parse -> HM inference -> region inference ->
freezing -> multiplicity/drop analyses -> verification) is pure: the
output depends only on the source text and the compilation-relevant
:class:`~repro.config.CompilerFlags` fields.  Harnesses exploit that by
keying compiled programs on ``(sha256(source), strategy, flags...)`` —
the fuzzer re-compiles a failing program once per shrink candidate, the
bench exporter compiles each Figure 9 cell per strategy, and the
differential oracle compiles every flag variant of the same source; all
of them hit the cache on repeats.

Runtime flags (:class:`~repro.config.RuntimeFlags`) are deliberately
*not* part of the key: they only affect execution, so a cached program
is re-wrapped with the caller's flags on a hit (see
:func:`repro.pipeline.compile_program`).  The closure-compiled backend
(:mod:`repro.runtime.compile`) is shared through the wrapper, so a
program compiled once is also *closure-compiled* at most once.

The default process-wide cache is bounded (LRU): a long fuzz run over
thousands of distinct programs evicts the oldest entries instead of
growing without bound.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import CompilerFlags
    from .pipeline import CompiledProgram

__all__ = ["CacheStats", "CompileCache", "cache_key", "default_cache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`CompileCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 when the cache was never consulted."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum (fleet aggregation across worker caches)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def cache_key(source: str, flags: "CompilerFlags") -> tuple:
    """The content address of a compilation: a sha256 of the source plus
    every :class:`~repro.config.CompilerFlags` field that can change the
    compiled term or the attached reports.  ``flags.runtime`` is
    excluded — it never influences compilation."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return (
        digest,
        flags.strategy.value,
        flags.spurious_mode.value,
        flags.minimize_types,
        flags.multiplicity,
        flags.drop_regions,
        flags.verify,
        flags.analyze,
        flags.with_prelude,
    )


class CompileCache:
    """A bounded LRU mapping :func:`cache_key` -> ``CompiledProgram``.

    Thread-safe (the fuzzer may drive compiles from worker threads); the
    lock only guards the ordered dict, never a compile.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("CompileCache maxsize must be >= 1")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: "OrderedDict[tuple, CompiledProgram]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: tuple) -> Optional["CompiledProgram"]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: tuple, program: "CompiledProgram") -> None:
        with self._lock:
            self._entries[key] = program
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe lifetime
        behaviour, not current contents)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict:
        """Size + counters as one JSON-ready dict (the shape the serving
        layer's ``stats`` endpoint and ``repro-bench`` logging report)."""
        with self._lock:
            size = len(self._entries)
        stats = self.stats
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hit_rate": round(stats.hit_rate, 4),
            **stats.to_dict(),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries


_DEFAULT = CompileCache()


def default_cache() -> CompileCache:
    """The process-wide cache used by ``compile_program(cache=True)``."""
    return _DEFAULT

"""Command-line interface: compile and run MiniML programs.

Usage::

    repro-run program.mml [--strategy rg|rg-|r|trivial|ml]
                          [--pretty] [--stats] [--no-verify] [--no-prelude]
                          [--verify] [--sanitize]
                          [--no-cache] [--backend closure|bytecode|tree]
                          [--specialize N] [--disasm]
                          [--gc-every-alloc] [--gc-every N] [--gc-at I,J,..]
                          [--gc-dealloc-every N] [--gc-rate P]
                          [--gc-dealloc-rate P] [--gc-seed S] [--gc-kind K]
                          [--generational] [--gc-policy POLICY]
                          [--max-heap-words N] [--deadline SECONDS]
                          [--trace FILE] [--profile]

Prints the program's ``print`` output, then the value of ``it``.
``--pretty`` shows the region-annotated program instead of running it;
``--disasm`` shows the bytecode backend's disassembly instead (the
format is documented in docs/bytecode.md and pinned by a golden test).
The ``--gc-*`` family builds a deterministic fault-injection plan
(:class:`repro.testing.faultplan.FaultPlan`) so a schedule found by
``repro-fuzz`` can be replayed exactly.

Observability: ``--trace FILE`` writes every heap/GC event as JSONL
(schema in docs/observability.md; the trace is flushed even when the run
faults, so a ``dangle`` event is the last thing a crashing ``rg-`` run
writes).  ``--profile`` prints a per-letregion-site region profile to
stderr after the run.

Exit codes: 0 on success, 1 on any compile or runtime error, 2 when a
configured resource limit (steps, depth, heap words, deadline) fired —
so scripts can distinguish "the program is broken" from "the program was
cut off".
"""

from __future__ import annotations

import argparse
import sys

from .config import CompilerFlags, Strategy
from .core.errors import InterpreterLimit, ReproError
from .pipeline import compile_program
from .runtime.values import show_value

__all__ = ["main", "add_gc_arguments", "add_limit_arguments", "fault_plan_from_args"]


def _indices(text: str) -> tuple:
    """argparse type for a comma-separated index list."""
    return tuple(int(i) for i in text.split(","))


_indices.__name__ = "index list"  # what argparse names in its error message


def add_gc_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``--gc-*`` fault-plan flag family plus ``--generational``.

    Shared by ``repro-run`` and ``repro-submit`` so a schedule replays
    identically whether the program runs locally or on a server; decode
    the resulting namespace with :func:`fault_plan_from_args`."""
    gc = parser.add_argument_group("GC schedule (fault injection)")
    gc.add_argument("--gc-every-alloc", action="store_true",
                    help="run a collection at every allocation "
                         "(alias for --gc-every 1)")
    gc.add_argument("--gc-every", type=int, metavar="N",
                    help="collect at every Nth allocation")
    gc.add_argument("--gc-at", metavar="I,J,..", type=_indices,
                    help="collect at these allocation indices (0-based)")
    gc.add_argument("--gc-rate", type=float, metavar="P",
                    help="collect at each allocation with probability P")
    gc.add_argument("--gc-dealloc-every", type=int, metavar="N",
                    help="collect at every Nth region deallocation")
    gc.add_argument("--gc-dealloc-rate", type=float, metavar="P",
                    help="collect at each region deallocation with probability P")
    gc.add_argument("--gc-seed", type=int, default=0, metavar="S",
                    help="seed for the randomized schedule knobs")
    gc.add_argument("--gc-kind", default="auto",
                    choices=["auto", "minor", "major", "random"],
                    help="collection kind at injected points")
    gc.add_argument("--generational", action="store_true",
                    help="use the two-generation collector (alias for "
                         "--gc-policy generational)")
    from .runtime.gc import POLICIES
    gc.add_argument("--gc-policy", metavar="POLICY",
                    choices=sorted(POLICIES),
                    help="collection policy: %(choices)s "
                         "(default: copying, or generational when "
                         "--generational is given); every policy is "
                         "bit-identical on values, output and traced "
                         "word counts — only page residency and the "
                         "minor/major schedule differ "
                         "(docs/performance.md)")


def add_limit_arguments(parser: argparse.ArgumentParser) -> None:
    """The resource-limit flag pair (also shared with ``repro-submit``)."""
    lim = parser.add_argument_group("resource limits")
    lim.add_argument("--max-heap-words", type=int, metavar="N",
                     help="fail fast (exit 2) when the heap footprint "
                          "exceeds N words")
    lim.add_argument("--deadline", type=float, metavar="SECONDS",
                     help="fail fast (exit 2) after this much wall-clock time")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-run", description=__doc__)
    parser.add_argument("file", help="MiniML source file (or - for stdin)")
    parser.add_argument(
        "--strategy",
        default="rg",
        choices=[s.value for s in Strategy],
        help="compilation strategy (default: rg, the paper's sound system)",
    )
    parser.add_argument("--pretty", action="store_true",
                        help="print the region-annotated program and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print execution statistics")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the Figure 4 type-checker pass")
    parser.add_argument("--verify", action="store_true",
                        help="additionally run the independent GC-safety "
                             "verifier (repro.analysis) over the annotated "
                             "output; violations print to stderr and fail "
                             "the run with exit 1")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the heap pointer sanitizer: every "
                             "boxed-value access validates the target "
                             "region's generation stamp; a clean run is "
                             "bit-identical to an unsanitized one")
    parser.add_argument("--no-prelude", action="store_true",
                        help="compile without the Basis-excerpt prelude")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the compile cache (always recompile; "
                             "the escape hatch when diagnosing the cache "
                             "itself)")
    parser.add_argument("--backend", default="closure",
                        choices=["closure", "bytecode", "tree"],
                        help="evaluator: the closure-compiled fast path "
                             "(default), the register bytecode VM with "
                             "trace-guided specialization, or the original "
                             "tree walker; all three produce bit-identical "
                             "output, stats and traces (docs/bytecode.md)")
    parser.add_argument("--specialize", type=int, metavar="N",
                        help="bytecode backend: specialize a function body "
                             "after N entries (0 disables; default 64). "
                             "Ignored by the other backends")
    parser.add_argument("--disasm", action="store_true",
                        help="print the bytecode backend's disassembly and "
                             "exit without running (format: "
                             "docs/bytecode.md)")
    add_gc_arguments(parser)
    add_limit_arguments(parser)
    obs = parser.add_argument_group("observability")
    obs.add_argument("--trace", metavar="FILE",
                     help="write a JSONL event trace (allocations, region "
                          "push/pop, GC begin/end, dangling probes) to FILE")
    obs.add_argument("--profile", action="store_true",
                     help="print a per-letregion-site region profile "
                          "(MLKit-profiler style) to stderr after the run")
    return parser


def fault_plan_from_args(args):
    """Build a FaultPlan from the --gc-* flags, or None when none given."""
    if not any(
        (args.gc_every, args.gc_at, args.gc_rate,
         args.gc_dealloc_every, args.gc_dealloc_rate)
    ):
        return None
    from .testing.faultplan import FaultPlan

    return FaultPlan(
        every=args.gc_every,
        at=args.gc_at or (),
        rate=args.gc_rate or 0.0,
        dealloc_every=args.gc_dealloc_every,
        dealloc_at=(),
        dealloc_rate=args.gc_dealloc_rate or 0.0,
        seed=args.gc_seed,
        kind=args.gc_kind,
    )


def main(argv: list | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _run(args)
    except InterpreterLimit as exc:
        print(f"limit: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc.strerror or exc}", file=sys.stderr)
        return 1


def _run(args) -> int:
    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            source = handle.read()

    flags = CompilerFlags(
        strategy=Strategy(args.strategy),
        verify=not args.no_verify,
        analyze=args.verify,
        with_prelude=not args.no_prelude,
    )
    prog = compile_program(source, flags=flags, cache=not args.no_cache)

    if prog.verification_error is not None:
        print(
            f"warning: the region annotation violates the Figure 4 rules "
            f"(expected under {flags.strategy.value}):\n  {prog.verification_error}",
            file=sys.stderr,
        )
    if prog.analysis is not None and not prog.analysis.ok:
        # Only reachable for the unsound strategies — for rg/trivial the
        # pipeline raises instead of attaching a failing report.
        print(prog.analysis.summary(), file=sys.stderr)
        return 1
    if args.pretty:
        print(prog.pretty())
        return 0
    if args.disasm:
        sys.stdout.write(prog.disasm())
        return 0

    overrides: dict = {}
    if args.specialize is not None:
        if args.specialize < 0:
            print("error: --specialize must be >= 0", file=sys.stderr)
            return 1
        overrides["specialize"] = args.specialize
    if args.gc_every_alloc:
        overrides["gc_every_alloc"] = True
    plan = fault_plan_from_args(args)
    if plan is not None:
        overrides["fault_plan"] = plan
    if args.generational:
        overrides["generational"] = True
    if args.gc_policy is not None:
        overrides["gc_policy"] = args.gc_policy
    if args.max_heap_words is not None:
        overrides["max_heap_words"] = args.max_heap_words
    if args.deadline is not None:
        overrides["deadline_seconds"] = args.deadline
    if args.sanitize:
        overrides["sanitize"] = True

    bus = None
    profiler = None
    if args.trace or args.profile:
        from .runtime.profiler import RegionProfiler
        from .runtime.trace import EventBus, open_jsonl

        sinks = []
        if args.trace:
            sinks.append(open_jsonl(args.trace))
        if args.profile:
            profiler = RegionProfiler()
            sinks.append(profiler)
        bus = EventBus(*sinks)
        overrides["tracer"] = bus

    try:
        result = prog.run(backend=args.backend, **overrides)
    finally:
        # Flush the trace and print the profile even when the run faults:
        # a dangling-pointer crash is exactly what one wants to see traced.
        if bus is not None:
            bus.close()
        if profiler is not None:
            print(profiler.report(), file=sys.stderr)

    if result.output:
        sys.stdout.write(result.output)
        if not result.output.endswith("\n"):
            sys.stdout.write("\n")
    print(f"val it = {show_value(result.value)}")
    if args.stats:
        s = result.stats
        print(
            f"[stats] wall={result.wall_seconds:.3f}s steps={s.steps} "
            f"allocs={s.allocations} alloc_words={s.allocated_words} "
            f"peak_words={s.peak_words} peak_pages={s.peak_pages} "
            f"gc={s.gc_count} "
            f"(minor {s.gc_minor_count}, injected {s.gc_injected}) "
            f"letregions={s.letregions} "
            f"region_stack_max={s.max_region_stack}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: compile and run MiniML programs.

Usage::

    repro-run program.mml [--strategy rg|rg-|r|trivial|ml]
                          [--pretty] [--stats] [--gc-every-alloc]
                          [--no-verify] [--no-prelude]

Prints the program's ``print`` output, then the value of ``it``.
``--pretty`` shows the region-annotated program instead of running it.
"""

from __future__ import annotations

import argparse
import sys

from .config import CompilerFlags, Strategy
from .core.errors import ReproError
from .pipeline import compile_program
from .runtime.values import show_value

__all__ = ["main"]


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-run", description=__doc__)
    parser.add_argument("file", help="MiniML source file (or - for stdin)")
    parser.add_argument(
        "--strategy",
        default="rg",
        choices=[s.value for s in Strategy],
        help="compilation strategy (default: rg, the paper's sound system)",
    )
    parser.add_argument("--pretty", action="store_true",
                        help="print the region-annotated program and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print execution statistics")
    parser.add_argument("--gc-every-alloc", action="store_true",
                        help="run a collection at every allocation")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the Figure 4 type-checker pass")
    parser.add_argument("--no-prelude", action="store_true",
                        help="compile without the Basis-excerpt prelude")
    args = parser.parse_args(argv)

    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            source = handle.read()

    flags = CompilerFlags(
        strategy=Strategy(args.strategy),
        verify=not args.no_verify,
        with_prelude=not args.no_prelude,
    )
    try:
        prog = compile_program(source, flags=flags)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if prog.verification_error is not None:
        print(
            f"warning: the region annotation violates the Figure 4 rules "
            f"(expected under {flags.strategy.value}):\n  {prog.verification_error}",
            file=sys.stderr,
        )
    if args.pretty:
        print(prog.pretty())
        return 0

    try:
        result = prog.run(gc_every_alloc=args.gc_every_alloc)
    except ReproError as exc:
        print(f"runtime error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    if result.output:
        sys.stdout.write(result.output)
        if not result.output.endswith("\n"):
            sys.stdout.write("\n")
    print(f"val it = {show_value(result.value)}")
    if args.stats:
        s = result.stats
        print(
            f"[stats] wall={result.wall_seconds:.3f}s steps={s.steps} "
            f"allocs={s.allocations} alloc_words={s.allocated_words} "
            f"peak_words={s.peak_words} gc={s.gc_count} "
            f"(minor {s.gc_minor_count}) letregions={s.letregions} "
            f"region_stack_max={s.max_region_stack}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Compilation strategies and flags (paper Section 5).

The paper compares three MLKit compilation strategies plus MLton:

* ``rg``  — region inference **with** spurious-type-variable tracking,
  combined with reference-tracing garbage collection.  This is the sound
  system the paper contributes.
* ``rg-`` — like ``rg`` but *without* taking spurious type variables into
  account.  Unsound: the collector can meet dangling pointers.
* ``r``   — region inference alone, no collector.  Dangling pointers are
  permitted (and harmless, since the mutator never dereferences them).
* MLton   — a conventional whole-program compiler with a tracing collector
  and no regions.  Our stand-in is the ``ml`` strategy: the same
  interpreter with a single garbage-collected heap and no region
  management at all.

``trivial`` implements the trivial region-inference algorithm of
Section 4.1 (everything in one global region, every arrow effect is the
global arrow effect): useful as a baseline and as a differential-testing
oracle, since it is sound by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .runtime.trace import EventBus
    from .testing.faultplan import FaultPlan

__all__ = ["Strategy", "SpuriousMode", "CompilerFlags", "RuntimeFlags"]


class Strategy(enum.Enum):
    """Top-level compilation strategy (the Figure 9 columns)."""

    RG = "rg"
    RG_MINUS = "rg-"
    R = "r"
    TRIVIAL = "trivial"
    ML = "ml"

    @property
    def uses_regions(self) -> bool:
        return self is not Strategy.ML

    @property
    def uses_gc(self) -> bool:
        return self in (Strategy.RG, Strategy.RG_MINUS, Strategy.ML, Strategy.TRIVIAL)

    @property
    def tracks_spurious(self) -> bool:
        """``rg`` is the paper's sound system; ``trivial`` and ``ml`` are
        vacuously safe (everything is global) and keep tracking on so
        their annotations verify.  ``rg-`` and ``r`` reproduce the
        pre-paper inference: no spurious-type-variable tracking."""
        return self in (Strategy.RG, Strategy.TRIVIAL, Strategy.ML)

    def __str__(self) -> str:  # pragma: no cover
        return self.value


class SpuriousMode(enum.Enum):
    """How the arrow effect of a spurious type variable is chosen
    (Section 2, type schemes (2) vs (3)).

    ``SECONDARY``: each spurious type variable gets its own fresh
    (secondary) effect variable, added to the latent effect of the
    function arrow — type scheme (2).

    ``IDENTIFY``: the spurious type variable's effect variable is
    identified with the arrow effect of the function type in which the
    variable appears free in the type of a free identifier — type scheme
    (3).  No secondary effect variables, but potentially larger region
    live ranges (the ablation of Section 5 / our bench_ablation).
    """

    SECONDARY = "secondary"
    IDENTIFY = "identify"


@dataclass(frozen=True)
class RuntimeFlags:
    """Knobs of the region abstract machine."""

    #: Words per region page (the MLKit uses 1-4 KiB pages; our unit is
    #: an abstract 8-byte word).
    page_words: int = 256
    #: Trigger a collection when the heap grows beyond ``heap_to_live``
    #: times the live data retained by the previous collection.
    heap_to_live: float = 3.0
    #: Initial collection threshold in words.
    initial_threshold: int = 4096
    #: Use a two-generation collector (minor collections of young pages).
    #: Legacy boolean, equivalent to ``gc_policy="generational"``.
    generational: bool = False
    #: Collection policy by name (:data:`repro.runtime.gc.POLICIES`):
    #: ``"copying"`` (per-region Cheney, majors only, to-space page
    #: reserve), ``"generational"`` (minor/major schedule + write
    #: barrier), or ``"mark-compact"`` (majors only, slides in place —
    #: no mid-GC page spike).  ``None`` (default) derives the policy
    #: from ``generational``.  All policies are bit-identical on
    #: values, stdout, and mutator-level stats; they differ only in
    #: page residency and the GC schedule.
    gc_policy: Optional[str] = None
    #: Crash-test mode: run a collection at *every* allocation.  Slow;
    #: used by the property tests to hunt dangling pointers aggressively.
    #: Kept as an alias for ``fault_plan=FaultPlan.every_nth(1)``: one
    #: point in the plan space of :mod:`repro.testing.faultplan`.
    gc_every_alloc: bool = False
    #: Deterministic GC fault-injection plan
    #: (:class:`repro.testing.faultplan.FaultPlan`).  When set, the plan is
    #: *authoritative*: collections happen exactly at the allocation and
    #: region-deallocation points the plan selects, and the heap-to-live
    #: growth policy (and ``gc_every_alloc``) is disabled, so a seed
    #: reproduces the exact same GC schedule.
    fault_plan: Optional["FaultPlan"] = None
    #: Hard bounds so runaway programs fail fast in tests.
    max_steps: int | None = None
    max_depth: int = 40_000
    #: Heap footprint bound in words (live data *plus* uncollected
    #: garbage).  Exceeding it raises
    #: :class:`repro.core.errors.HeapLimitError`.
    max_heap_words: int | None = None
    #: Wall-clock budget for a single run.  Exceeding it raises
    #: :class:`repro.core.errors.DeadlineExceeded`.
    deadline_seconds: float | None = None
    #: Pointer sanitizer: validate every boxed value's region generation
    #: stamp on reads, writes, and GC scavenges, raising
    #: :class:`repro.core.errors.StalePointerError` at the first stale
    #: access.  Pure checking — a clean run is bit-identical (values,
    #: stdout, stats, trace events) to an unsanitized one.
    sanitize: bool = False
    #: Bytecode-backend specialization threshold: a function body whose
    #: entry count crosses this value is rewritten in place (fused
    #: super-instructions, direct-threaded known calls, generated
    #: kernel — see :mod:`repro.runtime.bytecode.specialize`).  ``0``
    #: disables specialization entirely; the counter only advances in
    #: runs that are neither limit-checked nor traced, so checked runs
    #: always execute the canonical instruction stream.  Ignored by the
    #: tree and closure backends.
    specialize: int = 64
    #: Observability event bus (:class:`repro.runtime.trace.EventBus`).
    #: ``None`` (the default) installs the shared no-op tracer: the hot
    #: paths then pay a single attribute check per potential event and
    #: execution is bit-identical to an untraced run (steps, GC
    #: schedule, peak words — pinned by ``tests/runtime/test_trace.py``).
    tracer: Optional["EventBus"] = None


@dataclass(frozen=True)
class CompilerFlags:
    """Everything the pipeline needs to know."""

    strategy: Strategy = Strategy.RG
    spurious_mode: SpuriousMode = SpuriousMode.SECONDARY
    #: Run Bjorner-style type minimization before region inference
    #: (Section 4.2: reduces the number of spurious type variables).
    minimize_types: bool = True
    #: Run the multiplicity analysis that turns single-put regions into
    #: stack-allocated finite regions.
    multiplicity: bool = True
    #: Drop region parameters that a function never stores into.
    drop_regions: bool = True
    #: Verify the region-annotated output against the Figure 4 rules.
    #: For ``rg`` this must always succeed; for ``rg-`` a failure is
    #: recorded on the compiled program instead of raised.
    verify: bool = True
    #: Run the *independent* verifier (:mod:`repro.analysis`) over the
    #: annotated output as a post-inference gate.  Shares no checking
    #: code with ``verify``; the report lands on
    #: ``CompiledProgram.analysis``, and for the sound strategies a
    #: violation raises.
    analyze: bool = False
    #: Include the MiniML prelude (the Basis-library excerpt).
    with_prelude: bool = True
    runtime: RuntimeFlags = field(default_factory=RuntimeFlags)

    def with_strategy(self, strategy: Strategy) -> "CompilerFlags":
        return replace(self, strategy=strategy)

    # -- wire form -----------------------------------------------------------
    #
    # The serving layer (repro.server) ships compilations between
    # processes as JSON.  Only the *compilation-relevant* fields travel —
    # the same set :func:`repro.cache.cache_key` hashes; ``runtime`` is
    # deliberately absent (limits, fault plans, and tracers are
    # per-request knobs carried separately by the protocol, so a cached
    # compilation is never specialized to them).

    def to_wire(self) -> dict:
        return {
            "strategy": self.strategy.value,
            "spurious_mode": self.spurious_mode.value,
            "minimize_types": self.minimize_types,
            "multiplicity": self.multiplicity,
            "drop_regions": self.drop_regions,
            "verify": self.verify,
            "analyze": self.analyze,
            "with_prelude": self.with_prelude,
        }

    @classmethod
    def from_wire(cls, data: dict, runtime: Optional[RuntimeFlags] = None) -> "CompilerFlags":
        """Inverse of :meth:`to_wire`.  Missing keys keep their defaults
        and unknown keys are ignored, so requests from a newer client
        still compile; bad enum values raise ``ValueError`` (the server
        maps that to an invalid-request response)."""
        kwargs: dict = {}
        if "strategy" in data:
            kwargs["strategy"] = Strategy(data["strategy"])
        if "spurious_mode" in data:
            kwargs["spurious_mode"] = SpuriousMode(data["spurious_mode"])
        for name in ("minimize_types", "multiplicity", "drop_regions", "verify",
                     "analyze", "with_prelude"):
            if name in data:
                kwargs[name] = bool(data[name])
        if runtime is not None:
            kwargs["runtime"] = runtime
        return cls(**kwargs)

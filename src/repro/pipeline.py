"""The compilation pipeline: source -> tokens -> AST -> HM types ->
region inference -> freezing -> analyses -> verified region-annotated
program -> runnable.

``compile_program`` is the package's main entry point.  The produced
:class:`CompiledProgram` carries the region-annotated term, the static
reports (spurious statistics, multiplicity, drop-regions, verification
outcome) and can be executed on the region abstract machine with
:meth:`CompiledProgram.run`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from .cache import CompileCache, cache_key, default_cache
from .config import CompilerFlags, Strategy
from .core import terms as T
from .core.errors import RegionTypeError
from .core.typecheck import CheckResult, typecheck
from .frontend.builtins import PRELUDE_SOURCE
from .frontend.infer import InferenceResult, infer_program
from .frontend.minimize import minimize_types
from .frontend.parser import parse_program
from .regions.dropregions import DropRegionsReport, analyse_drop_regions
from .regions.freeze import freeze_program
from .regions.infer import SpuriousStats, infer_regions
from .regions.multiplicity import MultiplicityReport, analyse_multiplicity
from .regions.pretty import pretty_program

__all__ = ["CompiledProgram", "RunResult", "compile_program", "run_source"]


class _BackendSlot:
    """Lazily-built closure backend of one compiled term.

    Shared between a cached program and every wrapper handed out on a
    cache hit, so the term is closure-compiled at most once per cache
    entry no matter how many callers run it."""

    __slots__ = ("prep", "code")

    def __init__(self) -> None:
        self.prep = None
        self.code = None

    def __reduce__(self):
        # The compiled form captures live Python closures, which cannot
        # travel between processes; a pickled program (the on-disk compile
        # cache, a worker-pool result) re-derives its backend lazily on
        # first run in the destination process.
        return (_BackendSlot, ())


class _BytecodeSlot:
    """Lazily-built bytecode backend of one compiled term.

    Unlike the closure backend, the compiled form — a flat instruction
    array plus the specialization artifacts (fused segments, kernel
    sources) — is data, and *does* pickle: a disk-cache hit or a
    worker-pool result arrives with its specialization table intact and
    only re-``exec``s kernel sources on first call
    (:func:`repro.runtime.bytecode.specialize.revive_kernel`).  The
    ``Prepared`` tables are keyed by term node identity, so they are
    re-derived against the unpickled term instead of shipped."""

    __slots__ = ("prep", "program")

    def __init__(self, program=None) -> None:
        self.prep = None
        self.program = program

    def __reduce__(self):
        return (_BytecodeSlot, (self.program,))


@dataclass
class RunResult:
    """The outcome of executing a compiled program."""

    value: object
    output: str
    stats: "object"  # repro.runtime.stats.RunStats
    wall_seconds: float


@dataclass
class CompiledProgram:
    source: str
    flags: CompilerFlags
    term: T.Term
    inference: InferenceResult
    spurious: SpuriousStats
    multiplicity: MultiplicityReport
    drop_regions: DropRegionsReport
    #: Outcome of re-checking against the Figure 4 rules.  Always ``None``
    #: (= passed) for ``rg``; for ``rg-`` it records the violation that
    #: makes the annotation unsound, mirroring the runtime fault.
    verification_error: Optional[RegionTypeError] = None
    check_result: Optional[CheckResult] = None
    #: Report of the *independent* verifier (:mod:`repro.analysis`),
    #: present when compiled with ``flags.analyze``.  Unlike
    #: ``verification_error`` it shares no code with the checker it
    #: audits and is total (collects every violation instead of raising
    #: on the first).
    analysis: Optional["object"] = None  # repro.analysis.VerifierReport
    compile_seconds: float = 0.0
    #: True when this program came out of a :class:`~repro.cache.CompileCache`
    #: rather than a fresh pipeline run.
    cache_hit: bool = False
    _backend: _BackendSlot = field(
        default_factory=_BackendSlot, repr=False, compare=False
    )
    _bytecode: _BytecodeSlot = field(
        default_factory=_BytecodeSlot, repr=False, compare=False
    )

    def __getstate__(self):
        # DropRegionsReport is keyed by id() of the term's FunDef nodes,
        # which do not survive pickling — ship a tombstone and re-derive
        # from the unpickled term so cache-hit runs from another process
        # (or a disk cache) stay bit-identical to fresh compiles.
        state = dict(self.__dict__)
        state["drop_regions"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Programs pickled before the bytecode backend existed (a stale
        # disk-cache entry, a user-persisted pickle) arrive without the
        # slot fields; give them empty slots so every backend still runs.
        self.__dict__.setdefault("_backend", _BackendSlot())
        self.__dict__.setdefault("_bytecode", _BytecodeSlot())
        if self.drop_regions is None:
            self.drop_regions = analyse_drop_regions(self.term)

    def pretty(self, schemes: bool = True) -> str:
        """The region-annotated program in the paper's notation."""
        return pretty_program(self.term, schemes)

    def _ensure_bytecode(self, multiplicity=None, drop_regions=None):
        """Build (once) and return the bytecode backend slot."""
        slot = self._bytecode
        if slot.prep is None:
            from .runtime.interp import prepare

            # Re-derived even on a cache hit: Prepared is keyed by term
            # node identity, which a pickle does not preserve.
            slot.prep = prepare(self.term)
        if slot.program is None:
            from .runtime.bytecode import compile_bytecode

            slot.program = compile_bytecode(
                self.term, slot.prep, self.flags.strategy,
                multiplicity, drop_regions,
            )
        return slot

    def disasm(self) -> str:
        """Textual disassembly of the bytecode backend's compiled form
        (lowering the term on first use).  The format is the documented
        interface of :mod:`repro.runtime.bytecode.disasm`; examples in
        ``docs/bytecode.md`` are generated from it and kept in sync by
        CI.  Includes any specialized segments already attached."""
        from .runtime.bytecode import disassemble

        multiplicity = self.multiplicity if self.flags.multiplicity else None
        drop_regions = self.drop_regions if self.flags.drop_regions else None
        return disassemble(
            self._ensure_bytecode(multiplicity, drop_regions).program
        )

    def run(self, backend: str = "closure", **overrides) -> RunResult:
        """Execute on the region abstract machine.

        ``backend`` selects the evaluator: ``"closure"`` (the default)
        lowers the term to Python closures once
        (:func:`repro.runtime.compile.compile_term`, memoized on this
        program) and runs the compiled form; ``"bytecode"`` lowers it
        once to a flat register-machine instruction array
        (:mod:`repro.runtime.bytecode`) interpreted by a single
        dispatch loop with trace-guided specialization (tunable via the
        ``specialize`` runtime flag); ``"tree"`` runs the original
        recursive :meth:`Interp.ev <repro.runtime.interp.Interp.ev>`
        walker.  All three are bit-identical in results, stdout,
        ``RunStats``, and trace events — the compiled backends are
        purely speed knobs.  See ``docs/bytecode.md`` and
        ``docs/performance.md`` for the backend matrix.

        Keyword overrides are applied to the runtime flags (e.g.
        ``gc_every_alloc=True``, ``heap_to_live=2.0``,
        ``fault_plan=FaultPlan.every_dealloc()``,
        ``max_heap_words=1_000_000``, ``deadline_seconds=5.0``).  Resource
        limits raise :class:`~repro.core.errors.InterpreterLimit`
        subclasses carrying the partial run statistics, so harnesses never
        hang on a runaway program.
        """
        from dataclasses import replace

        from .runtime.interp import run_term

        multiplicity = self.multiplicity if self.flags.multiplicity else None
        drop_regions = self.drop_regions if self.flags.drop_regions else None
        prep = code = None
        if backend == "closure":
            slot = self._backend
            if slot.code is None:
                from .runtime.compile import compile_term
                from .runtime.interp import prepare

                slot.prep = prepare(self.term)
                slot.code = compile_term(
                    self.term, slot.prep, multiplicity, drop_regions
                )
            prep, code = slot.prep, slot.code
        elif backend == "bytecode":
            slot = self._ensure_bytecode(multiplicity, drop_regions)
            prep, code = slot.prep, slot.program.main
        elif backend != "tree":
            raise ValueError(
                f"unknown backend {backend!r} "
                "(expected 'closure', 'bytecode', or 'tree')"
            )

        runtime = replace(self.flags.runtime, **overrides) if overrides else self.flags.runtime
        start = time.perf_counter()
        value, output, stats = run_term(
            self.term,
            strategy=self.flags.strategy,
            runtime=runtime,
            multiplicity=multiplicity,
            drop_regions=drop_regions,
            code=code,
            prep=prep,
        )
        wall = time.perf_counter() - start
        return RunResult(value, output, stats, wall)


def compile_program(
    source: str,
    flags: CompilerFlags | None = None,
    strategy: Strategy | None = None,
    cache: Union[bool, CompileCache] = True,
) -> CompiledProgram:
    """Compile MiniML source down to a region-annotated program.

    ``strategy`` is a convenience shortcut for
    ``flags.with_strategy(...)``.

    ``cache`` controls the content-addressed compile cache
    (:mod:`repro.cache`): ``True`` (default) uses the process-wide LRU,
    ``False`` compiles unconditionally and stores nothing, and a
    :class:`~repro.cache.CompileCache` instance uses that cache.  A hit
    returns a cheap wrapper sharing the compiled term, reports, and the
    (lazily-built) closure backend; the wrapper carries the *caller's*
    flags, so differing runtime flags behave exactly as a fresh compile,
    and ``cache_hit`` is ``True`` on it.
    """
    if flags is None:
        flags = CompilerFlags()
    if strategy is not None:
        flags = flags.with_strategy(strategy)

    store: Optional[CompileCache]
    if cache is True:
        store = default_cache()
    elif cache is False or cache is None:
        store = None
    else:
        store = cache
    key = cache_key(source, flags) if store is not None else None
    if store is not None:
        cached = store.get(key)
        if cached is not None:
            return CompiledProgram(
                source=cached.source,
                flags=flags,
                term=cached.term,
                inference=cached.inference,
                spurious=cached.spurious,
                multiplicity=cached.multiplicity,
                drop_regions=cached.drop_regions,
                verification_error=cached.verification_error,
                check_result=cached.check_result,
                analysis=cached.analysis,
                compile_seconds=cached.compile_seconds,
                cache_hit=True,
                _backend=cached._backend,
                _bytecode=cached._bytecode,
            )

    start = time.perf_counter()
    full_source = (PRELUDE_SOURCE + "\n" + source) if flags.with_prelude else source
    ast = parse_program(full_source)
    inference = infer_program(ast)
    if flags.minimize_types:
        minimize_types(ast, inference)

    region_out = infer_regions(inference, flags)
    term, _freezer = freeze_program(region_out)

    multiplicity = analyse_multiplicity(term)
    drop = analyse_drop_regions(term)

    verification_error: Optional[RegionTypeError] = None
    check_result: Optional[CheckResult] = None
    if flags.verify:
        try:
            check_result = typecheck(term)
        except RegionTypeError as exc:
            if flags.strategy in (Strategy.RG, Strategy.TRIVIAL):
                # The sound strategies must always verify.
                raise
            verification_error = exc

    analysis = None
    if flags.analyze:
        from .analysis import verify_term

        analysis = verify_term(term)
        if not analysis.ok and flags.strategy in (Strategy.RG, Strategy.TRIVIAL):
            # The independent verifier must agree that the sound
            # strategies are sound; a violation here is a pipeline bug.
            raise analysis.as_error()

    compiled = CompiledProgram(
        source=source,
        flags=flags,
        term=term,
        inference=inference,
        spurious=region_out.stats,
        multiplicity=multiplicity,
        drop_regions=drop,
        verification_error=verification_error,
        check_result=check_result,
        analysis=analysis,
        compile_seconds=time.perf_counter() - start,
    )
    if store is not None:
        store.put(key, compiled)
    return compiled


def run_source(
    source: str,
    flags: CompilerFlags | None = None,
    strategy: Strategy | None = None,
    **overrides,
) -> RunResult:
    """Compile and run in one call."""
    return compile_program(source, flags, strategy).run(**overrides)

"""The load-replay harness + the ``repro-loadgen`` CLI.

Serving benchmarks lie easily.  The classic mistake is the *closed
loop*: a fixed pool of clients that each wait for a response before
sending the next request, so whenever the fleet slows down the offered
load politely slows down with it and tail latency looks great exactly
when it should look terrible (coordinated omission).  This harness is
**open loop**: an arrival schedule is fixed *before* the run — either a
seeded Poisson process or a replayed trace file — and requests are fired
at their scheduled instants whether or not earlier ones have returned.
A fleet that cannot keep up accumulates in-flight requests and the tail
shows it.

A schedule is deterministic data (:class:`Arrival` rows), so the same
seed replays the same byte-identical request sequence against any
fleet — that is what makes chaos results (``kill a node mid-schedule,
lose nothing``) comparable across runs, and what lets the serving smoke
diff fleet answers against in-process ground truth.

Latency is measured twice, on purpose:

* **client-side** — wall time from scheduled send to response, computed
  from the raw samples here (includes queueing, retries, failover);
* **server-side** — the fleet's own cumulative latency histograms from
  ``GET /v1/stats``, snapshotted before and after the wave and
  differenced (:func:`~repro.server.metrics.histogram_delta`), so the
  percentiles the SLO gate checks are the *same numbers an operator's
  dashboard shows*, not a second client-side derivation that could
  drift from it.

Results export as a ``repro-serving-bench/v1`` document
(:data:`SCHEMA`), schema-checked by :func:`validate_document` (CI runs
``repro-loadgen --validate`` on the committed ``BENCH_serving.json``)
and rendered to the docs table by :func:`serving_table`.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .client import ServerClient, ServerUnavailable
from .metrics import histogram_delta, percentiles_from_snapshot
from .protocol import make_request

__all__ = [
    "SCHEMA",
    "Arrival",
    "poisson_schedule",
    "trace_schedule",
    "write_trace",
    "run_schedule",
    "build_document",
    "validate_document",
    "check_slos",
    "serving_table",
    "DEFAULT_SLOS",
    "main",
]

SCHEMA = "repro-serving-bench/v1"

#: Default service-level objectives the gate checks when the operator
#: declares none.  Latency bounds are generous on purpose: the committed
#: bench runs on whatever CI hardware shows up, and the *regression*
#: signal is the error/loss SLOs (which must be exactly zero) plus the
#: schema-checked presence of the latency numbers, not a microbenchmark
#: race against the runner.
DEFAULT_SLOS = {
    "p50_seconds": 30.0,
    "p95_seconds": 60.0,
    "p99_seconds": 120.0,
    "error_rate": 0.0,
    "lost_rate": 0.0,
}


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: fire at ``at`` seconds after wave start,
    submitting ``program`` on behalf of ``tenant``."""

    at: float
    program: str
    tenant: Optional[str] = None

    def to_dict(self) -> dict:
        row: dict = {"at": round(self.at, 6), "program": self.program}
        if self.tenant is not None:
            row["tenant"] = self.tenant
        return row

    @staticmethod
    def from_dict(row: dict) -> "Arrival":
        return Arrival(at=float(row["at"]), program=str(row["program"]),
                       tenant=row.get("tenant"))


def poisson_schedule(
    programs: Sequence[str],
    rate: float,
    requests: int,
    seed: int = 0,
    tenants: Optional[Sequence[str]] = None,
    weights: Optional[Sequence[float]] = None,
) -> list[Arrival]:
    """A seeded open-loop Poisson arrival schedule: ``requests``
    arrivals at mean ``rate`` per second (exponential inter-arrival
    gaps), each picking a program (optionally ``weights``\\ ed — a
    per-tenant mix) and a tenant uniformly.  Same seed, same schedule,
    on every host and Python version."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if not programs:
        raise ValueError("programs must be non-empty")
    rng = random.Random(seed)
    now = 0.0
    schedule = []
    for _ in range(requests):
        now += rng.expovariate(rate)
        program = (rng.choices(list(programs), weights=list(weights))[0]
                   if weights else rng.choice(list(programs)))
        tenant = rng.choice(list(tenants)) if tenants else None
        schedule.append(Arrival(at=now, program=program, tenant=tenant))
    return schedule


def trace_schedule(path: str) -> list[Arrival]:
    """Load a JSONL trace file (one :meth:`Arrival.to_dict` per line),
    sorted by arrival time so a hand-edited trace still replays as an
    arrival process."""
    schedule = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                schedule.append(Arrival.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: bad trace row: {exc}")
    schedule.sort(key=lambda a: a.at)
    return schedule


def write_trace(schedule: Iterable[Arrival], path: str) -> None:
    """Write a schedule as a JSONL trace file (the replay input)."""
    with open(path, "w", encoding="utf-8") as handle:
        for arrival in schedule:
            handle.write(json.dumps(arrival.to_dict()) + "\n")


@dataclass
class _Sample:
    """One completed (or lost) request, as measured client-side."""

    arrival: Arrival
    status: str = "lost"
    latency: float = 0.0
    late_by: float = 0.0
    node: Optional[str] = None
    value: Optional[str] = None
    cache: Optional[dict] = None
    retries: int = 0
    error: Optional[str] = None


def run_schedule(
    gateway_url: str,
    schedule: Sequence[Arrival],
    sources: dict,
    retries: int = 3,
    timeout: float = 300.0,
    time_scale: float = 1.0,
    jitter_seed: int = 0,
    log=None,
) -> list[_Sample]:
    """Fire one wave open-loop: every arrival is dispatched on its own
    thread at its scheduled instant (scaled by ``time_scale``: 0 =
    as-fast-as-possible), whether or not earlier requests have
    returned.  Returns one :class:`_Sample` per arrival, in schedule
    order — a sample whose thread died unexpectedly keeps status
    ``"lost"``, which is exactly what the no-lost-job invariant
    asserts against."""
    client = ServerClient(gateway_url, timeout=timeout, retries=retries,
                          retry_jitter_seed=jitter_seed)
    samples = [_Sample(arrival=a) for a in schedule]
    start = time.monotonic()

    def fire(index: int) -> None:
        sample = samples[index]
        arrival = sample.arrival
        due = start + arrival.at * time_scale
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        sent = time.monotonic()
        sample.late_by = round(max(0.0, sent - due), 6)
        request = make_request(sources[arrival.program],
                               tenant=arrival.tenant)
        try:
            response, trace = client.submit_ex(request)
        except ServerUnavailable as exc:
            sample.status = "unreachable"
            sample.error = str(exc)
            sample.latency = round(time.monotonic() - sent, 6)
            return
        sample.latency = round(time.monotonic() - sent, 6)
        sample.status = response.get("status", "invalid")
        sample.node = trace.node
        sample.retries = trace.retries
        sample.value = response.get("value")
        sample.cache = response.get("cache")
        if sample.status not in ("ok", "rejected"):
            err = response.get("error") or {}
            sample.error = f"{err.get('type')}: {err.get('message')}"

    threads = [threading.Thread(target=fire, args=(i,), daemon=True)
               for i in range(len(schedule))]
    for thread in threads:
        thread.start()
    done = 0
    for thread in threads:
        thread.join()
        done += 1
        if log and done % 25 == 0:
            log(f"  {done}/{len(threads)} requests complete")
    return samples


def _client_percentiles(latencies: Sequence[float]) -> dict:
    """Interpolated percentiles straight from the raw client-side
    samples (no histogram quantization)."""
    if not latencies:
        return {"p50": None, "p95": None, "p99": None}
    ordered = sorted(latencies)
    out = {}
    for q in (0.5, 0.95, 0.99):
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        out[f"p{round(q * 100)}"] = round(
            ordered[lower] + (ordered[upper] - ordered[lower]) * fraction, 6)
    return out


def build_document(
    samples: Sequence[_Sample],
    schedule_info: dict,
    fleet_info: dict,
    stats_before: Optional[dict] = None,
    stats_after: Optional[dict] = None,
    expected: Optional[dict] = None,
    slos: Optional[dict] = None,
) -> dict:
    """Fold one wave's samples (plus the fleet's before/after
    ``/v1/stats``) into a ``repro-serving-bench/v1`` document.

    ``expected`` maps program name -> expected rendered value; when
    given, every ok sample is checked against it and mismatches are
    counted as ``wrong_answers`` (the fleet must never trade
    correctness for throughput).
    """
    total = len(samples)
    by_status: dict[str, int] = {}
    wrong = 0
    ok_latencies = []
    retries = 0
    for sample in samples:
        by_status[sample.status] = by_status.get(sample.status, 0) + 1
        retries += sample.retries
        if sample.status == "ok":
            ok_latencies.append(sample.latency)
            if expected is not None:
                want = expected.get(sample.arrival.program)
                if want is not None and sample.value != want:
                    wrong += 1
    ok = by_status.get("ok", 0)
    rejected = by_status.get("rejected", 0)
    lost = total - sum(by_status.get(s, 0) for s in
                       ("ok", "rejected", "error", "limit", "timeout",
                        "crashed", "invalid"))
    errors = total - ok - rejected - lost
    span = max((s.arrival.at for s in samples), default=0.0)
    wall = max((s.arrival.at + s.latency for s in samples if s.status != "lost"),
               default=span)

    server_latency = None
    fleet_cache = None
    failovers = None
    if stats_before is not None and stats_after is not None:
        before_hist = (stats_before.get("fleet", {})
                       .get("latency_seconds", {}))
        after_hist = (stats_after.get("fleet", {})
                      .get("latency_seconds", {}))
        delta = histogram_delta(after_hist, before_hist)
        server_latency = {
            "count": delta["count"],
            "percentiles": delta["percentiles"],
        }
        cache_after = stats_after.get("fleet", {}).get("cache", {})
        cache_before = stats_before.get("fleet", {}).get("cache", {})
        fleet_cache = {
            field: cache_after.get(field, 0) - cache_before.get(field, 0)
            for field in ("lookups", "memory_hits", "disk_hits", "fleet_hits")
        }
        hits = (fleet_cache["memory_hits"] + fleet_cache["disk_hits"]
                + fleet_cache["fleet_hits"])
        fleet_cache["hit_rate"] = (round(hits / fleet_cache["lookups"], 4)
                                   if fleet_cache["lookups"] else 0.0)
        failovers = (stats_after.get("gateway", {}).get("failovers", 0)
                     - stats_before.get("gateway", {}).get("failovers", 0))

    document = {
        "schema": SCHEMA,
        "generated_by": "repro-loadgen",
        "fleet": fleet_info,
        "schedule": schedule_info,
        "results": {
            "requests": total,
            "ok": ok,
            "rejected": rejected,
            "errors": errors,
            "lost": lost,
            "wrong_answers": wrong if expected is not None else None,
            "retries": retries,
            "by_status": dict(sorted(by_status.items())),
            "throughput_rps": round(ok / wall, 4) if wall > 0 else 0.0,
            "shed_rate": round(rejected / total, 4) if total else 0.0,
            "error_rate": round(errors / total, 4) if total else 0.0,
            "lost_rate": round(lost / total, 4) if total else 0.0,
            "latency_seconds": {
                "client": _client_percentiles(ok_latencies),
                "server": server_latency,
            },
            "cache": fleet_cache,
            "failovers": failovers,
        },
        "slos": dict(slos or DEFAULT_SLOS),
    }
    document["slo_check"] = check_slos(document)
    return document


def check_slos(document: dict) -> dict:
    """Score a document against its own declared ``slos``.  Latency
    SLOs read the **server-side** percentiles (the fleet's own
    histograms — see module docstring) and fall back to client-side
    only when no server stats were captured; rate SLOs read the
    client-observed rates (the server cannot see a lost request)."""
    slos = document.get("slos", {})
    results = document.get("results", {})
    latency = results.get("latency_seconds", {})
    source = "server"
    percentiles = (latency.get("server") or {}).get("percentiles")
    if not percentiles:
        source = "client"
        percentiles = latency.get("client", {})
    violations = []
    for name, bound in sorted(slos.items()):
        if name.endswith("_seconds"):
            quantile = name[: -len("_seconds")]
            observed = (percentiles or {}).get(quantile)
            if observed is not None and observed > bound:
                violations.append(
                    f"{quantile} {observed:.3f}s exceeds SLO {bound:.3f}s "
                    f"({source}-side)")
        elif name.endswith("_rate"):
            observed = results.get(name, 0.0) or 0.0
            if observed > bound:
                violations.append(
                    f"{name} {observed:.4f} exceeds SLO {bound:.4f}")
    wrong = results.get("wrong_answers")
    if wrong:
        violations.append(f"{wrong} wrong answer(s) — correctness is an "
                          f"implicit SLO of 0")
    return {"passed": not violations, "latency_source": source,
            "violations": violations}


def validate_document(doc: object) -> list[str]:
    """Schema-check a serving-bench document; returns problems (empty =
    valid).  Same contract as :func:`repro.bench.export.validate_document`
    — CI fails on any non-empty return."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    fleet = doc.get("fleet")
    if not isinstance(fleet, dict):
        errors.append("fleet must be an object")
    else:
        nodes = fleet.get("nodes")
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            errors.append("fleet.nodes must be a positive integer")
    schedule = doc.get("schedule")
    if not isinstance(schedule, dict):
        errors.append("schedule must be an object")
    else:
        if schedule.get("kind") not in ("poisson", "trace"):
            errors.append(f"schedule.kind is {schedule.get('kind')!r}, "
                          f"expected 'poisson' or 'trace'")
        if schedule.get("kind") == "poisson" and not isinstance(
                schedule.get("seed"), int):
            errors.append("poisson schedule must record its seed")
        programs = schedule.get("programs")
        if not isinstance(programs, list) or not programs:
            errors.append("schedule.programs must be a non-empty list")
    results = doc.get("results")
    if not isinstance(results, dict):
        errors.append("results must be an object")
        results = {}
    for field in ("requests", "ok", "rejected", "errors", "lost", "retries"):
        value = results.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(f"results.{field} must be a non-negative integer")
    for field in ("throughput_rps", "shed_rate", "error_rate", "lost_rate"):
        value = results.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"results.{field} must be a number")
    latency = results.get("latency_seconds")
    if not isinstance(latency, dict) or not isinstance(
            latency.get("client"), dict):
        errors.append("results.latency_seconds.client must be an object")
    else:
        for quantile in ("p50", "p95", "p99"):
            if quantile not in latency["client"]:
                errors.append(f"results.latency_seconds.client missing "
                              f"{quantile!r}")
    slos = doc.get("slos")
    if not isinstance(slos, dict) or not slos:
        errors.append("slos must be a non-empty object")
    slo_check = doc.get("slo_check")
    if not isinstance(slo_check, dict) or "passed" not in slo_check:
        errors.append("slo_check must be an object with 'passed'")
    elif not isinstance(slo_check.get("violations"), list):
        errors.append("slo_check.violations must be a list")
    return errors


def serving_table(doc: dict) -> str:
    """The docs/README claims-table rendering of one document (embedded
    by ``scripts/docs_consistency.py`` between the serving-bench
    markers)."""
    results = doc.get("results", {})
    latency = results.get("latency_seconds", {})
    client = latency.get("client", {})
    server = (latency.get("server") or {}).get("percentiles") or {}
    cache = results.get("cache") or {}
    slo_check = doc.get("slo_check", {})

    def seconds(value) -> str:
        return "-" if value is None else f"{value * 1000:.0f} ms"

    lines = [
        "| Metric | Value |",
        "|---|---|",
        f"| Fleet | {doc.get('fleet', {}).get('nodes', '?')} nodes × "
        f"{doc.get('fleet', {}).get('workers_per_node', '?')} workers |",
        f"| Requests (ok / rejected / lost) | {results.get('requests', 0)} "
        f"({results.get('ok', 0)} / {results.get('rejected', 0)} / "
        f"{results.get('lost', 0)}) |",
        f"| Throughput | {results.get('throughput_rps', 0.0):.2f} jobs/s |",
        f"| Client latency p50 / p95 / p99 | {seconds(client.get('p50'))} / "
        f"{seconds(client.get('p95'))} / {seconds(client.get('p99'))} |",
        f"| Server latency p50 / p95 / p99 | {seconds(server.get('p50'))} / "
        f"{seconds(server.get('p95'))} / {seconds(server.get('p99'))} |",
        f"| Cache hit rate (mem/disk/fleet) | "
        f"{cache.get('hit_rate', 0.0):.0%} "
        f"({cache.get('memory_hits', 0)}/{cache.get('disk_hits', 0)}/"
        f"{cache.get('fleet_hits', 0)}) |",
        f"| SLO gate | {'PASS' if slo_check.get('passed') else 'FAIL'} |",
    ]
    return "\n".join(lines)


def _parse_slos(pairs: Sequence[str]) -> dict:
    slos = dict(DEFAULT_SLOS)
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise ValueError(f"--slo wants NAME=VALUE, got {pair!r}")
        if not (name.endswith("_seconds") or name.endswith("_rate")):
            raise ValueError(f"unknown SLO {name!r} (want *_seconds or *_rate)")
        slos[name] = float(value)
    return slos


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Open-loop load replay against a repro fleet: seeded "
        "Poisson or trace-file arrival schedules over the Figure 9 corpus, "
        "scored against declared SLOs using the fleet's own /v1/stats "
        "histograms, exported as a repro-serving-bench/v1 document.",
    )
    parser.add_argument("--gateway", metavar="URL",
                        help="existing repro-gateway to drive")
    parser.add_argument("--fleet", type=int, metavar="N",
                        help="boot an ephemeral N-node LocalFleet instead "
                             "of targeting --gateway")
    parser.add_argument("--workers-per-node", type=int, default=2)
    parser.add_argument("--rate", type=float, default=4.0,
                        help="mean arrival rate, requests/second "
                             "(default 4.0)")
    parser.add_argument("--requests", type=int, default=50,
                        help="schedule length (default 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="Poisson schedule seed (default 0)")
    parser.add_argument("--programs", default=None, metavar="A,B,...",
                        help="corpus subset (default: all 23 Figure 9 "
                             "programs)")
    parser.add_argument("--tenants", default=None, metavar="A,B,...",
                        help="tenant names to spread arrivals across")
    parser.add_argument("--trace-file", metavar="FILE",
                        help="replay this JSONL trace instead of generating "
                             "a Poisson schedule")
    parser.add_argument("--record-trace", metavar="FILE",
                        help="write the generated schedule as a JSONL trace "
                             "(for later --trace-file replay)")
    parser.add_argument("--time-scale", type=float, default=1.0,
                        help="multiply every arrival time (0 = fire "
                             "as fast as possible; default 1.0)")
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--slo", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="override an SLO, e.g. p95_seconds=2.5 or "
                             "error_rate=0 (repeatable)")
    parser.add_argument("--out", metavar="FILE",
                        help="write the bench document here (default "
                             "stdout)")
    parser.add_argument("--validate", metavar="FILE",
                        help="schema-check an existing document and exit "
                             "(no load is generated)")
    parser.add_argument("--table", metavar="FILE",
                        help="print the docs table for an existing document "
                             "and exit")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    def log(msg: str) -> None:
        if not args.quiet:
            print(msg, file=sys.stderr, flush=True)

    if args.validate:
        with open(args.validate, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        problems = validate_document(doc)
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.validate}: valid {SCHEMA} "
                  f"({doc['results']['requests']} requests, SLO "
                  f"{'PASS' if doc['slo_check']['passed'] else 'FAIL'})")
        return 1 if problems else 0

    if args.table:
        with open(args.table, "r", encoding="utf-8") as handle:
            print(serving_table(json.load(handle)))
        return 0

    if bool(args.gateway) == bool(args.fleet):
        print("error: exactly one of --gateway or --fleet is required",
              file=sys.stderr)
        return 2

    from ..bench.registry import BENCHMARKS, benchmark_source

    if args.programs:
        names = [n for n in args.programs.split(",") if n]
        unknown = sorted(set(names) - set(BENCHMARKS))
        if unknown:
            print(f"error: unknown programs {unknown}", file=sys.stderr)
            return 2
    else:
        names = sorted(BENCHMARKS)
    sources = {name: benchmark_source(name) for name in names}
    expected = {name: BENCHMARKS[name].expected for name in names
                if not BENCHMARKS[name].expected.startswith("~")}
    tenants = ([t for t in args.tenants.split(",") if t]
               if args.tenants else None)

    if args.trace_file:
        schedule = trace_schedule(args.trace_file)
        missing = sorted({a.program for a in schedule} - set(sources))
        if missing:
            print(f"error: trace references unknown programs {missing}",
                  file=sys.stderr)
            return 2
        schedule_info = {"kind": "trace", "file": args.trace_file,
                         "requests": len(schedule),
                         "programs": sorted({a.program for a in schedule})}
    else:
        schedule = poisson_schedule(names, rate=args.rate,
                                    requests=args.requests, seed=args.seed,
                                    tenants=tenants)
        schedule_info = {"kind": "poisson", "rate": args.rate,
                         "seed": args.seed, "requests": len(schedule),
                         "programs": names}
        if tenants:
            schedule_info["tenants"] = tenants
    if args.record_trace:
        write_trace(schedule, args.record_trace)
        log(f"recorded {len(schedule)}-arrival trace to {args.record_trace}")

    try:
        slos = _parse_slos(args.slo)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    fleet = None
    try:
        if args.fleet:
            from .fleet import LocalFleet

            log(f"booting {args.fleet}-node local fleet "
                f"({args.workers_per_node} workers/node)...")
            fleet = LocalFleet(nodes=args.fleet,
                               workers_per_node=args.workers_per_node)
            gateway_url = fleet.start()
            fleet_info = {"nodes": args.fleet,
                          "workers_per_node": args.workers_per_node,
                          "gateway": "local"}
        else:
            gateway_url = args.gateway
            fleet_info = {"nodes": 1, "workers_per_node": 0,
                          "gateway": gateway_url}
            try:
                stats = ServerClient(gateway_url).stats()
                ring = stats.get("gateway", {}).get("ring", {})
                if ring.get("nodes"):
                    fleet_info["nodes"] = len(ring["nodes"])
                    fleet_info["workers_per_node"] = None
            except ServerUnavailable:
                pass

        client = ServerClient(gateway_url, timeout=args.timeout)
        client.wait_ready(timeout=60)
        stats_before = client.stats()
        log(f"replaying {len(schedule)} arrivals over "
            f"{len(schedule_info['programs'])} programs at {gateway_url}...")
        started = time.monotonic()
        samples = run_schedule(gateway_url, schedule, sources,
                               retries=args.retries, timeout=args.timeout,
                               time_scale=args.time_scale,
                               jitter_seed=args.seed, log=log)
        wall = time.monotonic() - started
        stats_after = client.stats()
        document = build_document(samples, schedule_info, fleet_info,
                                  stats_before=stats_before,
                                  stats_after=stats_after,
                                  expected=expected, slos=slos)
        document["wall_seconds"] = round(wall, 3)
    finally:
        if fleet is not None:
            fleet.close()

    rendered = json.dumps(document, indent=2, sort_keys=False) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        log(f"wrote {args.out}")
    else:
        print(rendered, end="")

    check = document["slo_check"]
    results = document["results"]
    log(f"{results['ok']}/{results['requests']} ok, "
        f"{results['rejected']} rejected, {results['lost']} lost, "
        f"throughput {results['throughput_rps']:.2f}/s, "
        f"SLO {'PASS' if check['passed'] else 'FAIL'}")
    for violation in check["violations"]:
        log(f"  SLO violation: {violation}")
    return 0 if check["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

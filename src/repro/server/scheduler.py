"""Admission control: a bounded FIFO in front of the worker pool.

A resident service under heavy traffic must fail *fast and honestly*
when it is saturated: unbounded queueing turns overload into unbounded
latency for everyone.  The :class:`Scheduler` therefore admits at most
``capacity`` in-flight jobs (queued + running); a submission past that
is rejected immediately with a ``retry_after`` hint derived from the
observed service time (an EWMA over recent jobs), so well-behaved
clients back off for roughly as long as the backlog needs to drain.

Layered on the capacity bound:

* **Per-tenant token buckets** (:meth:`Scheduler.configure_quota`): each
  tenant refills at ``rate`` jobs/second up to a ``burst`` ceiling, so
  one chatty client cannot monopolize the fleet; a tenant out of tokens
  is rejected with the exact time until its next token.
* **Graceful drain** (:meth:`Scheduler.drain`): new admissions are
  rejected with ``Retry-After`` while in-flight jobs run to completion —
  the front half of a zero-loss rolling restart.
* **Forced rejections** (:meth:`Scheduler.set_chaos_rejections`): the
  chaos harness marks admission sequence numbers that must be shed, so
  client retry/backoff is exercised deterministically.

The scheduler owns no threads of its own — the pool's per-worker
managers drain the FIFO; the scheduler only does the bookkeeping
(admitted / started / finished) that the admission decision and the
``queue_depth`` fleet gauge need.  Every counter, the EWMA, and every
token bucket live behind one lock: concurrent completions fold into the
EWMA atomically, and ``retry_after`` is always computed from one
consistent snapshot (it is clamped non-negative and finite by
construction).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Collection, Optional, Union

from .pool import JobHandle, JobResult, WorkerPool

__all__ = ["Rejection", "Scheduler", "TokenBucket"]

#: EWMA inputs are clamped into this range: a NaN/negative wall time
#: must never poison the drain-rate estimate, and one pathological
#: hour-long job must not make ``retry_after`` absurd forever.
_EWMA_FLOOR = 1e-4
_EWMA_CEIL = 3600.0


@dataclass(frozen=True)
class Rejection:
    """A submission refused by admission control.  ``reason`` is one of
    ``capacity`` (queue full), ``quota`` (tenant out of tokens),
    ``draining`` (graceful drain in progress), or ``chaos`` (forced by
    the fault-injection harness)."""

    retry_after: float
    depth: int
    capacity: int
    reason: str = "capacity"


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, up to ``burst``
    capacity, one token per admission.  Not thread-safe on its own — the
    scheduler serializes access under its lock."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("TokenBucket needs rate > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = now

    def take(self, now: float) -> float:
        """Take one token.  Returns ``0.0`` when granted, else the
        seconds until one token will be available."""
        if now > self.last:
            self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
            self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class Scheduler:
    """Bounded admission in front of a :class:`~repro.server.pool.WorkerPool`.

    ``capacity`` bounds *in-flight* jobs: queued plus executing.  The
    ``retry_after`` estimate assumes the backlog drains at
    ``workers / ewma_service_seconds`` jobs per second.
    """

    def __init__(self, pool: WorkerPool, capacity: int,
                 initial_service_seconds: float = 0.5) -> None:
        if capacity < 1:
            raise ValueError("Scheduler capacity must be >= 1")
        self.pool = pool
        self.capacity = capacity
        self._lock = threading.Lock()
        self._in_flight = 0
        self._queued = 0
        self._ewma = initial_service_seconds
        self._draining = False
        self._quota_rate: Optional[float] = None
        self._quota_burst: float = 1.0
        self._buckets: dict[str, TokenBucket] = {}
        self._admission_seq = 0
        self._chaos_reject: frozenset[int] = frozenset()
        self.admitted = 0
        self.rejected = 0
        self.quota_rejected = 0
        self.drain_rejected = 0
        self.forced_rejections = 0
        self.drains = 0

    # -- configuration -------------------------------------------------------

    def configure_quota(self, rate: Optional[float], burst: float = 8.0) -> None:
        """Enable (or with ``rate=None`` disable) per-tenant token-bucket
        quotas: each tenant gets ``rate`` admissions/second with bursts
        up to ``burst``.  Existing buckets are reset."""
        with self._lock:
            self._quota_rate = rate
            self._quota_burst = burst
            self._buckets.clear()

    def set_chaos_rejections(self, indices: Collection[int]) -> None:
        """Force the admissions at these sequence numbers (0-based,
        counted across every ``submit`` call) to be shed.  Chaos/test
        machinery only."""
        with self._lock:
            self._chaos_reject = frozenset(indices)

    # -- drain / resume ------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting (rejections carry ``reason="draining"``) and
        block until every in-flight job has finished, or ``timeout``
        seconds elapsed.  Returns ``True`` when fully drained.  Admission
        stays closed either way until :meth:`resume`."""
        with self._lock:
            if not self._draining:
                self._draining = True
                self.drains += 1
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if self._in_flight == 0:
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    def resume(self) -> None:
        """Reopen admission after a drain."""
        with self._lock:
            self._draining = False

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- submission ----------------------------------------------------------

    def submit(self, payload: Any, timeout: Optional[float] = None,
               tenant: Optional[str] = None) -> Union[JobHandle, Rejection]:
        """Admit-or-reject.  Admitted jobs return the pool handle; the
        caller blocks on ``handle.result()`` (one serving thread per
        in-flight request, which the admission bound keeps finite)."""
        with self._lock:
            seq = self._admission_seq
            self._admission_seq += 1
            if seq in self._chaos_reject:
                self.rejected += 1
                self.forced_rejections += 1
                return Rejection(self._retry_after_locked(), self._in_flight,
                                 self.capacity, reason="chaos")
            if self._draining:
                self.rejected += 1
                self.drain_rejected += 1
                # The drain hint: however long the current backlog needs,
                # plus a beat for the restart itself.
                return Rejection(max(1.0, self._retry_after_locked()),
                                 self._in_flight, self.capacity,
                                 reason="draining")
            if self._quota_rate is not None:
                bucket = self._buckets.get(tenant or "")
                if bucket is None:
                    bucket = TokenBucket(self._quota_rate, self._quota_burst,
                                         time.monotonic())
                    self._buckets[tenant or ""] = bucket
                wait = bucket.take(time.monotonic())
                if wait > 0.0:
                    self.rejected += 1
                    self.quota_rejected += 1
                    return Rejection(round(wait, 3), self._in_flight,
                                     self.capacity, reason="quota")
            if self._in_flight >= self.capacity:
                self.rejected += 1
                return Rejection(self._retry_after_locked(), self._in_flight,
                                 self.capacity)
            self._in_flight += 1
            self._queued += 1
            self.admitted += 1
        try:
            return self.pool.submit(payload, timeout=timeout, on_start=self._on_start)
        except Exception:
            with self._lock:
                self._in_flight -= 1
                self._queued -= 1
            raise

    def finish(self, result: JobResult, wall_seconds: float) -> None:
        """Caller-side bookkeeping once a job's result is in hand.  The
        EWMA read-modify-write happens under the lock (concurrent
        completions must not lose updates) and the sample is clamped so
        a bogus wall time (negative clock step, NaN) cannot drive
        ``retry_after`` negative or unbounded."""
        if not (wall_seconds >= 0.0) or math.isinf(wall_seconds):  # NaN-safe
            wall_seconds = 0.0
        sample = min(max(wall_seconds, _EWMA_FLOOR), _EWMA_CEIL)
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            # Jobs killed by the watchdog would skew the estimate of a
            # *successful* drain; still fold them in at their actual cost.
            self._ewma = max(_EWMA_FLOOR, 0.8 * self._ewma + 0.2 * sample)

    def _on_start(self) -> None:
        with self._lock:
            self._queued = max(0, self._queued - 1)

    # -- introspection -------------------------------------------------------

    def _retry_after_locked(self) -> float:
        drain_rate = self.pool.size / max(self._ewma, _EWMA_FLOOR)
        backlog = max(self._in_flight - self.pool.size, 1)
        hint = max(0.1, backlog / drain_rate)
        # Invariant the chaos harness leans on: the hint is always a
        # positive finite number — a client can always schedule a retry.
        assert hint > 0.0 and math.isfinite(hint), hint
        return hint

    @property
    def queue_depth(self) -> int:
        """Admitted jobs not yet picked up by a worker."""
        with self._lock:
            return self._queued

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "in_flight": self._in_flight,
                "queue_depth": self._queued,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "quota_rejected": self.quota_rejected,
                "drain_rejected": self.drain_rejected,
                "forced_rejections": self.forced_rejections,
                "drains": self.drains,
                "draining": self._draining,
                "tenants": len(self._buckets),
                "ewma_service_seconds": round(self._ewma, 4),
            }

"""Admission control: a bounded FIFO in front of the worker pool.

A resident service under heavy traffic must fail *fast and honestly*
when it is saturated: unbounded queueing turns overload into unbounded
latency for everyone.  The :class:`Scheduler` therefore admits at most
``capacity`` in-flight jobs (queued + running); a submission past that
is rejected immediately with a ``retry_after`` hint derived from the
observed service time (an EWMA over recent jobs), so well-behaved
clients back off for roughly as long as the backlog needs to drain.

The scheduler owns no threads of its own — the pool's per-worker
managers drain the FIFO; the scheduler only does the bookkeeping
(admitted / started / finished) that the admission decision and the
``queue_depth`` fleet gauge need.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional, Union

from .pool import JobHandle, JobResult, WorkerPool

__all__ = ["Rejection", "Scheduler"]


@dataclass(frozen=True)
class Rejection:
    """A submission refused by admission control."""

    retry_after: float
    depth: int
    capacity: int


class Scheduler:
    """Bounded admission in front of a :class:`~repro.server.pool.WorkerPool`.

    ``capacity`` bounds *in-flight* jobs: queued plus executing.  The
    ``retry_after`` estimate assumes the backlog drains at
    ``workers / ewma_service_seconds`` jobs per second.
    """

    def __init__(self, pool: WorkerPool, capacity: int,
                 initial_service_seconds: float = 0.5) -> None:
        if capacity < 1:
            raise ValueError("Scheduler capacity must be >= 1")
        self.pool = pool
        self.capacity = capacity
        self._lock = threading.Lock()
        self._in_flight = 0
        self._queued = 0
        self._ewma = initial_service_seconds
        self.admitted = 0
        self.rejected = 0

    # -- submission ----------------------------------------------------------

    def submit(self, payload: Any,
               timeout: Optional[float] = None) -> Union[JobHandle, Rejection]:
        """Admit-or-reject.  Admitted jobs return the pool handle; the
        caller blocks on ``handle.result()`` (one serving thread per
        in-flight request, which the admission bound keeps finite)."""
        with self._lock:
            if self._in_flight >= self.capacity:
                self.rejected += 1
                return Rejection(self._retry_after_locked(), self._in_flight, self.capacity)
            self._in_flight += 1
            self._queued += 1
            self.admitted += 1
        try:
            return self.pool.submit(payload, timeout=timeout, on_start=self._on_start)
        except Exception:
            with self._lock:
                self._in_flight -= 1
                self._queued -= 1
            raise

    def finish(self, result: JobResult, wall_seconds: float) -> None:
        """Caller-side bookkeeping once a job's result is in hand."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            # Jobs killed by the watchdog would skew the estimate of a
            # *successful* drain; still fold them in at their actual cost.
            self._ewma = 0.8 * self._ewma + 0.2 * max(wall_seconds, 1e-4)

    def _on_start(self) -> None:
        with self._lock:
            self._queued = max(0, self._queued - 1)

    # -- introspection -------------------------------------------------------

    def _retry_after_locked(self) -> float:
        drain_rate = self.pool.size / max(self._ewma, 1e-4)
        backlog = max(self._in_flight - self.pool.size, 1)
        return max(0.1, backlog / drain_rate)

    @property
    def queue_depth(self) -> int:
        """Admitted jobs not yet picked up by a worker."""
        with self._lock:
            return self._queued

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "in_flight": self._in_flight,
                "queue_depth": self._queued,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "ewma_service_seconds": round(self._ewma, 4),
            }

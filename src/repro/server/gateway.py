"""The asyncio HTTP gateway: one front door for a fleet of nodes.

``repro-serve`` handles concurrency with one thread per in-flight
request, bounded by admission control — right for one node, wrong for a
fleet front door that must multiplex *thousands* of in-flight requests
over N nodes: a thread each would be the bottleneck the fleet exists to
remove.  The gateway is therefore a single-threaded asyncio proxy: each
connection is a coroutine awaiting its backend, so in-flight count is
bounded by memory and the nodes' own admission control, not by threads.

Routing is consistent-hash by compile-cache key
(:func:`repro.server.fleet.route_key`): repeat submissions of one
program always land on the same node, whose worker LRUs and disk cache
are hot for exactly that program.  Per-node health is tracked two ways
— an active poll of ``GET /v1/health`` every ``health_interval`` (also
how draining nodes are noticed and excluded), and passively: a forward
that fails at the transport level marks the node dead *immediately* and
the request fails over to the next node in the key's deterministic ring
preference order.  Failover is safe for the same reason client retries
are (PR 6): a compile-and-run job is a pure function of the request, so
re-sending one whose node died mid-execution cannot change any answer —
and it is bounded (``failover_retries``) so a sick fleet degrades to
fast 503s, never to a retry storm.  When every candidate is exhausted
the gateway answers with the wire rejection ``reason="unreachable"``
(HTTP 503 + ``Retry-After``), which :class:`~repro.server.client.ServerClient`
already knows to back off and retry.

Endpoints:

* ``POST /v1/run``    — route by key, forward, failover; the response
  gains a ``node`` field and an ``X-Repro-Node`` header saying which
  node answered.
* ``GET /v1/stats``   — gateway routing/failover counters, per-node
  state, and a **fleet roll-up**: every node's ``/v1/stats`` fetched
  live and merged (job counters summed, per-layer cache hits summed,
  latency/heap histograms bucket-merged with p50/p95/p99 re-derived).
* ``GET /v1/health``  — 200 while at least one node is routable.
* ``GET /v1/healthz`` — bare gateway liveness.
* ``POST /v1/admin/join``/``leave`` — ring membership
  (``{"node": "http://host:port"}``), for rolling a new node in.

The gateway never parses MiniML and never unpickles anything — it
hashes, routes, and copies bytes.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
import urllib.parse
from dataclasses import dataclass
from typing import Optional, Tuple

from .fleet import DEFAULT_VNODES, HashRing, NodeState, route_key
from .metrics import merge_histogram_snapshots
from .protocol import PROTOCOL, invalid_response, rejection_response

__all__ = ["GatewayConfig", "Gateway", "main"]

#: Cap on request bodies the gateway will buffer (16 MiB — far above
#: any real program, small enough that a hostile client cannot balloon
#: the proxy).
MAX_BODY_BYTES = 16 << 20


@dataclass(frozen=True)
class GatewayConfig:
    """Everything ``repro-gateway`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8750
    #: Backend node base URLs (``http://host:port``).
    nodes: tuple = ()
    #: Virtual nodes per physical node on the ring.
    vnodes: int = DEFAULT_VNODES
    #: Additional nodes tried after the key's owner fails (transport
    #: error or draining): bounded failover, ``0`` disables.
    failover_retries: int = 2
    #: Seconds between active health polls of each node.
    health_interval: float = 1.0
    #: Transport timeout for one forwarded request (covers the node's
    #: own queueing + execution; the node watchdog fires first).
    forward_timeout: float = 300.0
    #: Transport timeout for health/stats polls.
    probe_timeout: float = 5.0


class Gateway:
    """The assembled gateway: ring + node table + asyncio HTTP."""

    def __init__(self, config: GatewayConfig = GatewayConfig()) -> None:
        self.config = config
        self.ring = HashRing(vnodes=config.vnodes)
        self.nodes: dict[str, NodeState] = {}
        for url in config.nodes:
            self._add_node(url)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop: Optional[asyncio.Event] = None
        self._addr: Optional[Tuple[str, int]] = None
        self._started = time.monotonic()
        # Counters (single event-loop thread: no lock needed).
        self.requests = 0
        self.routed = 0
        self.failovers = 0
        self.unreachable = 0
        self.invalid = 0

    # -- membership ----------------------------------------------------------

    def _node_name(self, url: str) -> str:
        parts = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        return parts.netloc or url

    def _add_node(self, url: str) -> NodeState:
        if not url.startswith("http"):
            url = f"http://{url}"
        name = self._node_name(url)
        if name in self.nodes:
            return self.nodes[name]
        state = NodeState(name=name, url=url.rstrip("/"))
        self.nodes[name] = state
        self.ring.add(name)
        return state

    def _remove_node(self, url_or_name: str) -> bool:
        name = self._node_name(url_or_name)
        if name not in self.nodes:
            return False
        del self.nodes[name]
        self.ring.remove(name)
        return True

    def join(self, url: str) -> None:
        """Thread-safe membership add (used by tests/ops tooling in the
        same process; remote operators use ``POST /v1/admin/join``)."""
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self._join_async(url), self._loop).result(timeout=10)
        else:
            self._add_node(url)

    async def _join_async(self, url: str) -> None:
        self._add_node(url)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a background event-loop thread; returns the
        bound address (useful with ``port=0``)."""
        started = threading.Event()
        failure: list[BaseException] = []
        self._thread = threading.Thread(
            target=self._run, args=(started, failure), daemon=True,
            name="repro-gateway",
        )
        self._thread.start()
        if not started.wait(timeout=30) or failure:
            raise RuntimeError(
                f"gateway failed to start: {failure[0] if failure else 'timeout'}")
        assert self._addr is not None
        return self._addr

    def _run(self, started: threading.Event, failure: list) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve(started))
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            failure.append(exc)
            started.set()
        finally:
            self._loop.close()

    async def _serve(self, started: threading.Event) -> None:
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sock = server.sockets[0].getsockname()
        self._addr = (sock[0], sock[1])
        health = asyncio.create_task(self._health_loop())
        started.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            health.cancel()

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- backend transport ---------------------------------------------------

    async def _backend_request(
        self, url: str, method: str, path: str,
        body: Optional[bytes] = None, headers: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, dict, bytes]:
        """One HTTP exchange with a node over a fresh connection.
        Raises ``OSError``/``asyncio.TimeoutError`` on transport
        failure — the failover triggers."""
        parts = urllib.parse.urlsplit(url)
        host, port = parts.hostname, parts.port or 80
        timeout = timeout or self.config.forward_timeout
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=self.config.probe_timeout)
        try:
            lines = [f"{method} {path} HTTP/1.1",
                     f"Host: {parts.netloc}",
                     "Connection: close"]
            for key, value in (headers or {}).items():
                lines.append(f"{key}: {value}")
            if body is not None:
                lines.append("Content-Type: application/json")
                lines.append(f"Content-Length: {len(body)}")
            request = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
            writer.write(request + (body or b""))
            await writer.drain()

            status_line = await asyncio.wait_for(
                reader.readline(), timeout=timeout)
            try:
                status = int(status_line.split()[1])
            except (IndexError, ValueError):
                raise OSError(f"malformed status line from {url}: "
                              f"{status_line[:80]!r}")
            resp_headers: dict = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=timeout)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                resp_headers[name.strip().lower()] = value.strip()
            length = resp_headers.get("content-length")
            if length is not None:
                payload = await asyncio.wait_for(
                    reader.readexactly(int(length)), timeout=timeout)
            else:  # Connection: close framing
                payload = await asyncio.wait_for(reader.read(), timeout=timeout)
            return status, resp_headers, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    # -- health --------------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._probe(state) for state in list(self.nodes.values())),
                return_exceptions=True)
            await asyncio.sleep(self.config.health_interval)

    async def _probe(self, state: NodeState) -> None:
        try:
            status, _, payload = await self._backend_request(
                state.url, "GET", "/v1/health",
                timeout=self.config.probe_timeout)
            draining = False
            if status == 503:
                try:
                    draining = bool(json.loads(payload).get("draining"))
                except ValueError:
                    draining = False
                if not draining:
                    state.mark_failed(f"health answered HTTP {status}")
                    return
            state.mark_ok(draining=draining)
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
            state.mark_failed(str(exc) or type(exc).__name__)

    # -- request handling ----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, path, _ = request_line.decode("ascii").split(None, 2)
            except ValueError:
                await self._send_json(writer, 400,
                                      {"error": "malformed request line"})
                return
            headers: dict = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = headers.get("content-length")
            if length is not None:
                n = int(length)
                if n > MAX_BODY_BYTES:
                    await self._send_json(
                        writer, 413, {"error": "request body too large"})
                    return
                body = await reader.readexactly(n)
            await self._dispatch(writer, method, path, headers, body)
        except (OSError, asyncio.IncompleteReadError, ValueError):
            pass  # client went away or spoke garbage; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _dispatch(self, writer, method: str, path: str,
                        headers: dict, body: bytes) -> None:
        if method == "POST" and path == "/v1/run":
            await self._handle_run(writer, headers, body)
        elif method == "GET" and path == "/v1/stats":
            await self._send_json(writer, 200, await self.stats_snapshot())
        elif method == "GET" and path == "/v1/health":
            status, payload = self.health_snapshot()
            await self._send_json(writer, status, payload)
        elif method == "GET" and path == "/v1/healthz":
            await self._send_json(writer, 200, {"ok": True, "schema": PROTOCOL,
                                                "gateway": True})
        elif method == "POST" and path in ("/v1/admin/join", "/v1/admin/leave"):
            await self._handle_membership(writer, path.rsplit("/", 1)[1], body)
        else:
            await self._send_json(writer, 404,
                                  {"error": f"no such endpoint {path!r}"})

    async def _handle_run(self, writer, headers: dict, body: bytes) -> None:
        self.requests += 1
        try:
            request = json.loads(body or b"null")
        except ValueError as exc:
            self.invalid += 1
            await self._send_json(writer, 400,
                                  invalid_response(f"bad request body: {exc}"))
            return
        key = route_key(request)
        forward_headers = {}
        if "x-repro-attempt" in headers:
            forward_headers["X-Repro-Attempt"] = headers["x-repro-attempt"]

        candidates = self._candidates(key)
        last_rejection: Optional[Tuple[int, dict]] = None
        for index, name in enumerate(candidates):
            state = self.nodes.get(name)
            if state is None:  # pragma: no cover - raced a leave
                continue
            try:
                status, _, payload = await self._backend_request(
                    state.url, "POST", "/v1/run", body, forward_headers)
            except (OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as exc:
                # Transport death: node is gone (or died mid-job — safe
                # to re-run elsewhere: the job is a pure function of the
                # request).  Mark it sick now; the health loop revives it.
                state.mark_failed(str(exc) or type(exc).__name__)
                state.failed += 1
                self.failovers += 1
                continue
            try:
                response = json.loads(payload)
            except ValueError:
                state.mark_failed("non-JSON response")
                state.failed += 1
                self.failovers += 1
                continue
            if status == 503 and isinstance(response, dict):
                reason = (response.get("error") or {}).get("type")
                if reason == "Draining":
                    # The poll just hasn't caught it yet: exclude and
                    # fail over — a drain must not bounce fleet traffic.
                    state.mark_ok(draining=True)
                    self.failovers += 1
                    last_rejection = (status, response)
                    continue
                # Capacity/quota backpressure is an *answer*: the
                # client must slow down, not the gateway hammer the
                # next node with load the fleet already refused.
                last_rejection = (status, response)
                break
            if isinstance(response, dict):
                response["node"] = state.name
            state.routed += 1
            if index > 0:
                state.failovers_absorbed += 1
            self.routed += 1
            await self._send_json(writer, status, response,
                                  {"X-Repro-Node": state.name})
            return

        if last_rejection is not None:
            status, response = last_rejection
            retry_after = response.get("retry_after", 1) if isinstance(
                response, dict) else 1
            await self._send_json(writer, status, response,
                                  {"Retry-After": str(retry_after)})
            return
        self.unreachable += 1
        response = rejection_response(1.0, 0, max(len(self.nodes), 1),
                                      reason="unreachable")
        await self._send_json(writer, 503, response, {"Retry-After": "1"})

    def _candidates(self, key: str) -> list[str]:
        """The bounded failover slate for one request: the key's ring
        preference order, routable nodes first, capped at
        ``1 + failover_retries`` attempts.  When *no* node is routable
        the full preference order is used anyway — passive discovery
        must get a chance to notice a recovery before we 503."""
        preference = self.ring.preference(key)
        routable = [n for n in preference
                    if n in self.nodes and self.nodes[n].routable]
        slate = routable or [n for n in preference if n in self.nodes]
        return slate[: 1 + max(0, self.config.failover_retries)]

    async def _handle_membership(self, writer, op: str, body: bytes) -> None:
        try:
            payload = json.loads(body or b"null")
        except ValueError:
            payload = None
        node = payload.get("node") if isinstance(payload, dict) else None
        if not isinstance(node, str) or not node:
            await self._send_json(
                writer, 400, {"ok": False, "op": op,
                              "error": "body must be {\"node\": \"http://host:port\"}"})
            return
        if op == "join":
            state = self._add_node(node)
            await self._probe(state)
            result = {"ok": True, "op": "join", "node": state.name,
                      "healthy": state.healthy}
        else:
            removed = self._remove_node(node)
            result = {"ok": removed, "op": "leave",
                      "node": self._node_name(node)}
        await self._send_json(writer, 200, result)

    # -- snapshots -----------------------------------------------------------

    def health_snapshot(self) -> Tuple[int, dict]:
        routable = [s.name for s in self.nodes.values() if s.routable]
        body = {
            "schema": PROTOCOL,
            "ok": bool(routable),
            "live": True,
            "ready": bool(routable),
            "gateway": True,
            "nodes": {name: state.snapshot()
                      for name, state in sorted(self.nodes.items())},
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }
        return (200 if routable else 503), body

    async def stats_snapshot(self) -> dict:
        """Gateway counters + per-node state + the live fleet roll-up of
        every reachable node's ``/v1/stats``."""
        node_stats = await asyncio.gather(
            *(self._fetch_stats(state) for state in list(self.nodes.values())),
            return_exceptions=True)
        reachable = [s for s in node_stats if isinstance(s, dict)]
        return {
            "schema": PROTOCOL,
            "gateway": {
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "requests": self.requests,
                "routed": self.routed,
                "failovers": self.failovers,
                "unreachable": self.unreachable,
                "invalid": self.invalid,
                "ring": {"nodes": list(self.ring.nodes()),
                         "vnodes": self.ring.vnodes},
            },
            "nodes": {name: state.snapshot()
                      for name, state in sorted(self.nodes.items())},
            "fleet": self._merge_node_stats(reachable),
        }

    async def _fetch_stats(self, state: NodeState) -> Optional[dict]:
        try:
            status, _, payload = await self._backend_request(
                state.url, "GET", "/v1/stats",
                timeout=self.config.probe_timeout)
            if status != 200:
                return None
            doc = json.loads(payload)
            return doc if isinstance(doc, dict) else None
        except (OSError, asyncio.TimeoutError, ValueError,
                asyncio.IncompleteReadError):
            return None

    @staticmethod
    def _merge_node_stats(node_stats: list) -> dict:
        """Fold N node ``/v1/stats`` documents into fleet aggregates:
        counters sum, histograms bucket-merge (identical boundaries by
        construction), percentiles re-derive from the merged buckets."""
        jobs: dict[str, int] = {}
        cache = {"lookups": 0, "memory_hits": 0, "disk_hits": 0,
                 "fleet_hits": 0}
        resilience: dict[str, int] = {}
        latency = []
        heap = []
        for doc in node_stats:
            metrics = doc.get("metrics", {})
            for status, count in metrics.get("jobs", {}).items():
                jobs[status] = jobs.get(status, 0) + count
            for field in cache:
                cache[field] += metrics.get("cache", {}).get(field, 0)
            for field, count in metrics.get("resilience", {}).items():
                if isinstance(count, (int, float)):
                    resilience[field] = resilience.get(field, 0) + count
            if "latency_seconds" in metrics:
                latency.append(metrics["latency_seconds"])
            if "peak_words" in metrics:
                heap.append(metrics["peak_words"])
        hits = (cache["memory_hits"] + cache["disk_hits"]
                + cache["fleet_hits"])
        cache["hit_rate"] = (round(hits / cache["lookups"], 4)
                             if cache["lookups"] else 0.0)
        return {
            "nodes_reporting": len(node_stats),
            "jobs": dict(sorted(jobs.items())),
            "cache": cache,
            "resilience": dict(sorted(resilience.items())),
            "latency_seconds": merge_histogram_snapshots(latency),
            "peak_words": merge_histogram_snapshots(heap),
        }

    # -- plumbing ------------------------------------------------------------

    @staticmethod
    async def _send_json(writer, status: int, payload: dict,
                         extra_headers: Optional[dict] = None) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large",
                  503: "Service Unavailable"}.get(status, "OK")
        body = json.dumps(payload).encode("utf-8")
        lines = [f"HTTP/1.1 {status} {reason}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for key, value in (extra_headers or {}).items():
            lines.append(f"{key}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
        await writer.drain()


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-gateway",
        description="Fleet front door: route repro-server/v1 requests over "
        "N repro-serve nodes by consistent hash of the compile-cache key, "
        "with health tracking and bounded failover (see docs/serving.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8750,
                        help="TCP port (0 = pick a free one; default 8750)")
    parser.add_argument("--node", action="append", default=[], metavar="URL",
                        help="backend node base URL (repeat per node, or "
                             "comma-separate)")
    parser.add_argument("--failover-retries", type=int, default=2, metavar="N",
                        help="extra nodes tried after the key's owner fails "
                             "(default 2; 0 disables failover)")
    parser.add_argument("--health-interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="active health-poll period (default 1.0)")
    parser.add_argument("--forward-timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="transport timeout per forwarded request "
                             "(default 300)")
    parser.add_argument("--vnodes", type=int, default=DEFAULT_VNODES,
                        help=f"virtual nodes per node on the ring "
                             f"(default {DEFAULT_VNODES})")
    args = parser.parse_args(argv)

    nodes = tuple(
        url.strip()
        for chunk in args.node for url in chunk.split(",") if url.strip())
    if not nodes:
        print("error: at least one --node URL is required", file=sys.stderr)
        return 2

    gateway = Gateway(GatewayConfig(
        host=args.host,
        port=args.port,
        nodes=nodes,
        vnodes=args.vnodes,
        failover_retries=args.failover_retries,
        health_interval=args.health_interval,
        forward_timeout=args.forward_timeout,
    ))
    host, port = gateway.start()
    print(f"repro-gateway: listening on http://{host}:{port} "
          f"({len(nodes)} nodes, {args.vnodes} vnodes, "
          f"failover {args.failover_retries})",
          file=sys.stderr, flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("repro-gateway: shutting down", file=sys.stderr)
    finally:
        gateway.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

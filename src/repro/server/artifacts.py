"""The fleet-wide content-addressed compile-artifact store.

One compilation should serve the whole fleet.  The per-node
:class:`~repro.server.diskcache.DiskCompileCache` already shares work
between sibling workers of *one* node; :class:`ArtifactStore` is the
layer underneath shared by **every** node: a directory (typically on
shared storage) of digest-verified compile artifacts keyed by the same
content address the in-memory LRU and the node disk cache use
(:func:`repro.cache.cache_key` — sha256 of the source plus every
compilation-relevant flag).  The lookup ladder a worker climbs is

    worker LRU  ->  node disk cache  ->  fleet artifact store  ->  compile

and every layer is write-through on a miss below it, so

* a program compiled anywhere is a *fleet hit* everywhere else, and
* a cold node joining the ring serves its first hot-program request
  without recompiling — it pulls the artifact, promotes it into its own
  disk cache and LRU, and is warm from the second request on.

The storage discipline is deliberately the one DiskCompileCache v2
already proved under chaos: sha256-framed entries verified **before**
a single byte is unpickled, corrupt entries quarantined (bounded, with
eviction counting) and self-healed by the next compile, foreign formats
unlinked, atomic writes, and the same private-directory trust model —
an artifact store on a world-writable mount is refused, not trusted.
The subclass adds the fleet-facing surface: stable content addresses
(:meth:`ArtifactStore.address_of`) for logging and cross-node
attribution, presence probes that do not count as lookups, and a
snapshot labelled as the fleet layer for the stats endpoints.
"""

from __future__ import annotations

import hashlib
import sys
from typing import TYPE_CHECKING, Optional

from .diskcache import DiskCompileCache, _filename

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline import CompiledProgram

__all__ = ["ArtifactStore", "open_store"]


class ArtifactStore(DiskCompileCache):
    """A :class:`DiskCompileCache` in fleet position: same framing,
    digest verification, quarantine and self-healing discipline, but
    shared by every node of a fleet rather than private to one.

    The separation is semantic, not mechanical: per-layer hit accounting
    (``fleet_hit`` vs ``disk_hit`` in wire responses, ``fleet_hits`` in
    the metrics registry) only works if the two layers are distinct
    objects with distinct directories, and operational blast radii
    differ — wiping a node's disk cache costs that node some recompiles,
    wiping the artifact store costs the *fleet* exactly one compile per
    key, done by whichever node sees the key first.
    """

    @staticmethod
    def address_of(key: tuple) -> str:
        """The content address (hex sha256) an entry for ``key`` is
        stored under — the file name stem, stable across processes and
        hosts, usable in logs to watch one artifact travel the fleet."""
        return _filename(key)[: -len(".pkl")]

    def contains(self, key: tuple) -> bool:
        """Presence probe (no read, no counter): does the store hold an
        entry for ``key``?  A torn or corrupt entry still answers True —
        only a real :meth:`get_ex` verifies the digest."""
        return (self.root / _filename(key)).is_file()

    def digest_of(self, key: tuple) -> Optional[str]:
        """The sha256 of the stored payload as recorded in the entry's
        frame header (``None`` when absent or unframed) — lets a node
        compare artifact identity with a sibling without shipping the
        payload."""
        path = self.root / _filename(key)
        try:
            with open(path, "rb") as handle:
                header = handle.readline(256)
        except OSError:
            return None
        parts = header.strip().split(b" ", 1)
        if len(parts) != 2:
            return None
        try:
            return parts[1].decode("ascii")
        except UnicodeDecodeError:
            return None

    def verify_all(self) -> dict:
        """Walk every entry and verify its digest without unpickling
        anything (an operator scrub): returns counts of verified and
        quarantined entries.  Detected corruption is handled exactly as
        a lookup would — quarantine + eviction pruning — so a scrub
        leaves the store clean."""
        verified = 0
        quarantined = 0
        for path in sorted(self.root.glob("*.pkl")):
            try:
                blob = path.read_bytes()
            except OSError:  # pragma: no cover - raced with a sibling
                continue
            payload_and_status = _verify_frame(blob)
            if payload_and_status:
                verified += 1
            else:
                from .diskcache import CORRUPT

                self._discard(path, CORRUPT)
                quarantined += 1
        return {"verified": verified, "quarantined": quarantined}

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["kind"] = "artifact-store"
        snap["root"] = str(self.root)
        return snap


def _verify_frame(blob: bytes) -> bool:
    """Frame + digest check without unpickling (scrub helper)."""
    from .diskcache import _MAGIC, FORMAT_VERSION

    if not blob.startswith(_MAGIC):
        return False
    newline = blob.find(b"\n", 0, 256)
    if newline < 0:
        return False
    try:
        version_bytes, digest = blob[len(_MAGIC):newline].split(b" ", 1)
        if int(version_bytes) != FORMAT_VERSION:
            return False
    except ValueError:
        return False
    payload = blob[newline + 1:]
    return hashlib.sha256(payload).hexdigest().encode("ascii") == digest


def open_store(path: Optional[str]) -> Optional[ArtifactStore]:
    """Open the fleet artifact store at ``path``, degrading to ``None``
    (with a stderr warning) when the directory cannot be trusted or
    created — a hostile or broken shared mount must cost the fleet its
    shared cache, never the service (the same degradation discipline as
    the node disk cache in :func:`repro.server.worker.init_worker`)."""
    if not path:
        return None
    try:
        return ArtifactStore(path)
    except OSError as exc:
        print(
            f"repro-serve worker: fleet artifact store disabled ({exc}); "
            f"falling back to node-local caching only",
            file=sys.stderr,
            flush=True,
        )
        return None

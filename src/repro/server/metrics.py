"""The fleet metrics registry behind the ``stats`` endpoint.

Per-job observability already exists (``RunStats`` per run, the JSONL
event trace); what a fleet operator needs is the *aggregate*: jobs by
outcome, queue depth, cache hit rate, total GC work, the heap
high-water across every job.  :class:`MetricsRegistry` folds each wire
response into counters, histograms, and one merged
:class:`~repro.runtime.stats.RunStats` (sums for counters, maxima for
high-water marks — :meth:`RunStats.merge`), all behind one lock, and
snapshots to a JSON-ready dict.

Histograms are fixed-boundary buckets (each observation lands in the
first bucket whose bound it does not exceed), so dashboards and the
load-replay harness can derive quantile estimates without the registry
keeping samples.  :func:`percentiles_from_snapshot` is that derivation
— p50/p95/p99 by linear interpolation inside the winning bucket — and
it operates on the *snapshot dict*, so the gateway can merge histograms
from many nodes (:func:`merge_histogram_snapshots`) or subtract a
before-wave baseline (:func:`histogram_delta`) and still read
percentiles off the result.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from ..runtime.stats import RunStats

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "HEAP_BUCKETS",
    "PERCENTILES",
    "percentiles_from_snapshot",
    "merge_histogram_snapshots",
    "histogram_delta",
]

#: The quantiles every latency/heap snapshot carries.
PERCENTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

#: Wall-clock seconds per job.
LATENCY_BUCKETS: tuple[float, ...] = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Peak heap words per job.
HEAP_BUCKETS: tuple[float, ...] = (
    256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)


class Histogram:
    """Cumulative fixed-bucket histogram (not thread-safe on its own;
    the registry serializes access)."""

    def __init__(self, boundaries: Sequence[float]) -> None:
        self.boundaries = tuple(boundaries)
        self.buckets = [0] * (len(self.boundaries) + 1)  # +inf tail
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict:
        labels = [str(b) for b in self.boundaries] + ["+inf"]
        snap = {
            "count": self.count,
            "sum": round(self.total, 6),
            "max": round(self.max, 6),
            "buckets": dict(zip(labels, self.buckets)),
        }
        snap["percentiles"] = percentiles_from_snapshot(snap)
        return snap


def _parse_buckets(snapshot: dict) -> tuple[list[float], list[int]]:
    """The snapshot's bucket dict as parallel (upper-bound, count) lists,
    in ascending bound order with the ``+inf`` tail last.  Insertion
    order is bound order by construction (:meth:`Histogram.to_dict`),
    but sort defensively — merged documents may have been round-tripped
    through JSON tooling that reordered keys."""
    finite = []
    inf_count = 0
    for label, count in snapshot.get("buckets", {}).items():
        if label == "+inf":
            inf_count = count
        else:
            finite.append((float(label), count))
    finite.sort(key=lambda pair: pair[0])
    bounds = [bound for bound, _ in finite] + [float("inf")]
    counts = [count for _, count in finite] + [inf_count]
    return bounds, counts


def percentiles_from_snapshot(snapshot: dict,
                              quantiles: Sequence[float] = PERCENTILES) -> dict:
    """Quantile estimates from a histogram *snapshot dict* (the
    :meth:`Histogram.to_dict` shape): for each quantile, walk the
    buckets to the one holding the target rank and interpolate linearly
    between its bounds.  The open ``+inf`` tail is closed with the
    observed ``max``; every estimate is clamped to ``max`` so a
    single-bucket histogram cannot report a latency no request had.
    An empty histogram (count 0) reports ``None`` for every quantile.
    """
    count = snapshot.get("count", 0)
    observed_max = float(snapshot.get("max", 0.0))
    out: dict = {}
    if count <= 0:
        return {f"p{round(q * 100)}": None for q in quantiles}
    bounds, counts = _parse_buckets(snapshot)
    for q in quantiles:
        target = q * count
        cumulative = 0
        estimate = observed_max
        lower = 0.0
        for bound, bucket_count in zip(bounds, counts):
            upper = observed_max if bound == float("inf") else bound
            if cumulative + bucket_count >= target and bucket_count > 0:
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (max(upper, lower) - lower) * fraction
                break
            cumulative += bucket_count
            lower = bound if bound != float("inf") else lower
        out[f"p{round(q * 100)}"] = round(min(estimate, observed_max), 6)
    return out


def merge_histogram_snapshots(snapshots: Sequence[dict]) -> dict:
    """Fold many same-boundary histogram snapshots (one per node) into
    one fleet histogram: counts and sums add, maxima take the max,
    buckets add label-wise, and the percentiles are re-derived from the
    merged buckets.  Nodes missing a label (older builds) contribute 0
    to it."""
    merged: dict = {"count": 0, "sum": 0.0, "max": 0.0, "buckets": {}}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        merged["count"] += snap.get("count", 0)
        merged["sum"] = round(merged["sum"] + snap.get("sum", 0.0), 6)
        merged["max"] = max(merged["max"], snap.get("max", 0.0))
        for label, count in snap.get("buckets", {}).items():
            merged["buckets"][label] = merged["buckets"].get(label, 0) + count
    merged["percentiles"] = percentiles_from_snapshot(merged)
    return merged


def histogram_delta(after: dict, before: dict) -> dict:
    """The histogram of the observations made *between* two snapshots of
    the same histogram (bucket-wise difference).  ``max`` is taken from
    ``after`` — the registry does not keep a per-window max, so it is an
    upper bound for the window — and percentiles are re-derived from the
    differenced buckets (this is how the load harness scores one wave
    against server-side data without resetting fleet counters)."""
    delta: dict = {
        "count": max(0, after.get("count", 0) - before.get("count", 0)),
        "sum": round(after.get("sum", 0.0) - before.get("sum", 0.0), 6),
        "max": after.get("max", 0.0),
        "buckets": {},
    }
    labels = dict(after.get("buckets", {}))
    for label in before.get("buckets", {}):
        labels.setdefault(label, 0)
    for label, count in labels.items():
        delta["buckets"][label] = max(
            0, count - before.get("buckets", {}).get(label, 0))
    delta["percentiles"] = percentiles_from_snapshot(delta)
    return delta


class MetricsRegistry:
    """Fold responses in, snapshot fleet state out."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs_by_status: dict[str, int] = {}
        self.run_stats = RunStats()
        self.runs_aggregated = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.fleet_hits = 0
        self.cache_lookups = 0
        self.latency = Histogram(LATENCY_BUCKETS)
        self.heap = Histogram(HEAP_BUCKETS)
        self.gc_count = 0
        self.heap_high_water = 0
        self.retries = 0
        self.drains = 0
        self.rolling_restarts = 0
        self.quarantined_entries = 0
        self.quarantine_evictions = 0

    def record_response(self, response: dict, wall_seconds: Optional[float] = None) -> None:
        """Fold one terminal wire response (any status) into the fleet
        aggregates.  ``wall_seconds`` is the server-side latency
        (queueing + execution)."""
        status = response.get("status", "error")
        with self._lock:
            self.jobs_by_status[status] = self.jobs_by_status.get(status, 0) + 1
            if wall_seconds is not None:
                self.latency.observe(wall_seconds)
            cache = response.get("cache")
            # The worker omits the cache field entirely when the request
            # bypassed the caches (cache:false), so every counted lookup
            # is one that actually happened.
            if cache is not None:
                self.cache_lookups += 1
                if cache.get("memory_hit"):
                    self.memory_hits += 1
                elif cache.get("disk_hit"):
                    self.disk_hits += 1
                elif cache.get("fleet_hit"):
                    # Served by the fleet-wide artifact store: some other
                    # node (or a previous life of this one) compiled it.
                    self.fleet_hits += 1
                if cache.get("quarantined"):
                    # A worker's disk lookup hit a corrupt entry, which
                    # was quarantined and recompiled over (self-healed).
                    self.quarantined_entries += 1
                evicted = cache.get("quarantine_evicted", 0)
                if isinstance(evicted, int) and evicted > 0:
                    self.quarantine_evictions += evicted
            stats = response.get("stats")
            if stats:
                run = RunStats.from_dict(stats)
                self.run_stats = self.run_stats.merge(run)
                self.runs_aggregated += 1
                self.gc_count += run.gc_count + run.gc_minor_count
                if run.peak_words > self.heap_high_water:
                    self.heap_high_water = run.peak_words
                self.heap.observe(run.peak_words)

    def record_rejection(self) -> None:
        with self._lock:
            self.jobs_by_status["rejected"] = self.jobs_by_status.get("rejected", 0) + 1

    def record_retry(self) -> None:
        """One retransmitted submission arrived (the client marked it
        with an ``X-Repro-Attempt`` header > 1)."""
        with self._lock:
            self.retries += 1

    def record_drain(self) -> None:
        with self._lock:
            self.drains += 1

    def record_rolling_restart(self) -> None:
        with self._lock:
            self.rolling_restarts += 1

    def snapshot(self) -> dict:
        with self._lock:
            lookups = self.cache_lookups
            hits = self.memory_hits + self.disk_hits + self.fleet_hits
            return {
                "jobs": dict(sorted(self.jobs_by_status.items())),
                "cache": {
                    "lookups": lookups,
                    "memory_hits": self.memory_hits,
                    "disk_hits": self.disk_hits,
                    "fleet_hits": self.fleet_hits,
                    "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
                },
                "run_stats": self.run_stats.to_dict(),
                "runs_aggregated": self.runs_aggregated,
                "gc_count": self.gc_count,
                "heap_high_water_words": self.heap_high_water,
                "latency_seconds": self.latency.to_dict(),
                "peak_words": self.heap.to_dict(),
                "resilience": {
                    "retries": self.retries,
                    "drains": self.drains,
                    "rolling_restarts": self.rolling_restarts,
                    "quarantined_entries": self.quarantined_entries,
                    "quarantine_evictions": self.quarantine_evictions,
                },
            }

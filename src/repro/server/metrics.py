"""The fleet metrics registry behind the ``stats`` endpoint.

Per-job observability already exists (``RunStats`` per run, the JSONL
event trace); what a fleet operator needs is the *aggregate*: jobs by
outcome, queue depth, cache hit rate, total GC work, the heap
high-water across every job.  :class:`MetricsRegistry` folds each wire
response into counters, histograms, and one merged
:class:`~repro.runtime.stats.RunStats` (sums for counters, maxima for
high-water marks — :meth:`RunStats.merge`), all behind one lock, and
snapshots to a JSON-ready dict.

Histograms are fixed-boundary cumulative buckets (the Prometheus
convention: each bucket counts observations ``<= le``), so dashboards
can derive quantile estimates without the registry keeping samples.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from ..runtime.stats import RunStats

__all__ = ["Histogram", "MetricsRegistry", "LATENCY_BUCKETS", "HEAP_BUCKETS"]

#: Wall-clock seconds per job.
LATENCY_BUCKETS: tuple[float, ...] = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Peak heap words per job.
HEAP_BUCKETS: tuple[float, ...] = (
    256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)


class Histogram:
    """Cumulative fixed-bucket histogram (not thread-safe on its own;
    the registry serializes access)."""

    def __init__(self, boundaries: Sequence[float]) -> None:
        self.boundaries = tuple(boundaries)
        self.buckets = [0] * (len(self.boundaries) + 1)  # +inf tail
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict:
        labels = [str(b) for b in self.boundaries] + ["+inf"]
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "max": round(self.max, 6),
            "buckets": dict(zip(labels, self.buckets)),
        }


class MetricsRegistry:
    """Fold responses in, snapshot fleet state out."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs_by_status: dict[str, int] = {}
        self.run_stats = RunStats()
        self.runs_aggregated = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.cache_lookups = 0
        self.latency = Histogram(LATENCY_BUCKETS)
        self.heap = Histogram(HEAP_BUCKETS)
        self.gc_count = 0
        self.heap_high_water = 0
        self.retries = 0
        self.drains = 0
        self.rolling_restarts = 0
        self.quarantined_entries = 0

    def record_response(self, response: dict, wall_seconds: Optional[float] = None) -> None:
        """Fold one terminal wire response (any status) into the fleet
        aggregates.  ``wall_seconds`` is the server-side latency
        (queueing + execution)."""
        status = response.get("status", "error")
        with self._lock:
            self.jobs_by_status[status] = self.jobs_by_status.get(status, 0) + 1
            if wall_seconds is not None:
                self.latency.observe(wall_seconds)
            cache = response.get("cache")
            # The worker omits the cache field entirely when the request
            # bypassed the caches (cache:false), so every counted lookup
            # is one that actually happened.
            if cache is not None:
                self.cache_lookups += 1
                if cache.get("memory_hit"):
                    self.memory_hits += 1
                elif cache.get("disk_hit"):
                    self.disk_hits += 1
                if cache.get("quarantined"):
                    # A worker's disk lookup hit a corrupt entry, which
                    # was quarantined and recompiled over (self-healed).
                    self.quarantined_entries += 1
            stats = response.get("stats")
            if stats:
                run = RunStats.from_dict(stats)
                self.run_stats = self.run_stats.merge(run)
                self.runs_aggregated += 1
                self.gc_count += run.gc_count + run.gc_minor_count
                if run.peak_words > self.heap_high_water:
                    self.heap_high_water = run.peak_words
                self.heap.observe(run.peak_words)

    def record_rejection(self) -> None:
        with self._lock:
            self.jobs_by_status["rejected"] = self.jobs_by_status.get("rejected", 0) + 1

    def record_retry(self) -> None:
        """One retransmitted submission arrived (the client marked it
        with an ``X-Repro-Attempt`` header > 1)."""
        with self._lock:
            self.retries += 1

    def record_drain(self) -> None:
        with self._lock:
            self.drains += 1

    def record_rolling_restart(self) -> None:
        with self._lock:
            self.rolling_restarts += 1

    def snapshot(self) -> dict:
        with self._lock:
            lookups = self.cache_lookups
            hits = self.memory_hits + self.disk_hits
            return {
                "jobs": dict(sorted(self.jobs_by_status.items())),
                "cache": {
                    "lookups": lookups,
                    "memory_hits": self.memory_hits,
                    "disk_hits": self.disk_hits,
                    "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
                },
                "run_stats": self.run_stats.to_dict(),
                "runs_aggregated": self.runs_aggregated,
                "gc_count": self.gc_count,
                "heap_high_water_words": self.heap_high_water,
                "latency_seconds": self.latency.to_dict(),
                "peak_words": self.heap.to_dict(),
                "resilience": {
                    "retries": self.retries,
                    "drains": self.drains,
                    "rolling_restarts": self.rolling_restarts,
                    "quarantined_entries": self.quarantined_entries,
                },
            }

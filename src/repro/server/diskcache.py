"""A keyed on-disk compile cache.

The in-memory LRU of :mod:`repro.cache` is process-wide, which is the
wrong scope for a serving fleet twice over: every worker process pays
its own cold compiles, and a server restart throws the whole cache away.
:class:`DiskCompileCache` is the layer underneath — compiled programs
pickled to a directory keyed by the same content address the LRU uses
(:func:`repro.cache.cache_key`), so

* a program compiled by one worker is a disk hit for every sibling, and
* a warm restart of the server serves repeat submissions without
  recompiling anything.

Entries are written atomically (temp file + ``os.replace``) so a
concurrent reader never sees a torn pickle, and every load failure
(corrupt file, unpicklable entry, format-version mismatch) degrades to
a miss — the cache can be deleted or truncated at any time without
affecting correctness.  The pickled payload carries only the
compilation; runtime flags, per-request limits, and the closure backend
(process-local by construction, see ``_BackendSlot.__reduce__``) are
never baked in.

Trust model: entries are pickles, and unpickling attacker-controlled
bytes executes arbitrary code, so the cache only ever reads from a
directory the current user owns and no one else can write.  The
constructor creates the directory ``0o700`` and *refuses* (raising
:class:`CacheDirectoryError`) a pre-existing directory owned by another
uid or writable by group/other — e.g. one planted by another local user
under the shared temp dir.  Callers that can run without a disk cache
(the worker initializer) catch that and degrade to memory-only.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline import CompiledProgram

__all__ = ["CacheDirectoryError", "DiskCompileCache", "FORMAT_VERSION"]

#: Bump when the pickled payload layout changes; old entries then read
#: as misses instead of unpickling garbage.
FORMAT_VERSION = 1


class CacheDirectoryError(OSError):
    """The cache directory cannot be trusted (foreign owner, or writable
    by group/other): reading pickles from it would let another local
    user execute code in this process."""


def _check_private(path: Path) -> None:
    """Refuse a directory whose pickles another local user could have
    planted.  On platforms without POSIX uids/modes there is nothing
    meaningful to check."""
    getuid = getattr(os, "getuid", None)
    if getuid is None:  # pragma: no cover - non-POSIX
        return
    st = os.stat(path)
    if st.st_uid != getuid():
        raise CacheDirectoryError(
            f"compile cache dir {path} is owned by uid {st.st_uid}, not "
            f"uid {getuid()}; refusing to unpickle from it"
        )
    if st.st_mode & 0o022:
        raise CacheDirectoryError(
            f"compile cache dir {path} is writable by group/other "
            f"(mode {st.st_mode & 0o777:03o}); existing entries cannot "
            f"be trusted — chmod it 0700 or pick a private directory"
        )


def _filename(key: tuple) -> str:
    """Stable file name for one cache key.  The key tuple contains only
    primitives (the source digest plus flag values), so its ``repr`` is
    deterministic across processes and Python runs."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest() + ".pkl"


class DiskCompileCache:
    """Pickled :class:`~repro.pipeline.CompiledProgram` entries under a
    directory, one file per :func:`repro.cache.cache_key`."""

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = Path(root)
        self.root.mkdir(mode=0o700, parents=True, exist_ok=True)
        _check_private(self.root)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    def get(self, key: tuple) -> Optional["CompiledProgram"]:
        path = self.root / _filename(key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        try:
            version, program = pickle.loads(blob)
            if version != FORMAT_VERSION:
                raise ValueError(f"format {version} != {FORMAT_VERSION}")
        except Exception:  # noqa: BLE001 - any decode failure is a miss
            with self._lock:
                self.misses += 1
                self.errors += 1
            return None
        with self._lock:
            self.hits += 1
        return program

    def put(self, key: tuple, program: "CompiledProgram") -> None:
        path = self.root / _filename(key)
        blob = pickle.dumps((FORMAT_VERSION, program))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - disk full etc.: cache stays best-effort
            with self._lock:
                self.errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        with self._lock:
            self.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "errors": self.errors,
            }

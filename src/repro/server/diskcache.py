"""A keyed, self-healing on-disk compile cache.

The in-memory LRU of :mod:`repro.cache` is process-wide, which is the
wrong scope for a serving fleet twice over: every worker process pays
its own cold compiles, and a server restart throws the whole cache away.
:class:`DiskCompileCache` is the layer underneath — compiled programs
pickled to a directory keyed by the same content address the LRU uses
(:func:`repro.cache.cache_key`), so

* a program compiled by one worker is a disk hit for every sibling, and
* a warm restart of the server serves repeat submissions without
  recompiling anything.

Entries are written atomically (temp file + ``os.replace``) so a
concurrent reader never sees a torn pickle, and every load failure
degrades to a miss — the cache can be deleted or truncated at any time
without affecting correctness.  On top of that the cache is
*self-healing*: each entry carries a header with the format version and
the sha256 digest of its pickled payload, verified before a single byte
is unpickled.  An entry whose digest does not match (bit rot, a torn or
truncated write from a crashed process, a chaos-injected corruption) is
moved into a ``quarantine/`` subdirectory — preserved for forensics,
never read again — and counted in ``corrupt_quarantined``; the next
compile of that key simply re-stores a good entry over the vacated
name.  The quarantine itself is bounded: only the newest
``max_quarantine`` entries (default :data:`MAX_QUARANTINE`) are kept,
older ones are evicted and counted in ``quarantine_evictions``.  An entry in an older or unrecognized format is counted in
``format_mismatch`` and unlinked (there is nothing to preserve — the
format bump already says its layout is stale).

The pickled payload carries only the compilation; runtime flags,
per-request limits, and the closure backend (process-local by
construction, see ``_BackendSlot.__reduce__``) are never baked in.  The
bytecode backend's compiled form *is* data — an entry stored after a
bytecode run round-trips the instruction array and its specialization
table (``_BytecodeSlot``), so disk hits start hot.

Trust model: entries are pickles, and unpickling attacker-controlled
bytes executes arbitrary code, so the cache only ever reads from a
directory the current user owns and no one else can write.  The
constructor creates the directory ``0o700`` and *refuses* (raising
:class:`CacheDirectoryError`) a pre-existing directory owned by another
uid or writable by group/other — e.g. one planted by another local user
under the shared temp dir.  Callers that can run without a disk cache
(the worker initializer) catch that and degrade to memory-only.  The
digest is an *integrity* check (detects accidental and injected
corruption), not an authenticity check — trust still comes entirely
from directory ownership.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline import CompiledProgram

__all__ = [
    "CacheDirectoryError",
    "DiskCompileCache",
    "FORMAT_VERSION",
    "MAX_QUARANTINE",
    "HIT",
    "MISS",
    "CORRUPT",
    "FORMAT_MISMATCH",
]

#: Bump when the entry layout changes; old entries then read as
#: ``format_mismatch`` misses instead of unpickling garbage.  Version 2
#: introduced the digest header (version 1 was a bare pickled tuple).
#: Version 3 added the bytecode backend slot to ``CompiledProgram`` —
#: version-2 entries unpickle to programs without it.
FORMAT_VERSION = 3

#: Entry header magic.  A full header line is
#: ``repro-diskcache/<version> <sha256-of-payload>\n`` followed by the
#: pickled payload bytes.
_MAGIC = b"repro-diskcache/"

#: Subdirectory corrupt entries are moved into (never read back).
QUARANTINE_DIR = "quarantine"

#: Default cap on preserved quarantined entries.  Quarantine exists for
#: forensics, not archival: without a cap, sustained bit rot (or a chaos
#: plan in a loop) grows the directory without bound.  The newest
#: ``max_quarantine`` entries are kept; older ones are evicted and
#: counted.
MAX_QUARANTINE = 32

#: Load statuses reported by :meth:`DiskCompileCache.get_ex`.
HIT = "hit"
MISS = "miss"
CORRUPT = "corrupt_quarantined"
FORMAT_MISMATCH = "format_mismatch"


class CacheDirectoryError(OSError):
    """The cache directory cannot be trusted (foreign owner, or writable
    by group/other): reading pickles from it would let another local
    user execute code in this process."""


def _check_private(path: Path) -> None:
    """Refuse a directory whose pickles another local user could have
    planted.  On platforms without POSIX uids/modes there is nothing
    meaningful to check."""
    getuid = getattr(os, "getuid", None)
    if getuid is None:  # pragma: no cover - non-POSIX
        return
    st = os.stat(path)
    if st.st_uid != getuid():
        raise CacheDirectoryError(
            f"compile cache dir {path} is owned by uid {st.st_uid}, not "
            f"uid {getuid()}; refusing to unpickle from it"
        )
    if st.st_mode & 0o022:
        raise CacheDirectoryError(
            f"compile cache dir {path} is writable by group/other "
            f"(mode {st.st_mode & 0o777:03o}); existing entries cannot "
            f"be trusted — chmod it 0700 or pick a private directory"
        )


def _filename(key: tuple) -> str:
    """Stable file name for one cache key.  The key tuple contains only
    primitives (the source digest plus flag values), so its ``repr`` is
    deterministic across processes and Python runs."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest() + ".pkl"


def _frame(payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return _MAGIC + str(FORMAT_VERSION).encode("ascii") + b" " + digest + b"\n" + payload


def _unframe(blob: bytes) -> Tuple[Optional[bytes], str]:
    """Split an entry into its payload, verifying header and digest.
    Returns ``(payload, HIT)`` or ``(None, CORRUPT | FORMAT_MISMATCH)``.
    """
    if not blob.startswith(_MAGIC):
        return None, FORMAT_MISMATCH  # v1 bare pickle, or foreign bytes
    newline = blob.find(b"\n", 0, 256)
    if newline < 0:
        return None, CORRUPT  # magic but no complete header: truncated
    try:
        version_bytes, digest = blob[len(_MAGIC):newline].split(b" ", 1)
        version = int(version_bytes)
    except ValueError:
        return None, CORRUPT
    if version != FORMAT_VERSION:
        return None, FORMAT_MISMATCH
    payload = blob[newline + 1:]
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        return None, CORRUPT
    return payload, HIT


class DiskCompileCache:
    """Pickled :class:`~repro.pipeline.CompiledProgram` entries under a
    directory, one file per :func:`repro.cache.cache_key`, each framed
    with a version + sha256 header."""

    def __init__(self, root: os.PathLike | str,
                 max_quarantine: int = MAX_QUARANTINE) -> None:
        self.root = Path(root)
        self.root.mkdir(mode=0o700, parents=True, exist_ok=True)
        _check_private(self.root)
        self._lock = threading.Lock()
        self.max_quarantine = max(0, int(max_quarantine))
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self.corrupt_quarantined = 0
        self.format_mismatches = 0
        self.quarantine_evictions = 0

    # -- load ----------------------------------------------------------------

    def get(self, key: tuple) -> Optional["CompiledProgram"]:
        """Load one entry (``None`` on any kind of miss) — the
        status-blind convenience over :meth:`get_ex`."""
        return self.get_ex(key)[0]

    def get_ex(self, key: tuple) -> Tuple[Optional["CompiledProgram"], str]:
        """Load one entry and say how it went: ``(program, "hit")``, or
        ``(None, status)`` with ``status`` one of ``miss`` (no entry),
        ``corrupt_quarantined`` (digest or framing failure — the entry
        was moved to quarantine), ``format_mismatch`` (older/foreign
        layout — the entry was unlinked)."""
        path = self.root / _filename(key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            return None, MISS
        payload, status = _unframe(blob)
        if status == FORMAT_MISMATCH:
            return None, self._discard(path, FORMAT_MISMATCH)
        if status == CORRUPT:
            return None, self._discard(path, CORRUPT)
        try:
            program = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - digest-valid yet unpicklable:
            # written by an incompatible build of our own classes, or a
            # re-framed plant; quarantine it like any other bad entry.
            return None, self._discard(path, CORRUPT)
        with self._lock:
            self.hits += 1
        return program, HIT

    def _discard(self, path: Path, status: str) -> str:
        """Get a bad entry out of the served namespace (quarantine for
        corruption, unlink for format skew) and count it as a miss.
        Racing siblings are fine: whoever loses the ``os.replace`` /
        ``unlink`` race still counted a detection, but the filesystem
        holds at most one quarantined copy."""
        if status == CORRUPT:
            qdir = self.root / QUARANTINE_DIR
            try:
                qdir.mkdir(mode=0o700, exist_ok=True)
                os.replace(path, qdir / path.name)
            except OSError:  # pragma: no cover - raced or read-only dir
                pass
            self._prune_quarantine(qdir)
        else:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - raced
                pass
        with self._lock:
            self.misses += 1
            self.errors += 1
            if status == CORRUPT:
                self.corrupt_quarantined += 1
            else:
                self.format_mismatches += 1
        return status

    def _prune_quarantine(self, qdir: Path) -> None:
        """Keep only the newest ``max_quarantine`` quarantined entries
        (by mtime, name as a deterministic tie-break) so the forensic
        buffer cannot grow without bound; each deletion is counted as a
        ``quarantine_eviction``.  Racing siblings may each try to unlink
        the same stale file — only the winner counts it."""
        try:
            entries = []
            for entry in qdir.glob("*.pkl"):
                try:
                    entries.append((entry.stat().st_mtime, entry.name, entry))
                except OSError:  # pragma: no cover - raced
                    continue
            entries.sort(reverse=True)
        except OSError:  # pragma: no cover - dir vanished
            return
        for _, _, stale in entries[self.max_quarantine:]:
            try:
                os.unlink(stale)
            except OSError:  # pragma: no cover - raced sibling won
                continue
            with self._lock:
                self.quarantine_evictions += 1

    # -- store ---------------------------------------------------------------

    def put(self, key: tuple, program: "CompiledProgram") -> None:
        path = self.root / _filename(key)
        blob = _frame(pickle.dumps(program))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - disk full etc.: cache stays best-effort
            with self._lock:
                self.errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        with self._lock:
            self.stores += 1

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))

    def quarantined_entries(self) -> int:
        """Files sitting in the quarantine subdirectory (a filesystem
        fact, not a counter: visible across processes and restarts)."""
        qdir = self.root / QUARANTINE_DIR
        if not qdir.is_dir():
            return 0
        return sum(1 for _ in qdir.glob("*.pkl"))

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "errors": self.errors,
                "corrupt_quarantined": self.corrupt_quarantined,
                "format_mismatch": self.format_mismatches,
                "quarantine_dir_entries": self.quarantined_entries(),
                "quarantine_evictions": self.quarantine_evictions,
            }

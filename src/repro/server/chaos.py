"""Seeded chaos testing for the serving layer — the ``repro-chaos`` CLI.

The runtime already has deterministic fault injection
(:class:`~repro.testing.faultplan.FaultPlan` decides GC points as a pure
function of ``(seed, index)``).  This module is the same idea one layer
up: a :class:`ChaosPlan` decides *serving-layer* faults — kill a worker
process mid-job, delay or duplicate a pipe message, shed an admission,
corrupt or truncate disk-cache entries — as a pure function of the seed
and the event's sequence number.  The same seed always produces the same
fault schedule, so a chaos run is a regression test, not a dice roll.

:func:`run_chaos` is the driver.  It boots a **live** server (real
worker processes, real HTTP, real disk cache), installs the plan at the
pool's dispatch points and the scheduler's admission points, then
replays the Figure 9 corpus through :class:`~repro.server.client.ServerClient`
with bounded retries and diffs every response against an in-process
ground truth (the exact ``repro-run`` code path).  Between waves it
rolls every worker and scribbles garbage into the disk cache, so wave
two exercises the self-healing read path.  Three invariants must hold
or the run fails:

* **no lost job** — every submission ends in a terminal ``ok``;
* **no wrong answer** — value, stdout, and ``RunStats`` are
  bit-identical to the local ground truth, faults notwithstanding;
* **bounded retries** — total retransmissions equal exactly
  ``|kills| + |rejects|`` and every backoff wait respects the cap.

Determinism is part of the contract and it is *provable*, not hoped
for: kill indices live in ``range(n_programs)`` of the dispatch
sequence and every one of those sequence numbers occurs (each program
dispatches at least once), so exactly ``|kills|`` kills fire and wave
one sees exactly ``n_programs + |kills|`` dispatches; the same argument
gives ``n_programs + |kills| + |rejects|`` admissions.  Rate-based
delays and duplicates are pure functions of the dispatch sequence
number, so over a deterministic number of dispatches their counts are
deterministic too (:meth:`ChaosPlan.expected_counts` computes them in
closed form, and the driver asserts the live counters match).  *Which*
job a fault lands on depends on thread scheduling; *how many* faults of
each kind fire does not — and correctness must hold regardless of
placement, which is exactly what makes the schedule a fair test.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import random
import shutil
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

__all__ = ["ChaosPlan", "ChaosError", "run_chaos", "deterministic_subset", "main"]


def _chance(seed: int, salt: str, index: int) -> float:
    """Deterministic uniform draw in [0, 1) for one event index (string
    seeding is SHA-512-hashed: stable across interpreters and
    ``PYTHONHASHSEED``) — the :mod:`~repro.testing.faultplan` idiom."""
    return random.Random(f"{seed}:{salt}:{index}").random()


class ChaosError(AssertionError):
    """A chaos invariant was violated (lost job, wrong answer, retry
    budget blown, or a same-seed replay diverged)."""


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded serving-layer fault schedule.

    ``kill_at`` are *dispatch*-sequence indices (the pool kills the
    worker right after sending that job), ``reject_at`` are
    *admission*-sequence indices (the scheduler sheds that submission).
    Both are materialized index sets — not rates — because the bounded-
    retries invariant needs an exact fault count.  Delays and duplicates
    are rate-based per dispatch; ``corrupt_entries`` /
    ``truncate_entries`` count disk-cache files the driver vandalizes
    between waves (digest-breaking edit → quarantine path; magic-
    destroying overwrite → format-mismatch path).
    """

    seed: int = 0
    kill_at: tuple = ()
    reject_at: tuple = ()
    delay_rate: float = 0.0
    delay_seconds: float = 0.02
    duplicate_rate: float = 0.0
    corrupt_entries: int = 0
    truncate_entries: int = 0

    @classmethod
    def for_corpus(
        cls,
        seed: int,
        n_programs: int,
        kills: int = 5,
        rejects: int = 3,
        delay_rate: float = 0.25,
        delay_seconds: float = 0.02,
        duplicate_rate: float = 0.15,
        corrupt_entries: int = 3,
        truncate_entries: int = 2,
    ) -> "ChaosPlan":
        """Sample concrete fault indices for a corpus of ``n_programs``.

        Kill and reject indices are drawn from ``range(n_programs)`` —
        the window where every sequence number provably occurs — which
        is what makes the per-kind fault counts (and hence the retry
        total) deterministic.
        """
        kills = min(kills, n_programs)
        rejects = min(rejects, n_programs)
        return cls(
            seed=seed,
            kill_at=tuple(sorted(
                random.Random(f"{seed}:kill-at").sample(range(n_programs), kills))),
            reject_at=tuple(sorted(
                random.Random(f"{seed}:reject-at").sample(range(n_programs), rejects))),
            delay_rate=delay_rate,
            delay_seconds=delay_seconds,
            duplicate_rate=duplicate_rate,
            corrupt_entries=corrupt_entries,
            truncate_entries=truncate_entries,
        )

    # -- pool hook (DispatchChaos protocol) ----------------------------------

    def decide_dispatch(self, seq: int) -> Optional[dict]:
        """One action per dispatch, kill taking precedence — a killed
        dispatch never also counts as a delay/duplicate, which keeps
        :meth:`expected_counts` exact."""
        if seq in self.kill_at:
            return {"op": "kill"}
        if self.delay_rate > 0.0 and _chance(self.seed, "delay", seq) < self.delay_rate:
            return {"op": "delay", "seconds": self.delay_seconds}
        if (self.duplicate_rate > 0.0
                and _chance(self.seed, "dup", seq) < self.duplicate_rate):
            return {"op": "duplicate"}
        return None

    def expected_counts(self, total_dispatches: int) -> dict:
        """Closed-form fault counts over a known number of dispatches —
        the oracle the driver checks the live pool counters against."""
        kills = delays = duplicates = 0
        for seq in range(total_dispatches):
            action = self.decide_dispatch(seq)
            if action is None:
                continue
            op = action["op"]
            kills += op == "kill"
            delays += op == "delay"
            duplicates += op == "duplicate"
        return {"kills": kills, "delays": delays, "duplicates": duplicates}

    # -- persistence ---------------------------------------------------------

    def describe(self) -> str:
        return (f"seed={self.seed} kills@{list(self.kill_at)} "
                f"rejects@{list(self.reject_at)} delay~{self.delay_rate} "
                f"dup~{self.duplicate_rate} corrupt={self.corrupt_entries} "
                f"truncate={self.truncate_entries}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        known = {k: v for k, v in data.items() if k in cls.__dataclass_fields__}
        known["kill_at"] = tuple(known.get("kill_at", ()))
        known["reject_at"] = tuple(known.get("reject_at", ()))
        return cls(**known)


# -- disk-cache vandalism -----------------------------------------------------


def _vandalize_cache(cache_dir: str, plan: ChaosPlan) -> dict:
    """Deterministically pick entries and break them: corrupt victims
    get one payload byte flipped (header intact, digest now wrong →
    must be quarantined on read); truncate victims get their framing
    destroyed (→ format mismatch, must be unlinked and recompiled).
    Returns the victim filenames per kind."""
    entries = sorted(p for p in Path(cache_dir).glob("*.pkl"))
    wanted = plan.corrupt_entries + plan.truncate_entries
    victims = random.Random(f"{plan.seed}:vandal").sample(
        entries, min(wanted, len(entries)))
    corrupt, truncate = victims[:plan.corrupt_entries], victims[plan.corrupt_entries:]
    for path in corrupt:
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # last payload byte: digest no longer matches
        path.write_bytes(bytes(blob))
    for path in truncate:
        path.write_bytes(b"repro chaos ate this entry")
    return {"corrupted": [p.name for p in corrupt],
            "truncated": [p.name for p in truncate]}


def _valid_cache_entries(cache_dir: str) -> int:
    """Entries whose framing and digest verify (the post-heal check)."""
    from .diskcache import HIT, _unframe

    return sum(1 for p in Path(cache_dir).glob("*.pkl")
               if _unframe(p.read_bytes())[1] == HIT)


# -- the driver ---------------------------------------------------------------


def _ground_truth(names: Sequence[str], backend: str) -> dict:
    from ..bench.registry import benchmark_source
    from ..pipeline import compile_program
    from ..runtime.values import show_value

    truth = {}
    for name in names:
        result = compile_program(benchmark_source(name)).run(backend=backend)
        truth[name] = {"value": show_value(result.value), "stdout": result.output,
                       "stats": result.stats.to_dict()}
    return truth


def _submit_wave(client, names: Sequence[str], backend: str, jobs: int) -> dict:
    from ..bench.registry import benchmark_source

    with concurrent.futures.ThreadPoolExecutor(jobs) as pool:
        futures = {
            name: pool.submit(client.run, benchmark_source(name), backend=backend)
            for name in names
        }
        return {name: future.result() for name, future in futures.items()}


def _diff_wave(responses: dict, truth: dict, failures: list, wave: str) -> None:
    for name, resp in sorted(responses.items()):
        if resp.get("status") != "ok":
            failures.append(f"{wave}/{name}: lost (status={resp.get('status')} "
                            f"error={resp.get('error')})")
            continue
        for field in ("value", "stdout", "stats"):
            if resp.get(field) != truth[name][field]:
                failures.append(
                    f"{wave}/{name}: wrong answer in {field}: "
                    f"server={resp.get(field)!r} local={truth[name][field]!r}")


def run_chaos(
    plan: ChaosPlan,
    programs: Optional[Sequence[str]] = None,
    workers: int = 4,
    backend: str = "closure",
    queue_capacity: int = 64,
    cache_dir: Optional[str] = None,
    concurrency: int = 8,
    log: Callable[[str], None] = lambda line: None,
) -> dict:
    """One full chaos scenario against a live server; returns the run
    report.  Raises :class:`ChaosError` if any invariant fails.

    Phases: ground truth → boot + install plan → **wave 1** (kills,
    sheds, delays, duplicates under full concurrency) → drain/resume
    through the admin API → rolling worker restart (memory caches gone)
    → disk-cache vandalism → **wave 2** (the self-healing read path) →
    invariant checks against the plan's closed-form fault counts.
    """
    from ..bench.registry import BENCHMARKS
    from .app import ReproServer, ServerConfig
    from .client import ServerClient

    names = sorted(programs if programs is not None else BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown programs {unknown}")
    n = len(names)
    bad = [i for i in (*plan.kill_at, *plan.reject_at) if not 0 <= i < n]
    if bad:
        raise ValueError(
            f"fault indices {sorted(set(bad))} outside range({n}): the "
            f"deterministic-counts argument needs indices every run visits")

    log(f"chaos plan: {plan.describe()}")
    log(f"computing ground truth for {n} programs ...")
    truth = _ground_truth(names, backend)

    own_cache = cache_dir is None
    if own_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    failures: list = []
    report: dict = {"seed": plan.seed, "programs": names, "plan": plan.to_dict()}
    server = ReproServer(ServerConfig(
        port=0, workers=workers, queue_capacity=queue_capacity,
        cache_dir=cache_dir))
    try:
        host, port = server.start()
        # Retry budget: a single job can stack faults (killed on its
        # retry dispatch, shed on its retry admission), so give each
        # submission the whole fault budget plus slack; the *total*
        # retry count is still asserted exactly below.
        budget = len(plan.kill_at) + len(plan.reject_at) + 2
        client = ServerClient(
            f"http://{host}:{port}", timeout=600, retries=budget,
            retry_base_wait=0.05, retry_max_wait=2.0,
            retry_jitter_seed=plan.seed)
        client.wait_ready(timeout=60)

        server.pool.install_chaos(plan)
        server.scheduler.set_chaos_rejections(plan.reject_at)

        log(f"wave 1: {n} programs, {len(plan.kill_at)} kills, "
            f"{len(plan.reject_at)} sheds, concurrency {concurrency} ...")
        _diff_wave(_submit_wave(client, names, backend, concurrency),
                   truth, failures, "wave1")

        # Every kill/shed fires exactly once (their indices are all in
        # the wave-1 window) and each costs exactly one retransmission.
        expected_retries = len(plan.kill_at) + len(plan.reject_at)
        if client.retries_attempted != expected_retries:
            failures.append(
                f"retries: {client.retries_attempted} retransmissions, "
                f"expected exactly {expected_retries} (|kills|+|rejects|)")
        if client.max_retry_wait > client.retry_max_wait:
            failures.append(f"retry wait {client.max_retry_wait:.3f}s exceeded "
                            f"the {client.retry_max_wait}s cap")

        log("drain / resume through the admin API ...")
        drained = client._request("POST", "/v1/admin/drain", {"timeout": 60})
        if not drained.get("ok"):
            failures.append(f"drain did not complete: {drained}")
        health = client.health()
        if health.get("ready") or not health.get("live"):
            failures.append(f"draining server misreported health: {health}")
        shed = client._request("POST", "/v1/run",
                               {"schema": "repro-server/v1", "source": "val it = 1"})
        if shed.get("status") != "rejected":
            failures.append(f"draining server admitted a job: {shed}")
        client._request("POST", "/v1/admin/resume", {})
        client.wait_ready(timeout=10)

        log(f"rolling restart of all {workers} workers ...")
        rolled = client._request("POST", "/v1/admin/restart", {})
        if rolled.get("recycled") != workers:
            failures.append(f"rolling restart recycled {rolled.get('recycled')} "
                            f"of {workers} workers")

        vandalism = _vandalize_cache(cache_dir, plan)
        report["vandalism"] = vandalism
        log(f"vandalized disk cache: {len(vandalism['corrupted'])} corrupted, "
            f"{len(vandalism['truncated'])} truncated; wave 2 ...")
        _diff_wave(_submit_wave(client, names, backend, concurrency),
                   truth, failures, "wave2")

        # Self-healing: every digest-corrupt entry quarantined, every
        # format-mismatch entry replaced, full corpus re-cached valid.
        from .diskcache import DiskCompileCache

        quarantined = DiskCompileCache(cache_dir).quarantined_entries()
        if quarantined != len(vandalism["corrupted"]):
            failures.append(f"quarantine holds {quarantined} entries, expected "
                            f"{len(vandalism['corrupted'])}")
        valid = _valid_cache_entries(cache_dir)
        if valid < n:
            failures.append(f"only {valid}/{n} cache entries verify after "
                            f"the healing wave")

        # The closed-form fault counts must match the live counters:
        # wave 1 dispatched n + |kills| times (each kill is re-run
        # once), wave 2 exactly n more, nothing else dispatched.
        pool_stats = server.pool.stats()
        total_dispatches = 2 * n + len(plan.kill_at)
        expected = plan.expected_counts(total_dispatches)
        for op, counter in (("kills", "injected_kills"),
                            ("delays", "injected_delays"),
                            ("duplicates", "injected_duplicates")):
            if pool_stats[counter] != expected[op]:
                failures.append(f"{counter}: live counter {pool_stats[counter]} "
                                f"!= deterministic oracle {expected[op]}")

        sched = server.scheduler.snapshot()
        fleet = client.stats()
        report.update({
            "lost_jobs": sum(1 for f in failures if ": lost" in f),
            "wrong_answers": sum(1 for f in failures if "wrong answer" in f),
            "retries_total": client.retries_attempted,
            "max_retry_wait": round(client.max_retry_wait, 3),
            "injected": {k: pool_stats[c] for k, c in
                         (("kills", "injected_kills"), ("delays", "injected_delays"),
                          ("duplicates", "injected_duplicates"))},
            "expected": expected,
            "forced_rejections": sched["forced_rejections"],
            "drain_rejected": sched["drain_rejected"],
            "drains": sched["drains"],
            "recycles": pool_stats["recycles"],
            "crashes": pool_stats["crashes"],
            "quarantined": quarantined,
            "cache_entries_valid": valid,
            "fleet_resilience": fleet["metrics"]["resilience"],
            "failures": failures,
        })
    finally:
        server.close()
        if own_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)
    if failures:
        raise ChaosError(
            f"{len(failures)} invariant violation(s):\n  - "
            + "\n  - ".join(failures))
    log(f"ok: {2 * n} responses bit-identical under "
        f"{expected['kills']} kills / {len(plan.reject_at)} sheds / "
        f"{expected['delays']} delays / {expected['duplicates']} duplicates; "
        f"{quarantined} corrupt entries quarantined and healed")
    return report


def deterministic_subset(report: dict) -> dict:
    """The report fields guaranteed identical across same-seed runs.

    Everything here is a provable function of (seed, corpus, workers):
    fault counts via the closed-form argument in the module docstring,
    retries because each kill/shed costs exactly one, quarantine counts
    because vandalism victims are seed-chosen.  Deliberately excluded:
    wall-clock times, ``max_retry_wait`` (jitter draws depend on *which*
    thread retries in what order), ``stale_replies`` (a duplicate's
    second reply is only discovered if that worker gets another job),
    and ``crashes`` (a kill mid-duplicate can crash one run or two).
    """
    return {key: report[key] for key in (
        "seed", "programs", "plan", "lost_jobs", "wrong_answers",
        "retries_total", "injected", "expected", "forced_rejections",
        "drains", "recycles", "quarantined", "cache_entries_valid",
        "vandalism",
    )}


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Replay the Figure 9 corpus through a live repro-serve "
        "fleet under seeded fault injection and verify no job is lost, "
        "no answer is wrong, and retries stay bounded.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--programs", default=None,
                        help="comma-separated subset (default: all 23)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--backend", default="closure",
                        choices=("closure", "bytecode", "tree"))
    parser.add_argument("--kills", type=int, default=5,
                        help="worker kills to inject (default 5)")
    parser.add_argument("--rejects", type=int, default=3,
                        help="admissions to shed (default 3)")
    parser.add_argument("--delay-rate", type=float, default=0.25)
    parser.add_argument("--delay-seconds", type=float, default=0.02)
    parser.add_argument("--duplicate-rate", type=float, default=0.15)
    parser.add_argument("--corrupt", type=int, default=3,
                        help="disk-cache entries to digest-corrupt (default 3)")
    parser.add_argument("--truncate", type=int, default=2,
                        help="disk-cache entries to format-smash (default 2)")
    parser.add_argument("--queue-capacity", type=int, default=64)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the whole scenario twice and require the "
                             "deterministic report subsets to be identical")
    parser.add_argument("--json", action="store_true",
                        help="print the run report as JSON")
    args = parser.parse_args(argv)

    names = None
    if args.programs:
        names = [n.strip() for n in args.programs.split(",")]
    from ..bench.registry import BENCHMARKS

    n = len(names if names is not None else BENCHMARKS)
    plan = ChaosPlan.for_corpus(
        args.seed, n, kills=args.kills, rejects=args.rejects,
        delay_rate=args.delay_rate, delay_seconds=args.delay_seconds,
        duplicate_rate=args.duplicate_rate, corrupt_entries=args.corrupt,
        truncate_entries=args.truncate)

    def log(line: str) -> None:
        print(f"[chaos] {line}", flush=True)

    runs = 2 if args.check_determinism else 1
    reports = []
    start = time.monotonic()
    try:
        for i in range(runs):
            if runs > 1:
                log(f"--- run {i + 1}/{runs} (seed {args.seed}) ---")
            reports.append(run_chaos(
                plan, programs=names, workers=args.workers, backend=args.backend,
                queue_capacity=args.queue_capacity, concurrency=args.concurrency,
                log=log))
    except (ChaosError, ValueError) as exc:
        print(f"repro-chaos FAILED: {exc}", file=sys.stderr)
        return 1
    if runs > 1:
        first, second = map(deterministic_subset, reports)
        if first != second:
            diverged = sorted(k for k in first if first[k] != second[k])
            print(f"repro-chaos FAILED: same-seed runs diverged on {diverged}\n"
                  f"  run 1: { {k: first[k] for k in diverged} }\n"
                  f"  run 2: { {k: second[k] for k in diverged} }",
                  file=sys.stderr)
            return 1
        log("determinism: both same-seed runs produced identical fault "
            "schedules and counters")
    if args.json:
        print(json.dumps(reports[-1], indent=2))
    log(f"chaos OK in {time.monotonic() - start:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

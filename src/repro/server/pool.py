"""A crash-resilient multi-process worker pool.

``multiprocessing.Pool`` is the obvious tool for fanning work out over
processes, but it has exactly the failure mode a serving layer cannot
afford: a worker that dies mid-job (hard crash, OOM kill) or hangs
poisons the whole pool.  :class:`WorkerPool` instead gives every worker
process a dedicated manager thread and a private pipe; a worker that
crashes or overruns its job timeout is reaped and respawned by its own
manager while every other job proceeds untouched, and the lost job
resolves to a structured :class:`JobResult` instead of an exception that
tears the pool down.

The pool is deliberately generic — it executes one module-level
function over payloads — so it serves two callers:

* the execution service (:mod:`repro.server.app`), which needs
  per-job timeouts, crash containment, and submit/await semantics;
* ``repro-bench --jobs`` (:mod:`repro.bench.export`), which needs plain
  unordered map semantics (:func:`run_jobs`).

Workers are started with the ``spawn`` context by default: the serving
process is multi-threaded, and forking a multi-threaded parent can
deadlock a child on a lock some other thread held at fork time.  The
job function (and initializer) must therefore be picklable module-level
callables.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, Protocol

__all__ = ["JobResult", "JobHandle", "WorkerPool", "WorkerError", "run_jobs",
           "DispatchChaos"]

#: Job outcome statuses.
OK = "ok"
ERROR = "error"  # the job function raised
CRASHED = "crashed"  # the worker process died mid-job
TIMEOUT = "timeout"  # the job overran its timeout; worker was reaped


class WorkerError(Exception):
    """Raised by strict :meth:`WorkerPool.map_unordered` when a job does
    not complete with status ``ok``."""

    def __init__(self, result: "JobResult") -> None:
        super().__init__(f"job {result.job_id} {result.status}: {result.error}")
        self.result = result


@dataclass
class JobResult:
    """How one job ended.

    ``status`` is one of ``ok`` / ``error`` / ``crashed`` / ``timeout``;
    ``value`` is the job function's return value (``ok`` only); ``error``
    is a ``{"type", "message"}`` dict for the three failure statuses.
    """

    job_id: int
    status: str
    value: Any = None
    error: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == OK


class JobHandle:
    """An awaitable slot for one submitted job."""

    def __init__(self, job_id: int, payload: Any, timeout: Optional[float],
                 on_start: Optional[Callable[[], None]] = None) -> None:
        self.job_id = job_id
        self.payload = payload
        self.timeout = timeout
        self.on_start = on_start
        self._done = threading.Event()
        self._result: Optional[JobResult] = None

    def _resolve(self, result: JobResult) -> None:
        self._result = result
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block until the job resolves.  Never raises on job failure —
        failures are data (:class:`JobResult`)."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_id} still pending after {timeout}s")
        assert self._result is not None
        return self._result


class DispatchChaos(Protocol):
    """Seeded fault injection at the pool's dispatch points (the
    serving-layer mirror of :class:`~repro.testing.faultplan.FaultPlan`).

    ``decide_dispatch`` is consulted once per job dispatch with a
    monotonically increasing sequence number and returns ``None`` (no
    fault) or an action dict: ``{"op": "kill"}`` kills the worker
    process right after the job is sent (the crash path must recover),
    ``{"op": "delay", "seconds": s}`` delays the pipe message, and
    ``{"op": "duplicate"}`` sends the job message twice (the stale-reply
    discard must keep the answer correct)."""

    def decide_dispatch(self, seq: int) -> Optional[dict]:  # pragma: no cover
        ...


class _Worker:
    """One child process + its private duplex pipe."""

    def __init__(self, ctx, fn, initializer, initargs) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, fn, initializer, initargs),
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the parent keeps only its end
        self.jobs_done = 0

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.process.terminate()
            self.process.join(5)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(5)
        finally:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass


def _worker_main(conn, fn, initializer, initargs) -> None:
    """Child-process loop: receive ``(job_id, payload)``, run ``fn``,
    send ``(job_id, status, result_or_error)``.  ``None`` is the
    shutdown sentinel.  Job-function exceptions are *data* — only a
    hard crash (``os._exit``, signal, interpreter abort) breaks the
    loop, and the parent-side manager treats the broken pipe as a
    worker death."""
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        job_id, payload = msg
        try:
            value = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - errors are data here
            conn.send((job_id, ERROR, {"type": type(exc).__name__, "message": str(exc)}))
        else:
            try:
                conn.send((job_id, OK, value))
            except (BrokenPipeError, OSError):
                return
            except Exception as exc:  # noqa: BLE001 - unpicklable result:
                # report it as a job error instead of dying (pickling
                # happens before any bytes hit the pipe, so a clean
                # follow-up send is safe).
                conn.send((job_id, ERROR,
                           {"type": type(exc).__name__,
                            "message": f"job result is not picklable: {exc}"}))


class WorkerPool:
    """``size`` worker processes executing ``fn`` over submitted payloads.

    ``fn``/``initializer`` must be picklable module-level callables (the
    default ``spawn`` context re-imports them in the child).
    ``job_timeout`` is the default per-job wall-clock bound; a job that
    overruns it has its worker killed and respawned and resolves with
    status ``timeout``.  ``None`` means wait forever (bench-style batch
    use where the work is trusted).
    """

    _SENTINEL = object()

    def __init__(
        self,
        fn: Callable[[Any], Any],
        size: int,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        job_timeout: Optional[float] = None,
        mp_context: str = "spawn",
    ) -> None:
        if size < 1:
            raise ValueError("WorkerPool size must be >= 1")
        self._fn = fn
        self._initializer = initializer
        self._initargs = initargs
        self._job_timeout = job_timeout
        self._ctx = multiprocessing.get_context(mp_context)
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._ids = itertools.count(1)
        self._closed = False
        self._lock = threading.Lock()
        self._busy = 0
        self.size = size
        self.completed = 0
        self.crashes = 0
        self.timeouts = 0
        self.respawns = 0
        self.recycles = 0
        self.stale_replies = 0
        self.injected_kills = 0
        self.injected_delays = 0
        self.injected_duplicates = 0
        self._chaos: Optional[DispatchChaos] = None
        self._dispatch_seq = itertools.count(0)
        #: Per-slot recycle requests: a manager that finds an Event here
        #: respawns its (idle) worker between jobs and sets the event.
        self._recycle: list[Optional[threading.Event]] = [None] * size
        self._restart_lock = threading.Lock()
        self._workers = [self._spawn() for _ in range(size)]
        self._managers = [
            threading.Thread(target=self._manage, args=(slot,), daemon=True,
                             name=f"repro-pool-{slot}")
            for slot in range(size)
        ]
        for thread in self._managers:
            thread.start()

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> _Worker:
        return _Worker(self._ctx, self._fn, self._initializer, self._initargs)

    def close(self) -> None:
        """Stop accepting work, drain the managers, terminate workers."""
        if self._closed:
            return
        self._closed = True
        for _ in self._managers:
            self._queue.put(self._SENTINEL)
        for thread in self._managers:
            thread.join(30)
        for worker in self._workers:
            worker.kill()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def rolling_restart(self, timeout_per_worker: float = 60.0) -> int:
        """Recycle every worker, one slot at a time.  Each slot's
        manager respawns its worker at the next between-jobs point (the
        in-flight job, if any, finishes on the old process first), so a
        full roll never loses a job and never removes more than one
        worker's capacity at once.  Returns the number of workers
        recycled; raises :class:`TimeoutError` if a slot does not come
        back within ``timeout_per_worker`` (e.g. a job longer than
        that is still running there)."""
        with self._restart_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            recycled = 0
            for slot in range(self.size):
                event = threading.Event()
                self._recycle[slot] = event
                if not event.wait(timeout_per_worker):
                    self._recycle[slot] = None
                    raise TimeoutError(
                        f"worker slot {slot} did not recycle within "
                        f"{timeout_per_worker}s (job still running?)"
                    )
                recycled += 1
            return recycled

    def install_chaos(self, chaos: Optional[DispatchChaos]) -> None:
        """Attach (or with ``None`` detach) a dispatch-point fault
        injector.  Test/chaos machinery only — never enabled in
        production configurations."""
        self._chaos = chaos

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        payload: Any,
        timeout: Optional[float] = None,
        on_start: Optional[Callable[[], None]] = None,
    ) -> JobHandle:
        """Enqueue one job.  ``timeout`` overrides the pool default;
        ``on_start`` fires on the manager thread the moment a worker
        picks the job up (the scheduler uses it for queue-depth
        accounting)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        handle = JobHandle(
            next(self._ids),
            payload,
            self._job_timeout if timeout is None else timeout,
            on_start,
        )
        self._queue.put(handle)
        return handle

    def map_unordered(
        self,
        payloads: Iterable[Any],
        timeout: Optional[float] = None,
        strict: bool = True,
    ) -> Iterator[Any]:
        """Run every payload, yielding results as they complete (any
        order).  With ``strict`` (the default) a failed job raises
        :class:`WorkerError`; otherwise the raw :class:`JobResult` is
        yielded for failures."""
        handles = [self.submit(p, timeout=timeout) for p in payloads]
        pending = {h.job_id: h for h in handles}
        while pending:
            for job_id, handle in list(pending.items()):
                if handle.done():
                    del pending[job_id]
                    result = handle.result()
                    if result.ok:
                        yield result.value
                    elif strict:
                        raise WorkerError(result)
                    else:
                        yield result
            if pending:
                # Block on any one outstanding handle (cheap wakeup poll).
                next(iter(pending.values()))._done.wait(0.05)

    # -- introspection -------------------------------------------------------

    @property
    def busy(self) -> int:
        """Workers currently executing a job."""
        with self._lock:
            return self._busy

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.size,
                "busy": self._busy,
                "completed": self.completed,
                "crashes": self.crashes,
                "timeouts": self.timeouts,
                "respawns": self.respawns,
                "recycles": self.recycles,
                "stale_replies": self.stale_replies,
                "injected_kills": self.injected_kills,
                "injected_delays": self.injected_delays,
                "injected_duplicates": self.injected_duplicates,
            }

    # -- the manager thread --------------------------------------------------

    def _manage(self, slot: int) -> None:
        while True:
            # Between jobs is the one point a worker is provably idle:
            # honour a pending recycle request here (graceful rolling
            # restart), then go back to waiting for work.  The short
            # timeout keeps recycles prompt on an idle pool.
            request = self._recycle[slot]
            if request is not None:
                self._do_recycle(slot, request)
            try:
                handle = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if handle is self._SENTINEL:
                return
            with self._lock:
                self._busy += 1
            try:
                result = self._run_one(slot, handle)
            except Exception as exc:  # noqa: BLE001 - the manager must
                # outlive anything _run_one throws (a failed respawn, an
                # unforeseen pipe state): an unresolved handle blocks its
                # caller forever and a dead manager loses the slot.
                result = JobResult(
                    handle.job_id, ERROR,
                    error={"type": type(exc).__name__,
                           "message": f"pool manager failure: {exc}"},
                )
            finally:
                with self._lock:
                    self._busy -= 1
                    self.completed += 1
            handle._resolve(result)

    def _run_one(self, slot: int, handle: JobHandle) -> JobResult:
        if handle.on_start is not None:
            try:
                handle.on_start()
            except Exception:  # pragma: no cover - callbacks must not kill managers
                pass
        action = None
        if self._chaos is not None:
            action = self._chaos.decide_dispatch(next(self._dispatch_seq))
        worker = self._workers[slot]
        if not worker.alive():
            # Died between jobs (or never came up): respawn before dispatch.
            worker = self._respawn(slot, worker)
        if action is not None and action.get("op") == "delay":
            with self._lock:
                self.injected_delays += 1
            time.sleep(float(action.get("seconds", 0.01)))
        try:
            worker.conn.send((handle.job_id, handle.payload))
            if action is not None and action.get("op") == "duplicate":
                # The worker will run the job twice and reply twice; the
                # reply loop keeps the first answer and discards the
                # duplicate (possibly while handling a later job).
                with self._lock:
                    self.injected_duplicates += 1
                worker.conn.send((handle.job_id, handle.payload))
        except (BrokenPipeError, OSError):
            # Death raced the dispatch: respawn and retry once.
            worker = self._respawn(slot, worker, count_crash=True)
            try:
                worker.conn.send((handle.job_id, handle.payload))
            except (BrokenPipeError, OSError):  # pragma: no cover - spawn DOA
                return JobResult(handle.job_id, CRASHED,
                                 error={"type": "WorkerCrash",
                                        "message": "worker unavailable"})
            except Exception as exc:  # noqa: BLE001
                return self._unsendable(handle, exc)
        except Exception as exc:  # noqa: BLE001 - e.g. pickle.PicklingError:
            # the payload, not the worker, is at fault — no respawn.
            return self._unsendable(handle, exc)
        if action is not None and action.get("op") == "kill":
            # Chaos: the worker dies mid-job; the EOF path below must
            # turn that into a structured crash, never a lost job.
            with self._lock:
                self.injected_kills += 1
            worker.process.kill()
        outcome, message = self._await_reply(worker, handle)
        if outcome == "timeout":
            self._respawn(slot, worker, count_crash=False, kill=True)
            with self._lock:
                self.timeouts += 1
            return JobResult(
                handle.job_id, TIMEOUT,
                error={"type": "JobTimeout",
                       "message": f"no response within {handle.timeout}s; "
                                  f"worker reaped"},
            )
        if outcome == "eof":
            self._respawn(slot, worker, count_crash=True)
            return JobResult(
                handle.job_id, CRASHED,
                error={"type": "WorkerCrash",
                       "message": "worker process died mid-job"},
            )
        _, status, payload = message
        worker.jobs_done += 1
        if status == OK:
            return JobResult(handle.job_id, OK, value=payload)
        return JobResult(handle.job_id, ERROR, error=payload)

    @staticmethod
    def _unsendable(handle: JobHandle, exc: BaseException) -> JobResult:
        return JobResult(
            handle.job_id, ERROR,
            error={"type": type(exc).__name__,
                   "message": f"payload could not be sent to worker: {exc}"},
        )

    def _await_reply(self, worker: _Worker, handle: JobHandle):
        """Wait for *this job's* reply: ``("ok", message)``,
        ``("timeout", None)`` or ``("eof", None)``.

        Replies whose job id does not match the in-flight handle are
        discarded (and counted): a duplicated pipe message or a reply
        that raced a watchdog kill must never be mis-attributed to the
        next job — that would be a silently wrong answer, the one thing
        the chaos invariants forbid.  With no timeout we wake
        periodically so a dead worker is noticed as EOF rather than
        waited on forever."""
        deadline = (None if handle.timeout is None
                    else time.monotonic() + handle.timeout)
        while True:
            if deadline is None:
                step = 1.0
            else:
                step = deadline - time.monotonic()
                if step <= 0:
                    return "timeout", None
                step = min(step, 1.0)
            try:
                if worker.conn.poll(step):
                    message = worker.conn.recv()
                    if message[0] == handle.job_id:
                        return "ok", message
                    with self._lock:
                        self.stale_replies += 1
                    continue
            except (EOFError, OSError):
                return "eof", None
            if not worker.alive():
                # Flush any reply that raced the death.
                try:
                    if worker.conn.poll(0.1):
                        message = worker.conn.recv()
                        if message[0] == handle.job_id:
                            return "ok", message
                        with self._lock:
                            self.stale_replies += 1
                except (EOFError, OSError):
                    pass
                return "eof", None

    def _do_recycle(self, slot: int, request: threading.Event) -> None:
        """Respawn an idle worker in place (rolling restart).  Runs on
        the slot's own manager thread between jobs, so no job can be in
        flight on the process being replaced."""
        worker = self._workers[slot]
        worker.kill()
        self._workers[slot] = self._spawn()
        with self._lock:
            self.recycles += 1
            self.respawns += 1
        self._recycle[slot] = None
        request.set()

    def _respawn(self, slot: int, worker: _Worker,
                 count_crash: bool = False, kill: bool = False) -> _Worker:
        if kill or worker.alive():
            worker.kill()
        else:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        with self._lock:
            if count_crash:
                self.crashes += 1
            self.respawns += 1
        fresh = self._spawn()
        self._workers[slot] = fresh
        return fresh


def run_jobs(
    fn: Callable[[Any], Any],
    payloads: Iterable[Any],
    jobs: int,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    timeout: Optional[float] = None,
) -> Iterator[Any]:
    """One-shot unordered map over a temporary pool — the
    ``multiprocessing.Pool.imap_unordered`` replacement used by
    ``repro-bench --jobs``.  A failed job raises :class:`WorkerError`."""
    with WorkerPool(fn, jobs, initializer=initializer, initargs=initargs) as pool:
        yield from pool.map_unordered(payloads, timeout=timeout)

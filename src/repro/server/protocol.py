"""The versioned JSON wire protocol of the execution service.

One request = one compile-and-run job.  Request shape (``schema`` is
:data:`PROTOCOL` and is required; everything but ``source`` has a
default)::

    {
      "schema": "repro-server/v1",
      "source": "val it = 1 + 2",
      "flags": {"strategy": "rg", "verify": true, ...},   # CompilerFlags.to_wire
      "backend": "closure" | "bytecode" | "tree",
      "cache": true,                    # consult the compile caches
      "runtime": {
        "gc_every_alloc": false,
        "generational": false,
        "gc_policy": null,              # "copying"|"generational"|"mark-compact"
        "max_heap_words": null,         # per-request resource limits
        "deadline_seconds": null,
        "fault_plan": null,             # FaultPlan.to_dict
        "sanitize": false,              # heap pointer sanitizer
        "specialize": null              # bytecode specialization threshold
      },
      "trace": false,                   # return the JSONL event trace
      "verify": false                   # run the independent GC-safety
    }                                   # verifier (repro.analysis) first

Response shape (the same ``schema``)::

    {
      "schema": "repro-server/v1",
      "id": "job-17",
      "status": "ok" | "error" | "limit" | "timeout" | "crashed"
              | "rejected" | "invalid",
      "exit_status": 0 | 1 | 2,         # repro-run exit-code semantics
      "value": "3",                     # show_value rendering, ok only
      "stdout": "",                     # the program's print output
      "stats": {...},                   # RunStats.to_dict (partial on limit)
      "error": {"type": ..., "message": ...},   # non-ok only
      "cache": {"memory_hit": false, "disk_hit": false},
                                        # omitted when no lookup happened
                                        # (request had "cache": false)
      "timing": {"compile_seconds": ..., "run_seconds": ...},
      "trace": [...],                   # requested traces only
      "verify": {...},                  # VerifierReport.to_dict, requested
      "retry_after": 1.5,               # rejected only (seconds)
      "node": "127.0.0.1:8752"          # gateway-routed responses only:
    }                                   # which node answered (also sent
                                        # as the X-Repro-Node header)

``exit_status`` deliberately mirrors ``repro-run``: **0** success,
**1** compile/runtime error (including a worker killed by the program),
**2** a resource limit fired (heap/deadline/steps/depth, or the server's
job-timeout watchdog) — so ``repro-submit`` can exit with the same code
the local CLI would have.
"""

from __future__ import annotations

from typing import Optional

from ..config import CompilerFlags

__all__ = [
    "PROTOCOL",
    "STATUSES",
    "EXIT_FOR_STATUS",
    "make_request",
    "validate_request",
    "request_flags",
    "request_runtime_overrides",
    "make_response",
    "rejection_response",
    "invalid_response",
]

PROTOCOL = "repro-server/v1"

#: Every terminal job status the service can report.
STATUSES = ("ok", "error", "limit", "timeout", "crashed", "rejected", "invalid")

#: ``repro-run``-compatible exit code per status.  ``rejected`` gets 75
#: (BSD ``EX_TEMPFAIL``: transient, retry later); ``invalid`` gets 64
#: (``EX_USAGE``).
EXIT_FOR_STATUS = {
    "ok": 0,
    "error": 1,
    "crashed": 1,
    "limit": 2,
    "timeout": 2,
    "rejected": 75,
    "invalid": 64,
}

_RUNTIME_KEYS = frozenset(
    {"gc_every_alloc", "generational", "gc_policy", "max_heap_words",
     "deadline_seconds", "fault_plan", "sanitize", "specialize"}
)


def make_request(
    source: str,
    flags: Optional[CompilerFlags] = None,
    backend: str = "closure",
    cache: bool = True,
    gc_every_alloc: bool = False,
    generational: bool = False,
    gc_policy: Optional[str] = None,
    max_heap_words: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    fault_plan=None,
    sanitize: bool = False,
    specialize: Optional[int] = None,
    trace: bool = False,
    verify: bool = False,
    tenant: Optional[str] = None,
) -> dict:
    """Build a request dict (the client-side constructor).  ``tenant``
    names the quota bucket the submission draws from (servers without
    quotas configured ignore it); it is only included when set, so
    requests to older servers stay valid."""
    request = {
        "schema": PROTOCOL,
        "source": source,
        "flags": (flags or CompilerFlags()).to_wire(),
        "backend": backend,
        "cache": cache,
        "runtime": {
            "gc_every_alloc": gc_every_alloc,
            "generational": generational,
            "gc_policy": gc_policy,
            "max_heap_words": max_heap_words,
            "deadline_seconds": deadline_seconds,
            "fault_plan": None if fault_plan is None else fault_plan.to_dict(),
            "sanitize": sanitize,
            "specialize": specialize,
        },
        "trace": trace,
        "verify": verify,
    }
    if tenant is not None:
        request["tenant"] = tenant
    return request


def validate_request(request: object) -> Optional[str]:
    """Shallow schema check; returns an error string or ``None``.

    Unknown top-level and runtime keys are *rejected* (a typo'd limit
    silently ignored would be a resource-limit bypass), but unknown
    ``flags`` keys are allowed for forward compatibility — they cannot
    weaken isolation, only change what is compiled.
    """
    if not isinstance(request, dict):
        return f"request is {type(request).__name__}, expected object"
    if request.get("schema") != PROTOCOL:
        return f"schema is {request.get('schema')!r}, expected {PROTOCOL!r}"
    if not isinstance(request.get("source"), str):
        return "source must be a string"
    known = {"schema", "source", "flags", "backend", "cache", "runtime", "trace",
             "verify", "tenant"}
    extra = set(request) - known
    if extra:
        return f"unknown request fields {sorted(extra)}"
    if request.get("backend", "closure") not in ("closure", "bytecode", "tree"):
        return f"unknown backend {request.get('backend')!r}"
    tenant = request.get("tenant")
    if tenant is not None and (
        not isinstance(tenant, str) or not tenant or len(tenant) > 128
    ):
        return "tenant must be a non-empty string of at most 128 characters"
    flags = request.get("flags", {})
    if not isinstance(flags, dict):
        return "flags must be an object"
    runtime = request.get("runtime", {})
    if not isinstance(runtime, dict):
        return "runtime must be an object"
    extra = set(runtime) - _RUNTIME_KEYS
    if extra:
        return f"unknown runtime fields {sorted(extra)}"
    policy = runtime.get("gc_policy")
    if policy is not None:
        from ..runtime.gc import POLICIES

        if not isinstance(policy, str) or policy not in POLICIES:
            return (f"gc_policy must be one of {sorted(POLICIES)}, "
                    f"got {policy!r}")
    # bool is a subclass of int: without the explicit exclusion,
    # max_heap_words=true would validate and become a 1-word heap limit.
    limit = runtime.get("max_heap_words")
    if limit is not None and (
        isinstance(limit, bool) or not isinstance(limit, int) or limit < 1
    ):
        return "max_heap_words must be a positive integer"
    deadline = runtime.get("deadline_seconds")
    if deadline is not None and (
        isinstance(deadline, bool)
        or not isinstance(deadline, (int, float))
        or deadline <= 0
    ):
        return "deadline_seconds must be a positive number"
    plan = runtime.get("fault_plan")
    if plan is not None and not isinstance(plan, dict):
        return "fault_plan must be an object (FaultPlan.to_dict)"
    specialize = runtime.get("specialize")
    if specialize is not None and (
        isinstance(specialize, bool) or not isinstance(specialize, int)
        or specialize < 0
    ):
        return "specialize must be a non-negative integer"
    try:
        request_flags(request)
        request_runtime_overrides(request)
    except (ValueError, TypeError) as exc:
        return str(exc)
    return None


def request_flags(request: dict) -> CompilerFlags:
    """The :class:`~repro.config.CompilerFlags` a request compiles under
    (runtime field untouched — limits are per-request overrides, never
    part of the compilation)."""
    return CompilerFlags.from_wire(request.get("flags", {}))


def request_runtime_overrides(request: dict) -> dict:
    """Keyword overrides for :meth:`CompiledProgram.run` — the
    per-request :class:`~repro.config.RuntimeFlags` deltas."""
    runtime = request.get("runtime", {})
    overrides: dict = {}
    if runtime.get("gc_every_alloc"):
        overrides["gc_every_alloc"] = True
    if runtime.get("generational"):
        overrides["generational"] = True
    if runtime.get("gc_policy") is not None:
        overrides["gc_policy"] = str(runtime["gc_policy"])
    if runtime.get("sanitize"):
        overrides["sanitize"] = True
    if runtime.get("max_heap_words") is not None:
        overrides["max_heap_words"] = int(runtime["max_heap_words"])
    if runtime.get("deadline_seconds") is not None:
        overrides["deadline_seconds"] = float(runtime["deadline_seconds"])
    if runtime.get("fault_plan") is not None:
        from ..testing.faultplan import FaultPlan

        overrides["fault_plan"] = FaultPlan.from_dict(runtime["fault_plan"])
    if runtime.get("specialize") is not None:
        overrides["specialize"] = int(runtime["specialize"])
    return overrides


def make_response(
    status: str,
    job_id: Optional[str] = None,
    value: Optional[str] = None,
    stdout: Optional[str] = None,
    stats: Optional[dict] = None,
    error: Optional[dict] = None,
    cache: Optional[dict] = None,
    timing: Optional[dict] = None,
    trace: Optional[list] = None,
    verify: Optional[dict] = None,
    retry_after: Optional[float] = None,
    node: Optional[str] = None,
) -> dict:
    if status not in STATUSES:
        raise ValueError(f"unknown status {status!r}")
    response: dict = {
        "schema": PROTOCOL,
        "id": job_id,
        "status": status,
        "exit_status": EXIT_FOR_STATUS[status],
    }
    if value is not None:
        response["value"] = value
    if stdout is not None:
        response["stdout"] = stdout
    if stats is not None:
        response["stats"] = stats
    if error is not None:
        response["error"] = error
    if cache is not None:
        response["cache"] = cache
    if timing is not None:
        response["timing"] = timing
    if trace is not None:
        response["trace"] = trace
    if verify is not None:
        response["verify"] = verify
    if retry_after is not None:
        response["retry_after"] = retry_after
    if node is not None:
        response["node"] = node
    return response


#: ``error.type`` per rejection reason (see
#: :class:`~repro.server.scheduler.Rejection`); clients retry all of
#: them — the distinction is for operators reading logs and metrics.
_REJECTION_TYPES = {
    "capacity": "QueueFull",
    "quota": "QuotaExceeded",
    "draining": "Draining",
    "chaos": "QueueFull",
    "unreachable": "NoHealthyNode",
}

_REJECTION_MESSAGES = {
    "capacity": "admission queue at capacity ({depth}/{capacity})",
    "quota": "tenant quota exhausted",
    "draining": "server is draining for restart",
    "chaos": "admission shed by fault injection",
    "unreachable": "no healthy node could serve the request",
}


def rejection_response(retry_after: float, depth: int, capacity: int,
                       reason: str = "capacity") -> dict:
    """The admission-control backpressure response (HTTP 503)."""
    detail = _REJECTION_MESSAGES.get(reason, _REJECTION_MESSAGES["capacity"])
    return make_response(
        "rejected",
        retry_after=round(retry_after, 3),
        error={
            "type": _REJECTION_TYPES.get(reason, "QueueFull"),
            "message": f"{detail.format(depth=depth, capacity=capacity)}; "
                       f"retry after {retry_after:.1f}s",
        },
    )


def invalid_response(message: str) -> dict:
    """A malformed request (HTTP 400)."""
    return make_response("invalid", error={"type": "InvalidRequest", "message": message})

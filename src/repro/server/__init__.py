"""``repro.server`` — a concurrent compile-and-run execution service.

Every pre-existing entry point (``repro-run``, ``repro-bench``,
``repro-fuzz``) is a one-shot CLI: each invocation pays pipeline
startup, the process-wide compile LRU dies with the process, and the
per-run resource limits and observability have no aggregation story.
This package is the resident serving layer on top of the same pipeline:

* :mod:`repro.server.pool` — a crash-resilient multi-process worker
  pool (each worker runs jobs through the existing pipeline; a crashed
  or hung worker is reaped and respawned without losing other jobs).
  Also the engine behind ``repro-bench --jobs``.
* :mod:`repro.server.diskcache` — a keyed on-disk compile cache layered
  under the in-memory LRU of :mod:`repro.cache`, so warm restarts and
  sibling workers skip compilation.
* :mod:`repro.server.protocol` — the versioned JSON wire schema
  (:data:`~repro.server.protocol.PROTOCOL`): source + flags + limits +
  optional fault plan in; value, stdout, ``RunStats``, exit status,
  optional trace out.
* :mod:`repro.server.worker` — the job executor run inside each worker
  process (compile through the tiered caches, run with per-request
  limits, map every failure mode to a structured response).
* :mod:`repro.server.scheduler` — admission control: a bounded FIFO
  with reject-with-retry-after backpressure when the queue is full.
* :mod:`repro.server.metrics` — the fleet metrics registry (jobs by
  outcome, queue depth, cache hit rate, aggregated ``RunStats``,
  latency/heap histograms) behind the ``stats`` endpoint.
* :mod:`repro.server.app` — HTTP wiring + the ``repro-serve`` CLI.
* :mod:`repro.server.client` — a small Python client + the
  ``repro-submit`` CLI, with capped-exponential-backoff retries.
* :mod:`repro.server.chaos` — seeded serving-layer fault injection +
  the ``repro-chaos`` CLI: replay the Figure 9 corpus through a live
  fleet under worker kills, admission sheds, pipe delays/duplicates,
  and disk-cache corruption, asserting no job is lost and every answer
  stays bit-identical.

One node is the unit; a **fleet** is N of them behind a front door:

* :mod:`repro.server.fleet` — the consistent-hash ring (virtual
  nodes, deterministic failover preference order), per-node health
  state, and :class:`~repro.server.fleet.LocalFleet` (a whole fleet in
  one process for tests and benches).
* :mod:`repro.server.gateway` — the asyncio HTTP gateway + the
  ``repro-gateway`` CLI: route by compile-cache key so hot programs
  pin to warm nodes, exclude draining/dead nodes, bounded failover on
  node death, fleet-wide stats roll-up.
* :mod:`repro.server.artifacts` — the content-addressed fleet compile
  store (sha256-framed, digest-verified-before-unpickle, quarantining)
  shared by every node, so one compilation anywhere serves everywhere.
* :mod:`repro.server.loadgen` — the open-loop load-replay harness +
  the ``repro-loadgen`` CLI: seeded Poisson / trace-replay schedules
  over the Figure 9 corpus, SLO-gated against the fleet's own
  ``/v1/stats`` histograms, exported as ``repro-serving-bench/v1``
  (``BENCH_serving.json``).

See ``docs/serving.md`` for the architecture, wire schema, and ops
runbook.
"""

from .app import ReproServer, ServerConfig
from .chaos import ChaosPlan
from .client import ServerClient
from .fleet import HashRing, LocalFleet
from .gateway import Gateway, GatewayConfig

__all__ = [
    "ReproServer",
    "ServerConfig",
    "ServerClient",
    "ChaosPlan",
    "HashRing",
    "LocalFleet",
    "Gateway",
    "GatewayConfig",
]

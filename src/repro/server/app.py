"""HTTP wiring + the ``repro-serve`` CLI.

The service is deliberately stdlib-only: a ``ThreadingHTTPServer``
accepts requests (one handler thread per connection), the handler
validates the wire request, asks the :class:`Scheduler` for admission,
and blocks on the job handle — the admission bound keeps the number of
such blocked threads finite.  Execution happens in the worker-pool
processes; the serving process never runs untrusted MiniML itself.

Endpoints:

* ``POST /v1/run``      — one compile-and-run job (wire schema:
  :mod:`repro.server.protocol`).  ``503`` + ``Retry-After`` on a full
  queue, ``400`` on a malformed request, ``200`` with a structured
  status otherwise (a *job* failure is not a transport failure).
* ``GET  /v1/stats``    — fleet metrics + scheduler/pool/cache state.
* ``GET  /v1/healthz``  — liveness (also used by clients to wait for
  startup).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .metrics import MetricsRegistry
from .pool import WorkerPool
from .protocol import PROTOCOL, invalid_response, rejection_response
from .scheduler import Rejection, Scheduler
from .worker import execute_job, init_worker

__all__ = ["ServerConfig", "ReproServer", "main"]

#: Watchdog slack on top of a request's own deadline: the in-interpreter
#: deadline should always fire first; the pool timeout only catches a
#: worker that is wedged outside the interpreter loop.
DEADLINE_GRACE_SECONDS = 10.0


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro-serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8752
    #: Worker processes executing jobs.
    workers: int = 4
    #: Admission bound: maximum in-flight (queued + running) jobs.
    queue_capacity: int = 32
    #: On-disk compile cache directory (``None`` = memory-only workers).
    cache_dir: Optional[str] = None
    #: Default per-job watchdog when the request sets no deadline.
    job_timeout_seconds: float = 120.0
    #: Worker start method (``spawn`` is the safe default under threads).
    mp_context: str = "spawn"


class ReproServer:
    """The assembled service: pool + scheduler + metrics + HTTP."""

    def __init__(self, config: ServerConfig = ServerConfig()) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.pool = WorkerPool(
            execute_job,
            size=config.workers,
            initializer=init_worker,
            initargs=(config.cache_dir,),
            job_timeout=config.job_timeout_seconds,
            mp_context=config.mp_context,
        )
        self.scheduler = Scheduler(self.pool, config.queue_capacity)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()
        self._job_ids = iter(range(1, 1 << 62))

    # -- request handling (transport-independent) ----------------------------

    def handle_run(self, request: object) -> Tuple[int, dict]:
        """Returns ``(http_status, response_dict)``."""
        problem = None
        if not isinstance(request, dict):
            problem = f"request is {type(request).__name__}, expected object"
        elif request.get("schema") != PROTOCOL:
            problem = f"schema is {request.get('schema')!r}, expected {PROTOCOL!r}"
        elif not isinstance(request.get("source"), str):
            problem = "source must be a string"
        if problem is not None:
            # Full validation happens in the worker; the cheap checks here
            # keep garbage out of the queue without compiling anything.
            response = invalid_response(problem)
            self.metrics.record_response(response)
            return 400, response

        timeout = self.config.job_timeout_seconds
        runtime = request.get("runtime") or {}
        deadline = runtime.get("deadline_seconds") if isinstance(runtime, dict) else None
        if (isinstance(deadline, (int, float)) and not isinstance(deadline, bool)
                and deadline > 0):
            timeout = float(deadline) + DEADLINE_GRACE_SECONDS

        start = time.perf_counter()
        outcome = self.scheduler.submit(request, timeout=timeout)
        if isinstance(outcome, Rejection):
            self.metrics.record_rejection()
            response = rejection_response(
                outcome.retry_after, outcome.depth, outcome.capacity
            )
            return 503, response

        result = outcome.result()  # blocks this handler thread only
        wall = time.perf_counter() - start
        self.scheduler.finish(result, wall)
        job_id = f"job-{next(self._job_ids)}"
        if result.ok:
            response = dict(result.value)
        else:
            # Pool-level failure (crash/timeout/pickling error): the
            # worker never produced a wire response, synthesize one.
            from .protocol import make_response

            status = result.status if result.status in ("crashed", "timeout") else "error"
            response = make_response(status, error=result.error)
        response["id"] = job_id
        self.metrics.record_response(response, wall_seconds=wall)
        return 200, response

    def stats_snapshot(self) -> dict:
        return {
            "schema": PROTOCOL,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "config": {
                "workers": self.config.workers,
                "queue_capacity": self.config.queue_capacity,
                "cache_dir": self.config.cache_dir,
                "job_timeout_seconds": self.config.job_timeout_seconds,
            },
            "scheduler": self.scheduler.snapshot(),
            "pool": self.pool.stats(),
            "metrics": self.metrics.snapshot(),
        }

    # -- HTTP ----------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and serve in a background thread; returns the bound
        address (useful with ``port=0``)."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # quiet by default
                pass

            def _send_json(self, status: int, payload: dict,
                           extra_headers: Optional[dict] = None) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for key, value in (extra_headers or {}).items():
                    self.send_header(key, value)
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                if self.path == "/v1/healthz":
                    self._send_json(200, {"ok": True, "schema": PROTOCOL})
                elif self.path == "/v1/stats":
                    self._send_json(200, server.stats_snapshot())
                else:
                    self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

            def do_POST(self) -> None:
                if self.path != "/v1/run":
                    self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    request = json.loads(self.rfile.read(length) or b"null")
                except (ValueError, OSError) as exc:
                    response = invalid_response(f"bad request body: {exc}")
                    self._send_json(400, response)
                    return
                status, response = server.handle_run(request)
                headers = None
                if status == 503:
                    headers = {"Retry-After": str(response.get("retry_after", 1))}
                self._send_json(status, response, headers)

        self._httpd = ThreadingHTTPServer((self.config.host, self.config.port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True, name="repro-serve-http"
        )
        self._thread.start()
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        self.pool.close()

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _default_cache_name() -> str:
    """Per-user cache directory name under the shared system temp dir.
    A fixed name would let any other local user pre-create the path and
    plant pickles the workers would unpickle; the uid suffix plus the
    ownership check in :class:`~repro.server.diskcache.DiskCompileCache`
    closes that off."""
    try:
        owner = str(os.getuid())
    except AttributeError:  # pragma: no cover - non-POSIX
        import getpass

        owner = getpass.getuser()
    return f"repro-compile-cache-{owner}"


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve MiniML compile-and-run jobs over HTTP "
        "(wire schema repro-server/v1; see docs/serving.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8752,
                        help="TCP port (0 = pick a free one; default 8752)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes (default 4)")
    parser.add_argument("--queue", type=int, default=32, metavar="N",
                        help="admission bound: max in-flight jobs (default 32)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk compile cache directory (default: a "
                             "per-user dir under the system temp dir; "
                             "--no-disk-cache disables)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="run workers memory-only (no warm restarts)")
    parser.add_argument("--job-timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="watchdog for jobs with no deadline (default 120)")
    args = parser.parse_args(argv)

    cache_dir: Optional[str]
    if args.no_disk_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = str(Path(tempfile.gettempdir()) / _default_cache_name())

    server = ReproServer(ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue,
        cache_dir=cache_dir,
        job_timeout_seconds=args.job_timeout,
    ))
    host, port = server.start()
    print(f"repro-serve: listening on http://{host}:{port} "
          f"({args.workers} workers, queue {args.queue}, "
          f"cache {cache_dir or 'memory-only'})",
          file=sys.stderr, flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("repro-serve: shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
